#include <gtest/gtest.h>

#include "src/pattern/canonical.h"
#include "src/pattern/pattern_printer.h"
#include "src/summary/summary_builder.h"
#include "src/workload/corpora.h"
#include "src/workload/dblp.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/workload/xmark_queries.h"

namespace svx {
namespace {

TEST(Xmark, GeneratesAndSummarizes) {
  XmarkOptions opts;
  opts.scale = 1.0;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  ASSERT_GT(doc->size(), 500);
  EXPECT_EQ(doc->label(doc->root()), "site");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc.get());
  // Table 1 band: hundreds of paths.
  EXPECT_GT(s->size(), 150);
  EXPECT_LT(s->size(), 1200);
  EXPECT_GT(s->num_strong_edges(), 0);
  EXPECT_GT(s->num_one_to_one_edges(), 0);
  EXPECT_TRUE(Conforms(*doc, *s));
}

TEST(Xmark, SummaryGrowsSlowlyWithScale) {
  // Table 1: XMark11 -> XMark233 grows the summary by only ~10%.
  XmarkOptions small;
  small.scale = 0.5;
  XmarkOptions large;
  large.scale = 4.0;
  std::unique_ptr<Document> d1 = GenerateXmark(small);
  std::unique_ptr<Document> d2 = GenerateXmark(large);
  std::unique_ptr<Summary> s1 = SummaryBuilder::Build(d1.get());
  std::unique_ptr<Summary> s2 = SummaryBuilder::Build(d2.get());
  EXPECT_GT(d2->size(), 3 * d1->size());
  EXPECT_LT(static_cast<double>(s2->size()),
            1.9 * static_cast<double>(s1->size()));
}

TEST(Xmark, Deterministic) {
  XmarkOptions opts;
  std::unique_ptr<Document> a = GenerateXmark(opts);
  std::unique_ptr<Document> b = GenerateXmark(opts);
  ASSERT_EQ(a->size(), b->size());
  for (NodeIndex n = 0; n < a->size(); n += 97) {
    EXPECT_EQ(a->label(n), b->label(n));
  }
}

TEST(Dblp, TwoSnapshots) {
  DblpOptions d02;
  DblpOptions d05;
  d05.snapshot_2005 = true;
  std::unique_ptr<Document> doc02 = GenerateDblp(d02);
  std::unique_ptr<Document> doc05 = GenerateDblp(d05);
  std::unique_ptr<Summary> s02 = SummaryBuilder::Build(doc02.get());
  std::unique_ptr<Summary> s05 = SummaryBuilder::Build(doc05.get());
  // Table 1: DBLP'05 has a slightly larger summary than DBLP'02.
  EXPECT_GT(s05->size(), s02->size());
  EXPECT_GT(s02->size(), 40);
  EXPECT_LT(s05->size(), 300);
}

TEST(Corpora, SummarySizesInTableOneBands) {
  std::unique_ptr<Document> shakespeare = GenerateShakespeareLike();
  std::unique_ptr<Document> nasa = GenerateNasaLike();
  std::unique_ptr<Document> swissprot = GenerateSwissProtLike();
  std::unique_ptr<Summary> s1 = SummaryBuilder::Build(shakespeare.get());
  std::unique_ptr<Summary> s2 = SummaryBuilder::Build(nasa.get());
  std::unique_ptr<Summary> s3 = SummaryBuilder::Build(swissprot.get());
  EXPECT_GT(s1->size(), 15);
  EXPECT_LT(s1->size(), 90);
  EXPECT_GT(s2->size(), 10);
  EXPECT_LT(s2->size(), 60);
  EXPECT_GT(s3->size(), 25);
  EXPECT_LT(s3->size(), 180);
}

TEST(XmarkQueries, AllTwentyParseAndAreSatisfiable) {
  XmarkOptions opts;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc.get());
  int optional_count = 0;
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    Pattern p = GetXmarkQueryPattern(q.number);
    EXPECT_GE(p.size(), 3) << q.number;
    if (p.HasOptionalEdges()) ++optional_count;
    Result<bool> sat = IsSatisfiable(p, *s);
    ASSERT_TRUE(sat.ok()) << q.number;
    EXPECT_TRUE(*sat) << "query " << q.number << " unsatisfiable: " << q.text;
  }
  // The paper reports 16 of the 20 patterns carry optional edges.
  EXPECT_GE(optional_count, 10);
}

TEST(PatternGenerator, RespectsSizeAndArity) {
  XmarkOptions opts;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc.get());
  Rng rng(123);
  PatternGenOptions gen;
  gen.num_nodes = 7;
  gen.num_return = 2;
  gen.return_labels = {"item", "name"};
  for (int i = 0; i < 20; ++i) {
    Result<Pattern> p = GeneratePattern(*s, gen, &rng);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_EQ(p->size(), 7);
    EXPECT_EQ(p->Arity(), 2);
    std::vector<PatternNodeId> rets = p->ReturnNodes();
    EXPECT_EQ(p->node(rets[0]).label, "item");
    EXPECT_EQ(p->node(rets[1]).label, "name");
  }
}

TEST(PatternGenerator, GeneratedPatternsAreStructurallySatisfiable) {
  XmarkOptions opts;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc.get());
  Rng rng(77);
  PatternGenOptions gen;
  gen.num_nodes = 5;
  gen.num_return = 1;
  gen.return_labels = {"item"};
  gen.p_pred = 0;  // structure only
  for (int i = 0; i < 20; ++i) {
    Result<Pattern> p = GeneratePattern(*s, gen, &rng);
    ASSERT_TRUE(p.ok());
    Result<bool> sat = IsSatisfiable(*p, *s);
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(*sat) << PatternToString(*p);
  }
}

TEST(PatternGenerator, DeterministicGivenSeed) {
  XmarkOptions opts;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> s = SummaryBuilder::Build(doc.get());
  PatternGenOptions gen;
  gen.num_nodes = 6;
  gen.return_labels = {"item"};
  Rng r1(5);
  Rng r2(5);
  Result<Pattern> a = GeneratePattern(*s, gen, &r1);
  Result<Pattern> b = GeneratePattern(*s, gen, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(PatternToString(*a), PatternToString(*b));
}

}  // namespace
}  // namespace svx
