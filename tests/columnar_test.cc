// Columnar extent representation: randomized round-trip determinism,
// row-major (v1) store back-compat, dictionary-driven statistics parity,
// column-selective decoding, memory-budget eviction/reload, and epoch
// chunk sharing.
#include "src/algebra/columnar.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/view.h"
#include "src/util/rng.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/statistics.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// View shapes covering every chunk encoding: plain ids+values
/// (delta-coded ids, dictionary values), optional edges (⊥ cells), nested
/// tables, content references, and label columns.
std::vector<ViewDef> CoveringViews() {
  return {
      {"plain", MustParsePattern("site(//item{id}(/name{id,v}))")},
      {"opt", MustParsePattern("site(//item{id}(?//keyword{v}))")},
      {"nest", MustParsePattern("site(//item{id}(n//keyword{id,v}))")},
      {"content", MustParsePattern("site(//person{id,c})")},
      {"labels", MustParsePattern("site(//description{id}(//keyword{l}))")},
  };
}

std::unique_ptr<Document> RandomXmark(uint64_t seed) {
  XmarkOptions opts;
  opts.scale = 0.2;
  opts.seed = seed;
  return GenerateXmark(opts);
}

std::string TempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("svx_columnar_test_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Round-trip determinism and decode equality
// ---------------------------------------------------------------------------

TEST(Columnar, RandomizedRoundTripIsByteDeterministic) {
  for (uint64_t seed : {3u, 17u, 51u}) {
    std::unique_ptr<Document> doc = RandomXmark(seed);
    for (const ViewDef& def : CoveringViews()) {
      Table table = MaterializeView(def.pattern, def.name, *doc);
      table.SortRowsCanonical();

      // Encoding is deterministic: two independent encodes of the same
      // table serialize identically.
      ColumnarExtent a = ColumnarExtent::Encode(table);
      ColumnarExtent b = ColumnarExtent::Encode(table);
      const int64_t v1_bytes = ExtentByteSize(table);
      std::string bytes_a = SerializeColumnarExtent(a, v1_bytes);
      std::string bytes_b = SerializeColumnarExtent(b, v1_bytes);
      EXPECT_EQ(bytes_a, bytes_b) << def.name << " seed " << seed;
      EXPECT_EQ(static_cast<int64_t>(a.SerializedByteSize()),
                static_cast<int64_t>(b.SerializedByteSize()));

      // Parse -> re-serialize round-trips to the same bytes.
      Result<ColumnarLoad> load = DeserializeExtentColumnar(bytes_a, doc.get());
      ASSERT_TRUE(load.ok()) << load.status().ToString();
      EXPECT_EQ(load->uncompressed_bytes, v1_bytes);
      EXPECT_TRUE(*load->columnar == a) << def.name << " seed " << seed;
      EXPECT_EQ(SerializeColumnarExtent(*load->columnar, v1_bytes), bytes_a);

      // Decode reproduces the row-major table.
      Result<Table> decoded = load->columnar->Decode(doc.get());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_TRUE(decoded->EqualsIgnoringOrder(table))
          << def.name << " seed " << seed;
      EXPECT_EQ(SerializeExtent(*decoded), SerializeExtent(table))
          << def.name << " decode must preserve canonical row order";
    }
  }
}

TEST(Columnar, CompressedSmallerThanRowMajorOnRealExtents) {
  std::unique_ptr<Document> doc = RandomXmark(7);
  int64_t row_major = 0;
  int64_t compressed = 0;
  for (const ViewDef& def : CoveringViews()) {
    Table table = MaterializeView(def.pattern, def.name, *doc);
    table.SortRowsCanonical();
    row_major += ExtentByteSize(table);
    compressed += ColumnarExtent::Encode(table).SerializedByteSize();
  }
  EXPECT_LT(compressed * 2, row_major)
      << "columnar extents must be at least 2x smaller than row-major";
}

TEST(Columnar, SelectiveDecodeMatchesFullDecodeOnUsedColumns) {
  std::unique_ptr<Document> doc = RandomXmark(29);
  for (const ViewDef& def : CoveringViews()) {
    Table table = MaterializeView(def.pattern, def.name, *doc);
    table.SortRowsCanonical();
    ColumnarExtent extent = ColumnarExtent::Encode(table);
    const size_t ncols = table.schema().size();
    for (size_t keep = 0; keep < ncols; ++keep) {
      std::vector<bool> used(ncols, false);
      used[keep] = true;
      Result<Table> partial = extent.DecodeColumns(used, doc.get());
      ASSERT_TRUE(partial.ok()) << partial.status().ToString();
      ASSERT_EQ(partial->NumRows(), table.NumRows());
      for (int64_t r = 0; r < table.NumRows(); ++r) {
        std::string want;
        EncodeValue(table.row(r)[keep], &want);
        std::string got;
        EncodeValue(partial->row(r)[keep], &got);
        EXPECT_EQ(got, want) << def.name << " col " << keep << " row " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// v-old (row-major) store back-compat
// ---------------------------------------------------------------------------

TEST(Columnar, RowMajorV1StoreStillLoads) {
  const std::string dir = TempDir("v1");
  std::unique_ptr<Document> doc = RandomXmark(11);
  ViewCatalog catalog(dir);
  for (const ViewDef& def : CoveringViews()) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
  }
  ASSERT_TRUE(catalog.Save().ok());

  // Rewrite every extent file with the version-1 (row-major) bytes a
  // pre-columnar build would have produced. The manifest is untouched.
  for (const auto& v : catalog.views()) {
    fs::path extent_path;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(v->def.name + ".", 0) == 0 &&
          entry.path().extension() == ".extent") {
        extent_path = entry.path();
      }
    }
    ASSERT_FALSE(extent_path.empty()) << v->def.name;
    Result<TablePtr> table = v->table();
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    std::ofstream out(extent_path, std::ios::binary | std::ios::trunc);
    out << SerializeExtent(**table);
  }

  ViewCatalog reloaded(dir);
  ASSERT_TRUE(reloaded.Load(doc.get()).ok());
  ASSERT_EQ(reloaded.size(), catalog.size());
  for (const auto& v : catalog.views()) {
    const StoredView* got = reloaded.Find(v->def.name);
    ASSERT_NE(got, nullptr) << v->def.name;
    EXPECT_EQ(SerializeExtent(got->extent()), SerializeExtent(v->extent()))
        << v->def.name;
    EXPECT_EQ(got->extent_bytes, v->extent_bytes) << v->def.name;
    // A v1 parse decoded the rows anyway, so they install resident.
    EXPECT_NE(got->TryResident(), nullptr) << v->def.name;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Statistics parity: dictionaries vs row rescans
// ---------------------------------------------------------------------------

TEST(Columnar, StatsFromDictionariesMatchRowScan) {
  for (uint64_t seed : {5u, 23u}) {
    std::unique_ptr<Document> doc = RandomXmark(seed);
    for (const ViewDef& def : CoveringViews()) {
      Table table = MaterializeView(def.pattern, def.name, *doc);
      table.SortRowsCanonical();
      ColumnarExtent extent = ColumnarExtent::Encode(table);
      ViewStats want = ComputeViewStats(table);
      ViewStats got = ComputeViewStats(extent, doc.get());
      EXPECT_TRUE(got == want) << def.name << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Executor: columnar bindings match eager tables
// ---------------------------------------------------------------------------

TEST(Columnar, ColumnarScanMatchesEagerScan) {
  std::unique_ptr<Document> doc = RandomXmark(13);
  for (const ViewDef& def : CoveringViews()) {
    Table table = MaterializeView(def.pattern, def.name, *doc);
    table.SortRowsCanonical();
    ColumnarExtent extent = ColumnarExtent::Encode(table);

    Catalog eager;
    eager.Register(def.name, &table);
    Result<Table> want =
        Execute(*MakeViewScan(def.name, table.schema()), eager);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // Cold columnar binding: no resident table, so the scan decodes from
    // the chunks and reports the decode through `loaded`.
    int loads = 0;
    Catalog cold;
    ColumnarSource src;
    src.extent = &extent;
    src.doc = doc.get();
    src.resident = []() { return TablePtr(); };
    src.loaded = [&loads](TablePtr, int64_t decode_us) {
      ++loads;
      EXPECT_GE(decode_us, 0);
    };
    cold.RegisterColumnar(def.name, std::move(src));
    Result<Table> got =
        Execute(*MakeViewScan(def.name, table.schema()), cold);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->EqualsIgnoringOrder(*want)) << def.name;
    EXPECT_EQ(loads, 1) << def.name;
  }
}

// ---------------------------------------------------------------------------
// Memory budget: eviction and lazy reload
// ---------------------------------------------------------------------------

TEST(Columnar, TinyBudgetEvictsAndReloadsWithoutChangingResults) {
  std::unique_ptr<Document> doc = RandomXmark(31);
  ViewCatalogOptions opts;
  opts.memory_budget_bytes = 2048;  // far below the working set
  ViewCatalog catalog(opts);
  std::vector<std::string> expected;
  int64_t working_set = 0;
  for (const ViewDef& def : CoveringViews()) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
    Table fresh = MaterializeView(def.pattern, def.name, *doc);
    fresh.SortRowsCanonical();
    working_set += ExtentByteSize(fresh);
    expected.push_back(SerializeExtent(fresh));
  }
  const std::shared_ptr<MemoryBudget>& budget = catalog.memory_budget();
  EXPECT_GT(budget->evictions(), 0)
      << "materializing past the budget must evict";
  EXPECT_LT(budget->resident_bytes(), working_set)
      << "residency must track the budget, not the working set";

  // Sweep all views repeatedly: every pass re-decodes evicted extents and
  // every decode must reproduce the materialized bytes.
  for (int pass = 0; pass < 3; ++pass) {
    const auto& views = catalog.views();
    for (size_t i = 0; i < views.size(); ++i) {
      Result<TablePtr> t = views[i]->table();
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      EXPECT_EQ(SerializeExtent(**t), expected[i])
          << views[i]->def.name << " pass " << pass;
    }
  }
  EXPECT_GT(budget->reloads(), 0) << "sweeps past the budget must reload";
}

TEST(Columnar, PinnedTableSurvivesEviction) {
  std::unique_ptr<Document> doc = RandomXmark(37);
  ViewCatalogOptions opts;
  opts.memory_budget_bytes = 1;  // evict everything not pinned
  ViewCatalog catalog(opts);
  std::vector<ViewDef> defs = CoveringViews();
  for (const ViewDef& def : defs) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
  }
  // Pin one view's decoded table, then force evictions by sweeping the
  // rest; the pinned shared_ptr must stay valid and unchanged.
  Result<TablePtr> pinned = catalog.Find("plain")->table();
  ASSERT_TRUE(pinned.ok());
  std::string before = SerializeExtent(**pinned);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& v : catalog.views()) {
      Result<TablePtr> t = v->table();
      ASSERT_TRUE(t.ok());
    }
  }
  EXPECT_EQ(SerializeExtent(**pinned), before);
}

// ---------------------------------------------------------------------------
// Epoch sharing: untouched views share the whole compressed extent
// ---------------------------------------------------------------------------

TEST(Columnar, UntouchedViewsShareColumnarAcrossEpochs) {
  std::shared_ptr<Document> d = Doc("a(b=1 b=2 c(x=3))");
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"VB", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog.Materialize({"VX", MustParsePattern("a(//x{id,c})")}, *d).ok());
  const ColumnarExtentPtr vb_before = catalog.Find("VB")->columnar;
  const ColumnarExtentPtr vx_before = catalog.Find("VX")->columnar;

  // Insert another b: VB changes, VX (a content view of an untouched
  // subtree) carries its compressed extent — the same object — into the
  // new epoch.
  Result<UpdateResult> up = InsertSubtree(*d, OrdPath::Root(), *Doc("b=9"));
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta).ok());

  EXPECT_EQ(catalog.Find("VX")->columnar.get(), vx_before.get())
      << "untouched content view must share the compressed extent object";
  EXPECT_NE(catalog.Find("VB")->columnar.get(), vb_before.get());
  EXPECT_EQ(catalog.Find("VB")->extent().NumRows(), 3);
  EXPECT_EQ(catalog.Find("VX")->extent().NumRows(), 1);
}

TEST(Columnar, MaintenanceSharesUnchangedChunksAcrossEpochs) {
  std::shared_ptr<Document> d = Doc("a(b(v=1) b(v=2))");
  ViewCatalog catalog;
  // Two columns: the b ids (unchanged by a value-subtree insert below an
  // existing b) and the v values.
  ASSERT_TRUE(catalog
                  .Materialize({"V", MustParsePattern("a(/b{id}(/v{v}))")},
                               *d)
                  .ok());
  const ColumnarExtentPtr before = catalog.Find("V")->columnar;
  ASSERT_EQ(before->num_columns(), 2);

  // Re-encoding an equal table against the previous epoch's extent must
  // reuse the previous chunk objects, not just produce equal bytes — that
  // pointer identity is what lets epochs share untouched columns.
  Table same = catalog.Find("V")->extent();
  ColumnarExtent shared = ColumnarExtent::EncodeSharing(same, *before);
  for (int32_t c = 0; c < shared.num_columns(); ++c) {
    EXPECT_EQ(shared.column(c).get(), before->column(c).get())
        << "identical column " << c << " must reuse the prior epoch's chunk";
  }
}

}  // namespace
}  // namespace svx
