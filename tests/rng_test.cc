#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  // Degenerate range.
  EXPECT_EQ(r.Uniform(9, 9), 9);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 200; ++i) {
    seen[static_cast<size_t>(r.Uniform(0, 3))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(Rng, PickReturnsMember) {
  Rng r(13);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int x = r.Pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace svx
