#include "src/xml/document.h"

#include <gtest/gtest.h>

#include "src/xml/builder.h"
#include "src/xml/serializer.h"

namespace svx {
namespace {

std::unique_ptr<Document> MustParse(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(DocumentBuilder, SingleNode) {
  DocumentBuilder b;
  b.StartElement("a");
  b.EndElement();
  std::unique_ptr<Document> d = b.Finish();
  EXPECT_EQ(d->size(), 1);
  EXPECT_EQ(d->label(d->root()), "a");
  EXPECT_FALSE(d->has_value(d->root()));
  EXPECT_EQ(d->parent(d->root()), kInvalidNode);
  EXPECT_EQ(d->depth(d->root()), 1);
}

TEST(DocumentBuilder, StructureAndValues) {
  std::unique_ptr<Document> d = MustParse("a(b=1 c(d=2 e) b)");
  ASSERT_EQ(d->size(), 6);
  NodeIndex a = d->root();
  std::vector<NodeIndex> kids = d->children(a);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(d->label(kids[0]), "b");
  EXPECT_EQ(d->value(kids[0]), "1");
  EXPECT_EQ(d->label(kids[1]), "c");
  EXPECT_EQ(d->label(kids[2]), "b");
  EXPECT_FALSE(d->has_value(kids[2]));
  std::vector<NodeIndex> ckids = d->children(kids[1]);
  ASSERT_EQ(ckids.size(), 2u);
  EXPECT_EQ(d->value(ckids[0]), "2");
}

TEST(Document, PreorderIntervalsGiveAncestry) {
  std::unique_ptr<Document> d = MustParse("a(b(c(d)) e)");
  NodeIndex a = 0;
  NodeIndex b = 1;
  NodeIndex c = 2;
  NodeIndex dd = 3;
  NodeIndex e = 4;
  EXPECT_TRUE(d->IsAncestor(a, dd));
  EXPECT_TRUE(d->IsAncestor(b, dd));
  EXPECT_TRUE(d->IsAncestor(c, dd));
  EXPECT_FALSE(d->IsAncestor(dd, c));
  EXPECT_FALSE(d->IsAncestor(b, e));
  EXPECT_FALSE(d->IsAncestor(a, a));
  EXPECT_TRUE(d->IsParent(c, dd));
  EXPECT_FALSE(d->IsParent(b, dd));
}

TEST(Document, OrdPathsMatchPaperNumbering) {
  std::unique_ptr<Document> d = MustParse("a(b c(b d) d)");
  EXPECT_EQ(d->ord_path(0).ToString(), "1");
  EXPECT_EQ(d->ord_path(1).ToString(), "1.1");
  EXPECT_EQ(d->ord_path(2).ToString(), "1.2");
  EXPECT_EQ(d->ord_path(3).ToString(), "1.2.1");
  EXPECT_EQ(d->ord_path(4).ToString(), "1.2.2");
  EXPECT_EQ(d->ord_path(5).ToString(), "1.3");
}

TEST(Document, FindByOrdPath) {
  std::unique_ptr<Document> d = MustParse("a(b c(b d) d)");
  for (NodeIndex n = 0; n < d->size(); ++n) {
    EXPECT_EQ(d->FindByOrdPath(d->ord_path(n)), n);
  }
  EXPECT_EQ(d->FindByOrdPath(OrdPath::FromString("1.9")), kInvalidNode);
  EXPECT_EQ(d->FindByOrdPath(OrdPath::FromString("2")), kInvalidNode);
  EXPECT_EQ(d->FindByOrdPath(OrdPath()), kInvalidNode);
}

TEST(Document, DepthTracksLevels) {
  std::unique_ptr<Document> d = MustParse("a(b(c(d)))");
  EXPECT_EQ(d->depth(0), 1);
  EXPECT_EQ(d->depth(1), 2);
  EXPECT_EQ(d->depth(2), 3);
  EXPECT_EQ(d->depth(3), 4);
}

TEST(TreeNotation, QuotedValues) {
  std::unique_ptr<Document> d = MustParse("a(b='hello world')");
  EXPECT_EQ(d->value(1), "hello world");
}

TEST(TreeNotation, RoundTrip) {
  const char* cases[] = {
      "a",
      "a(b c)",
      "a(b=1 c(d=2 e) b)",
      "site(regions(asia(item(name='x y' description))))",
  };
  for (const char* c : cases) {
    std::unique_ptr<Document> d = MustParse(c);
    EXPECT_EQ(ToTreeNotation(*d), c);
  }
}

TEST(TreeNotation, Errors) {
  EXPECT_FALSE(ParseTreeNotation("").ok());
  EXPECT_FALSE(ParseTreeNotation("a(").ok());
  EXPECT_FALSE(ParseTreeNotation("a()").ok());
  EXPECT_FALSE(ParseTreeNotation("a b").ok());
  EXPECT_FALSE(ParseTreeNotation("a(b='x)").ok());
  EXPECT_FALSE(ParseTreeNotation("1a").ok());
}

TEST(Document, NodesOnPathBeforeAnnotationIsEmpty) {
  std::unique_ptr<Document> d = MustParse("a(b)");
  EXPECT_FALSE(d->has_path_annotation());
  EXPECT_TRUE(d->nodes_on_path(0).empty());
  EXPECT_EQ(d->path_id(0), -1);
}

}  // namespace
}  // namespace svx
