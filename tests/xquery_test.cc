#include <gtest/gtest.h>

#include "src/pattern/pattern_printer.h"
#include "src/xquery/xquery_parser.h"
#include "src/xquery/xquery_translator.h"

namespace svx {
namespace {

std::string Translate(std::string_view q, const std::string& root = "*") {
  Result<Pattern> p = XQueryToPattern(q, root);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (!p.ok()) return "";
  return PatternToString(*p);
}

TEST(XQueryParser, SimpleFor) {
  Result<std::unique_ptr<XqFlwr>> f =
      ParseXQuery("for $x in doc(\"a.xml\")//item return $x");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->var, "x");
  EXPECT_EQ((*f)->document, "a.xml");
  ASSERT_EQ((*f)->steps.size(), 1u);
  EXPECT_EQ((*f)->steps[0].label, "item");
  EXPECT_EQ((*f)->steps[0].axis, Axis::kDescendant);
}

TEST(XQueryParser, StepsAndPredicates) {
  Result<std::unique_ptr<XqFlwr>> f = ParseXQuery(
      "for $x in doc(\"a\")//item[//mail]/name return $x/text()");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_EQ((*f)->steps.size(), 2u);
  ASSERT_EQ((*f)->steps[0].preds.size(), 1u);
  EXPECT_EQ((*f)->steps[0].preds[0].path[0].label, "mail");
  EXPECT_TRUE((*f)->returns[0].text);
}

TEST(XQueryParser, WhereClause) {
  Result<std::unique_ptr<XqFlwr>> f = ParseXQuery(
      "for $x in doc(\"a\")//item where $x/quantity/text() > 5 "
      "return $x/name");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_EQ((*f)->where.size(), 1u);
  EXPECT_EQ((*f)->where[0].cmp, '>');
  EXPECT_EQ((*f)->where[0].value, 5);
  EXPECT_TRUE((*f)->where[0].text);
}

TEST(XQueryParser, Errors) {
  EXPECT_FALSE(ParseXQuery("").ok());
  EXPECT_FALSE(ParseXQuery("for x in doc(\"a\")//b return $x").ok());
  EXPECT_FALSE(ParseXQuery("for $x in doc(\"a\") return $x").ok());
  EXPECT_FALSE(ParseXQuery("for $x in doc(\"a\")//b").ok());
  EXPECT_FALSE(
      ParseXQuery("for $x in doc(\"a\")//b return <r>{$x}</s>").ok());
}

TEST(XQueryTranslator, SimpleForReturnsContent) {
  EXPECT_EQ(Translate("for $x in doc(\"a\")//item return $x"),
            "*(//item{id,c})");
}

TEST(XQueryTranslator, TextReturnsValue) {
  EXPECT_EQ(
      Translate("for $x in doc(\"a\")//item return "
                "<r>{ $x/name/text() }</r>"),
      "*(//item{id}(?/name{v}))");
}

TEST(XQueryTranslator, ExistencePredicateBecomesBranch) {
  EXPECT_EQ(Translate("for $x in doc(\"a\")//item[//mail] return "
                      "<r>{ $x/name/text() }</r>"),
            "*(//item{id}(//mail ?/name{v}))");
}

TEST(XQueryTranslator, WhereValueComparison) {
  EXPECT_EQ(Translate("for $x in doc(\"a\")//item "
                      "where $x/quantity/text() > 5 "
                      "return <r>{ $x/name/text() }</r>"),
            "*(//item{id}(/quantity[v>5] ?/name{v}))");
}

TEST(XQueryTranslator, PaperIntroExample) {
  // §1: for $x in doc("XMark.xml")//item[//mail] return
  //       <res>{$x/name/text(), for $y in $x//listitem return
  //             <key>{$y//keyword}</key>}</res>
  std::string p = Translate(
      "for $x in doc(\"XMark.xml\")//item[.//mail] return "
      "<res>{ $x/name/text(), "
      "for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>",
      "site");
  // The nested FLWR becomes an optional nested edge; the inner bare path
  // stores content; the for variables store IDs.
  EXPECT_EQ(p,
            "site(//item{id}(//mail ?/name{v} "
            "?n//listitem{id}(?//keyword{c})))");
}

TEST(XQueryTranslator, RootLabelOverride) {
  EXPECT_EQ(Translate("for $x in doc(\"a\")/regions return $x", "site"),
            "site(/regions{id,c})");
}

TEST(XQueryTranslator, StepValuePredicate) {
  EXPECT_EQ(Translate("for $x in doc(\"a\")//person[@id=0] return "
                      "<r>{ $x/name/text() }</r>"),
            "*(//person{id}(/@id[v=0] ?/name{v}))");
}

TEST(XQueryTranslator, UnknownVariableFails) {
  Result<Pattern> p =
      XQueryToPattern("for $x in doc(\"a\")//b return $y/name");
  EXPECT_FALSE(p.ok());
}

TEST(XQueryTranslator, NestedForMustUseOuterVariable) {
  Result<Pattern> p = XQueryToPattern(
      "for $x in doc(\"a\")//b return "
      "<r>{ for $y in doc(\"a\")//c return $y }</r>");
  EXPECT_FALSE(p.ok());
}

}  // namespace
}  // namespace svx
