#include "src/viewstore/delta_log.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/pattern/pattern_parser.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/util/fileio.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

ViewCatalogOptions WalOptions(const std::string& dir) {
  ViewCatalogOptions opts;
  opts.dir = dir;
  opts.enable_delta_log = true;
  return opts;
}

/// A scratch store directory, removed on destruction.
struct TempDir {
  TempDir() {
    path = (fs::temp_directory_path() /
            ("svx_delta_log_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int counter;
  std::string path;
};
int TempDir::counter = 0;

WalRecord MakeRecord(uint64_t epoch) {
  WalRecord r;
  r.epoch = epoch;
  WalViewDelta d;
  d.view = "V" + std::to_string(epoch);
  d.delete_keys = {"key-a", std::string("bin\0key", 7)};
  d.inserts_bytes = "opaque-extent-bytes-" + std::to_string(epoch);
  r.views.push_back(d);
  r.views.push_back(WalViewDelta{"W", {}, ""});
  return r;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].view, b.views[i].view);
    EXPECT_EQ(a.views[i].delete_keys, b.views[i].delete_keys);
    EXPECT_EQ(a.views[i].inserts_bytes, b.views[i].inserts_bytes);
  }
}

// ---------------------------------------------------------------------------
// Segment format
// ---------------------------------------------------------------------------

TEST(DeltaLog, SegmentNamingRoundTrips) {
  EXPECT_EQ(DeltaLog::SegmentFileName(7), "wal.7.log");
  uint64_t gen = 0;
  EXPECT_TRUE(DeltaLog::ParseSegmentFileName("wal.42.log", &gen));
  EXPECT_EQ(gen, 42u);
  EXPECT_FALSE(DeltaLog::ParseSegmentFileName("wal..log", &gen));
  EXPECT_FALSE(DeltaLog::ParseSegmentFileName("wal.x.log", &gen));
  EXPECT_FALSE(DeltaLog::ParseSegmentFileName("manifest.txt", &gen));
  EXPECT_FALSE(DeltaLog::ParseSegmentFileName("wal.1.extent", &gen));
}

TEST(DeltaLog, PayloadRoundTrips) {
  WalRecord r = MakeRecord(12);
  std::string bytes = DeltaLog::EncodePayload(r);
  Result<WalRecord> back = DeltaLog::DecodePayload(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectRecordsEqual(r, *back);
  // Truncated payloads must fail to parse, never read out of bounds.
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() - 1}) {
    EXPECT_FALSE(DeltaLog::DecodePayload(bytes.substr(0, cut)).ok());
  }
}

TEST(DeltaLog, AppendReadAndReopenAppend) {
  TempDir dir;
  {
    Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir.path, 3);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->generation(), 3u);
    ASSERT_TRUE((*log)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(2)).ok());
    EXPECT_EQ((*log)->records_appended(), 2);
    EXPECT_GT((*log)->bytes_appended(), 0);
  }
  // Reopening appends to the existing segment without rewriting the header.
  {
    Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir.path, 3);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE((*log)->Append(MakeRecord(3)).ok());
  }
  Result<std::vector<WalRecord>> records = DeltaLog::ReadSegment(
      (fs::path(dir.path) / "wal.3.log").string(), /*truncate_torn_tail=*/false);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ExpectRecordsEqual(MakeRecord(static_cast<uint64_t>(i + 1)),
                       (*records)[i]);
  }
}

TEST(DeltaLog, TornTailIsTruncatedOrRejected) {
  TempDir dir;
  {
    Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir.path, 1);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(2)).ok());
  }
  const std::string path = (fs::path(dir.path) / "wal.1.log").string();
  const uintmax_t intact_size = fs::file_size(path);
  // Simulate a crash mid-append: a partial frame at the tail.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00\xde\xad", 6);
  }
  // Strict mode refuses the segment.
  EXPECT_FALSE(DeltaLog::ReadSegment(path, /*truncate_torn_tail=*/false).ok());
  // Tolerant mode returns the valid prefix and truncates the file in place.
  Result<std::vector<WalRecord>> records =
      DeltaLog::ReadSegment(path, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(fs::file_size(path), intact_size);
  // After truncation the segment is clean again, even in strict mode.
  EXPECT_TRUE(DeltaLog::ReadSegment(path, /*truncate_torn_tail=*/false).ok());
}

TEST(DeltaLog, CorruptChecksumIsTornTail) {
  TempDir dir;
  {
    Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir.path, 1);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(2)).ok());
  }
  const std::string path = (fs::path(dir.path) / "wal.1.log").string();
  // Flip one byte in the LAST record's payload: checksum mismatch.
  Result<std::string> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted.back() ^= 0x5a;
  ASSERT_TRUE(WriteFileBytes(path, corrupted).ok());
  Result<std::vector<WalRecord>> records =
      DeltaLog::ReadSegment(path, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 1u);  // only the intact first record survives
}

TEST(DeltaLog, ReplayFiltersByGenerationAndEpoch) {
  TempDir dir;
  {
    Result<std::unique_ptr<DeltaLog>> g1 = DeltaLog::Open(dir.path, 1);
    ASSERT_TRUE(g1.ok());
    ASSERT_TRUE((*g1)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*g1)->Append(MakeRecord(2)).ok());
    Result<std::unique_ptr<DeltaLog>> g2 = DeltaLog::Open(dir.path, 2);
    ASSERT_TRUE(g2.ok());
    ASSERT_TRUE((*g2)->Append(MakeRecord(3)).ok());
    ASSERT_TRUE((*g2)->Append(MakeRecord(4)).ok());
  }
  // Generation floor 2 skips segment 1 entirely; epoch floor 3 drops the
  // already-checkpointed record 3.
  Result<std::vector<WalRecord>> records = DeltaLog::Replay(dir.path, 2, 3);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 4u);
  // Floor 1, epoch 0: everything, in generation order.
  records = DeltaLog::Replay(dir.path, 1, 0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0].epoch, 1u);
  EXPECT_EQ((*records)[3].epoch, 4u);
}

TEST(DeltaLog, TornBytesInOlderSegmentFailReplay) {
  TempDir dir;
  {
    Result<std::unique_ptr<DeltaLog>> g1 = DeltaLog::Open(dir.path, 1);
    ASSERT_TRUE(g1.ok());
    ASSERT_TRUE((*g1)->Append(MakeRecord(1)).ok());
    Result<std::unique_ptr<DeltaLog>> g2 = DeltaLog::Open(dir.path, 2);
    ASSERT_TRUE(g2.ok());
    ASSERT_TRUE((*g2)->Append(MakeRecord(2)).ok());
  }
  // A torn tail is only legal in the newest segment: damage segment 1.
  {
    std::ofstream f((fs::path(dir.path) / "wal.1.log").string(),
                    std::ios::binary | std::ios::app);
    f.write("\x01", 1);
  }
  EXPECT_FALSE(DeltaLog::Replay(dir.path, 1, 0).ok());
  // Replay from floor 2 never touches the damaged segment.
  EXPECT_TRUE(DeltaLog::Replay(dir.path, 2, 0).ok());
}

TEST(DeltaLog, SweepRemovesRetiredSegments) {
  TempDir dir;
  for (uint64_t gen : {1u, 2u, 4u}) {
    Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir.path, gen);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeRecord(gen)).ok());
  }
  EXPECT_EQ(DeltaLog::SweepSegments(dir.path, 4), 2);
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "wal.1.log"));
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "wal.2.log"));
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "wal.4.log"));
  EXPECT_EQ(DeltaLog::SweepSegments(dir.path, 4), 0);
}

// ---------------------------------------------------------------------------
// ViewCatalog integration: WAL-mode maintenance, recovery, checkpointing
// ---------------------------------------------------------------------------

/// Applies `n` appends of item subtrees through the catalog, returning the
/// documents (kept alive: extents reference them).
std::vector<std::unique_ptr<Document>> ApplyInserts(ViewCatalog* catalog,
                                                    const Document* base,
                                                    int n) {
  std::vector<std::unique_ptr<Document>> history;
  const Document* cur = base;
  for (int i = 0; i < n; ++i) {
    std::unique_ptr<Document> sub =
        Doc("item(name=fresh" + std::to_string(i) + ")");
    Result<UpdateResult> up = InsertSubtree(*cur, OrdPath::Root(), *sub);
    EXPECT_TRUE(up.ok()) << up.status().ToString();
    EXPECT_TRUE(catalog->ApplyUpdate(up->delta).ok());
    history.push_back(std::move(up->doc));
    cur = history.back().get();
  }
  return history;
}

TEST(DeltaLogCatalog, MaintenanceAppendsAndRecoveryReplays) {
  TempDir dir;
  std::unique_ptr<Document> base =
      Doc("site(item(name=a) item(name=b) item(name=c))");
  std::vector<std::unique_ptr<Document>> history;
  {
    ViewCatalog catalog(WalOptions(dir.path));
    ASSERT_TRUE(catalog
                    .Materialize({"names",
                                  MustParsePattern("site(/item{id}(/name{id,v}))")},
                                 *base)
                    .ok());
    EXPECT_EQ(catalog.wal_depth(), 0);  // Materialize checkpoints
    history = ApplyInserts(&catalog, base.get(), 3);
    EXPECT_EQ(catalog.wal_depth(), 3);  // three passes, three records
    // No Save(): destruction is the crash.
  }
  const Document* final_doc = history.back().get();
  ViewCatalog recovered(WalOptions(dir.path));
  ASSERT_TRUE(recovered.Load(final_doc).ok());
  const StoredView* v = recovered.Find("names");
  ASSERT_NE(v, nullptr);
  Table fresh = MaterializeView(v->def.pattern, "names", *final_doc);
  fresh.SortRowsCanonical();
  EXPECT_EQ(SerializeExtent(v->extent()), SerializeExtent(fresh));
  // Recovery keeps the log; only a checkpoint truncates it.
  EXPECT_EQ(recovered.wal_depth(), 3);
  ASSERT_TRUE(recovered.Save().ok());
  EXPECT_EQ(recovered.wal_depth(), 0);
  // After the checkpoint a re-load needs no replay and still agrees.
  ViewCatalog clean(WalOptions(dir.path));
  ASSERT_TRUE(clean.Load(final_doc).ok());
  EXPECT_EQ(clean.wal_depth(), 0);
  EXPECT_EQ(SerializeExtent(clean.Find("names")->extent()),
            SerializeExtent(fresh));
}

TEST(DeltaLogCatalog, LoadSweepsOrphanSegmentsAndToleratesTornTail) {
  TempDir dir;
  std::unique_ptr<Document> base = Doc("site(item(name=a) item(name=b))");
  std::vector<std::unique_ptr<Document>> history;
  {
    ViewCatalog catalog(WalOptions(dir.path));
    ASSERT_TRUE(catalog
                    .Materialize({"names",
                                  MustParsePattern("site(/item{id}(/name{v}))")},
                                 *base)
                    .ok());
    history = ApplyInserts(&catalog, base.get(), 2);
  }
  // Plant an orphaned segment below the manifest's floor (a crash between
  // a checkpoint's manifest flip and its sweep leaves exactly this), and
  // tear the live segment's tail (a crash mid-append).
  ASSERT_TRUE(
      WriteFileBytes((fs::path(dir.path) / "wal.1.log").string(), "junk").ok());
  fs::path live;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    uint64_t gen = 0;
    if (DeltaLog::ParseSegmentFileName(entry.path().filename().string(),
                                       &gen) &&
        gen > 1) {
      live = entry.path();
    }
  }
  ASSERT_FALSE(live.empty());
  const uintmax_t intact_size = fs::file_size(live);
  {
    std::ofstream f(live.string(), std::ios::binary | std::ios::app);
    f.write("\x99\x00\x00", 3);
  }
  const Document* final_doc = history.back().get();
  ViewCatalog recovered(WalOptions(dir.path));
  ASSERT_TRUE(recovered.Load(final_doc).ok());
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "wal.1.log"));  // orphan swept
  EXPECT_EQ(fs::file_size(live), intact_size);  // torn tail truncated
  Table fresh = MaterializeView(recovered.Find("names")->def.pattern, "names",
                                *final_doc);
  fresh.SortRowsCanonical();
  EXPECT_EQ(SerializeExtent(recovered.Find("names")->extent()),
            SerializeExtent(fresh));
}

TEST(DeltaLogCatalog, BatchPublishesOneEpochAndMatchesSerial) {
  std::unique_ptr<Document> base =
      Doc("site(item(name=a) item(name=b) item(name=c))");
  ViewDef def{"names", MustParsePattern("site(/item{id}(/name{id,v}))")};

  // Build one chain of three deltas off `base`.
  std::vector<std::unique_ptr<Document>> history;
  std::vector<DocumentDelta> deltas;
  const Document* cur = base.get();
  for (int i = 0; i < 3; ++i) {
    Result<UpdateResult> up = (i == 1)
                                  ? DeleteSubtree(*cur, cur->ord_path(
                                        cur->children(cur->root()).front()))
                                  : InsertSubtree(*cur, OrdPath::Root(),
                                                  *Doc("item(name=x" +
                                                       std::to_string(i) +
                                                       ")"));
    ASSERT_TRUE(up.ok()) << up.status().ToString();
    deltas.push_back(up->delta);
    history.push_back(std::move(up->doc));
    cur = history.back().get();
  }

  ViewCatalog serial;
  ASSERT_TRUE(serial.Materialize(def, *base).ok());
  for (const DocumentDelta& d : deltas) {
    ASSERT_TRUE(serial.ApplyUpdate(d).ok());
  }

  ViewCatalog batched;
  ASSERT_TRUE(batched.Materialize(def, *base).ok());
  const uint64_t epoch_before = batched.Snapshot()->epoch();
  MaintenanceStats ms;
  ASSERT_TRUE(batched.ApplyUpdateBatch(deltas, nullptr, nullptr, &ms).ok());
  EXPECT_EQ(batched.Snapshot()->epoch(), epoch_before + 1);  // ONE epoch
  EXPECT_EQ(ms.deltas_applied, 3);

  EXPECT_EQ(SerializeExtent(batched.Find("names")->extent()),
            SerializeExtent(serial.Find("names")->extent()));
}

}  // namespace
}  // namespace svx
