// The paper's Figure 1 world, reconstructed literally: the XMark fragment
// of §1 (document, its summary, views V1 and V2), and the claims the
// introduction makes about it.
#include <gtest/gtest.h>

#include "src/algebra/executor.h"
#include "src/containment/containment.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/xml/parser.h"

namespace svx {
namespace {

// The Figure 1(a) document fragment (values abridged, structure exact):
// two items under /site/regions/asia; the first has a mailbox with two
// mails and a parlist with keyword/text content; the second has a
// single-listitem parlist and a mailbox with one mail.
constexpr const char* kFigure1Xml = R"(
<site><regions><asia>
  <item>
    <name>Columbus pen</name>
    <mailbox>
      <mail><from>bill@aol.com</from><to>jane@u2.com</to>
            <date>3/4/2006</date><text>Hello,...</text></mail>
      <mail><from>jim@gmail.com</from><to>bob@u2.com</to>
            <date>4/6/2006</date><text>Can you...</text></mail>
    </mailbox>
    <description><parlist>
      <listitem><keyword>Columbus</keyword>
        <text>Italic <keyword>fountain pen</keyword></text></listitem>
      <listitem><text>Stainless steel, <bold>gold plated</bold></text>
        </listitem>
    </parlist></description>
  </item>
  <item>
    <name>Monteverdi pen</name>
    <description><parlist>
      <listitem><text>Monteverdi Invincia pen</text></listitem>
    </parlist></description>
    <mailbox>
      <mail><from>a@b.c</from><to>d@e.f</to>
            <date>1/1/2006</date><text>hi</text></mail>
    </mailbox>
  </item>
</asia></regions></site>
)";

class Figure1World : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<Document>> d = ParseXml(kFigure1Xml);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(*d);
    summary_ = SummaryBuilder::Build(doc_.get());
  }

  std::unique_ptr<Document> doc_;
  std::unique_ptr<Summary> summary_;
};

TEST_F(Figure1World, SummaryMatchesFigure1b) {
  // Figure 1(b): the summary contains exactly the paths of the fragment.
  for (const char* path :
       {"/site/regions/asia/item/name", "/site/regions/asia/item/mailbox",
        "/site/regions/asia/item/mailbox/mail/from",
        "/site/regions/asia/item/description/parlist/listitem/keyword",
        "/site/regions/asia/item/description/parlist/listitem/text/bold",
        "/site/regions/asia/item/description/parlist/listitem/text/"
        "keyword"}) {
    EXPECT_NE(summary_->Resolve(path), kInvalidPath) << path;
  }
  EXPECT_EQ(summary_->Resolve("/site/regions/asia/item/bold"), kInvalidPath);
}

TEST_F(Figure1World, V1ProducesNullPaddedNestedTable) {
  // Figure 1(c): V1 stores, per /regions//* node with a description/parlist,
  // its ID, the grouped content of its listitems, and an optional bold
  // value. The Monteverdi item's bold column is ⊥ (the n21 row of the
  // paper: "V is bound to null").
  Pattern v1 = MustParsePattern(
      "site(/regions(//*{id}(/description(/parlist("
      "n/listitem{c} ?//bold{v})))))");
  Table t = MaterializeView(v1, "V1", *doc_);
  ASSERT_EQ(t.NumRows(), 2);
  // Row 1 (Columbus item): two listitems grouped, bold = "gold plated".
  EXPECT_EQ(t.row(0)[1].AsTable().NumRows(), 2);
  EXPECT_EQ(t.row(0)[2].AsString(), "gold plated");
  // Row 2 (Monteverdi item): one listitem, ⊥ bold.
  EXPECT_EQ(t.row(1)[1].AsTable().NumRows(), 1);
  EXPECT_TRUE(t.row(1)[2].IsNull());
}

TEST_F(Figure1World, SummaryProvesStarIsItem) {
  // §1 "Summary-based rewriting", first bullet: although V1's pattern does
  // not say "item", the summary guarantees all /regions children with
  // description children are items.
  Result<bool> c = IsContained(
      MustParsePattern("site(/regions(//*{id}(/description)))"),
      MustParsePattern("site(//item{id})"), *summary_);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
}

TEST_F(Figure1World, SummaryLocatesKeywordsUnderListitems) {
  // Second bullet: the summary implies all /regions//item//keyword nodes
  // are inside listitems, so keyword data is reachable from listitem
  // content.
  Result<bool> c = IsContained(
      MustParsePattern("site(//item(//keyword{id}))"),
      MustParsePattern("site(//listitem(//keyword{id}))"), *summary_);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
}

TEST_F(Figure1World, ListitemPathsCoincide) {
  // Third bullet: /regions//item//listitem and
  // /regions//*/description/parlist/listitem deliver the same data here.
  Result<bool> eq = AreEquivalent(
      MustParsePattern("site(/regions(//item(//listitem{id})))"),
      MustParsePattern(
          "site(/regions(//*(/description(/parlist(/listitem{id})))))"),
      *summary_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(Figure1World, MailDescendantCheckNeeded) {
  // §1 "Summary-based optimization": in this fragment every item has a
  // mail descendant, so the enhanced summary proves items ≡ items-with-
  // mail and V1 "only stores useful data, and can be used directly".
  Result<bool> eq = AreEquivalent(
      MustParsePattern("site(//item{id})"),
      MustParsePattern("site(//item{id}(//mail))"), *summary_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  // Without the integrity constraints, the check is required.
  ContainmentOptions plain;
  plain.model.use_strong_edges = false;
  Result<bool> weak = IsContained(
      MustParsePattern("site(//item{id})"),
      MustParsePattern("site(//item{id}(//mail))"), *summary_, plain);
  ASSERT_TRUE(weak.ok());
  EXPECT_FALSE(*weak);
}

TEST_F(Figure1World, V1V2CombineViaStructuralIds) {
  // §1 "Exploiting ID properties": V1 and V2 have no common stored node,
  // yet the query combining names and listitem data is answered by joining
  // them on the structural IDs.
  std::vector<ViewDef> defs = {
      {"V1", MustParsePattern("site(//item{id}(/description{c}))")},
      {"V2", MustParsePattern("site(//item{id}(/name{v}))")},
  };
  std::vector<MaterializedView> views = MaterializeAll(defs, *doc_);
  Catalog catalog;
  for (const MaterializedView& v : views) {
    catalog.Register(v.def.name, &v.extent);
  }
  Rewriter rewriter(*summary_);
  for (const ViewDef& d : defs) rewriter.AddView(d);
  Pattern q = MustParsePattern("site(//item(/name{v} /description{c}))");
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
  ASSERT_TRUE(rws.ok());
  ASSERT_FALSE(rws->empty());
  Table reference = MaterializeView(q, "Q", *doc_);
  ASSERT_EQ(reference.NumRows(), 2);
  for (const Rewriting& r : *rws) {
    Result<Table> t = Execute(*r.plan, catalog);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->EqualsIgnoringOrder(reference)) << r.compact;
  }
}

TEST_F(Figure1World, ParentIdDerivationFigure2Style) {
  // §1: "some ID schemes also allow inferring an element's ID from the ID
  // of one of its children" — a view storing parlist IDs can answer a
  // query on description nodes.
  std::vector<ViewDef> defs = {
      {"VP", MustParsePattern("site(//parlist{id})")},
  };
  std::vector<MaterializedView> views = MaterializeAll(defs, *doc_);
  Catalog catalog;
  catalog.Register("VP", &views[0].extent);
  Rewriter rewriter(*summary_);
  rewriter.AddView(defs[0]);
  Pattern q = MustParsePattern("site(//item(/description{id}))");
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
  ASSERT_TRUE(rws.ok());
  ASSERT_FALSE(rws->empty());
  Table reference = MaterializeView(q, "Q", *doc_);
  for (const Rewriting& r : *rws) {
    Result<Table> t = Execute(*r.plan, catalog);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->EqualsIgnoringOrder(reference)) << r.compact;
  }
}

}  // namespace
}  // namespace svx
