#include "src/viewstore/sharded_catalog.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/shard_router.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

struct TempDir {
  TempDir() {
    path = (fs::temp_directory_path() /
            ("svx_sharded_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int counter;
  std::string path;
};
int TempDir::counter = 0;

constexpr const char* kBaseDoc =
    "site(item(name=i0 keyword=k0) person(name=p0) item(name=i1)"
    " person(name=p1) item(name=i2 keyword=k2) item(name=i3))";

// The sharded (anchored) views plus one global (root-anchored) view.
constexpr const char* kItemNames = "site(//item{id}(/name{id,v}))";
constexpr const char* kItemKeywords = "site(//item{id}(?//keyword{v}))";
constexpr const char* kPersonNames = "site{id}(//person(/name{v}))";

/// Sorts both tables canonically and compares row-by-row with
/// CompareTuples, so the check is independent of column naming.
void ExpectSameRows(Table a, Table b, const std::string& what) {
  a.SortRowsCanonical();
  b.SortRowsCanonical();
  ASSERT_EQ(a.rows().size(), b.rows().size()) << what;
  for (size_t i = 0; i < a.rows().size(); ++i) {
    EXPECT_EQ(CompareTuples(a.rows()[i], b.rows()[i]), 0)
        << what << " row " << i;
  }
}

/// Concatenates the per-shard extents of `name` into one canonical table.
Table MergeShardExtents(ShardedCatalog* catalog, const std::string& name) {
  const StoredView* first = catalog->shard_catalog(0)->Find(name);
  EXPECT_NE(first, nullptr);
  Table merged(first->extent().schema());
  for (int i = 0; i < catalog->num_shards(); ++i) {
    const StoredView* v = catalog->shard_catalog(i)->Find(name);
    EXPECT_NE(v, nullptr);
    for (const Tuple& t : v->extent().rows()) merged.AddRow(t);
  }
  merged.SortRowsCanonical();
  return merged;
}

/// Single-catalog reference execution: rewrite through the snapshot's
/// caches and execute the cheapest plan (the bench reader's idiom).
Result<Table> RewriteExecute(const CatalogSnapshot& snap, const Pattern& q) {
  RewriterOptions opts;
  opts.max_results = 1;
  opts.cost_model = &snap.cost_model();
  opts.memo = snap.containment_memo();
  std::shared_ptr<const ViewIndex> index =
      snap.ViewIndexFor(*snap.summary(), opts.expansion);
  opts.shared_view_index = index.get();
  Rewriter rewriter(*snap.summary(), opts);
  for (const auto& v : snap.views()) rewriter.AddView(v->def);
  RewriteStats stats;
  Result<std::vector<Rewriting>> rws =
      CachedRewrite(snap.rewrite_cache(), &rewriter, q, &stats);
  if (!rws.ok()) return rws.status();
  if (rws->empty()) return Status::NotFound("no rewriting");
  return Execute(*rws->front().plan, snap.ExecutorCatalog());
}

/// A chained random update stream off `base`: item inserts (appended and
/// careted mid-sibling, so new ids land in every shard), keyword inserts
/// below existing top-level subtrees, and top-level deletes.
struct Stream {
  std::vector<std::shared_ptr<const Document>> docs;        // docs[0] = base
  std::vector<std::shared_ptr<const Summary>> summaries;    // aligned
  std::vector<DocumentDelta> deltas;                        // deltas[i]: i->i+1
};

Stream BuildStream(int ops, uint32_t seed) {
  Stream s;
  std::unique_ptr<Document> base = Doc(kBaseDoc);
  std::shared_ptr<Summary> base_summary(SummaryBuilder::Build(base.get()));
  s.docs.emplace_back(std::move(base));
  s.summaries.push_back(base_summary);

  std::mt19937 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const Document& cur = *s.docs.back();
    std::vector<NodeIndex> top = cur.children(cur.root());
    Result<UpdateResult> up = [&]() -> Result<UpdateResult> {
      switch (rng() % 4) {
        case 0: {  // append a new item
          std::unique_ptr<Document> sub =
              Doc("item(name=n" + std::to_string(i) + ")");
          return InsertSubtree(cur, OrdPath::Root(), *sub);
        }
        case 1: {  // caret a new item before a random sibling
          std::unique_ptr<Document> sub =
              Doc("item(name=c" + std::to_string(i) + " keyword=kc" +
                  std::to_string(i) + ")");
          OrdPath before = cur.ord_path(top[rng() % top.size()]);
          return InsertSubtree(cur, OrdPath::Root(), *sub, &before);
        }
        case 2: {  // grow an existing top-level subtree
          std::unique_ptr<Document> sub = Doc("keyword=z" + std::to_string(i));
          return InsertSubtree(cur, cur.ord_path(top[rng() % top.size()]),
                               *sub);
        }
        default: {  // delete a top-level subtree (keep a few around)
          if (top.size() <= 3) {
            std::unique_ptr<Document> sub =
                Doc("item(name=d" + std::to_string(i) + ")");
            return InsertSubtree(cur, OrdPath::Root(), *sub);
          }
          return DeleteSubtree(cur, cur.ord_path(top[rng() % top.size()]));
        }
      }
    }();
    EXPECT_TRUE(up.ok()) << up.status().ToString();
    s.deltas.push_back(up->delta);
    std::shared_ptr<Document> next(std::move(up->doc));
    s.summaries.emplace_back(SummaryBuilder::Build(next.get()));
    s.docs.push_back(std::move(next));
  }
  return s;
}

Status MaterializeAll(ShardedCatalog* catalog, const Document& doc) {
  SVX_RETURN_IF_ERROR(catalog->Materialize(
      {"item_names", MustParsePattern(kItemNames)}, doc));
  SVX_RETURN_IF_ERROR(catalog->Materialize(
      {"item_keywords", MustParsePattern(kItemKeywords)}, doc));
  return catalog->Materialize({"person_names", MustParsePattern(kPersonNames)},
                              doc);
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

TEST(ShardRouter, PartitionCapsAtTopLevelSubtreesAndBalances) {
  std::unique_ptr<Document> doc = Doc(kBaseDoc);  // 6 top-level subtrees
  ShardRouter r4 = ShardRouter::Partition(*doc, 4);
  EXPECT_EQ(r4.num_shards(), 4);
  ShardRouter r16 = ShardRouter::Partition(*doc, 16);
  EXPECT_LE(r16.num_shards(), 6);
  EXPECT_EQ(ShardRouter::Partition(*doc, 1).num_shards(), 1);
  // Every shard of the 4-way cut owns at least one top-level subtree.
  std::vector<int> owned(4, 0);
  for (NodeIndex child : doc->children(doc->root())) {
    ++owned[static_cast<size_t>(r4.Route(doc->ord_path(child)))];
  }
  for (int count : owned) EXPECT_GE(count, 1);
}

TEST(ShardRouter, RoutesTotallyAndByContainingSubtree) {
  std::unique_ptr<Document> doc = Doc(kBaseDoc);
  ShardRouter router = ShardRouter::Partition(*doc, 4);
  // The root precedes every boundary: shard 0.
  EXPECT_EQ(router.Route(doc->ord_path(doc->root())), 0);
  // A descendant routes with the top-level subtree containing it, and
  // shard assignment is monotone in document order.
  int prev = 0;
  for (NodeIndex child : doc->children(doc->root())) {
    int shard = router.Route(doc->ord_path(child));
    EXPECT_GE(shard, prev);
    prev = shard;
    for (NodeIndex grandchild : doc->children(child)) {
      EXPECT_EQ(router.Route(doc->ord_path(grandchild)), shard);
    }
  }
  EXPECT_EQ(prev, router.num_shards() - 1);
}

TEST(ShardRouter, SerializeRoundTrips) {
  std::unique_ptr<Document> doc = Doc(kBaseDoc);
  ShardRouter router = ShardRouter::Partition(*doc, 3);
  ShardRouter back = ShardRouter::Deserialize(router.Serialize());
  ASSERT_EQ(back.num_shards(), router.num_shards());
  for (size_t i = 0; i < router.boundaries().size(); ++i) {
    EXPECT_EQ(back.boundaries()[i].Compare(router.boundaries()[i]), 0);
  }
}

TEST(ShardRouter, AnchorAnalysis) {
  // Anchored on the item return id: partitionable.
  ViewAnchor a = AnalyzeViewAnchor(MustParsePattern(kItemNames), "v");
  EXPECT_TRUE(a.partitionable);
  EXPECT_GE(a.column, 0);
  // Optional edges below the anchor do not break partitionability.
  EXPECT_TRUE(
      AnalyzeViewAnchor(MustParsePattern(kItemKeywords), "v").partitionable);
  // The only id return is the pattern root: rows span every shard.
  EXPECT_FALSE(
      AnalyzeViewAnchor(MustParsePattern(kPersonNames), "v").partitionable);
  // No id return at all.
  EXPECT_FALSE(
      AnalyzeViewAnchor(MustParsePattern("site(//item(/name{v}))"), "v")
          .partitionable);
}

// ---------------------------------------------------------------------------
// ShardedCatalog
// ---------------------------------------------------------------------------

TEST(ShardedCatalog, PartitionablePlacementAndGlobalFallback) {
  Stream s = BuildStream(0, 1);
  ShardedCatalogOptions options;
  options.num_shards = 4;
  Result<std::unique_ptr<ShardedCatalog>> catalog =
      ShardedCatalog::Create(options, s.docs[0], s.summaries[0]);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_TRUE(MaterializeAll(catalog->get(), *s.docs[0]).ok());
  // Anchored views live in every shard, not in the global catalog.
  EXPECT_EQ((*catalog)->global_catalog()->Find("item_names"), nullptr);
  int total_rows = 0;
  for (int i = 0; i < (*catalog)->num_shards(); ++i) {
    const StoredView* v = (*catalog)->shard_catalog(i)->Find("item_names");
    ASSERT_NE(v, nullptr);
    total_rows += static_cast<int>(v->extent().rows().size());
  }
  EXPECT_EQ(total_rows, 4);  // one row per item in kBaseDoc
  // The root-anchored view lives only in the global catalog.
  EXPECT_NE((*catalog)->global_catalog()->Find("person_names"), nullptr);
  EXPECT_EQ((*catalog)->shard_catalog(0)->Find("person_names"), nullptr);
}

/// The differential property test: a random update stream applied to a
/// 4-shard catalog and to a single ViewCatalog must leave byte-identical
/// per-view extents (after the canonical sort) and identical query results.
TEST(ShardedCatalog, DifferentialAgainstSingleCatalog) {
  Stream s = BuildStream(32, 20260808);

  ViewCatalog single;
  single.BindDocument(s.docs[0], s.summaries[0]);
  for (const char* spec : {kItemNames, kItemKeywords, kPersonNames}) {
    std::string name = spec == kItemNames      ? "item_names"
                       : spec == kItemKeywords ? "item_keywords"
                                               : "person_names";
    ASSERT_TRUE(
        single.Materialize({name, MustParsePattern(spec)}, *s.docs[0]).ok());
  }

  ShardedCatalogOptions options;
  options.num_shards = 4;
  Result<std::unique_ptr<ShardedCatalog>> sharded =
      ShardedCatalog::Create(options, s.docs[0], s.summaries[0]);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE(MaterializeAll(sharded->get(), *s.docs[0]).ok());

  for (size_t i = 0; i < s.deltas.size(); ++i) {
    ASSERT_TRUE(
        single.ApplyUpdate(s.deltas[i], s.docs[i + 1], s.summaries[i + 1])
            .ok());
    ASSERT_TRUE((*sharded)
                    ->ApplyUpdate(s.deltas[i], s.docs[i + 1],
                                  s.summaries[i + 1])
                    .ok());
  }

  // Per-view extents: merged shard slices byte-identical to the single
  // catalog's canonical extent.
  for (const char* name : {"item_names", "item_keywords"}) {
    Table merged = MergeShardExtents(sharded->get(), name);
    EXPECT_EQ(SerializeExtent(merged),
              SerializeExtent(single.Find(name)->extent()))
        << name;
  }
  EXPECT_EQ(
      SerializeExtent((*sharded)->global_catalog()->Find("person_names")->extent()),
      SerializeExtent(single.Find("person_names")->extent()));

  // Query results: scatter-gather (serial and parallel) and the global
  // fallback all agree with the single catalog's rewrite+execute.
  std::shared_ptr<const CatalogSnapshot> ssnap = single.Snapshot();
  ShardedSnapshot sharded_snap = (*sharded)->Snapshot();
  for (const char* q :
       {"site(//item{id}(/name{v}))", "site(//item{id}(?//keyword{v}))",
        "site{id}(//person(/name{v}))"}) {
    Pattern query = MustParsePattern(q);
    Result<Table> expect = RewriteExecute(*ssnap, query);
    ASSERT_TRUE(expect.ok()) << q << ": " << expect.status().ToString();
    for (bool parallel : {false, true}) {
      Result<Table> got = sharded_snap.ExecuteQuery(query, parallel);
      ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
      ExpectSameRows(*got, *expect,
                     StrFormat("%s parallel=%d", q, parallel ? 1 : 0));
    }
  }
}

/// Async writer lanes coalesce a queued burst into few maintenance passes:
/// far fewer epochs published than deltas applied, same final extents.
TEST(ShardedCatalog, AsyncLanesCoalesceBursts) {
  const int kOps = 60;
  Stream s = BuildStream(kOps, 7);

  ShardedCatalogOptions options;
  options.num_shards = 4;
  options.async = true;
  Result<std::unique_ptr<ShardedCatalog>> catalog =
      ShardedCatalog::Create(options, s.docs[0], s.summaries[0]);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_TRUE((*catalog)
                  ->Materialize({"item_names", MustParsePattern(kItemNames)},
                                *s.docs[0])
                  .ok());

  const uint64_t epochs_before = (*catalog)->Snapshot().EpochSum();
  // The whole precomputed stream is enqueued in a tight loop, so lanes see
  // deep queues and drain them as coalesced batches.
  for (size_t i = 0; i < s.deltas.size(); ++i) {
    ASSERT_TRUE((*catalog)
                    ->ApplyUpdate(s.deltas[i], s.docs[i + 1],
                                  s.summaries[i + 1])
                    .ok());
  }
  ASSERT_TRUE((*catalog)->Flush().ok());
  const uint64_t epochs_after = (*catalog)->Snapshot().EpochSum();
  const uint64_t published = epochs_after - epochs_before;
  EXPECT_GE(published, 1u);
  EXPECT_LE(2 * published, static_cast<uint64_t>(kOps))
      << "expected >=2x batching, got " << published << " epochs for "
      << kOps << " deltas";

  Table fresh = MaterializeView(MustParsePattern(kItemNames), "item_names",
                                *s.docs.back());
  fresh.SortRowsCanonical();
  EXPECT_EQ(SerializeExtent(MergeShardExtents(catalog->get(), "item_names")),
            SerializeExtent(fresh));
}

/// Crash recovery: a WAL-enabled sharded store is dropped mid-stream
/// without Save(); Open() replays every shard's delta log back to the
/// exact extents.
TEST(ShardedCatalog, CrashRecoveryReplaysPerShardLogs) {
  TempDir dir;
  Stream s = BuildStream(24, 99);

  ShardedCatalogOptions options;
  options.num_shards = 4;
  options.dir = dir.path;
  options.enable_delta_log = true;
  options.async = true;
  {
    Result<std::unique_ptr<ShardedCatalog>> catalog =
        ShardedCatalog::Create(options, s.docs[0], s.summaries[0]);
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    ASSERT_TRUE(MaterializeAll(catalog->get(), *s.docs[0]).ok());
    for (size_t i = 0; i < s.deltas.size(); ++i) {
      ASSERT_TRUE((*catalog)
                      ->ApplyUpdate(s.deltas[i], s.docs[i + 1],
                                    s.summaries[i + 1])
                      .ok());
    }
    ASSERT_TRUE((*catalog)->Flush().ok());
    // Maintenance went to the logs, not the extent files.
    uint64_t wal_depth = 0;
    for (int i = 0; i < (*catalog)->num_shards(); ++i) {
      wal_depth += static_cast<uint64_t>(
          (*catalog)->shard_catalog(i)->wal_depth());
    }
    EXPECT_GT(wal_depth, 0u);
    // No Save(): dropping the catalog is the crash.
  }

  Result<std::unique_ptr<ShardedCatalog>> recovered =
      ShardedCatalog::Open(options, s.docs.back(), s.summaries.back());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (const char* spec : {kItemNames, kItemKeywords}) {
    std::string name = spec == kItemNames ? "item_names" : "item_keywords";
    Table fresh = MaterializeView(MustParsePattern(spec), name, *s.docs.back());
    fresh.SortRowsCanonical();
    EXPECT_EQ(SerializeExtent(MergeShardExtents(recovered->get(), name)),
              SerializeExtent(fresh))
        << name;
  }
  Table fresh_persons = MaterializeView(MustParsePattern(kPersonNames),
                                        "person_names", *s.docs.back());
  fresh_persons.SortRowsCanonical();
  EXPECT_EQ(
      SerializeExtent(
          (*recovered)->global_catalog()->Find("person_names")->extent()),
      SerializeExtent(fresh_persons));

  // The recovered store serves scatter-gather queries.
  ShardedSnapshot snap = (*recovered)->Snapshot();
  Result<Table> got =
      snap.ExecuteQuery(MustParsePattern("site(//item{id}(/name{v}))"));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Table expect = MaterializeView(
      MustParsePattern("site(//item{id}(/name{v}))"), "q", *s.docs.back());
  ExpectSameRows(*got, expect, "post-recovery query");

  // A Save() checkpoints every shard and truncates the logs.
  ASSERT_TRUE((*recovered)->Save().ok());
  for (int i = 0; i < (*recovered)->num_shards(); ++i) {
    EXPECT_EQ((*recovered)->shard_catalog(i)->wal_depth(), 0);
  }
}

TEST(ShardedCatalog, DebugMetricsAggregates) {
  Stream s = BuildStream(4, 3);
  ShardedCatalogOptions options;
  options.num_shards = 3;
  Result<std::unique_ptr<ShardedCatalog>> catalog =
      ShardedCatalog::Create(options, s.docs[0], s.summaries[0]);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_TRUE(MaterializeAll(catalog->get(), *s.docs[0]).ok());
  for (size_t i = 0; i < s.deltas.size(); ++i) {
    ASSERT_TRUE((*catalog)
                    ->ApplyUpdate(s.deltas[i], s.docs[i + 1],
                                  s.summaries[i + 1])
                    .ok());
  }
  std::string json = (*catalog)->DebugMetrics();
  EXPECT_NE(json.find("\"num_shards\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"global\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch_sum\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_epoch_age_us\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wal_depth_total\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace svx
