#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/maintenance/delta_evaluator.h"
#include "src/pattern/pattern_parser.h"
#include "src/util/rng.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/view_catalog.h"
#include "src/workload/xmark.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Document updates: stable ORDPATHs
// ---------------------------------------------------------------------------

TEST(DocumentUpdate, InsertAppendsWithFreshOrdinal) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2)");
  std::unique_ptr<Document> sub = Doc("d(e=3)");
  Result<UpdateResult> r = InsertSubtree(*d, OrdPath::Root(), *sub);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& nd = *r->doc;
  EXPECT_EQ(nd.size(), 5);
  EXPECT_EQ(r->delta.kind, DocumentDelta::Kind::kInsert);
  EXPECT_EQ(r->delta.region.ToString(), "1.3");
  EXPECT_EQ(r->delta.region_size, 2);
  // Surviving nodes keep their ids and values.
  NodeIndex b = nd.FindByOrdPath(OrdPath::FromString("1.1"));
  ASSERT_NE(b, kInvalidNode);
  EXPECT_EQ(nd.label(b), "b");
  EXPECT_EQ(nd.value(b), "1");
  // The inserted subtree is reachable under the region id.
  NodeIndex e = nd.FindByOrdPath(OrdPath::FromString("1.3.1"));
  ASSERT_NE(e, kInvalidNode);
  EXPECT_EQ(nd.label(e), "e");
  EXPECT_EQ(nd.value(e), "3");
  EXPECT_EQ(nd.parent(e), nd.FindByOrdPath(OrdPath::FromString("1.3")));
}

TEST(DocumentUpdate, DeleteKeepsSiblingOrdinals) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2 d=3)");
  Result<UpdateResult> r = DeleteSubtree(*d, OrdPath::FromString("1.2"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& nd = *r->doc;
  EXPECT_EQ(nd.size(), 3);
  EXPECT_EQ(r->delta.region_size, 1);
  // The surviving third child still answers to ordinal 3 (ordinal gap).
  NodeIndex dd = nd.FindByOrdPath(OrdPath::FromString("1.3"));
  ASSERT_NE(dd, kInvalidNode);
  EXPECT_EQ(nd.label(dd), "d");
  EXPECT_EQ(nd.FindByOrdPath(OrdPath::FromString("1.2")), kInvalidNode);
}

TEST(DocumentUpdate, InsertOrdinalIsMaxSurvivorPlusOne) {
  std::unique_ptr<Document> d = Doc("a(b c d)");
  // Deleting a middle sibling leaves max ordinal 3; the next insert takes 4.
  Result<UpdateResult> del = DeleteSubtree(*d, OrdPath::FromString("1.2"));
  ASSERT_TRUE(del.ok());
  Result<UpdateResult> ins =
      InsertSubtree(*del->doc, OrdPath::Root(), *Doc("x"));
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->delta.region.ToString(), "1.4");
  NodeIndex x = ins->doc->FindByOrdPath(ins->delta.region);
  ASSERT_NE(x, kInvalidNode);
  EXPECT_EQ(ins->doc->label(x), "x");
}

TEST(DocumentUpdate, DeleteRootRejected) {
  std::unique_ptr<Document> d = Doc("a(b)");
  EXPECT_FALSE(DeleteSubtree(*d, OrdPath::Root()).ok());
  EXPECT_FALSE(DeleteSubtree(*d, OrdPath::FromString("1.7")).ok());
  EXPECT_FALSE(InsertSubtree(*d, OrdPath::FromString("1.7"), *Doc("x")).ok());
}

TEST(DocumentUpdate, InsertBeforeSiblingLandsInDocumentOrder) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2 d=3)");
  OrdPath before = OrdPath::FromString("1.2");  // before c
  Result<UpdateResult> r =
      InsertSubtree(*d, OrdPath::Root(), *Doc("x(y=9)"), &before);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& nd = *r->doc;
  // The new root's id carets between b's subtree and c.
  EXPECT_EQ(r->delta.region.ToString(), "1.1.^.1");
  EXPECT_EQ(r->delta.region_size, 2);
  std::vector<std::string> labels;
  for (NodeIndex c : nd.children(nd.root())) labels.push_back(nd.label(c));
  EXPECT_EQ(labels, (std::vector<std::string>{"b", "x", "c", "d"}));
  // Every existing id is unchanged; the insert introduced no renumbering.
  for (const char* id : {"1.1", "1.2", "1.3"}) {
    EXPECT_NE(nd.FindByOrdPath(OrdPath::FromString(id)), kInvalidNode) << id;
  }
  NodeIndex x = nd.FindByOrdPath(r->delta.region);
  ASSERT_NE(x, kInvalidNode);
  EXPECT_EQ(nd.label(x), "x");
  EXPECT_EQ(nd.parent(x), nd.root());
  EXPECT_EQ(nd.depth(x), 2);
  NodeIndex y = nd.FindByOrdPath(r->delta.region.Child(1));
  ASSERT_NE(y, kInvalidNode);
  EXPECT_EQ(nd.label(y), "y");
  EXPECT_EQ(nd.parent(y), x);
}

TEST(DocumentUpdate, InsertBeforeFirstChildUsesLowCaret) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2)");
  OrdPath before = OrdPath::FromString("1.1");
  Result<UpdateResult> r =
      InsertSubtree(*d, OrdPath::Root(), *Doc("x"), &before);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->delta.region.ToString(), "1.0.1");
  const Document& nd = *r->doc;
  EXPECT_EQ(nd.label(nd.first_child(nd.root())), "x");
  EXPECT_EQ(nd.depth(nd.FindByOrdPath(r->delta.region)), 2);
}

TEST(DocumentUpdate, InsertBeforeRejectsNonChildren) {
  std::unique_ptr<Document> d = Doc("a(b(e=1) c)");
  OrdPath not_a_child = OrdPath::FromString("1.1.1");  // grandchild
  EXPECT_FALSE(
      InsertSubtree(*d, OrdPath::Root(), *Doc("x"), &not_a_child).ok());
  OrdPath absent = OrdPath::FromString("1.9");
  EXPECT_FALSE(InsertSubtree(*d, OrdPath::Root(), *Doc("x"), &absent).ok());
}

TEST(DocumentUpdate, RepeatedMidSiblingInsertsKeepOrderAndIds) {
  // Chains of careted inserts at the same slot: every insert lands exactly
  // where asked and never disturbs an existing id.
  std::unique_ptr<Document> d = Doc("a(b=0 e=9)");
  OrdPath before = OrdPath::FromString("1.2");  // always before e
  std::vector<OrdPath> inserted;
  for (int i = 0; i < 6; ++i) {
    Result<UpdateResult> r =
        InsertSubtree(*d, OrdPath::Root(), *Doc("m"), &before);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    inserted.push_back(r->delta.region);
    d = std::move(r->doc);
  }
  // Order: b, m m m m m m (in insertion order), e.
  std::vector<NodeIndex> kids = d->children(d->root());
  ASSERT_EQ(kids.size(), 8u);
  EXPECT_EQ(d->label(kids.front()), "b");
  EXPECT_EQ(d->label(kids.back()), "e");
  for (size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_EQ(d->ord_path(kids[i + 1]), inserted[i]) << i;
    EXPECT_EQ(d->depth(kids[i + 1]), 2);
  }
}

// ---------------------------------------------------------------------------
// Maintenance vs rematerialization — targeted cases
// ---------------------------------------------------------------------------

/// Applies the delta through a catalog and checks every extent and its
/// statistics are byte-identical to a fresh materialization.
void ExpectMaintainedEqualsRemat(const ViewCatalog& catalog,
                                 const Document& new_doc) {
  for (const auto& v : catalog.views()) {
    ViewCatalog fresh;
    ASSERT_TRUE(fresh.Materialize(v->def, new_doc).ok());
    const StoredView* want = fresh.Find(v->def.name);
    ASSERT_NE(want, nullptr);
    EXPECT_EQ(SerializeExtent(v->extent()), SerializeExtent(want->extent()))
        << v->def.name << " extent diverged from rematerialization";
    EXPECT_TRUE(v->stats == want->stats)
        << v->def.name << " stats diverged from rematerialization";
    EXPECT_EQ(v->extent_bytes, want->extent_bytes) << v->def.name;
  }
}

TEST(Maintenance, InsertEmitsOnlyNewTuples) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
  Result<UpdateResult> r = InsertSubtree(*d, OrdPath::Root(), *Doc("b=3"));
  ASSERT_TRUE(r.ok());

  TableDelta td = ComputeViewDelta(MustParsePattern("a(/b{id,v})"), "V",
                                   catalog.Find("V")->extent(), r->delta);
  EXPECT_FALSE(td.full_rebuild);
  EXPECT_TRUE(td.deletes.empty());
  ASSERT_EQ(td.inserts.size(), 1u);

  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta, &ms).ok());
  EXPECT_EQ(ms.tuples_inserted, 1);
  EXPECT_EQ(ms.views_rebuilt, 0);
  ExpectMaintainedEqualsRemat(catalog, *r->doc);
}

TEST(Maintenance, DeleteKeepsMultiplyJustifiedTuples) {
  // The label-only tuple ("b") is justified by two embeddings; deleting one
  // must not delete the tuple (set semantics).
  std::unique_ptr<Document> d = Doc("a(x(b=1) y(b=2))");
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"L", MustParsePattern("a(//b{l})")}, *d).ok());
  ASSERT_EQ(catalog.Find("L")->extent().NumRows(), 1);

  Result<UpdateResult> r = DeleteSubtree(*d, OrdPath::FromString("1.2"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());
  EXPECT_EQ(catalog.Find("L")->extent().NumRows(), 1);
  ExpectMaintainedEqualsRemat(catalog, *r->doc);

  // Deleting the second occurrence removes the tuple for good.
  std::unique_ptr<Document> d2 = std::move(r->doc);
  Result<UpdateResult> r2 = DeleteSubtree(*d2, OrdPath::FromString("1.1"));
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r2->delta).ok());
  EXPECT_EQ(catalog.Find("L")->extent().NumRows(), 0);
  ExpectMaintainedEqualsRemat(catalog, *r2->doc);
}

TEST(Maintenance, OptionalEdgePaddingFlipsBothWays) {
  std::unique_ptr<Document> d = Doc("a(b=0(c=1))");
  Pattern p = MustParsePattern("a(/b{id}(?/c{v}))");
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.Materialize({"O", p}, *d).ok());

  // Delete the only c: (1.1, '1') must become (1.1, ⊥).
  Result<UpdateResult> r = DeleteSubtree(*d, OrdPath::FromString("1.1.1"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());
  ASSERT_EQ(catalog.Find("O")->extent().NumRows(), 1);
  EXPECT_TRUE(catalog.Find("O")->extent().row(0)[1].IsNull());
  ExpectMaintainedEqualsRemat(catalog, *r->doc);

  // Insert a c again: the padded tuple must flip back to a value.
  std::unique_ptr<Document> d2 = std::move(r->doc);
  Result<UpdateResult> r2 =
      InsertSubtree(*d2, OrdPath::FromString("1.1"), *Doc("c=9"));
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r2->delta).ok());
  ASSERT_EQ(catalog.Find("O")->extent().NumRows(), 1);
  EXPECT_EQ(catalog.Find("O")->extent().row(0)[1].AsString(), "9");
  ExpectMaintainedEqualsRemat(catalog, *r2->doc);
}

TEST(Maintenance, NestedGroupsReaggregate) {
  std::unique_ptr<Document> d = Doc("a(b=0(c=1) b=9)");
  Pattern p = MustParsePattern("a(/b{id}(n/c{v}))");
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.Materialize({"N", p}, *d).ok());

  Result<UpdateResult> r =
      InsertSubtree(*d, OrdPath::FromString("1.1"), *Doc("c=2"));
  ASSERT_TRUE(r.ok());
  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta, &ms).ok());
  EXPECT_EQ(ms.views_rebuilt, 0);
  ExpectMaintainedEqualsRemat(catalog, *r->doc);
  // The affected b row's group now has two inner rows.
  const Table& t = catalog.Find("N")->extent();
  ASSERT_EQ(t.NumRows(), 2);
  bool saw_two = false;
  for (int64_t i = 0; i < t.NumRows(); ++i) {
    if (t.row(i)[1].AsTable().NumRows() == 2) saw_two = true;
  }
  EXPECT_TRUE(saw_two);
}

TEST(Maintenance, ContentReferencesRebindToNewDocument) {
  std::unique_ptr<Document> d = Doc("a(b(c=1) b(c=2))");
  Pattern p = MustParsePattern("a(/b{id,c})");
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.Materialize({"C", p}, *d).ok());

  Result<UpdateResult> r = InsertSubtree(*d, OrdPath::Root(), *Doc("b(c=3)"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());
  // Every surviving content cell now points into the new document.
  for (const Tuple& row : catalog.Find("C")->extent().rows()) {
    ASSERT_TRUE(row[1].IsContent());
    EXPECT_EQ(row[1].AsContent().doc, r->doc.get());
  }
  ExpectMaintainedEqualsRemat(catalog, *r->doc);
}

TEST(Maintenance, StoreBackedUpdatePersistsAndReloads) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() /
                     ("svx_maintenance_store_" + std::to_string(::getpid())))
                        .string();
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  ViewCatalog catalog(dir);
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(catalog.Save().ok());

  Result<UpdateResult> r = InsertSubtree(*d, OrdPath::Root(), *Doc("b=3"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());

  // The maintained extent is already on disk: a fresh catalog loads it.
  ViewCatalog reloaded(dir);
  ASSERT_TRUE(reloaded.Load(r->doc.get()).ok());
  ASSERT_EQ(reloaded.size(), 1);
  EXPECT_EQ(SerializeExtent(reloaded.Find("V")->extent()),
            SerializeExtent(catalog.Find("V")->extent()));
  EXPECT_TRUE(reloaded.Find("V")->stats == catalog.Find("V")->stats);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(Maintenance, NeverSavedCatalogPersistsEveryViewOnUpdate) {
  namespace fs = std::filesystem;
  std::string dir =
      (fs::temp_directory_path() /
       ("svx_maintenance_unsaved_" + std::to_string(::getpid())))
          .string();
  std::unique_ptr<Document> d = Doc("a(b=1 c=2)");
  ViewCatalog catalog(dir);
  ASSERT_TRUE(
      catalog.Materialize({"V1", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog.Materialize({"V2", MustParsePattern("a(/c{id,v})")}, *d).ok());
  // No Save(): the first ApplyUpdate must still produce a loadable store,
  // including the untouched view's files.
  Result<UpdateResult> r = InsertSubtree(*d, OrdPath::Root(), *Doc("b=3"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());

  ViewCatalog reloaded(dir);
  Status s = reloaded.Load(r->doc.get());
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(reloaded.size(), 2);
  for (const char* name : {"V1", "V2"}) {
    EXPECT_EQ(SerializeExtent(reloaded.Find(name)->extent()),
              SerializeExtent(catalog.Find(name)->extent()))
        << name;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(Maintenance, InvalidDeltaFallsBackToRebuild) {
  std::unique_ptr<Document> d = Doc("a(b=1)");
  std::unique_ptr<Document> d2 = Doc("a(b=1 b=2)");
  ViewCatalog catalog;
  Pattern p = MustParsePattern("a(/b{id,v})");
  ASSERT_TRUE(catalog.Materialize({"V", p}, *d).ok());

  DocumentDelta delta;  // invalid region → rematerialize over new_doc
  delta.old_doc = d.get();
  delta.new_doc = d2.get();
  TableDelta td = ComputeViewDelta(p, "V", catalog.Find("V")->extent(), delta);
  EXPECT_TRUE(td.full_rebuild);
  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(delta, &ms).ok());
  EXPECT_EQ(ms.views_rebuilt, 1);
  EXPECT_EQ(catalog.Find("V")->extent().NumRows(), 2);
  ExpectMaintainedEqualsRemat(catalog, *d2);
}

TEST(Maintenance, MidSiblingInsertMaintainsInDocumentOrder) {
  // Regression: inserts used to append as the last child even when a
  // sibling position was requested; careted region ids must flow through
  // delta evaluation exactly like appended ones.
  std::unique_ptr<Document> doc = Doc("a(b(x=1) b(x=2) b(x=3))");
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id}(/x{id,v}))")}, *doc)
          .ok());
  ASSERT_TRUE(
      catalog.Materialize({"N", MustParsePattern("a{id}(n//x{id,v})")}, *doc)
          .ok());
  OrdPath before = OrdPath::FromString("1.2");
  Result<UpdateResult> r =
      InsertSubtree(*doc, OrdPath::Root(), *Doc("b(x=9)"), &before);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(r->delta, &ms).ok());
  EXPECT_GT(ms.tuples_inserted, 0);
  ExpectMaintainedEqualsRemat(catalog, *r->doc);

  // And deleting the careted subtree maintains cleanly too.
  Result<UpdateResult> del = DeleteSubtree(*r->doc, r->delta.region);
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  ASSERT_TRUE(catalog.ApplyUpdate(del->delta).ok());
  ExpectMaintainedEqualsRemat(catalog, *del->doc);
}

// ---------------------------------------------------------------------------
// Randomized property: maintained extents == rematerialized extents
// ---------------------------------------------------------------------------

/// XMark-flavored subtree pool for random inserts.
const char* kInsertPool[] = {
    "item(name=gadget incategory=cat1)",
    "keyword=fresh",
    "name=widget",
    "item(name=tool description(text=sturdy keyword=steel) payment=cash)",
    "person(name=bob emailaddress=bob)",
    "listitem(text=lorem keyword=ipsum)",
    "annotation(description(text=fine))",
    "open_auction(initial=7 bidder(increase=2))",
};

void RunRandomizedMaintenance(uint64_t seed, int ops, int* performed,
                              int64_t memory_budget_bytes = 0) {
  XmarkOptions opts;
  opts.scale = 0.2;
  opts.seed = seed;
  std::unique_ptr<Document> doc = GenerateXmark(opts);

  std::vector<ViewDef> defs = {
      {"plain", MustParsePattern("site(//item{id}(/name{id,v}))")},
      {"opt", MustParsePattern("site(//item{id}(?//keyword{v}))")},
      {"nest", MustParsePattern("site(//item{id}(n//keyword{id,v}))")},
      {"content", MustParsePattern("site(//person{id,c})")},
      {"labels", MustParsePattern("site(//description{id}(//keyword{l}))")},
  };
  ViewCatalogOptions copts;
  copts.memory_budget_bytes = memory_budget_bytes;
  ViewCatalog catalog(copts);
  for (const ViewDef& def : defs) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
  }

  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    Result<UpdateResult> r = [&]() -> Result<UpdateResult> {
      if (doc->size() > 2 && rng.Bernoulli(0.45)) {
        // Delete a random non-root subtree.
        NodeIndex n = static_cast<NodeIndex>(
            rng.Uniform(1, static_cast<int64_t>(doc->size()) - 1));
        return DeleteSubtree(*doc, doc->ord_path(n));
      }
      // Insert a pool subtree under a random node — half the time careted
      // before a random existing child instead of appended.
      NodeIndex n = static_cast<NodeIndex>(
          rng.Uniform(0, static_cast<int64_t>(doc->size()) - 1));
      std::unique_ptr<Document> sub = Doc(
          kInsertPool[static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(std::size(kInsertPool)) - 1))]);
      std::vector<NodeIndex> kids = doc->children(n);
      if (!kids.empty() && rng.Bernoulli(0.5)) {
        OrdPath before = doc->ord_path(kids[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(kids.size()) - 1))]);
        return InsertSubtree(*doc, doc->ord_path(n), *sub, &before);
      }
      return InsertSubtree(*doc, doc->ord_path(n), *sub);
    }();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(catalog.ApplyUpdate(r->delta).ok());
    ExpectMaintainedEqualsRemat(catalog, *r->doc);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "diverged at op " << op << " seed " << seed;
      return;
    }
    doc = std::move(r->doc);
    ++*performed;
  }
}

TEST(MaintenanceProperty, RandomSequencesMatchRematerialization) {
  int performed = 0;
  for (uint64_t seed : {7u, 21u, 99u}) {
    RunRandomizedMaintenance(seed, 40, &performed);
    if (::testing::Test::HasFailure()) break;
  }
  // The acceptance bar: at least 100 randomized insert/delete updates, each
  // checked byte-identical against full rematerialization.
  EXPECT_GE(performed, 100);
}

TEST(MaintenanceProperty, RandomSequencesSurviveEvictionUnderTinyBudget) {
  // Same property under a decoded-extent budget far below the working set:
  // every maintenance step finds some of its base extents evicted and must
  // re-decode them from the compressed columnar form mid-stream, and the
  // maintained results stay byte-identical to rematerialization.
  int performed = 0;
  RunRandomizedMaintenance(7, 40, &performed, /*memory_budget_bytes=*/2048);
  EXPECT_GE(performed, 40);
}

}  // namespace
}  // namespace svx
