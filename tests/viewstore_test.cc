#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/util/fileio.h"
#include "src/summary/summary_builder.h"
#include "src/viewstore/advisor.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/statistics.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// A scratch store directory, removed on destruction.
struct TempDir {
  TempDir() {
    path = (fs::temp_directory_path() /
            ("svx_viewstore_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int counter;
  std::string path;
};
int TempDir::counter = 0;

// ---------------------------------------------------------------------------
// Extent serialization
// ---------------------------------------------------------------------------

TEST(ExtentIo, RoundTripScalarsAndNulls) {
  std::unique_ptr<Document> d = Doc("a(b=1 b(c=x) b)");
  Pattern p = MustParsePattern("a(/b{id,l,v})");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 3);

  std::string bytes = SerializeExtent(t);
  Result<Table> back = DeserializeExtent(bytes, nullptr);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->schema() == t.schema());
  EXPECT_TRUE(back->EqualsIgnoringOrder(t));
  // Byte-identical re-serialization.
  EXPECT_EQ(SerializeExtent(*back), bytes);
}

TEST(ExtentIo, RoundTripNestedTables) {
  std::unique_ptr<Document> d = Doc("a(b(c=1 c=2) b)");
  Pattern p = MustParsePattern("a(/b{id}(n/c{v}))");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 2);

  std::string bytes = SerializeExtent(t);
  Result<Table> back = DeserializeExtent(bytes, nullptr);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->EqualsIgnoringOrder(t));
  EXPECT_EQ(SerializeExtent(*back), bytes);
}

TEST(ExtentIo, ContentReferencesRebindThroughDocument) {
  std::unique_ptr<Document> d = Doc("a(b(c=1) b(c=2))");
  Pattern p = MustParsePattern("a(/b{id,c})");
  Table t = MaterializeView(p, "V", *d);

  std::string bytes = SerializeExtent(t);
  // Without a document, content cells cannot be rebound.
  Result<Table> no_doc = DeserializeExtent(bytes, nullptr);
  EXPECT_FALSE(no_doc.ok());

  Result<Table> back = DeserializeExtent(bytes, d.get());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->EqualsIgnoringOrder(t));
}

TEST(ExtentIo, RejectsCorruptInput) {
  EXPECT_FALSE(DeserializeExtent("not an extent", nullptr).ok());
  std::unique_ptr<Document> d = Doc("a(b=1)");
  Table t = MaterializeView(MustParsePattern("a(/b{v})"), "V", *d);
  std::string bytes = SerializeExtent(t);
  EXPECT_FALSE(DeserializeExtent(bytes.substr(0, bytes.size() - 3),
                                 nullptr)
                   .ok());
  EXPECT_FALSE(DeserializeExtent(bytes + "x", nullptr).ok());

  // A corrupt header claiming 2^64-1 rows over an empty schema must fail
  // with ParseError, not allocate unboundedly.
  std::string corrupt("SVXT", 4);
  const char version[4] = {1, 0, 0, 0};
  corrupt.append(version, 4);
  corrupt.append(4, '\0');   // ncols = 0
  corrupt.append(8, '\xFF');  // nrows = 2^64 - 1
  Result<Table> huge = DeserializeExtent(corrupt, nullptr);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kParseError);
}

TEST(ExtentIo, ByteSizeMatchesSerialization) {
  std::unique_ptr<Document> d = Doc("a(b=1(c=x c=y) b(c=z) b)");
  for (const char* pattern :
       {"a(/b{id,v})", "a(/b{id,c})", "a(/b{id}(n/c{v}))",
        "a(/b{id}(?/c{id,v,l}))"}) {
    Table t = MaterializeView(MustParsePattern(pattern), "V", *d);
    EXPECT_EQ(ExtentByteSize(t),
              static_cast<int64_t>(SerializeExtent(t).size()))
        << pattern;
  }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(Statistics, CountsOnHandBuiltDocument) {
  // Three b nodes: values "1", "22", and none (⊥ in the V column); the ids
  // are all distinct, depths 2.
  std::unique_ptr<Document> d = Doc("a(b=1 b=22 b)");
  Table t = MaterializeView(MustParsePattern("a(/b{id,v})"), "V", *d);
  ViewStats s = ComputeViewStats(t);

  EXPECT_EQ(s.num_rows, 3);
  ASSERT_EQ(s.columns.size(), 2u);
  const ColumnStats* id = s.Find("V.n1.id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->non_null, 3);
  EXPECT_EQ(id->distinct, 3);
  EXPECT_EQ(id->min_len, 2);  // id depth
  EXPECT_EQ(id->max_len, 2);
  const ColumnStats* v = s.Find("V.n1.v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->non_null, 2);
  EXPECT_EQ(v->distinct, 2);
  EXPECT_EQ(v->min_len, 1);  // strlen("1")
  EXPECT_EQ(v->max_len, 2);  // strlen("22")
}

TEST(Statistics, DuplicateValuesCollapseInDistinct) {
  // Rows are unique thanks to the id column (extents have set semantics);
  // the value column still collapses x, x, y to 2 distinct values.
  std::unique_ptr<Document> d = Doc("a(b=x b=x b=y)");
  Table t = MaterializeView(MustParsePattern("a(/b{id,v})"), "V", *d);
  ViewStats s = ComputeViewStats(t);
  EXPECT_EQ(s.num_rows, 3);
  const ColumnStats* v = s.Find("V.n1.v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->non_null, 3);
  EXPECT_EQ(v->distinct, 2);
}

TEST(Statistics, NestedColumnsReportGroupAndInnerStats) {
  std::unique_ptr<Document> d = Doc("a(b(c=1 c=2) b(c=3) b)");
  Table t = MaterializeView(MustParsePattern("a(/b{id}(n/c{v}))"), "V", *d);
  ViewStats s = ComputeViewStats(t);

  const ColumnStats* g = s.Find("V.n2.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->non_null, 3);      // every b row has a (possibly empty) group
  EXPECT_EQ(g->nested_rows, 3);   // 2 + 1 + 0 inner rows
  EXPECT_EQ(g->min_len, 0);       // group sizes 0..2
  EXPECT_EQ(g->max_len, 2);
  // Inner column aggregated across groups.
  const ColumnStats* inner = s.Find("V.n2.v");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->non_null, 3);
  EXPECT_EQ(inner->distinct, 3);
}

TEST(Statistics, TextRoundTrip) {
  std::unique_ptr<Document> d = Doc("a(b=1 b(c=x))");
  Table t = MaterializeView(MustParsePattern("a(/b{id,v}(?/c{v}))"), "V", *d);
  ViewStats s = ComputeViewStats(t);
  Result<ViewStats> back = ParseViewStats(ViewStatsToString(s));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == s);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(Statistics, ValueCountCacheMatchesFullRecount) {
  // Randomized delta streams: the O(|delta|) cached refresh must stay
  // bit-identical to a full recount — stats AND cache — including distinct
  // counts and length bounds shrinking back after deletes, nulls, and
  // nested groups.
  std::unique_ptr<Document> d =
      Doc("a(b(x=11 x=222) b(x=11) b(x=3333 y=z) b)");
  Pattern p = MustParsePattern("a(/b{id}(n/x{id,v} ?/y{v}))");
  Table base = MaterializeView(p, "V", *d);
  base.SortRowsCanonical();
  ASSERT_GE(base.NumRows(), 4);

  uint64_t state = 42;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  Table cur = base;
  ViewStats stats = ComputeViewStats(cur);
  ValueCountCache cache = BuildValueCounts(cur);
  for (int round = 0; round < 20; ++round) {
    // Delete a random subset of rows, re-insert a random subset of the
    // original rows (duplicates across rounds exercise multiplicity).
    std::vector<Tuple> deleted, inserted;
    std::vector<Tuple>& rows = cur.mutable_rows();
    for (size_t i = rows.size(); i-- > 0;) {
      if (next() % 3 == 0) {
        deleted.push_back(rows[i]);
        rows.erase(rows.begin() + static_cast<int64_t>(i));
      }
    }
    for (const Tuple& t : base.rows()) {
      if (next() % 3 == 0) {
        inserted.push_back(t);
        rows.push_back(t);
      }
    }
    stats = RefreshViewStatsCached(stats, cur.schema(), &cache, deleted,
                                   inserted);
    ASSERT_TRUE(stats == ComputeViewStats(cur)) << "round " << round;
    ValueCountCache want = BuildValueCounts(cur);
    ASSERT_EQ(cache.columns.size(), want.columns.size());
    for (size_t c = 0; c < want.columns.size(); ++c) {
      EXPECT_EQ(cache.columns[c].values, want.columns[c].values)
          << "round " << round << " column " << c;
      EXPECT_EQ(cache.columns[c].lengths, want.columns[c].lengths)
          << "round " << round << " column " << c;
    }
  }
}

TEST(CostModel, SmallerViewScansCheaper) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2 b=3 c=1)");
  ViewCatalog catalog;
  ASSERT_TRUE(catalog
                  .Materialize({"Big", MustParsePattern("a(/b{id,v})")}, *d)
                  .ok());
  ASSERT_TRUE(catalog
                  .Materialize({"Small", MustParsePattern("a(/c{id,v})")}, *d)
                  .ok());
  CostModel model = catalog.BuildCostModel();

  PlanPtr big = MakeViewScan(
      "Big", ViewSchema(MustParsePattern("a(/b{id,v})"), "Big"));
  PlanPtr small = MakeViewScan(
      "Small", ViewSchema(MustParsePattern("a(/c{id,v})"), "Small"));
  EXPECT_GT(model.EstimateCost(*big), model.EstimateCost(*small));
  EXPECT_DOUBLE_EQ(model.Estimate(*big).rows, 3.0);
  EXPECT_DOUBLE_EQ(model.Estimate(*small).rows, 1.0);
}

TEST(CostModel, JoinEstimateUsesDistinctCounts) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2 b=3 b=4)");
  ViewCatalog catalog;
  Pattern p = MustParsePattern("a(/b{id,v})");
  ASSERT_TRUE(catalog.Materialize({"V1", p}, *d).ok());
  ASSERT_TRUE(catalog.Materialize({"V2", p}, *d).ok());
  CostModel model = catalog.BuildCostModel();

  PlanPtr join = MakeIdEqJoin(MakeViewScan("V1", ViewSchema(p, "V1")),
                              MakeViewScan("V2", ViewSchema(p, "V2")), 0, 0);
  // 4 x 4 rows with 4 distinct ids each: the containment estimate is 4.
  EXPECT_DOUBLE_EQ(model.Estimate(*join).rows, 4.0);
}

TEST(CostModel, ViewsSharingColumnNamesKeepSeparateStats) {
  // Two views expose a column with the same bare name "B1" (nothing
  // enforces name uniqueness across user-supplied stats); each join must
  // be priced with its own view's statistics, resolved through the plan.
  ViewStats many_distinct;
  many_distinct.num_rows = 1000;
  many_distinct.columns.push_back({"B1", 1000, 1000, 2, 2, 0});
  ViewStats few_distinct;
  few_distinct.num_rows = 1000;
  few_distinct.columns.push_back({"B1", 1000, 10, 2, 2, 0});
  CostModel model;
  model.AddViewStats("Many", many_distinct);
  model.AddViewStats("Few", few_distinct);

  Schema schema({{"B1", ColumnKind::kId, nullptr}});
  // Self ⋈= on the shared column name: 1000 distinct ids keep 1000 rows;
  // 10 distinct ids explode to 100000. A name-keyed model would price both
  // with whichever stats were registered last.
  PlanPtr many_join = MakeIdEqJoin(MakeViewScan("Many", schema),
                                   MakeViewScan("Many", schema), 0, 0);
  PlanPtr few_join = MakeIdEqJoin(MakeViewScan("Few", schema),
                                  MakeViewScan("Few", schema), 0, 0);
  EXPECT_DOUBLE_EQ(model.Estimate(*many_join).rows, 1000.0);
  EXPECT_DOUBLE_EQ(model.Estimate(*few_join).rows, 100000.0);
}

TEST(CostModel, ReRegisteringAViewDropsStaleColumns) {
  ViewStats with_extra;
  with_extra.num_rows = 5;
  with_extra.columns.push_back({"V.n1.id", 5, 5, 2, 2, 0});
  with_extra.columns.push_back({"V.n1.v", 5, 5, 1, 1, 0});
  ViewStats narrower;
  narrower.num_rows = 5;
  narrower.columns.push_back({"V.n1.id", 5, 5, 2, 2, 0});
  CostModel model;
  model.AddViewStats("V", with_extra);
  model.AddViewStats("V", narrower);
  // The stale V.n1.v entry must not survive; σ≠⊥ on it falls back to the
  // default selectivity instead of the old measurement.
  Schema schema({{"V.n1.id", ColumnKind::kId, nullptr},
                 {"V.n1.v", ColumnKind::kValue, nullptr}});
  PlanPtr plan = MakeSelectNonNull(MakeViewScan("V", schema), 1);
  EXPECT_DOUBLE_EQ(model.Estimate(*plan).rows, 5 * 0.9);
}

TEST(CostModel, NonNullSelectivityUsesOwningViewRowCount) {
  // 10 rows, 4 of them non-null: the σ≠⊥ selectivity is 0.4 however much
  // an upstream filter shrank the input (the old max(non_null, in.rows)
  // denominator degenerated to selectivity 1.0 here).
  ViewStats stats;
  stats.num_rows = 10;
  stats.columns.push_back({"V.n1.id", 10, 10, 2, 2, 0});
  stats.columns.push_back({"V.n1.v", 4, 4, 1, 1, 0});
  CostModel model;
  model.AddViewStats("V", stats);
  Schema schema({{"V.n1.id", ColumnKind::kId, nullptr},
                 {"V.n1.v", ColumnKind::kValue, nullptr}});
  PlanPtr filtered =
      MakeSelectValue(MakeViewScan("V", schema), 1, Predicate::True());
  double in_rows = model.Estimate(*filtered).rows;  // 10 * 0.33
  PlanPtr non_null = MakeSelectNonNull(
      MakeSelectValue(MakeViewScan("V", schema), 1, Predicate::True()), 1);
  EXPECT_NEAR(model.Estimate(*non_null).rows, in_rows * 0.4, 1e-9);
  PlanPtr is_null = MakeSelectIsNull(
      MakeSelectValue(MakeViewScan("V", schema), 1, Predicate::True()), 1);
  EXPECT_NEAR(model.Estimate(*is_null).rows, in_rows * 0.6, 1e-9);
}

// ---------------------------------------------------------------------------
// Catalog persistence
// ---------------------------------------------------------------------------

TEST(ViewCatalog, SaveLoadRoundTripIsByteIdentical) {
  std::unique_ptr<Document> d = Doc("a(b=1(c=x) b=2 b)");
  TempDir dir;
  ViewCatalog catalog(dir.path);
  ASSERT_TRUE(
      catalog.Materialize({"V1", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog
          .Materialize({"V2", MustParsePattern("a(/b{id}(?/c{id,v}))")}, *d)
          .ok());
  ASSERT_TRUE(catalog.Save().ok());

  ViewCatalog reloaded(dir.path);
  Status s = reloaded.Load(d.get());
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(reloaded.size(), 2);
  for (const char* name : {"V1", "V2"}) {
    const StoredView* orig = catalog.Find(name);
    const StoredView* back = reloaded.Find(name);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(back->extent().EqualsIgnoringOrder(orig->extent()));
    EXPECT_TRUE(back->stats == orig->stats);
    // Byte-identical: re-serializing the reloaded extent reproduces the
    // stored bytes exactly.
    EXPECT_EQ(SerializeExtent(back->extent()), SerializeExtent(orig->extent()));
  }
  // Saving the reloaded catalog reproduces identical extent files.
  TempDir dir2;
  ViewCatalog resave(dir2.path);
  for (const auto& v : reloaded.views()) {
    ASSERT_TRUE(resave.Add(v->def, v->extent()).ok());
  }
  ASSERT_TRUE(resave.Save().ok());
  for (const char* name : {"V1.extent", "V2.extent"}) {
    std::ifstream f1(fs::path(dir.path) / name, std::ios::binary);
    std::ifstream f2(fs::path(dir2.path) / name, std::ios::binary);
    std::string b1((std::istreambuf_iterator<char>(f1)),
                   std::istreambuf_iterator<char>());
    std::string b2((std::istreambuf_iterator<char>(f2)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(b1, b2) << name;
  }
}

TEST(ViewCatalog, ExecutorScansStoredExtent) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  TempDir dir;
  {
    ViewCatalog catalog(dir.path);
    ASSERT_TRUE(
        catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
    ASSERT_TRUE(catalog.Save().ok());
  }
  ViewCatalog reloaded(dir.path);
  ASSERT_TRUE(reloaded.Load(d.get()).ok());
  Catalog exec = reloaded.ExecutorCatalog();
  PlanPtr scan =
      MakeViewScan("V", ViewSchema(MustParsePattern("a(/b{id,v})"), "V"));
  Result<Table> out = Execute(*scan, exec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 2);
}

TEST(ViewCatalog, RejectsUnsafeViewNames) {
  ViewCatalog catalog;
  Table t{Schema{}};
  EXPECT_FALSE(catalog.Add({"../evil", Pattern()}, t).ok());
  EXPECT_FALSE(catalog.Add({"", Pattern()}, t).ok());
}

TEST(ViewCatalog, ResaveSweepsOrphanedFilesAndSizesMatch) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2 c=x)");
  TempDir dir;
  {
    ViewCatalog catalog(dir.path);
    ASSERT_TRUE(
        catalog.Materialize({"V1", MustParsePattern("a(/b{id,v})")}, *d).ok());
    ASSERT_TRUE(
        catalog.Materialize({"V2", MustParsePattern("a(/c{id,v})")}, *d).ok());
    ASSERT_TRUE(catalog.Save().ok());
  }
  // Simulate leftovers of an interrupted save.
  ASSERT_TRUE(
      WriteFileBytes((fs::path(dir.path) / "V9.extent.tmp").string(), "junk")
          .ok());

  // A catalog that kept only V1 (V2 dropped, V1 replaced with fewer rows).
  std::unique_ptr<Document> d2 = Doc("a(b=9)");
  ViewCatalog replaced(dir.path);
  ASSERT_TRUE(
      replaced.Materialize({"V1", MustParsePattern("a(/b{id,v})")}, *d2).ok());
  ASSERT_TRUE(replaced.Save().ok());

  // Dropped/stale files are gone (files are generation-suffixed,
  // "V1.<gen>.extent"); what remains matches the manifest.
  std::vector<std::string> v1_extents, leftovers;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("V1.") && name.ends_with(".extent")) {
      v1_extents.push_back(entry.path().string());
    }
    if (name.starts_with("V2.") || name.ends_with(".tmp")) {
      leftovers.push_back(name);
    }
  }
  EXPECT_TRUE(leftovers.empty()) << leftovers.front();
  // Exactly one V1 generation survives: the new one, a complete columnar
  // file whose size matches the catalog's recorded compressed size (no
  // half-written or stale content).
  ASSERT_EQ(v1_extents.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(fs::file_size(v1_extents.front())),
            static_cast<int64_t>(
                SerializeColumnarExtent(*replaced.Find("V1")->columnar,
                                        replaced.Find("V1")->extent_bytes)
                    .size()));

  ViewCatalog reloaded(dir.path);
  ASSERT_TRUE(reloaded.Load(d2.get()).ok());
  ASSERT_EQ(reloaded.size(), 1);
  EXPECT_TRUE(reloaded.Find("V1")->extent().EqualsIgnoringOrder(
      replaced.Find("V1")->extent()));
}

TEST(ViewCatalog, LoadFailsOnManifestPointingAtMissingExtent) {
  std::unique_ptr<Document> d = Doc("a(b=1)");
  TempDir dir;
  {
    ViewCatalog catalog(dir.path);
    ASSERT_TRUE(
        catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
    ASSERT_TRUE(catalog.Save().ok());
  }
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("V.") && name.ends_with(".extent")) {
      fs::remove(entry.path());
    }
  }
  ViewCatalog reloaded(dir.path);
  Status s = reloaded.Load(d.get());
  EXPECT_FALSE(s.ok());
  // A failed load leaves the catalog reusable (no partial state observed
  // through the public API).
  EXPECT_EQ(reloaded.size(), 0);
}

TEST(ViewCatalog, InterruptedSaveLeavesPreviousStateLoadable) {
  // The crash window the generation scheme closes: a save that wrote some
  // new extent files but never flipped the manifest must leave the
  // previous state fully loadable — file names are never reused, so a
  // half-finished save cannot mix extent versions under the old manifest.
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  TempDir dir;
  ViewCatalog catalog(dir.path);
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(catalog.Save().ok());
  const Table& saved_extent = catalog.Find("V")->extent();

  // Simulate the crash: a newer generation of V exists on disk (with
  // different content), manifest untouched.
  std::unique_ptr<Document> d2 = Doc("a(b=9)");
  Table other = MaterializeView(MustParsePattern("a(/b{id,v})"), "V", *d2);
  ASSERT_TRUE(WriteExtentFile((fs::path(dir.path) / "V.99.extent").string(),
                              other)
                  .ok());
  ASSERT_TRUE(WriteFileBytes((fs::path(dir.path) / "V.99.stats").string(),
                             ViewStatsToString(ComputeViewStats(other)))
                  .ok());

  ViewCatalog reloaded(dir.path);
  ASSERT_TRUE(reloaded.Load(d.get()).ok());
  ASSERT_EQ(reloaded.size(), 1);
  EXPECT_EQ(SerializeExtent(reloaded.Find("V")->extent()),
            SerializeExtent(saved_extent))
      << "load mixed in a generation the manifest never referenced";
  // The orphaned generation is swept, so later saves can never collide
  // with it.
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "V.99.extent"));
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "V.99.stats"));
}

TEST(ViewCatalog, SaveWithoutLoadNeverReusesGenerationNames) {
  // A second process saving into an existing store without Load()ing it
  // must not re-mint generations already on disk — overwriting
  // "V.<gen>.extent" in place would reopen the crash window.
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  TempDir dir;
  std::string first_extent;
  {
    ViewCatalog catalog(dir.path);
    ASSERT_TRUE(
        catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
    ASSERT_TRUE(catalog.Save().ok());
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      std::string name = entry.path().filename().string();
      if (name.ends_with(".extent")) first_extent = name;
    }
    ASSERT_FALSE(first_extent.empty());
  }
  std::unique_ptr<Document> d2 = Doc("a(b=9)");
  ViewCatalog fresh(dir.path);  // same dir, never Load()ed
  ASSERT_TRUE(
      fresh.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d2).ok());
  ASSERT_TRUE(fresh.Save().ok());
  std::string second_extent;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::string name = entry.path().filename().string();
    if (name.ends_with(".extent")) second_extent = name;
  }
  ASSERT_FALSE(second_extent.empty());
  EXPECT_NE(second_extent, first_extent)
      << "generation-suffixed file name was re-minted across instances";
}

TEST(ViewCatalog, ApplyUpdatePersistsChangedViewsUnderFreshGenerations) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2)");
  TempDir dir;
  ViewCatalog catalog(dir.path);
  ASSERT_TRUE(
      catalog.Materialize({"VB", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog.Materialize({"VC", MustParsePattern("a(/c{id,v})")}, *d).ok());
  ASSERT_TRUE(catalog.Save().ok());
  auto files = [&]() {
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      out.push_back(entry.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::string> before = files();

  // Update touching only b: VB gets a fresh generation, VC keeps its files.
  Result<UpdateResult> up =
      InsertSubtree(*d, OrdPath::Root(), *Doc("b=7"));
  ASSERT_TRUE(up.ok());
  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta, &ms).ok());
  EXPECT_EQ(ms.views_touched, 1);
  std::vector<std::string> after = files();
  EXPECT_NE(before, after) << "changed extent reused its file name";
  for (const std::string& f : before) {
    if (f.starts_with("VC.")) {
      EXPECT_TRUE(std::find(after.begin(), after.end(), f) != after.end())
          << "untouched view's files were rewritten: " << f;
    }
  }

  // The store reloads to exactly the maintained state.
  ViewCatalog reloaded(dir.path);
  ASSERT_TRUE(reloaded.Load(up->doc.get()).ok());
  for (const char* name : {"VB", "VC"}) {
    ASSERT_NE(reloaded.Find(name), nullptr);
    EXPECT_EQ(SerializeExtent(reloaded.Find(name)->extent()),
              SerializeExtent(catalog.Find(name)->extent()))
        << name;
  }
}

TEST(ViewCatalog, SaveLeavesNoTempFiles) {
  std::unique_ptr<Document> d = Doc("a(b=1)");
  TempDir dir;
  ViewCatalog catalog(dir.path);
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(catalog.Save().ok());
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

// ---------------------------------------------------------------------------
// Cost-based rewriting selection
// ---------------------------------------------------------------------------

TEST(CostBasedRewriting, PrefersTheCheaperCover) {
  // Two views both answering //b{id,v}: Narrow stores exactly the b rows,
  // Wide stores every node's id/label/value (much larger). With statistics
  // the rewriter must put the Narrow-based plan first.
  std::unique_ptr<Document> d =
      Doc("a(b=1 b=2 x(y=1 y=2 y=3 y=4 y=5 y=6 y=7 y=8) x(y=9) c c c)");
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(d.get());

  ViewDef narrow{"Narrow", MustParsePattern("a(/b{id,v})")};
  ViewDef wide{"Wide", MustParsePattern("a(//*{id,l,v})")};
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.Materialize(narrow, *d).ok());
  ASSERT_TRUE(catalog.Materialize(wide, *d).ok());
  ASSERT_GT(catalog.Find("Wide")->stats.num_rows,
            catalog.Find("Narrow")->stats.num_rows);
  CostModel model = catalog.BuildCostModel();

  RewriterOptions opts;
  opts.cost_model = &model;
  opts.max_results = 8;
  Rewriter rewriter(*summary, opts);
  rewriter.AddView(narrow);
  rewriter.AddView(wide);

  RewriteStats stats;
  Result<std::vector<Rewriting>> rws =
      rewriter.Rewrite(MustParsePattern("a(/b{id,v})"), &stats);
  ASSERT_TRUE(rws.ok()) << rws.status().ToString();
  ASSERT_GE(rws->size(), 2u);
  EXPECT_NE(rws->front().compact.find("Narrow"), std::string::npos)
      << rws->front().compact;
  EXPECT_GE(rws->front().est_cost, 0);
  for (size_t i = 1; i < rws->size(); ++i) {
    EXPECT_LE((*rws)[i - 1].est_cost, (*rws)[i].est_cost);
  }
  EXPECT_EQ(stats.cheapest_cost, rws->front().est_cost);

  // Deterministic: a second run returns the same ranking.
  Rewriter rewriter2(*summary, opts);
  rewriter2.AddView(narrow);
  rewriter2.AddView(wide);
  Result<std::vector<Rewriting>> rws2 =
      rewriter2.Rewrite(MustParsePattern("a(/b{id,v})"));
  ASSERT_TRUE(rws2.ok());
  ASSERT_EQ(rws->size(), rws2->size());
  for (size_t i = 0; i < rws->size(); ++i) {
    EXPECT_EQ((*rws)[i].compact, (*rws2)[i].compact);
  }
}

TEST(CostBasedRewriting, WithoutModelKeepsDiscoveryOrder) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2)");
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(d.get());
  ViewDef v{"V", MustParsePattern("a(/b{id,v})")};
  Rewriter rewriter(*summary);
  rewriter.AddView(v);
  Result<std::vector<Rewriting>> rws =
      rewriter.Rewrite(MustParsePattern("a(/b{id,v})"));
  ASSERT_TRUE(rws.ok());
  ASSERT_FALSE(rws->empty());
  EXPECT_EQ(rws->front().est_cost, -1);
}

// ---------------------------------------------------------------------------
// Advisor
// ---------------------------------------------------------------------------

TEST(Advisor, PicksCoveringViewsUnderBudget) {
  std::unique_ptr<Document> d =
      Doc("a(b=1 b=2 b=3 c=x c=y d(e=1) d(e=2))");
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(d.get());
  std::vector<Pattern> workload = {
      MustParsePattern("a(/b{id,v})"),
      MustParsePattern("a(/c{id,v})"),
  };
  AdvisorOptions opts;
  opts.size_budget_bytes = 1 << 20;
  AdvisorProposal proposal = AdviseViews(workload, *summary, *d, opts);

  ASSERT_FALSE(proposal.chosen.empty());
  EXPECT_GT(proposal.total_benefit, 0);
  EXPECT_LE(proposal.total_bytes, opts.size_budget_bytes);
  // Every workload query is improved by some chosen view.
  std::vector<bool> covered(workload.size(), false);
  for (const AdvisedView& v : proposal.chosen) {
    for (size_t q : v.queries) covered[q] = true;
  }
  EXPECT_TRUE(covered[0]);
  EXPECT_TRUE(covered[1]);
}

TEST(Advisor, RespectsTightBudget) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2 c=x)");
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(d.get());
  std::vector<Pattern> workload = {MustParsePattern("a(/b{id,v})")};
  AdvisorOptions opts;
  opts.size_budget_bytes = 0;  // nothing fits
  AdvisorProposal proposal = AdviseViews(workload, *summary, *d, opts);
  EXPECT_TRUE(proposal.chosen.empty());
  EXPECT_GT(proposal.candidates_considered, 0u);
}

}  // namespace
}  // namespace svx
