#include "src/pattern/canonical.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_io.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<CanonicalTree> Model(const Pattern& p, const Summary& s,
                                 CanonicalModelOptions opts = {}) {
  Result<std::vector<CanonicalTree>> m = BuildCanonicalModel(p, s, opts);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

std::vector<std::string> NodePaths(const CanonicalTree& t, const Summary& s) {
  std::vector<std::string> out;
  for (PathId p : t.SortedPaths()) out.push_back(s.PathString(p));
  return out;
}

// Formula attached to the first node on `path` (True if absent).
const Predicate& FormulaAt(const CanonicalTree& t, const Summary& s,
                           const std::string& path) {
  static const Predicate kTrue = Predicate::True();
  PathId target = s.Resolve(path);
  for (int32_t n = 0; n < t.size(); ++n) {
    if (t.paths[static_cast<size_t>(n)] == target) return t.FormulaFor(n);
  }
  return kTrue;
}

TEST(CanonicalModel, OneEmbeddingOneTree) {
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  Pattern p = MustParsePattern("a(//c{id})");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  // The chain a-b-c is materialized even though b is not in the pattern.
  EXPECT_EQ(NodePaths(m[0], *s),
            (std::vector<std::string>{"/a", "/a/b", "/a/b/c"}));
  EXPECT_EQ(m[0].ReturnPaths(), (std::vector<PathId>{s->Resolve("/a/b/c")}));
}

TEST(CanonicalModel, TwoEmbeddingsTwoTrees) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  Pattern p = MustParsePattern("a(//b{id}(/c))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 2u);
}

TEST(CanonicalModel, PaperDedupExample) {
  // §2.4: two distinct embeddings may yield the same canonical tree
  // (p' = /a//*//e where * binds to either chain node).
  std::unique_ptr<Summary> s = Sum("a(b(c(e)))");
  Pattern p = MustParsePattern("a(//*(//e{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  EXPECT_EQ(m.size(), 1u);  // both embeddings produce chain a-b-c-e
}

TEST(CanonicalModel, UnsatisfiablePatternEmptyModel) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Pattern p = MustParsePattern("a(/z{id})");
  EXPECT_TRUE(Model(p, *s).empty());
  Result<bool> sat = IsSatisfiable(p, *s);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(CanonicalModel, SatisfiableViaModel) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Pattern p = MustParsePattern("a(/b{id})");
  Result<bool> sat = IsSatisfiable(p, *s);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

// ---- Enhanced summaries (§4.1, Figure 8) ----

TEST(CanonicalModel, StrongEdgeClosure) {
  // Strong edges pull nodes into the canonical tree: the c child of b and
  // the f child of a appear although the pattern never mentions them.
  std::unique_ptr<Summary> s = Sum("a(b(c!(x!) e) f!)");
  Pattern p = MustParsePattern("a(/b{id})");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(NodePaths(m[0], *s),
            (std::vector<std::string>{"/a", "/a/b", "/a/b/c", "/a/b/c/x",
                                      "/a/f"}));
}

TEST(CanonicalModel, StrongClosureDisabled) {
  std::unique_ptr<Summary> s = Sum("a(b(c!(x!) e) f!)");
  Pattern p = MustParsePattern("a(/b{id})");
  CanonicalModelOptions opts;
  opts.use_strong_edges = false;
  std::vector<CanonicalTree> m = Model(p, *s, opts);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(NodePaths(m[0], *s), (std::vector<std::string>{"/a", "/a/b"}));
}

// ---- Decorated patterns (§4.2, Figure 9) ----

TEST(CanonicalModel, FormulasAttachedToNodes) {
  std::unique_ptr<Summary> s = Sum("r(c(b))");
  Pattern p = MustParsePattern("r(/c{id}[v=3](/b[v>0]))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  const CanonicalTree& t = m[0];
  EXPECT_EQ(FormulaAt(t, *s, "/r/c"), Predicate::Eq(3));
  EXPECT_EQ(FormulaAt(t, *s, "/r/c/b"), Predicate::Gt(0));
  EXPECT_TRUE(FormulaAt(t, *s, "/r").IsTrue());
}

TEST(CanonicalModel, SiblingsOnSamePathStayDistinct) {
  // §4.2: two pattern nodes mapping to the same summary node yield distinct
  // canonical nodes, each with its own formula — the pattern is satisfiable
  // by two different b elements.
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  Pattern p = MustParsePattern("a(/b[v=1](/c{id}) /b[v=2])");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  // Nodes: a, b[v=1], c, b[v=2] — four nodes, two on path /a/b.
  EXPECT_EQ(m[0].size(), 4);
  Result<bool> sat = IsSatisfiable(p, *s);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(CanonicalModel, DuplicateSiblingChainsKeptSeparate) {
  // §2.4: the node for e(n) has exactly one child chain per pattern child.
  // Two required children on the same path produce two canonical nodes; the
  // tree is NOT collapsed to a summary subtree.
  std::unique_ptr<Summary> s = Sum("site(item(name desc))");
  Pattern p = MustParsePattern("site(//item(/name{id}) //item(/desc{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].size(), 5);  // site, item, name, item', desc
}

// ---- Optional edges (§4.3, Figure 10) ----

TEST(CanonicalModel, OptionalEdgeGeneratesErasedVariants) {
  std::unique_ptr<Summary> s = Sum("a(c(b d(b e)))");
  Pattern p = MustParsePattern("a(//c{id}(?/d(/b{id} /e)))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 2u);
  // One full tree and one ⊥-erased tree.
  bool saw_full = false;
  bool saw_bottom = false;
  for (const CanonicalTree& t : m) {
    if (t.return_tuple[1] == CanonicalTree::kBottom) {
      saw_bottom = true;
      EXPECT_EQ(NodePaths(t, *s), (std::vector<std::string>{"/a", "/a/c"}));
    } else {
      saw_full = true;
      EXPECT_EQ(t.size(), 5);
    }
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(saw_bottom);
}

TEST(CanonicalModel, PaperFigure10ThreeTrees) {
  // Two independent optional edges yield full/partial/empty variants; here
  // the middle variant appears twice (one per erased edge choice) and the
  // combination dedups.
  std::unique_ptr<Summary> s = Sum("a(c(b d(b e)))");
  Pattern p = MustParsePattern("a(//c{id}(?/b{id} ?/d(/b /e)))");
  std::vector<CanonicalTree> m = Model(p, *s);
  EXPECT_EQ(m.size(), 4u);  // {both present, b only, d only, neither}
}

TEST(CanonicalModel, StrongEdgeRejectsSpuriousBottom) {
  // a/c/b is a strong edge: every c has a b child, so the ⊥ variant of the
  // optional edge cannot occur in any conforming document; the §4.3
  // verification rejects it.
  std::unique_ptr<Summary> s = Sum("a(c(b!))");
  Pattern p = MustParsePattern("a(/c{id}(?/b{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_NE(m[0].return_tuple[1], CanonicalTree::kBottom);
}

TEST(CanonicalModel, OptionalSubtreeUnmatchableInSummary) {
  // The optional subtree has no embedding at all: only the ⊥ variant exists.
  std::unique_ptr<Summary> s = Sum("a(c)");
  Pattern p = MustParsePattern("a(/c{id}(?/z{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].return_tuple[1], CanonicalTree::kBottom);
}

// ---- Nested edges (§4.5) ----

TEST(CanonicalModel, NestingSequencesRecorded) {
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  Pattern p = MustParsePattern("a(n/b(n/c{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  ASSERT_EQ(m.size(), 1u);
  ASSERT_EQ(m[0].nesting_seqs.size(), 1u);
  // ns(c) = (e(a), e(b)) — the upper nodes of the two nested edges.
  ASSERT_EQ(m[0].nesting_seqs[0].size(), 2u);
  EXPECT_EQ(m[0].paths[static_cast<size_t>(m[0].nesting_seqs[0][0])],
            s->Resolve("/a"));
  EXPECT_EQ(m[0].paths[static_cast<size_t>(m[0].nesting_seqs[0][1])],
            s->Resolve("/a/b"));
}

TEST(CanonicalModel, NestingSequencesDistinguishTrees) {
  // Same node set, same return tuple, different nesting anchors: the trees
  // must stay distinct.
  std::unique_ptr<Summary> s = Sum("a(b(c(d)))");
  Pattern p = MustParsePattern("a(//*(n//d{id}))");
  std::vector<CanonicalTree> m = Model(p, *s);
  // * binds to b or c; node sets identical (chain a-b-c-d) but ns differs.
  EXPECT_EQ(m.size(), 2u);
}

// ---- Size accounting (Figure 4 / §3.1) ----

TEST(CanonicalModel, WildcardDescendantBlowupIsBounded) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d)");
  Pattern p = MustParsePattern("a(//*{id})");
  std::vector<CanonicalTree> m = Model(p, *s);
  EXPECT_EQ(m.size(), 3u);  // one per non-root summary node
}

TEST(CanonicalModel, ResourceLimitReported) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(e) f(g))");
  Pattern p = MustParsePattern("a(//*{id} //*{v} //*{l})");
  CanonicalModelOptions opts;
  opts.max_embeddings = 5;
  Result<std::vector<CanonicalTree>> m = BuildCanonicalModel(p, *s, opts);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST(CanonicalTree, HashEqualsForEqualTrees) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Pattern p = MustParsePattern("a(/b{id})");
  std::vector<CanonicalTree> m1 = Model(p, *s);
  std::vector<CanonicalTree> m2 = Model(p, *s);
  ASSERT_EQ(m1.size(), 1u);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m1[0], m2[0]);
  EXPECT_EQ(m1[0].Hash(), m2[0].Hash());
}

}  // namespace
}  // namespace svx
