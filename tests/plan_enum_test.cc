// Differential tests for the DP plan enumerator (src/rewriting/plan_enum.h)
// against the exhaustive left-deep search it replaced:
//   * on randomized worlds (random conforming document, random views, random
//     query), every DP-chosen plan must execute to exactly the direct
//     evaluation of the query — the PR-4 equivalence invariant;
//   * whenever neither search was truncated, the DP search's cheapest
//     rewriting must cost no more than the exhaustive search's cheapest
//     (dominance and branch-and-bound may only discard non-optimal plans);
//   * both searches agree on rewritability (found vs. not found).
#include "src/rewriting/plan_enum.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_io.h"
#include "src/util/rng.h"
#include "src/viewstore/cost_model.h"
#include "src/workload/pattern_generator.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Random document weakly conforming to `summary` (the property_test
/// generator): children per child-path drawn from [min, max], strong edges
/// forcing min >= 1 and one-to-one edges exactly 1.
std::unique_ptr<Document> RandomConformingDoc(const Summary& summary,
                                              Rng* rng, int max_fanout = 3,
                                              int max_nodes = 300) {
  DocumentBuilder b;
  int budget = max_nodes;
  std::function<void(PathId, int)> emit = [&](PathId path, int depth) {
    b.StartElement(summary.label(path));
    if (rng->Bernoulli(0.6)) {
      b.AppendValue(std::to_string(rng->Uniform(0, 9)));
    }
    for (PathId c : summary.children(path)) {
      int lo = summary.strong_edge(c) ? 1 : 0;
      int hi = summary.one_to_one(c) ? 1 : max_fanout;
      if (summary.one_to_one(c)) lo = 1;
      int count = static_cast<int>(rng->Uniform(lo, hi));
      if (budget <= 0) count = lo;  // keep strong edges satisfied
      for (int i = 0; i < count && depth < 24; ++i) {
        --budget;
        emit(c, depth + 1);
      }
    }
    b.EndElement();
  };
  emit(summary.root(), 1);
  return b.Finish();
}

struct SearchResult {
  std::vector<Rewriting> rewritings;
  RewriteStats stats;
};

SearchResult RunSearch(const Summary& s, const std::vector<ViewDef>& views,
                       const Pattern& q, const CostModel& cm, bool use_dp) {
  RewriterOptions opts;
  opts.use_view_index = true;
  opts.use_dp_enumeration = use_dp;
  opts.cost_model = &cm;
  Rewriter rw(s, opts);
  for (const ViewDef& v : views) rw.AddView(v);
  SearchResult out;
  Result<std::vector<Rewriting>> r = rw.Rewrite(q, &out.stats);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (r.ok()) out.rewritings = std::move(r).value();
  return out;
}

/// The cheapest estimated cost in a cost-ranked result list.
double CheapestCost(const SearchResult& r) {
  EXPECT_FALSE(r.rewritings.empty());
  return r.rewritings.front().est_cost;
}

// The hand-built worlds of rewriter_test's FastPathsPreserveResults, plus
// the Fig. 5/6 join-and-union scenarios: both search strategies must agree
// on rewritability, and the DP search must rank a plan at least as cheap.
TEST(PlanEnumDifferential, HandBuiltWorldsMatchExhaustive) {
  struct World {
    std::string summary;
    std::vector<std::pair<std::string, std::string>> views;
    std::vector<std::string> queries;
  };
  std::vector<World> worlds = {
      {"r(b a(b(c)) e(f))",
       {{"P1", "r(//b{id})"}, {"P2", "r(//a{id})"}, {"P4", "r(/e{id}(/f))"}},
       {"r(/a(/b{id}))", "r(//b{id})", "r(/e{id})"}},
      {"r(a(c(b)) c(a(b)) b)",
       {{"P1", "r(//a(//b{id}))"},
        {"P2", "r(//c(//b{id}))"},
        {"P3", "r(/b{id})"}},
       {"r(//b{id})", "r(//a(//c(//b{id})))"}},
      {"site(item(name description))",
       {{"V1", "site(//item{id}(/description{c}))"},
        {"V2", "site(//item{id}(/name{v}))"}},
       {"site(//item(/name{v} /description{c}))", "site(//item{id})"}},
      {"a(b(c!))",
       {{"V", "a(//c{id,v})"}},
       {"a(//b{id})", "a(//c{v}[v>2])", "a(/b{id}(/c{v}))"}},
      {"a(i(x))",
       {{"V", "a(/i{id}(?/x{id}))"}},
       {"a(/i{id}(/x{id}))", "a(/i{id}(?/x{id}))"}},
  };
  CostModel cm;
  for (const World& w : worlds) {
    std::unique_ptr<Summary> s = Sum(w.summary);
    std::vector<ViewDef> views;
    for (const auto& [name, pattern] : w.views) {
      views.push_back({name, MustParsePattern(pattern)});
    }
    for (const std::string& q_text : w.queries) {
      Pattern q = MustParsePattern(q_text);
      SearchResult dp = RunSearch(*s, views, q, cm, /*use_dp=*/true);
      SearchResult ex = RunSearch(*s, views, q, cm, /*use_dp=*/false);
      ASSERT_EQ(dp.rewritings.empty(), ex.rewritings.empty())
          << w.summary << " | " << q_text;
      if (dp.rewritings.empty()) continue;
      EXPECT_FALSE(dp.stats.search_truncated) << w.summary << " | " << q_text;
      EXPECT_LE(CheapestCost(dp), CheapestCost(ex) + 1e-9)
          << w.summary << " | " << q_text << "\n  dp: "
          << dp.rewritings.front().compact
          << "\n  ex: " << ex.rewritings.front().compact;
      EXPECT_GT(dp.stats.plans_generated, 0u);
      EXPECT_GE(dp.stats.plans_generated, dp.stats.plans_retained);
    }
  }
}

// Randomized differential: random views and queries over a recursive-ish
// summary. Every DP plan must reproduce the direct evaluation on a random
// conforming document, and the DP cheapest cost must not exceed the
// exhaustive cheapest.
class PlanEnumRandomDifferential : public ::testing::TestWithParam<int> {};

TEST_P(PlanEnumRandomDifferential, PlansExecuteIdenticallyAndCostNoWorse) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 17);
  std::unique_ptr<Summary> s = Sum("r(a!(b(c) d) e(b(c)) f(d) b)");
  std::unique_ptr<Document> doc = RandomConformingDoc(*s, &rng);

  PatternGenOptions gen;
  gen.num_nodes = 2 + seed % 4;
  gen.num_return = 1 + seed % 2;
  gen.p_pred = 0.1;
  gen.p_optional = 0.2;

  // Random view set; the query pattern doubles as a view half the time so
  // a rewriting is frequently (not vacuously never) found.
  Result<Pattern> q = GeneratePattern(*s, gen, &rng);
  if (!q.ok()) GTEST_SKIP() << q.status().ToString();
  std::vector<ViewDef> views;
  int num_views = 2 + static_cast<int>(rng.Uniform(0, 2));
  for (int i = 0; i < num_views; ++i) {
    Result<Pattern> v = GeneratePattern(*s, gen, &rng);
    if (v.ok()) views.push_back({"V" + std::to_string(i), std::move(*v)});
  }
  if (rng.Bernoulli(0.5)) views.push_back({"VQ", q->Clone()});
  if (views.empty()) GTEST_SKIP();

  CostModel cm;
  SearchResult dp = RunSearch(*s, views, *q, cm, /*use_dp=*/true);
  SearchResult ex = RunSearch(*s, views, *q, cm, /*use_dp=*/false);

  // Rewritability agreement (both complete searches of the same space).
  if (!dp.stats.search_truncated && !ex.stats.search_truncated) {
    EXPECT_EQ(dp.rewritings.empty(), ex.rewritings.empty())
        << PatternToString(*q);
  }
  if (!dp.rewritings.empty() && !ex.rewritings.empty() &&
      !dp.stats.search_truncated && !ex.stats.search_truncated) {
    EXPECT_LE(CheapestCost(dp), CheapestCost(ex) + 1e-9)
        << "dp: " << dp.rewritings.front().compact
        << "\nex: " << ex.rewritings.front().compact;
  }

  // Execution equivalence: every DP plan computes the direct evaluation.
  if (dp.rewritings.empty()) return;
  std::vector<MaterializedView> mats;
  mats.reserve(views.size());
  for (const ViewDef& v : views) {
    mats.push_back({v, MaterializeView(v.pattern, v.name, *doc)});
  }
  Catalog catalog;
  for (const MaterializedView& m : mats) {
    catalog.Register(m.def.name, &m.extent);
  }
  Table reference = MaterializeView(*q, "Q", *doc);
  for (const Rewriting& r : dp.rewritings) {
    Result<Table> t = Execute(*r.plan, catalog);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_TRUE(t->EqualsIgnoringOrder(reference))
        << "plan " << r.compact << " returned " << t->NumRows()
        << " rows, reference has " << reference.NumRows();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanEnumRandomDifferential,
                         ::testing::Range(0, 24));

// The satellite-1 contract: a merged-piece overflow during join enumeration
// must surface in RewriteStats::search_truncated instead of being silently
// swallowed — in both search strategies. The recursive summary gives the
// ancestor view 2 pieces (r/a, r/a/a) and the descendant view 2 pieces
// (r/a/b, r/a/a/b); their ⋈≺≺ has 3 compatible piece pairs, which overflows
// an expansion budget of 2 that both base candidates individually respect.
// The query outputs both a{id} and b{id} so neither view alone covers it —
// otherwise cheapest-first branch-and-bound would (correctly) never reach
// the join and the overflow would be unreachable rather than unreported.
TEST(PlanEnum, TruncationIsReportedNotSilent) {
  for (bool use_dp : {true, false}) {
    std::unique_ptr<Summary> s = Sum("r(a(b a(b)))");
    RewriterOptions opts;
    opts.use_view_index = true;
    opts.use_dp_enumeration = use_dp;
    opts.expansion.max_pieces = 2;
    Rewriter rw(*s, opts);
    rw.AddView({"P1", MustParsePattern("r(//b{id})")});
    rw.AddView({"P2", MustParsePattern("r(//a{id})")});
    RewriteStats stats;
    Result<std::vector<Rewriting>> r =
        rw.Rewrite(MustParsePattern("r(//a{id}(//b{id}))"), &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(stats.search_truncated) << "use_dp=" << use_dp;
  }
}

}  // namespace
}  // namespace svx
