#include "src/rewriting/rewriter.h"

#include <gtest/gtest.h>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_builder.h"
#include "src/summary/summary_io.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<Rewriting> RunRewrite(Rewriter* rw, std::string_view q,
                           RewriteStats* stats = nullptr) {
  Result<std::vector<Rewriting>> r = rw->Rewrite(MustParsePattern(q), stats);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(Rewriter, IdentityRewriting) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id})");
  ASSERT_FALSE(out.empty());
  EXPECT_NE(out[0].compact.find("V"), std::string::npos);
}

TEST(Rewriter, SummaryEquivalentView) {
  // §3.2: S = r(a(b)), q = /r//a//b, view = /r//b — equivalent under S.
  std::unique_ptr<Summary> s = Sum("r(a(b))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("r(//b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "r(//a(//b{id}))");
  EXPECT_FALSE(out.empty());
}

TEST(Rewriter, NoRewritingWhenViewTooNarrow) {
  std::unique_ptr<Summary> s = Sum("a(b d(b))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id})")});  // misses /a/d/b
  std::vector<Rewriting> out = RunRewrite(&rw, "a(//b{id})");
  EXPECT_TRUE(out.empty());
}

TEST(Rewriter, AttributeMismatchNoRewriting) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id})")});
  // The query needs the value, the view stores only the id.
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{v})");
  EXPECT_TRUE(out.empty());
}

TEST(Rewriter, ProjectionOfWiderView) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id,v,l})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{v})");
  ASSERT_FALSE(out.empty());
  // Output schema must be exactly the query column.
  EXPECT_EQ(out[0].plan->schema.size(), 1);
  EXPECT_EQ(out[0].plan->schema.column(0).kind, ColumnKind::kValue);
}

TEST(Rewriter, Figure6StructuralJoin) {
  // q = b under a; p1 provides all b's, p2 provides a's:
  // (p2 ⋈≺ p1) ≡S q. p4 is unrelated and pruned (Prop 3.4).
  std::unique_ptr<Summary> s = Sum("r(b a(b(c)) e(f))");
  Rewriter rw(*s);
  rw.AddView({"P1", MustParsePattern("r(//b{id})")});
  rw.AddView({"P2", MustParsePattern("r(//a{id})")});
  rw.AddView({"P4", MustParsePattern("r(/e{id}(/f))")});
  RewriteStats stats;
  std::vector<Rewriting> out = RunRewrite(&rw, "r(/a(/b{id}))", &stats);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(stats.views_total, 3u);
  EXPECT_EQ(stats.views_kept, 2u);  // P4 pruned by Prop 3.4
  bool join_found = false;
  for (const Rewriting& r : out) {
    join_found = join_found ||
                 (r.compact.find("P1") != std::string::npos &&
                  r.compact.find("P2") != std::string::npos);
  }
  EXPECT_TRUE(join_found) << out[0].compact;
}

TEST(Rewriter, Figure6UnionRewriting) {
  // Considering p1 = r//b as the query, a possible rewriting is q ∪ p3
  // (q = b under a, p3 = direct b child).
  std::unique_ptr<Summary> s = Sum("r(b a(b(c)))");
  Rewriter rw(*s);
  rw.AddView({"Q", MustParsePattern("r(//a(//b{id}))")});
  rw.AddView({"P3", MustParsePattern("r(/b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "r(//b{id})");
  ASSERT_FALSE(out.empty());
  bool union_found = false;
  for (const Rewriting& r : out) {
    union_found = union_found || r.compact.find("∪") != std::string::npos;
  }
  EXPECT_TRUE(union_found);
}

TEST(Rewriter, Figure5JoinPlusUnion) {
  // The Fig. 5 phenomenon: covering all b's needs (p1 ⋈= p2) ∪ p3 (or other
  // unions); no single view suffices.
  std::unique_ptr<Summary> s = Sum("r(a(c(b)) c(a(b)) b)");
  Rewriter rw(*s);
  rw.AddView({"P1", MustParsePattern("r(//a(//b{id}))")});
  rw.AddView({"P2", MustParsePattern("r(//c(//b{id}))")});
  rw.AddView({"P3", MustParsePattern("r(/b{id})")});
  RewriterOptions opts;
  opts.max_results = 8;
  Rewriter rw2(*s, opts);
  rw2.AddView({"P1", MustParsePattern("r(//a(//b{id}))")});
  rw2.AddView({"P2", MustParsePattern("r(//c(//b{id}))")});
  rw2.AddView({"P3", MustParsePattern("r(/b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw2, "r(//b{id})");
  ASSERT_FALSE(out.empty());
  for (const Rewriting& r : out) {
    // Every rewriting must be a union (no single candidate covers /r/b and
    // the deep paths simultaneously).
    EXPECT_NE(r.compact.find("∪"), std::string::npos) << r.compact;
    EXPECT_NE(r.compact.find("P3"), std::string::npos) << r.compact;
  }
}

TEST(Rewriter, Figure5NoPatternEquivalentToJoin) {
  // q4 = b's under a-above-c only: the join of p1 and p2 mixes both
  // orders (Prop 3.3) and cannot serve q4; no rewriting exists.
  std::unique_ptr<Summary> s = Sum("r(a(c(b)) c(a(b)) b)");
  Rewriter rw(*s);
  rw.AddView({"P1", MustParsePattern("r(//a(//b{id}))")});
  rw.AddView({"P2", MustParsePattern("r(//c(//b{id}))")});
  rw.AddView({"P3", MustParsePattern("r(/b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "r(//a(//c(//b{id})))");
  EXPECT_TRUE(out.empty());
}

TEST(Rewriter, IntroIdEqualityJoin) {
  // §1 "Exploiting ID properties": V1 and V2 have no common *stored* node
  // data, but structural IDs allow combining them on the item ids.
  std::unique_ptr<Summary> s = Sum("site(item(name description))");
  Rewriter rw(*s);
  rw.AddView({"V1", MustParsePattern("site(//item{id}(/description{c}))")});
  rw.AddView({"V2", MustParsePattern("site(//item{id}(/name{v}))")});
  std::vector<Rewriting> out =
      RunRewrite(&rw, "site(//item(/name{v} /description{c}))");
  ASSERT_FALSE(out.empty());
  bool joined = false;
  for (const Rewriting& r : out) {
    joined = joined || (r.compact.find("V1") != std::string::npos &&
                        r.compact.find("V2") != std::string::npos);
  }
  EXPECT_TRUE(joined);
}

TEST(Rewriter, VirtualParentIdJoin) {
  // §4.6: V stores c's id; the id of its parent b derives from it (navfID),
  // enabling a rewriting of a query on b.
  std::unique_ptr<Summary> s = Sum("a(b(c!))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(//c{id,v})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(//b{id})");
  ASSERT_FALSE(out.empty());
}

TEST(Rewriter, ContentUnfoldingNavigation) {
  // §1/§4.6: keyword data is reachable only by navigating inside stored
  // content (the A.C attribute of V1 in the intro example).
  std::unique_ptr<Summary> s = Sum("site(item(desc(keyword!)))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("site(//item{id,c})")});
  std::vector<Rewriting> out =
      RunRewrite(&rw, "site(//item{id}(//keyword{v}))");
  ASSERT_FALSE(out.empty());
  bool nav = false;
  for (const Rewriting& r : out) {
    nav = nav || r.compact.find("navC") != std::string::npos;
  }
  EXPECT_TRUE(nav) << out[0].compact;
}

TEST(Rewriter, LabelSelectionAdaptation) {
  // §4.6: a wildcard view node storing L serves a labeled query node via
  // σ L = label.
  std::unique_ptr<Summary> s = Sum("a(b c)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/*{id,l})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id})");
  // The piece for path /a/b has a concrete label; either the piece pinning
  // or the σ makes this work.
  ASSERT_FALSE(out.empty());
}

TEST(Rewriter, ValueSelectionAdaptation) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id,v})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id,v}[v>3])");
  ASSERT_FALSE(out.empty());
  bool has_select = false;
  for (const Rewriting& r : out) {
    has_select = has_select || r.compact.find("select") != std::string::npos;
  }
  EXPECT_TRUE(has_select) << out[0].compact;
}

TEST(Rewriter, PredicateContainedViewNeedsNoSelection) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id}[v=4])")});
  // View stores exactly v=4 nodes; query wants v=4.
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id}[v=4])");
  EXPECT_FALSE(out.empty());
  // But the view cannot answer the broader query.
  std::vector<Rewriting> broader = RunRewrite(&rw, "a(/b{id}[v>0])");
  EXPECT_TRUE(broader.empty());
}

TEST(Rewriter, OptionalViewAnswersRequiredQuery) {
  // The view keeps items without names (⊥); σ ≠ ⊥ strengthens it.
  std::unique_ptr<Summary> s = Sum("a(i(x))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/i{id}(?/x{id}))")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/i{id}(/x{id}))");
  ASSERT_FALSE(out.empty());
}

TEST(Rewriter, RequiredViewCannotAnswerOptionalQuery) {
  // The view lost the items without x; the optional query needs them.
  std::unique_ptr<Summary> s = Sum("a(i(x))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/i{id}(/x{id}))")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/i{id}(?/x{id}))");
  EXPECT_TRUE(out.empty());
}

TEST(Rewriter, OptionalViewAnswersOptionalQuery) {
  std::unique_ptr<Summary> s = Sum("a(i(x))");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/i{id}(?/x{id}))")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/i{id}(?/x{id}))");
  EXPECT_FALSE(out.empty());
}

TEST(Rewriter, StatsPopulated) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);
  rw.AddView({"V", MustParsePattern("a(/b{id})")});
  RewriteStats stats;
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id})", &stats);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(stats.views_total, 1u);
  EXPECT_EQ(stats.views_kept, 1u);
  EXPECT_GE(stats.equivalence_tests, 1u);
  EXPECT_GE(stats.first_ms, 0.0);
  EXPECT_GE(stats.total_ms, stats.first_ms);
  EXPECT_EQ(stats.results, out.size());
}

// The ViewIndex fast paths (signature Prop 3.4, coverage early-out, join
// pruning) and the containment memo must not change what is found: run
// several worlds both ways and compare the ranked compact forms.
TEST(Rewriter, FastPathsPreserveResults) {
  struct World {
    std::string summary;
    std::vector<std::pair<std::string, std::string>> views;
    std::vector<std::string> queries;
  };
  std::vector<World> worlds = {
      {"r(b a(b(c)) e(f))",
       {{"P1", "r(//b{id})"}, {"P2", "r(//a{id})"}, {"P4", "r(/e{id}(/f))"}},
       {"r(/a(/b{id}))", "r(//b{id})", "r(/e{id})"}},
      {"r(a(c(b)) c(a(b)) b)",
       {{"P1", "r(//a(//b{id}))"},
        {"P2", "r(//c(//b{id}))"},
        {"P3", "r(/b{id})"}},
       {"r(//b{id})", "r(//a(//c(//b{id})))"}},
      {"site(item(name description))",
       {{"V1", "site(//item{id}(/description{c}))"},
        {"V2", "site(//item{id}(/name{v}))"}},
       {"site(//item(/name{v} /description{c}))", "site(//item{id})"}},
      {"a(b(c!))",
       {{"V", "a(//c{id,v})"}},
       {"a(//b{id})", "a(//c{v}[v>2])", "a(/b{id}(/c{v}))"}},
      {"a(i(x))",
       {{"V", "a(/i{id}(?/x{id}))"}},
       {"a(/i{id}(/x{id}))", "a(/i{id}(?/x{id}))"}},
      // Regression: the wildcard node's associated paths on the STRICT
      // pattern exclude r/a (no b below), but the base expansion variant
      // erases the optional subtree and pins the wildcard at r/a too — the
      // view signature must not narrow serviceability to strict-pattern
      // paths, or the a{id} rewriting is wrongly pruned away.
      {"r(a e(b))",
       {{"V", "r(/*{id,l}(?/b{id}))"}},
       {"r(/a{id})", "r(/e{id})"}},
  };
  for (const World& w : worlds) {
    std::unique_ptr<Summary> s = Sum(w.summary);
    RewriterOptions slow;
    slow.use_view_index = false;
    slow.memoize_containment = false;
    RewriterOptions fast;
    fast.use_view_index = true;
    fast.memoize_containment = true;
    // Pin both configurations to the exhaustive enumerator: this test
    // isolates the ViewIndex fast paths, and the no-index side cannot run
    // the DP search (it needs coverage signatures), so enabling it on the
    // fast side would compare different search orders, not the same search
    // with and without the index. The DP-vs-exhaustive comparison lives in
    // plan_enum_test.cc.
    slow.use_dp_enumeration = false;
    fast.use_dp_enumeration = false;
    Rewriter rw_slow(*s, slow);
    Rewriter rw_fast(*s, fast);
    for (const auto& [name, pattern] : w.views) {
      rw_slow.AddView({name, MustParsePattern(pattern)});
      rw_fast.AddView({name, MustParsePattern(pattern)});
    }
    for (const std::string& q : w.queries) {
      std::vector<Rewriting> a = RunRewrite(&rw_slow, q);
      std::vector<Rewriting> b = RunRewrite(&rw_fast, q);
      ASSERT_EQ(a.size(), b.size()) << w.summary << " | " << q;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].compact, b[i].compact) << w.summary << " | " << q;
      }
    }
  }
}

TEST(Rewriter, CoverageEarlyOutOnUnservableColumn) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Rewriter rw(*s);  // use_view_index defaults to true
  rw.AddView({"V", MustParsePattern("a(/b{id})")});
  // The view is Prop 3.4-related but stores no V column: the signature
  // proves no view combination can serve the value, so the rewriter
  // answers empty without expanding or testing anything.
  RewriteStats stats;
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{v})", &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.views_kept, 1u);
  EXPECT_EQ(stats.candidates_pruned, 1u);  // the kept view, never expanded
  EXPECT_EQ(stats.candidates_built, 0u);
  EXPECT_EQ(stats.equivalence_tests, 0u);
}

TEST(Rewriter, MemoStatsPopulated) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  ContainmentMemo memo;
  RewriterOptions opts;
  opts.memo = &memo;
  Rewriter rw(*s, opts);
  rw.AddView({"V", MustParsePattern("a(/b{id})")});
  RewriteStats first;
  RunRewrite(&rw, "a(/b{id})", &first);
  EXPECT_GT(first.containment_memo_misses, 0u);
  // The same query again reuses the pinned memo's decisions.
  RewriteStats second;
  RunRewrite(&rw, "a(/b{id})", &second);
  EXPECT_GT(second.containment_memo_hits, 0u);
  EXPECT_EQ(second.containment_memo_misses, 0u);
}

TEST(Rewriter, StopAtFirst) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  RewriterOptions opts;
  opts.stop_at_first = true;
  Rewriter rw(*s, opts);
  rw.AddView({"V1", MustParsePattern("a(/b{id})")});
  rw.AddView({"V2", MustParsePattern("a(//b{id})")});
  std::vector<Rewriting> out = RunRewrite(&rw, "a(/b{id})");
  EXPECT_EQ(out.size(), 1u);
}

// End-to-end: rewrite, execute over materialized extents, compare with the
// direct evaluation of the query.
class RewriteExecuteTest : public ::testing::Test {
 protected:
  void SetUpWorld(std::string_view doc_text,
                  std::vector<std::pair<std::string, std::string>> views) {
    Result<std::unique_ptr<Document>> d = ParseTreeNotation(doc_text);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(*d);
    summary_ = SummaryBuilder::Build(doc_.get());
    rewriter_ = std::make_unique<Rewriter>(*summary_);
    for (auto& [name, pattern] : views) {
      ViewDef def{name, MustParsePattern(pattern)};
      views_.push_back({def, MaterializeView(def.pattern, name, *doc_)});
      rewriter_->AddView(def);
    }
    for (const MaterializedView& v : views_) {
      catalog_.Register(v.def.name, &v.extent);
    }
  }

  /// Rewrites `q`, executes every rewriting and compares to the reference
  /// extent of the query itself.
  void CheckAll(std::string_view q) {
    Pattern qp = MustParsePattern(q);
    Table reference = MaterializeView(qp, "Q", *doc_);
    Result<std::vector<Rewriting>> rws = rewriter_->Rewrite(qp);
    ASSERT_TRUE(rws.ok());
    ASSERT_FALSE(rws->empty()) << "no rewriting found for " << q;
    for (const Rewriting& r : *rws) {
      Result<Table> t = Execute(*r.plan, catalog_);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      EXPECT_TRUE(t->EqualsIgnoringOrder(reference))
          << "plan: " << r.compact << "\nplan result:\n"
          << t->ToString() << "\nreference:\n"
          << reference.ToString();
    }
  }

  std::unique_ptr<Document> doc_;
  std::unique_ptr<Summary> summary_;
  std::unique_ptr<Rewriter> rewriter_;
  std::vector<MaterializedView> views_;
  Catalog catalog_;
};

TEST_F(RewriteExecuteTest, SingleViewProjection) {
  SetUpWorld("a(b=1 b=2 b)", {{"V", "a(/b{id,v})"}});
  CheckAll("a(/b{v})");
  CheckAll("a(/b{id})");
}

TEST_F(RewriteExecuteTest, StructuralJoinPlan) {
  SetUpWorld("r(b a(b(c) b) a(b))",
             {{"P1", "r(//b{id})"}, {"P2", "r(//a{id})"}});
  CheckAll("r(/a(/b{id}))");
}

TEST_F(RewriteExecuteTest, IdJoinCombinesViews) {
  SetUpWorld("site(item(name=pen description=fine) item(name=ink "
             "description=blue))",
             {{"V1", "site(//item{id}(/description{v}))"},
              {"V2", "site(//item{id}(/name{v}))"}});
  CheckAll("site(//item(/name{v} /description{v}))");
}

TEST_F(RewriteExecuteTest, UnionPlan) {
  SetUpWorld("r(b=1 a(b=2 b=3))",
             {{"Q", "r(//a(//b{id,v}))"}, {"P3", "r(/b{id,v})"}});
  CheckAll("r(//b{id,v})");
}

TEST_F(RewriteExecuteTest, VirtualIdPlan) {
  SetUpWorld("a(b(c=1) b(c=2))", {{"V", "a(//c{id,v})"}});
  CheckAll("a(//b{id})");
}

TEST_F(RewriteExecuteTest, ContentNavigationPlan) {
  SetUpWorld("site(item(desc(keyword=k1 keyword=k2)) item(desc(keyword=k3)))",
             {{"V", "site(//item{id,c})"}});
  CheckAll("site(//item{id}(//keyword{v}))");
}

TEST_F(RewriteExecuteTest, OptionalQueryPreservesBottoms) {
  SetUpWorld("a(i(x=1) i)", {{"V", "a(/i{id}(?/x{v}))"}});
  CheckAll("a(/i{id}(?/x{v}))");
}

TEST_F(RewriteExecuteTest, NestedQueryGroupBy) {
  SetUpWorld("a(i(k=1 k=2) i(k=3) i)", {{"V", "a(/i{id}(?/k{v}))"}});
  CheckAll("a(/i{id}(n/k{v}))");
}

TEST_F(RewriteExecuteTest, NestedViewAnswersFlatQuery) {
  // Note: the *required*-k flat query is NOT rewritable from this view — a
  // V column alone cannot distinguish "item without k" from "item with a
  // valueless k", so only ⊥-witnessable (id/c/l) columns strengthen
  // optional edges.
  SetUpWorld("a(i(k=1 k=2) i(k=3) i)", {{"V", "a(/i{id}(n/k{v}))"}});
  CheckAll("a(/i{id}(?/k{v}))");
  CheckAll("a(/i{id}(n/k{v}))");
}

TEST_F(RewriteExecuteTest, NestedViewWithIdAnswersRequiredQuery) {
  SetUpWorld("a(i(k=1 k=2) i(k=3) i)", {{"V", "a(/i{id}(n/k{id,v}))"}});
  CheckAll("a(/i{id}(/k{id,v}))");
  CheckAll("a(/i{id}(n/k{id,v}))");
}

TEST_F(RewriteExecuteTest, ValueSelectionPlan) {
  SetUpWorld("a(b=1 b=5 b=9)", {{"V", "a(/b{id,v})"}});
  CheckAll("a(/b{id,v}[v>3])");
}

}  // namespace
}  // namespace svx
