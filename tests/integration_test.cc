// Integration tests: the full pipeline — generate an XMark-like document,
// build its Dataguide, materialize views, translate or parse queries,
// rewrite them, execute the plans and compare with direct evaluation — on
// realistic (paper §1) scenarios.
#include <gtest/gtest.h>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/annotated_pattern.h"
#include "src/rewriting/rewriter.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/util/rng.h"
#include "src/workload/pattern_generator.h"
#include "src/workload/xmark.h"
#include "src/xquery/xquery_translator.h"

namespace svx {
namespace {

class XmarkPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkOptions opts;
    opts.scale = 0.7;
    opts.seed = 7;
    doc_ = GenerateXmark(opts);
    summary_ = SummaryBuilder::Build(doc_.get());
  }

  void AddViews(std::vector<std::pair<std::string, std::string>> defs) {
    for (auto& [name, text] : defs) {
      ViewDef def{name, MustParsePattern(text)};
      views_.push_back({def, MaterializeView(def.pattern, name, *doc_)});
    }
    for (const MaterializedView& v : views_) {
      catalog_.Register(v.def.name, &v.extent);
    }
  }

  /// Rewrites `q` and checks every returned plan computes exactly the
  /// direct evaluation of the pattern. Returns the number of rewritings.
  size_t CheckQuery(const Pattern& q, bool expect_found = true) {
    Rewriter rewriter(*summary_);
    for (const MaterializedView& v : views_) rewriter.AddView(v.def);
    Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
    EXPECT_TRUE(rws.ok());
    if (!rws.ok()) return 0;
    if (expect_found) {
      EXPECT_FALSE(rws->empty());
    }
    Table reference = MaterializeView(q, "Q", *doc_);
    for (const Rewriting& r : *rws) {
      Result<Table> t = Execute(*r.plan, catalog_);
      EXPECT_TRUE(t.ok()) << t.status().ToString();
      if (!t.ok()) continue;
      EXPECT_TRUE(t->EqualsIgnoringOrder(reference))
          << "plan " << r.compact << " returned " << t->NumRows()
          << " rows, reference has " << reference.NumRows();
    }
    return rws->size();
  }

  std::unique_ptr<Document> doc_;
  std::unique_ptr<Summary> summary_;
  std::vector<MaterializedView> views_;
  Catalog catalog_;
};

TEST_F(XmarkPipeline, ItemNameViewAnswersRegionQueries) {
  AddViews({{"V", "site(//item{id}(/name{v}))"}});
  CheckQuery(MustParsePattern("site(//regions(//item(/name{v})))"));
  CheckQuery(MustParsePattern("site(//item{id})"));
}

TEST_F(XmarkPipeline, IdJoinAcrossTwoViews) {
  AddViews({{"V1", "site(//item{id}(/quantity{v}))"},
            {"V2", "site(//item{id}(/name{v}))"}});
  CheckQuery(MustParsePattern("site(//item(/name{v} /quantity{v}))"));
}

TEST_F(XmarkPipeline, StructuralJoinRebuildsScope) {
  AddViews({{"VA", "site(//open_auction{id})"},
            {"VI", "site(//increase{id,v})"}});
  CheckQuery(MustParsePattern(
      "site(//open_auctions(/open_auction{id}(/bidder(/increase{v}))))"));
}

TEST_F(XmarkPipeline, ContentNavigationServesKeywordQuery) {
  AddViews({{"V", "site(//item{id}(/description{c}))"}});
  CheckQuery(
      MustParsePattern("site(//item{id}(/description(//keyword{v})))"));
}

TEST_F(XmarkPipeline, IntroNestedQueryFromDedicatedView) {
  AddViews({{"V1",
             "site(//item{id}(//mail ?/name{v} "
             "?//listitem{id}(?//keyword{c})))"}});
  Result<Pattern> q = XQueryToPattern(
      "for $x in doc(\"XMark.xml\")//item[.//mail] return "
      "<res>{ $x/name/text(), "
      "for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>",
      "site");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  CheckQuery(*q);
}

TEST_F(XmarkPipeline, PersonProfileQueries) {
  AddViews({{"VP", "site(//person{id}(/name{v}))"},
            {"VG", "site(//profile{id}(/gender{v}))"}});
  CheckQuery(MustParsePattern(
      "site(//people(/person{id}(/name{v} /profile(/gender{v}))))"));
}

TEST_F(XmarkPipeline, UnsatisfiableQueryHasTrivialAnswer) {
  AddViews({{"V", "site(//item{id})"}});
  // No 'nonexistent' tag anywhere: the reference extent is empty and the
  // rewriter need not find anything.
  Pattern q = MustParsePattern("site(//nonexistent{id})");
  Rewriter rewriter(*summary_);
  for (const MaterializedView& v : views_) rewriter.AddView(v.def);
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(q);
  ASSERT_TRUE(rws.ok());
  for (const Rewriting& r : *rws) {
    Result<Table> t = Execute(*r.plan, catalog_);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->NumRows(), 0);
  }
}

// Randomized end-to-end: a random query whose own pattern is also a view
// must always be rewritable, and every plan must reproduce the reference.
class RandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomRoundTrip, QueryAsViewAlwaysRewrites) {
  int seed = GetParam();
  XmarkOptions opts;
  opts.scale = 0.4;
  opts.seed = 11;
  std::unique_ptr<Document> doc = GenerateXmark(opts);
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(doc.get());

  Rng rng(static_cast<uint64_t>(seed) * 6151 + 13);
  PatternGenOptions gen;
  gen.num_nodes = 3 + seed % 3;
  gen.num_return = 1;
  gen.p_pred = 0.0;
  gen.p_optional = 0.0;
  // Wildcard nodes can exceed the piece budget (the rewriter then refuses
  // the view rather than track an incomplete union); keep labels concrete.
  gen.p_star = 0.0;
  gen.return_labels = {"item"};
  Result<Pattern> q = GeneratePattern(*summary, gen, &rng);
  if (!q.ok()) GTEST_SKIP();
  // Give every return node ID+V so the view is self-sufficient.
  Pattern view_pattern = *q;
  for (PatternNodeId n : view_pattern.ReturnNodes()) {
    view_pattern.mutable_node(n).attrs = kAttrId;
  }

  ViewDef def{"SELF", view_pattern};
  // Views whose skeleton has too many summary embeddings are refused by the
  // expansion (the piece-set union would be incomplete otherwise); such
  // draws are out of scope for the round-trip property.
  Result<std::vector<Candidate>> expanded =
      ExpandView(def, *summary, {}, ExpansionOptions{});
  if (!expanded.ok() || expanded->empty()) GTEST_SKIP();

  MaterializedView view{def, MaterializeView(view_pattern, "SELF", *doc)};
  Catalog catalog;
  catalog.Register("SELF", &view.extent);

  Pattern query = view_pattern;  // identical demands
  Rewriter rewriter(*summary);
  rewriter.AddView(def);
  Result<std::vector<Rewriting>> rws = rewriter.Rewrite(query);
  ASSERT_TRUE(rws.ok());
  ASSERT_FALSE(rws->empty());
  Table reference = MaterializeView(query, "Q", *doc);
  for (const Rewriting& r : *rws) {
    Result<Table> t = Execute(*r.plan, catalog);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->EqualsIgnoringOrder(reference)) << r.compact;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace svx
