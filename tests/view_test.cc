#include "src/rewriting/view.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ViewSchema, ColumnsFollowPatternPreorder) {
  Pattern p = MustParsePattern("a(//b{id,v} /c{l}(/d{c}))");
  Schema s = ViewSchema(p, "V");
  EXPECT_EQ(s.ToString(),
            "V.n1.id:id, V.n1.v:v, V.n2.l:l, V.n3.c:c");
}

TEST(ViewSchema, NestedEdgeCollapsesToOneColumn) {
  Pattern p = MustParsePattern("a(//b{id}(n//c{v,c}))");
  Schema s = ViewSchema(p, "V");
  ASSERT_EQ(s.size(), 2);
  EXPECT_EQ(s.column(0).name, "V.n1.id");
  EXPECT_EQ(s.column(1).name, "V.n2.g");
  EXPECT_EQ(s.column(1).kind, ColumnKind::kNested);
  EXPECT_EQ(s.column(1).nested->ToString(), "V.n2.v:v, V.n2.c:c");
}

TEST(MaterializeView, SimpleExtent) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=2 c)");
  Pattern p = MustParsePattern("a(/b{id,v})");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.row(0)[0].AsId().ToString(), "1.1");
  EXPECT_EQ(t.row(0)[1].AsString(), "1");
  EXPECT_EQ(t.row(1)[1].AsString(), "2");
}

TEST(MaterializeView, ValueColumnNullWhenNodeHasNoValue) {
  std::unique_ptr<Document> d = Doc("a(b)");
  Pattern p = MustParsePattern("a(/b{v})");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 1);
  EXPECT_TRUE(t.row(0)[0].IsNull());
}

TEST(MaterializeView, OptionalEdgeNullPadding) {
  // Paper Figure 1 / §4.3: a tuple is produced even when the optional
  // subtree has no match, with ⊥.
  std::unique_ptr<Document> d = Doc("a(i(x=1) i)");
  Pattern p = MustParsePattern("a(/i{id}(?/x{v}))");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.row(0)[1].AsString(), "1");
  EXPECT_TRUE(t.row(1)[1].IsNull());
}

TEST(MaterializeView, NestedEdgeGroupsBindings) {
  // Figure 12: data from all matches appears as a grouped table inside the
  // single tuple of the ancestor.
  std::unique_ptr<Document> d = Doc("a(i(k=1 k=2) i(k=3) i)");
  Pattern p = MustParsePattern("a(/i{id}(n/k{v}))");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 3);
  EXPECT_EQ(t.row(0)[1].AsTable().NumRows(), 2);
  EXPECT_EQ(t.row(1)[1].AsTable().NumRows(), 1);
  EXPECT_EQ(t.row(2)[1].AsTable().NumRows(), 0);  // empty table, row kept
}

TEST(MaterializeView, ContentColumnReferencesDocument) {
  std::unique_ptr<Document> d = Doc("a(b(x=1))");
  Pattern p = MustParsePattern("a(/b{c})");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 1);
  const NodeRef& ref = t.row(0)[0].AsContent();
  EXPECT_EQ(ref.doc, d.get());
  EXPECT_EQ(ref.doc->label(ref.node), "b");
}

TEST(MaterializeView, LabelColumnForWildcard) {
  std::unique_ptr<Document> d = Doc("a(b c)");
  Pattern p = MustParsePattern("a(/*{l})");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.row(0)[0].AsString(), "b");
  EXPECT_EQ(t.row(1)[0].AsString(), "c");
}

TEST(MaterializeView, PredicateFilters) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=5)");
  Pattern p = MustParsePattern("a(/b{id}[v>3])");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.row(0)[0].AsId().ToString(), "1.2");
}

TEST(MaterializeView, PaperFigure1V1Shape) {
  // The intro example: V1 stores item IDs, the content of their optional
  // listitem descendants (nested), and an optional bold value.
  std::unique_ptr<Document> d = Doc(
      "site(regions(asia("
      "item(description(parlist(listitem(keyword=Columbus) "
      "listitem(bold=gold)))) "
      "item(description(parlist(listitem(text=plain)))) "
      "item(name=x))))");
  Pattern v1 = MustParsePattern(
      "site(//regions(//*{id}(/description(/parlist("
      "?n/listitem{c} ?//bold{v})))))");
  Table t = MaterializeView(v1, "V1", *d);
  // Three items: two with parlists, one without (no description/parlist ->
  // no row for it, since only the listitem/bold parts are optional).
  EXPECT_EQ(t.NumRows(), 2);
}

TEST(MaterializeView, RootOnlyPattern) {
  std::unique_ptr<Document> d = Doc("a(b)");
  Pattern p = MustParsePattern("a{id}");
  Table t = MaterializeView(p, "V", *d);
  ASSERT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.row(0)[0].AsId().ToString(), "1");
}

TEST(MaterializeView, NoMatchEmptyExtent) {
  std::unique_ptr<Document> d = Doc("a(b)");
  Pattern p = MustParsePattern("a(/z{id})");
  Table t = MaterializeView(p, "V", *d);
  EXPECT_EQ(t.NumRows(), 0);
}

TEST(MaterializeAll, MultipleViews) {
  std::unique_ptr<Document> d = Doc("a(b=1 c=2)");
  std::vector<ViewDef> defs;
  defs.push_back({"V1", MustParsePattern("a(/b{v})")});
  defs.push_back({"V2", MustParsePattern("a(/c{v})")});
  std::vector<MaterializedView> views = MaterializeAll(defs, *d);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].extent.NumRows(), 1);
  EXPECT_EQ(views[1].extent.NumRows(), 1);
}

}  // namespace
}  // namespace svx
