// Property-based tests: randomized checks of the semantic contracts that
// the paper's propositions rest on.
//   * Containment soundness: whenever IsContained(p, q) holds, p(d) ⊆ q(d)
//     on random documents conforming to the summary (Def. 3.1).
//   * Satisfiability soundness: a pattern with a nonempty result on a
//     conforming document is S-satisfiable (Prop. 2.1).
//   * Evaluation/materialization agreement: the row evaluator and the view
//     materializer agree on result cardinality for ID-only patterns.
//   * Canonical-model witnesses: every canonical tree weakly conforms to
//     the summary and reproduces its own return tuple.
#include <gtest/gtest.h>

#include "src/containment/containment.h"
#include "src/pattern/canonical.h"
#include "src/pattern/evaluator.h"
#include "src/pattern/pattern_printer.h"
#include "src/rewriting/view.h"
#include "src/summary/summary_builder.h"
#include "src/summary/summary_io.h"
#include "src/util/rng.h"
#include "src/workload/pattern_generator.h"
#include "src/xml/builder.h"
#include "src/xml/serializer.h"

namespace svx {
namespace {

/// Generates a random document weakly conforming to `summary`: children per
/// child-path drawn from [min, max], where strong edges force min >= 1 and
/// one-to-one edges force exactly 1.
std::unique_ptr<Document> RandomConformingDoc(const Summary& summary,
                                              Rng* rng, int max_fanout = 2,
                                              int max_nodes = 400) {
  DocumentBuilder b;
  int budget = max_nodes;
  std::function<void(PathId, int)> emit = [&](PathId path, int depth) {
    b.StartElement(summary.label(path));
    if (rng->Bernoulli(0.6)) {
      b.AppendValue(std::to_string(rng->Uniform(0, 9)));
    }
    for (PathId c : summary.children(path)) {
      int lo = summary.strong_edge(c) ? 1 : 0;
      int hi = summary.one_to_one(c) ? 1 : max_fanout;
      if (summary.one_to_one(c)) lo = 1;
      int count = static_cast<int>(rng->Uniform(lo, hi));
      if (budget <= 0) count = lo;  // keep strong edges satisfied
      for (int i = 0; i < count && depth < 24; ++i) {
        --budget;
        emit(c, depth + 1);
      }
    }
    b.EndElement();
  };
  emit(summary.root(), 1);
  return b.Finish();
}

/// Node tuples of p(d), ignoring nesting sequences.
std::vector<std::vector<int32_t>> Tuples(const Pattern& p,
                                         const Document& d) {
  std::vector<std::vector<int32_t>> out;
  for (const EvalRow& r : EvaluateOnDocument(p, d)) out.push_back(r.nodes);
  std::sort(out.begin(), out.end());
  return out;
}

bool SubsetOf(const std::vector<std::vector<int32_t>>& a,
              const std::vector<std::vector<int32_t>>& b) {
  for (const auto& t : a) {
    if (!std::binary_search(b.begin(), b.end(), t)) return false;
  }
  return true;
}

class ContainmentSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentSoundness, PositiveDecisionsHoldOnRandomDocuments) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 3);
  // A small summary with recursion-free structure and constraints.
  Result<std::unique_ptr<Summary>> sr =
      ParseSummary("a(b!(c d(c! e)) f(b(c) g!!) h)");
  ASSERT_TRUE(sr.ok());
  const Summary& s = **sr;

  PatternGenOptions gen;
  gen.num_nodes = 2 + seed % 5;
  gen.num_return = 1;
  gen.p_pred = 0.15;
  gen.p_optional = 0.4;
  gen.return_labels = {};

  Result<Pattern> p = GeneratePattern(s, gen, &rng);
  Result<Pattern> q = GeneratePattern(s, gen, &rng);
  if (!p.ok() || !q.ok()) GTEST_SKIP();

  Result<bool> contained = IsContained(*p, *q, s);
  ASSERT_TRUE(contained.ok());
  if (!*contained) GTEST_SKIP();  // only positive decisions are checked

  for (int d = 0; d < 8; ++d) {
    std::unique_ptr<Document> doc = RandomConformingDoc(s, &rng);
    ASSERT_TRUE(WeaklyConforms(*doc, s)) << ToTreeNotation(*doc);
    auto tp = Tuples(*p, *doc);
    auto tq = Tuples(*q, *doc);
    EXPECT_TRUE(SubsetOf(tp, tq))
        << "p = " << PatternToString(*p) << "\nq = " << PatternToString(*q)
        << "\ndoc = " << ToTreeNotation(*doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContainmentSoundness,
                         ::testing::Range(0, 40));

class SatisfiabilitySoundness : public ::testing::TestWithParam<int> {};

TEST_P(SatisfiabilitySoundness, NonEmptyResultsImplySatisfiable) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 17);
  Result<std::unique_ptr<Summary>> sr =
      ParseSummary("a(b!(c d(c! e)) f(b(c) g!!) h)");
  ASSERT_TRUE(sr.ok());
  const Summary& s = **sr;

  PatternGenOptions gen;
  gen.num_nodes = 2 + seed % 6;
  gen.num_return = 1;
  gen.p_pred = 0.0;  // document values are random; keep the check structural
  gen.p_optional = 0.3;
  gen.return_labels = {};
  Result<Pattern> p = GeneratePattern(s, gen, &rng);
  if (!p.ok()) GTEST_SKIP();

  std::unique_ptr<Document> doc = RandomConformingDoc(s, &rng);
  if (Tuples(*p, *doc).empty()) GTEST_SKIP();
  Result<bool> sat = IsSatisfiable(*p, s);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat) << PatternToString(*p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SatisfiabilitySoundness,
                         ::testing::Range(0, 30));

class EvaluatorMaterializerAgreement : public ::testing::TestWithParam<int> {
};

TEST_P(EvaluatorMaterializerAgreement, SameCardinalityForIdPatterns) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  Result<std::unique_ptr<Summary>> sr = ParseSummary("a(b(c d) e(b(c)))");
  ASSERT_TRUE(sr.ok());
  const Summary& s = **sr;
  PatternGenOptions gen;
  gen.num_nodes = 2 + seed % 5;
  gen.num_return = 1 + seed % 2;
  gen.p_pred = 0.0;
  gen.return_labels = {};
  Result<Pattern> p = GeneratePattern(s, gen, &rng);
  if (!p.ok()) GTEST_SKIP();
  // IDs identify nodes uniquely, so row sets must have equal size.
  std::unique_ptr<Document> doc = RandomConformingDoc(s, &rng);
  size_t eval_rows = Tuples(*p, *doc).size();
  Table extent = MaterializeView(*p, "V", *doc);
  EXPECT_EQ(eval_rows, static_cast<size_t>(extent.NumRows()))
      << PatternToString(*p) << "\ndoc = " << ToTreeNotation(*doc);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvaluatorMaterializerAgreement,
                         ::testing::Range(0, 30));

class CanonicalWitness : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalWitness, TreesReproduceTheirReturnTuples) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 1299709 + 11);
  Result<std::unique_ptr<Summary>> sr =
      ParseSummary("a(b!(c d(c! e)) f(b(c) g!!) h)");
  ASSERT_TRUE(sr.ok());
  const Summary& s = **sr;
  PatternGenOptions gen;
  gen.num_nodes = 2 + seed % 5;
  gen.num_return = 1;
  gen.p_pred = 0.2;
  gen.p_optional = 0.4;
  gen.return_labels = {};
  Result<Pattern> p = GeneratePattern(s, gen, &rng);
  if (!p.ok()) GTEST_SKIP();
  Result<std::vector<CanonicalTree>> model = BuildCanonicalModel(*p, s);
  ASSERT_TRUE(model.ok());
  for (const CanonicalTree& te : *model) {
    // Structure sanity: parents precede children, root is the summary root.
    ASSERT_GT(te.size(), 0);
    EXPECT_EQ(te.paths[0], s.root());
    for (int32_t n = 1; n < te.size(); ++n) {
      EXPECT_LT(te.parents[static_cast<size_t>(n)], n);
      EXPECT_EQ(s.parent(te.paths[static_cast<size_t>(n)]),
                te.paths[static_cast<size_t>(
                    te.parents[static_cast<size_t>(n)])]);
    }
    // Witness property (Prop 2.1 / §4.3): the tree reproduces its own
    // return tuple under satisfiability semantics.
    CanonicalTreeView view(te, s);
    std::vector<EvalRow> rows =
        EvaluateReturnRows(*p, view, FormulaMode::kSatisfiability);
    EXPECT_TRUE(ContainsNodeTuple(rows, te.return_tuple))
        << PatternToString(*p);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CanonicalWitness, ::testing::Range(0, 30));

}  // namespace
}  // namespace svx
