#include "src/viewstore/catalog_snapshot.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

std::shared_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::shared_ptr<Document>(std::move(r).value());
}

TEST(CatalogSnapshot, EpochsAreImmutableAndMonotonic) {
  std::shared_ptr<Document> d = Doc("a(b=1 b=2)");
  ViewCatalog catalog;
  std::shared_ptr<const CatalogSnapshot> empty = catalog.Snapshot();
  EXPECT_EQ(empty->size(), 0);

  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());
  std::shared_ptr<const CatalogSnapshot> one = catalog.Snapshot();
  EXPECT_GT(one->epoch(), empty->epoch());
  ASSERT_NE(one->Find("V"), nullptr);
  EXPECT_EQ(one->Find("V")->stats.num_rows, 2);

  // A document update publishes a successor; the held epoch is unchanged.
  Result<UpdateResult> up = InsertSubtree(*d, OrdPath::Root(), *Doc("b=3"));
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta).ok());
  std::shared_ptr<const CatalogSnapshot> two = catalog.Snapshot();
  EXPECT_GT(two->epoch(), one->epoch());
  EXPECT_EQ(one->Find("V")->stats.num_rows, 2) << "published epoch mutated";
  EXPECT_EQ(two->Find("V")->stats.num_rows, 3);
  // The old epoch still executes against its own extents.
  Result<Table> rows =
      Execute(*MakeViewScan("V", one->Find("V")->extent().schema()),
              one->ExecutorCatalog());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->NumRows(), 2);
}

TEST(CatalogSnapshot, UntouchedContentFreeViewsAreSharedAcrossEpochs) {
  std::shared_ptr<Document> d = Doc("a(b=1 c=2)");
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"VB", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog.Materialize({"VC", MustParsePattern("a(/c{id,v})")}, *d).ok());
  std::shared_ptr<const CatalogSnapshot> before = catalog.Snapshot();

  Result<UpdateResult> up = InsertSubtree(*d, OrdPath::Root(), *Doc("b=7"));
  ASSERT_TRUE(up.ok());
  MaintenanceStats ms;
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta, &ms).ok());
  EXPECT_EQ(ms.views_touched, 1);
  EXPECT_EQ(ms.views_shared, 1);
  std::shared_ptr<const CatalogSnapshot> after = catalog.Snapshot();
  // Copy-on-maintenance: the untouched view is the same object in both
  // epochs, the touched one was replaced.
  EXPECT_EQ(before->Find("VC"), after->Find("VC"));
  EXPECT_NE(before->Find("VB"), after->Find("VB"));
}

TEST(CatalogSnapshot, OldEpochKeepsRetiredDocumentAlive) {
  std::shared_ptr<Document> d = Doc("a(b(x=1) b(x=2))");
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(d.get()));
  ViewCatalog catalog;
  // A content view stores references INTO the document, so epoch lifetime
  // must pin document lifetime.
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,c})")}, *d).ok());
  catalog.BindDocument(d, summary);
  std::shared_ptr<const CatalogSnapshot> old_epoch = catalog.Snapshot();
  EXPECT_EQ(old_epoch->document(), d.get());

  Result<UpdateResult> up = InsertSubtree(*d, OrdPath::Root(), *Doc("b(x=3)"));
  ASSERT_TRUE(up.ok());
  std::shared_ptr<Document> d2(std::move(up->doc));
  std::shared_ptr<Summary> summary2(SummaryBuilder::Build(d2.get()));
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta, d2, summary2).ok());

  // The writer drops every reference to the old document; the held epoch
  // keeps it alive and its content references stay valid.
  std::weak_ptr<Document> old_doc_alive = d;
  d.reset();
  summary.reset();
  ASSERT_FALSE(old_doc_alive.expired());
  const StoredView* v = old_epoch->Find("V");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->stats.num_rows, 2);
  for (const Tuple& row : v->extent().rows()) {
    const Value& content = row[1];
    ASSERT_TRUE(content.IsContent());
    EXPECT_EQ(content.AsContent().doc, old_epoch->document());
  }
  // The new epoch serves the new document...
  EXPECT_EQ(catalog.Snapshot()->document(), d2.get());
  // ...and retiring the last reader retires the old document with it.
  old_epoch.reset();
  EXPECT_TRUE(old_doc_alive.expired());
}

TEST(CatalogSnapshot, RewriteCacheIsFreshPerEpochWithContinuousCounters) {
  std::shared_ptr<Document> d = Doc("a(b=1 b=2 c=3)");
  std::unique_ptr<Summary> summary = SummaryBuilder::Build(d.get());
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *d).ok());

  std::shared_ptr<const CatalogSnapshot> snap = catalog.Snapshot();
  RewriterOptions opts;
  opts.memo = snap->containment_memo();
  Rewriter rw(*summary, opts);
  for (const auto& v : snap->views()) rw.AddView(v->def);
  Pattern q = MustParsePattern("a(/b{v})");
  Result<std::vector<Rewriting>> cold =
      CachedRewrite(snap->rewrite_cache(), &rw, q);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(snap->rewrite_cache()->size(), 1u);
  EXPECT_EQ(snap->rewrite_cache()->misses(), 1u);

  // A view-set mutation: successor epoch starts cold (that IS the
  // invalidation) but the cumulative counters carry.
  ASSERT_TRUE(
      catalog.Materialize({"W", MustParsePattern("a(/c{id,v})")}, *d).ok());
  std::shared_ptr<const CatalogSnapshot> next = catalog.Snapshot();
  EXPECT_NE(next->rewrite_cache(), snap->rewrite_cache());
  EXPECT_EQ(next->rewrite_cache()->size(), 0u);
  EXPECT_EQ(next->rewrite_cache()->misses(), 1u);
  EXPECT_EQ(next->rewrite_cache()->invalidations(), 1u);
  // The old epoch still serves its plans.
  EXPECT_EQ(snap->rewrite_cache()->size(), 1u);
  // The containment memo is summary-bound, not view-set-bound: shared.
  EXPECT_EQ(next->containment_memo(), snap->containment_memo());

  // A document change replaces the memo.
  Result<UpdateResult> up = InsertSubtree(*d, OrdPath::Root(), *Doc("b=9"));
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(catalog.ApplyUpdate(up->delta).ok());
  EXPECT_NE(catalog.Snapshot()->containment_memo(), snap->containment_memo());
}

TEST(CatalogSnapshot, SharedViewIndexMatchesPerRewriterIndex) {
  std::shared_ptr<Document> d = Doc("a(b=1 b=2 c(e=3))");
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(d.get()));
  ViewCatalog catalog;
  ASSERT_TRUE(
      catalog.Materialize({"VB", MustParsePattern("a(/b{id,v})")}, *d).ok());
  ASSERT_TRUE(
      catalog.Materialize({"VE", MustParsePattern("a(//e{id,v})")}, *d).ok());
  catalog.BindDocument(d, summary);
  std::shared_ptr<const CatalogSnapshot> snap = catalog.Snapshot();

  RewriterOptions opts;
  std::shared_ptr<const ViewIndex> index =
      snap->ViewIndexFor(*snap->summary(), opts.expansion);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 2);
  // One build per expansion fingerprint for the pinned summary: same
  // object on re-request.
  EXPECT_EQ(snap->ViewIndexFor(*snap->summary(), opts.expansion).get(),
            index.get());
  // A caller-owned summary (lifetime not pinned by the snapshot) gets a
  // fresh, uncached index — correct results, no ABA hazard.
  std::unique_ptr<Summary> external = SummaryBuilder::Build(d.get());
  EXPECT_NE(snap->ViewIndexFor(*external, opts.expansion).get(),
            index.get());

  for (const char* q : {"a(/b{v})", "a(//e{v})", "a(/c{id})"}) {
    Rewriter with_shared(*summary, [&]() {
      RewriterOptions o;
      o.shared_view_index = index.get();
      return o;
    }());
    Rewriter without(*summary);
    for (const auto& v : snap->views()) {
      with_shared.AddView(v->def);
      without.AddView(v->def);
    }
    Result<std::vector<Rewriting>> a =
        with_shared.Rewrite(MustParsePattern(q));
    Result<std::vector<Rewriting>> b = without.Rewrite(MustParsePattern(q));
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].compact, (*b)[i].compact) << q;
    }
  }
}

}  // namespace
}  // namespace svx
