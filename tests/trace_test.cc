#include "src/observability/trace.h"

#include <gtest/gtest.h>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/json_writer.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(TraceSpanTest, NullParentIsInert) {
  ScopedSpan span(nullptr, "ignored");
  EXPECT_EQ(span.get(), nullptr);
  span.Attr("key", int64_t{1});  // must be a no-op, not a crash
  ScopedSpan child(span.get(), "nested");
  EXPECT_EQ(child.get(), nullptr);
}

TEST(TraceSpanTest, TreeShapeAndDurations) {
  Trace trace("root");
  TraceSpan* a = trace.root()->StartChild("a");
  TraceSpan* a1 = a->StartChild("a1");
  a1->End();
  a->End();
  TraceSpan* b = trace.root()->StartChild("b");
  b->End();

  ASSERT_EQ(trace.root()->children().size(), 2u);
  const TraceSpan* found_a = trace.root()->FindChild("a");
  ASSERT_NE(found_a, nullptr);
  EXPECT_EQ(found_a->children().size(), 1u);
  EXPECT_NE(found_a->FindChild("a1"), nullptr);
  EXPECT_EQ(trace.root()->FindChild("missing"), nullptr);
  EXPECT_GE(found_a->duration_us(), found_a->FindChild("a1")->duration_us());
  EXPECT_GE(trace.root()->FindChild("b")->duration_us(), 0);
}

TEST(TraceSpanTest, EndIsIdempotent) {
  Trace trace("root");
  TraceSpan* a = trace.root()->StartChild("a");
  a->End();
  int64_t d = a->duration_us();
  a->End();
  EXPECT_EQ(a->duration_us(), d);
}

TEST(TraceSpanTest, RenderJsonEscapesAndShapes) {
  Trace trace("q\"uote");
  TraceSpan* a = trace.root()->StartChild("child");
  a->AddAttr("view", "a\nb");
  a->AddAttr("rows", int64_t{42});
  a->AddAttr("cost", 1.5);
  a->End();
  std::string json = trace.RenderJson();
  EXPECT_NE(json.find("\"q\\\"uote\""), std::string::npos);
  EXPECT_NE(json.find("\"a\\nb\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"cost\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"duration_us\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

class ServingTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = Doc("a(b=1 b=2 c=3)");
    summary_ = SummaryBuilder::Build(doc_.get());
    ASSERT_TRUE(
        catalog_.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *doc_)
            .ok());
  }

  std::unique_ptr<Document> doc_;
  std::unique_ptr<Summary> summary_;
  ViewCatalog catalog_;
};

TEST_F(ServingTraceTest, NestedRewriteProducesPhaseSpans) {
  Trace trace("query");
  RewriterOptions opts;
  opts.memo = catalog_.containment_memo();
  opts.trace = trace.root();
  Rewriter rw(*summary_, opts);
  for (const auto& v : catalog_.views()) rw.AddView(v->def);

  Result<std::vector<Rewriting>> rws =
      CachedRewrite(catalog_.rewrite_cache(), &rw,
                    MustParsePattern("a(/b{v})"), nullptr);
  ASSERT_TRUE(rws.ok()) << rws.status().ToString();
  ASSERT_FALSE(rws->empty());

  // cache-lookup (miss) and the rewrite span, as siblings under the root.
  EXPECT_NE(trace.root()->FindChild("cache-lookup"), nullptr);
  const TraceSpan* rewrite = trace.root()->FindChild("rewrite");
  ASSERT_NE(rewrite, nullptr);
  EXPECT_FALSE(rewrite->children().empty());
  EXPECT_NE(rewrite->FindChild("analyze"), nullptr);
  EXPECT_NE(rewrite->FindChild("prune-views"), nullptr);
  // The DP enumerator folds single-view matching and join enumeration into
  // one plan-enum phase (the legacy path would emit match-single-views).
  EXPECT_NE(rewrite->FindChild("plan-enum"), nullptr);
  EXPECT_NE(rewrite->FindChild("rank-by-cost"), nullptr);

  // The executor attaches a per-operator span tree under the same root.
  const size_t before = trace.root()->children().size();
  Result<Table> out =
      Execute(*rws->front().plan, catalog_.ExecutorCatalog(), trace.root());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(trace.root()->children().size(), before);

  std::string json = trace.RenderJson();
  EXPECT_NE(json.find("\"rewrite\""), std::string::npos);
  EXPECT_NE(json.find("out_rows"), std::string::npos);
}

TEST_F(ServingTraceTest, WarmLookupTracesTheHit) {
  RewriterOptions opts;
  opts.memo = catalog_.containment_memo();
  Rewriter rw(*summary_, opts);
  for (const auto& v : catalog_.views()) rw.AddView(v->def);
  Pattern q = MustParsePattern("a(/b{v})");
  ASSERT_TRUE(CachedRewrite(catalog_.rewrite_cache(), &rw, q, nullptr).ok());

  Trace trace("warm");
  RewriterOptions topts = opts;
  topts.trace = trace.root();
  Rewriter traced(*summary_, topts);
  for (const auto& v : catalog_.views()) traced.AddView(v->def);
  Result<std::vector<Rewriting>> rws =
      CachedRewrite(catalog_.rewrite_cache(), &traced, q, nullptr);
  ASSERT_TRUE(rws.ok());

  // Served warm: a cache-lookup span but no rewrite phases.
  EXPECT_NE(trace.root()->FindChild("cache-lookup"), nullptr);
  EXPECT_EQ(trace.root()->FindChild("rewrite"), nullptr);
  EXPECT_NE(trace.RenderJson().find("\"hit\": \"true\""), std::string::npos);
}

}  // namespace
}  // namespace svx
