#include <gtest/gtest.h>

#include "src/algebra/executor.h"
#include "src/algebra/plan_printer.h"
#include "src/algebra/relation.h"
#include "src/algebra/value.h"

namespace svx {
namespace {

Schema IdValueSchema(const std::string& prefix) {
  Schema s;
  s.Append({prefix + ".id", ColumnKind::kId, nullptr});
  s.Append({prefix + ".v", ColumnKind::kValue, nullptr});
  return s;
}

Tuple Row(const std::string& id, const std::string& v) {
  Tuple t;
  t.emplace_back(OrdPath::FromString(id));
  if (v.empty()) {
    t.emplace_back();
  } else {
    t.emplace_back(v);
  }
  return t;
}

TEST(Value, BasicsAndEquality) {
  Value null;
  EXPECT_TRUE(null.IsNull());
  EXPECT_EQ(null.ToString(), "⊥");
  Value s{std::string("x")};
  EXPECT_TRUE(s.IsString());
  EXPECT_EQ(s, Value{std::string("x")});
  EXPECT_NE(s, Value{std::string("y")});
  EXPECT_NE(s, null);
  Value id{OrdPath::FromString("1.2")};
  EXPECT_TRUE(id.IsId());
  EXPECT_EQ(id.ToString(), "1.2");
  EXPECT_EQ(id.Hash(), Value{OrdPath::FromString("1.2")}.Hash());
}

TEST(Value, NestedTableEquality) {
  auto t1 = std::make_shared<Table>(IdValueSchema("a"));
  t1->AddRow(Row("1.1", "x"));
  t1->AddRow(Row("1.2", "y"));
  auto t2 = std::make_shared<Table>(IdValueSchema("a"));
  t2->AddRow(Row("1.2", "y"));
  t2->AddRow(Row("1.1", "x"));
  EXPECT_EQ(Value{TablePtr(t1)}, Value{TablePtr(t2)});  // order-insensitive
  EXPECT_EQ(Value{TablePtr(t1)}.Hash(), Value{TablePtr(t2)}.Hash());
  auto t3 = std::make_shared<Table>(IdValueSchema("a"));
  t3->AddRow(Row("1.1", "x"));
  EXPECT_NE(Value{TablePtr(t1)}, Value{TablePtr(t3)});
}

TEST(Table, DeduplicateAndSort) {
  Table t(IdValueSchema("a"));
  t.AddRow(Row("1.2", "x"));
  t.AddRow(Row("1.1", "y"));
  t.AddRow(Row("1.2", "x"));
  t.Deduplicate();
  EXPECT_EQ(t.NumRows(), 2);
  t.SortByIdColumn(0);
  EXPECT_EQ(t.row(0)[0].AsId().ToString(), "1.1");
}

TEST(Schema, FindAndToString) {
  Schema s = IdValueSchema("v1.n2");
  EXPECT_EQ(s.Find("v1.n2.id"), 0);
  EXPECT_EQ(s.Find("v1.n2.v"), 1);
  EXPECT_EQ(s.Find("missing"), -1);
  EXPECT_EQ(s.ToString(), "v1.n2.id:id, v1.n2.v:v");
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : items_(IdValueSchema("i")), names_(IdValueSchema("n")) {
    // items: element ids 1.1, 1.2, 1.3 with values.
    items_.AddRow(Row("1.1", "10"));
    items_.AddRow(Row("1.2", "20"));
    items_.AddRow(Row("1.3", ""));
    // names: children of the items.
    names_.AddRow(Row("1.1.1", "pen"));
    names_.AddRow(Row("1.2.4", "ink"));
    names_.AddRow(Row("1.2.5.1", "deep"));
    catalog_.Register("items", &items_);
    catalog_.Register("names", &names_);
  }

  Table Run(const PlanNode& plan) {
    Result<Table> r = Execute(plan, catalog_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(*r);
  }

  Table items_;
  Table names_;
  Catalog catalog_;
};

TEST_F(ExecutorTest, ViewScan) {
  PlanPtr p = MakeViewScan("items", items_.schema());
  Table t = Run(*p);
  EXPECT_EQ(t.NumRows(), 3);
  PlanPtr missing = MakeViewScan("nope", items_.schema());
  EXPECT_FALSE(Execute(*missing, catalog_).ok());
}

TEST_F(ExecutorTest, IdEqJoin) {
  Table other(IdValueSchema("o"));
  other.AddRow(Row("1.2", "twenty"));
  other.AddRow(Row("1.9", "none"));
  catalog_.Register("other", &other);
  PlanPtr p = MakeIdEqJoin(MakeViewScan("items", items_.schema()),
                           MakeViewScan("other", other.schema()), 0, 0);
  Table t = Run(*p);
  ASSERT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.row(0)[1].AsString(), "20");
  EXPECT_EQ(t.row(0)[3].AsString(), "twenty");
}

TEST_F(ExecutorTest, IdEqJoinNullNeverMatches) {
  Table withnull(IdValueSchema("w"));
  Tuple r;
  r.emplace_back();  // null id
  r.emplace_back(std::string("x"));
  withnull.AddRow(std::move(r));
  catalog_.Register("withnull", &withnull);
  PlanPtr p = MakeIdEqJoin(MakeViewScan("withnull", withnull.schema()),
                           MakeViewScan("withnull", withnull.schema()), 0, 0);
  EXPECT_EQ(Run(*p).NumRows(), 0);
}

TEST_F(ExecutorTest, StructJoinParent) {
  PlanPtr p = MakeStructJoin(MakeViewScan("items", items_.schema()),
                             MakeViewScan("names", names_.schema()), 0, 0,
                             StructAxis::kParent);
  Table t = Run(*p);
  // 1.1 ≺ 1.1.1 and 1.2 ≺ 1.2.4 (1.2.5.1 is a grandchild).
  ASSERT_EQ(t.NumRows(), 2);
}

TEST_F(ExecutorTest, StructJoinAncestor) {
  PlanPtr p = MakeStructJoin(MakeViewScan("items", items_.schema()),
                             MakeViewScan("names", names_.schema()), 0, 0,
                             StructAxis::kAncestor);
  Table t = Run(*p);
  EXPECT_EQ(t.NumRows(), 3);  // 1.2 ≺≺ 1.2.5.1 joins too
}

TEST_F(ExecutorTest, NestedStructJoinGroupsAndKeepsEmpty) {
  PlanPtr p = MakeNestedStructJoin(MakeViewScan("items", items_.schema()),
                                   MakeViewScan("names", names_.schema()), 0,
                                   0, StructAxis::kAncestor, "grp");
  Table t = Run(*p);
  ASSERT_EQ(t.NumRows(), 3);  // one row per item, even 1.3 with no names
  int64_t total = 0;
  for (int64_t i = 0; i < t.NumRows(); ++i) {
    total += t.row(i)[2].AsTable().NumRows();
  }
  EXPECT_EQ(total, 3);
  // Find the 1.3 row: group must be empty.
  for (int64_t i = 0; i < t.NumRows(); ++i) {
    if (t.row(i)[0].AsId().ToString() == "1.3") {
      EXPECT_EQ(t.row(i)[2].AsTable().NumRows(), 0);
    }
  }
}

TEST_F(ExecutorTest, Selections) {
  PlanPtr nn = MakeSelectNonNull(MakeViewScan("items", items_.schema()), 1);
  EXPECT_EQ(Run(*nn).NumRows(), 2);
  PlanPtr isn = MakeSelectIsNull(MakeViewScan("items", items_.schema()), 1);
  EXPECT_EQ(Run(*isn).NumRows(), 1);
  PlanPtr pred = MakeSelectValue(MakeViewScan("items", items_.schema()), 1,
                                 Predicate::Gt(15));
  EXPECT_EQ(Run(*pred).NumRows(), 1);
}

TEST_F(ExecutorTest, SelectLabel) {
  Schema ls;
  ls.Append({"x.l", ColumnKind::kLabel, nullptr});
  Table labels(ls);
  labels.AddRow({Value{std::string("item")}});
  labels.AddRow({Value{std::string("name")}});
  catalog_.Register("labels", &labels);
  PlanPtr p = MakeSelectLabel(MakeViewScan("labels", ls), 0, "item");
  EXPECT_EQ(Run(*p).NumRows(), 1);
}

TEST_F(ExecutorTest, ProjectDeduplicates) {
  Table dup(IdValueSchema("d"));
  dup.AddRow(Row("1.1", "x"));
  dup.AddRow(Row("1.2", "x"));
  catalog_.Register("dup", &dup);
  PlanPtr p = MakeProject(MakeViewScan("dup", dup.schema()), {1});
  Table t = Run(*p);
  EXPECT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.schema().size(), 1);
}

TEST_F(ExecutorTest, UnionDeduplicates) {
  std::vector<PlanPtr> ins;
  ins.push_back(MakeViewScan("items", items_.schema()));
  ins.push_back(MakeViewScan("items", items_.schema()));
  PlanPtr p = MakeUnion(std::move(ins));
  EXPECT_EQ(Run(*p).NumRows(), 3);
}

TEST_F(ExecutorTest, GroupByAndUnnestRoundTrip) {
  PlanPtr g = MakeGroupBy(MakeViewScan("names", names_.schema()), {1}, "grp");
  Table grouped = Run(*g);
  EXPECT_EQ(grouped.NumRows(), 3);  // distinct values pen/ink/deep
  PlanPtr g2 = MakeGroupBy(MakeViewScan("names", names_.schema()), {}, "all");
  Table one = Run(*g2);
  ASSERT_EQ(one.NumRows(), 1);
  EXPECT_EQ(one.row(0)[0].AsTable().NumRows(), 3);

  // Unnest inverts grouping.
  PlanPtr u = MakeUnnest(
      MakeGroupBy(MakeViewScan("names", names_.schema()), {}, "all"), 0);
  Table back = Run(*u);
  EXPECT_TRUE(back.EqualsIgnoringOrder(names_));
}

TEST_F(ExecutorTest, DeriveParent) {
  PlanPtr p = MakeDeriveParent(MakeViewScan("names", names_.schema()), 0, 1,
                               "parent");
  Table t = Run(*p);
  ASSERT_EQ(t.NumRows(), 3);
  EXPECT_EQ(t.row(0)[2].AsId().ToString(), "1.1");
  // Two steps up.
  PlanPtr p2 = MakeDeriveParent(MakeViewScan("names", names_.schema()), 0, 2,
                                "gp");
  Table t2 = Run(*p2);
  EXPECT_EQ(t2.row(0)[2].AsId().ToString(), "1");
}

TEST(PlanPrinter, RendersOperators) {
  Schema s;
  s.Append({"v.id", ColumnKind::kId, nullptr});
  PlanPtr scan1 = MakeViewScan("V1", s);
  PlanPtr scan2 = MakeViewScan("V2", s);
  PlanPtr join = MakeStructJoin(std::move(scan1), std::move(scan2), 0, 0,
                                StructAxis::kAncestor);
  std::string compact = PlanToCompactString(*join);
  EXPECT_EQ(compact, "(V1 ⋈≺≺ V2)");
  std::string full = PlanToString(*join);
  EXPECT_NE(full.find("scan(V1)"), std::string::npos);
  EXPECT_EQ(join->NumLeaves(), 2);
}

TEST(PlanClone, DeepCopyExecutesIdentically) {
  Schema s;
  s.Append({"v.id", ColumnKind::kId, nullptr});
  s.Append({"v.v", ColumnKind::kValue, nullptr});
  Table t(s);
  t.AddRow({Value{OrdPath::FromString("1.1")}, Value{std::string("5")}});
  Catalog c;
  c.Register("V", &t);
  PlanPtr plan = MakeSelectValue(MakeViewScan("V", s), 1, Predicate::Eq(5));
  PlanPtr clone = plan->Clone();
  Result<Table> a = Execute(*plan, c);
  Result<Table> b = Execute(*clone, c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsIgnoringOrder(*b));
}

}  // namespace
}  // namespace svx
