// Concurrent serving stress test: N reader threads rewrite and execute
// against catalog snapshots while one writer loops ApplyUpdate. Every read
// must observe a consistent epoch — verified two ways:
//   * externally, against a single-threaded replay of the same
//     (deterministic) update sequence: a reader-observed (epoch, extent
//     checksum) pair must match what the replay recorded for that epoch;
//   * internally, by executing a rewriting against the snapshot's extents
//     and comparing with direct pattern evaluation over the snapshot's
//     document — extents and document of one epoch must agree even while
//     the writer publishes successors.
// Run under TSan in CI (the .github workflow's `tsan` job).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/executor.h"
#include "src/pattern/pattern_parser.h"
#include "src/rewriting/rewriter.h"
#include "src/summary/summary_builder.h"
#include "src/util/rng.h"
#include "src/viewstore/extent_io.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

std::shared_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::shared_ptr<Document>(std::move(r).value());
}

const char* kSeedTree =
    "site(item(name=alpha keyword=k1) item(name=beta keyword=k2) "
    "person(name=ann) person(name=bob))";

const char* kInsertPool[] = {
    "item(name=gamma keyword=k3)",
    "item(name=delta)",
    "person(name=carl)",
    "keyword=k9",
};

std::vector<ViewDef> StressViews() {
  return {
      {"items", MustParsePattern("site(/item{id}(/name{id,v}))")},
      {"keywords", MustParsePattern("site(//keyword{id,v})")},
      {"people", MustParsePattern("site(/person{id}(/name{v}))")},
  };
}

/// Stable fingerprint of every extent in the snapshot.
std::string ChecksumExtents(const CatalogSnapshot& snap) {
  std::string all;
  for (const auto& v : snap.views()) {
    all += v->def.name;
    all += SerializeExtent(v->extent());
  }
  return all;
}

/// One deterministic update against `doc`; returns the update result.
Result<UpdateResult> NextUpdate(const Document& doc, Rng* rng) {
  if (doc.size() > 24 && rng->Bernoulli(0.5)) {
    NodeIndex n = static_cast<NodeIndex>(
        rng->Uniform(1, static_cast<int64_t>(doc.size()) - 1));
    return DeleteSubtree(doc, doc.ord_path(n));
  }
  NodeIndex n = static_cast<NodeIndex>(
      rng->Uniform(0, static_cast<int64_t>(doc.size()) - 1));
  std::shared_ptr<Document> sub = Doc(kInsertPool[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(std::size(kInsertPool)) - 1))]);
  // Mix careted mid-sibling inserts into the stream.
  std::vector<NodeIndex> kids = doc.children(n);
  if (!kids.empty() && rng->Bernoulli(0.4)) {
    OrdPath before = doc.ord_path(kids[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(kids.size()) - 1))]);
    return InsertSubtree(doc, doc.ord_path(n), *sub, &before);
  }
  return InsertSubtree(doc, doc.ord_path(n), *sub);
}

constexpr int kUpdates = 25;
constexpr uint64_t kSeed = 1234;

/// Applies the deterministic update stream to `catalog`, returning the
/// expected (epoch → checksum) map including the starting epoch. When
/// `running` is given, the updates run against live readers.
std::map<uint64_t, std::string> DriveWriter(ViewCatalog* catalog,
                                            std::shared_ptr<Document> doc,
                                            std::shared_ptr<Summary> summary) {
  std::map<uint64_t, std::string> expected;
  {
    std::shared_ptr<const CatalogSnapshot> snap = catalog->Snapshot();
    expected[snap->epoch()] = ChecksumExtents(*snap);
  }
  Rng rng(kSeed);
  for (int i = 0; i < kUpdates; ++i) {
    Result<UpdateResult> up = NextUpdate(*doc, &rng);
    EXPECT_TRUE(up.ok()) << up.status().ToString();
    if (!up.ok()) break;
    std::shared_ptr<Document> next_doc(std::move(up->doc));
    std::shared_ptr<Summary> next_summary(
        SummaryBuilder::Build(next_doc.get()));
    Status s = catalog->ApplyUpdate(up->delta, next_doc, next_summary);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) break;
    doc = std::move(next_doc);
    summary = std::move(next_summary);
    std::shared_ptr<const CatalogSnapshot> snap = catalog->Snapshot();
    expected[snap->epoch()] = ChecksumExtents(*snap);
  }
  return expected;
}

TEST(ConcurrentServing, ReadersAlwaysSeeAConsistentEpoch) {
  // ---- Single-threaded replay: the per-epoch ground truth. ----
  std::map<uint64_t, std::string> expected;
  {
    std::shared_ptr<Document> doc = Doc(kSeedTree);
    std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));
    ViewCatalog replay;
    for (const ViewDef& def : StressViews()) {
      ASSERT_TRUE(replay.Materialize(def, *doc).ok());
    }
    replay.BindDocument(doc, summary);
    expected = DriveWriter(&replay, doc, summary);
    ASSERT_EQ(expected.size(), static_cast<size_t>(kUpdates) + 1);
  }

  // ---- Concurrent run: same stream, with readers hammering. ----
  std::shared_ptr<Document> doc = Doc(kSeedTree);
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));
  ViewCatalog catalog;
  for (const ViewDef& def : StressViews()) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
  }
  catalog.BindDocument(doc, summary);

  std::atomic<bool> stop{false};
  std::atomic<int> consistency_checks{0};
  std::vector<std::string> reader_errors(4);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < reader_errors.size(); ++r) {
    readers.emplace_back([&, r]() {
      Pattern q = MustParsePattern("site(/item{id}(/name{v}))");
      uint64_t last_epoch = 0;
      int iter = 0;
      // do-while: every reader completes at least one full iteration
      // (including the iter==0 consistency check) even when the writer
      // finishes before this thread is first scheduled — otherwise the
      // consistency_checks > 0 assertion below races thread startup.
      do {
        std::shared_ptr<const CatalogSnapshot> snap = catalog.Snapshot();
        if (snap->epoch() < last_epoch) {
          reader_errors[r] = "epoch went backwards";
          return;
        }
        last_epoch = snap->epoch();
        // External consistency: extents must be exactly one replay state.
        std::string sum = ChecksumExtents(*snap);
        auto it = expected.find(snap->epoch());
        if (it == expected.end() || it->second != sum) {
          reader_errors[r] =
              "epoch " + std::to_string(snap->epoch()) +
              (it == expected.end() ? " unknown" : " has mixed extents");
          return;
        }
        // Internal consistency: a rewriting executed against this epoch's
        // extents equals direct evaluation over this epoch's document.
        if (iter++ % 4 == 0) {
          RewriterOptions opts;
          opts.memo = snap->containment_memo();
          opts.cost_model = &snap->cost_model();
          std::shared_ptr<const ViewIndex> index =
              snap->ViewIndexFor(*snap->summary(), opts.expansion);
          opts.shared_view_index = index.get();
          Rewriter rw(*snap->summary(), opts);
          for (const auto& v : snap->views()) rw.AddView(v->def);
          Result<std::vector<Rewriting>> rws =
              CachedRewrite(snap->rewrite_cache(), &rw, q);
          if (!rws.ok()) {
            reader_errors[r] = rws.status().ToString();
            return;
          }
          if (!rws->empty()) {
            Result<Table> got =
                Execute(*rws->front().plan, snap->ExecutorCatalog());
            Table want = MaterializeView(q, "q", *snap->document());
            if (!got.ok() ||
                !got->EqualsIgnoringOrder(want)) {
              reader_errors[r] = "epoch " +
                                 std::to_string(snap->epoch()) +
                                 ": rewriting disagrees with direct "
                                 "evaluation inside one epoch";
              return;
            }
            consistency_checks.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  std::map<uint64_t, std::string> live = DriveWriter(&catalog, doc, summary);
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(live, expected) << "concurrent run diverged from replay";
  for (const std::string& err : reader_errors) EXPECT_EQ(err, "");
  EXPECT_GT(consistency_checks.load(), 0);
}

TEST(ConcurrentServing, SharedCachesStaySaneUnderContention) {
  // Hammer one snapshot's rewrite cache + memo + lazily built view index
  // from many threads (the single-epoch hot path): every thread must see
  // identical plans, and hits+misses must add up.
  std::shared_ptr<Document> doc = Doc(kSeedTree);
  std::shared_ptr<Summary> summary(SummaryBuilder::Build(doc.get()));
  ViewCatalog catalog;
  for (const ViewDef& def : StressViews()) {
    ASSERT_TRUE(catalog.Materialize(def, *doc).ok());
  }
  catalog.BindDocument(doc, summary);
  std::shared_ptr<const CatalogSnapshot> snap = catalog.Snapshot();

  const char* queries[] = {"site(/item{id}(/name{v}))",
                           "site(//keyword{v})",
                           "site(/person{id}(/name{v}))"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 40; ++i) {
        Pattern q = MustParsePattern(queries[i % std::size(queries)]);
        RewriterOptions opts;
        opts.memo = snap->containment_memo();
        std::shared_ptr<const ViewIndex> index =
            snap->ViewIndexFor(*snap->summary(), opts.expansion);
        opts.shared_view_index = index.get();
        Rewriter rw(*snap->summary(), opts);
        for (const auto& v : snap->views()) rw.AddView(v->def);
        Result<std::vector<Rewriting>> rws =
            CachedRewrite(snap->rewrite_cache(), &rw, q);
        if (!rws.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const Rewriting& rw_result : *rws) {
          if (rw_result.plan == nullptr) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(snap->rewrite_cache()->hits(), 0u);
  EXPECT_EQ(snap->rewrite_cache()->hits() + snap->rewrite_cache()->misses(),
            4u * 40u);
}

}  // namespace
}  // namespace svx
