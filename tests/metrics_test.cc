#include "src/observability/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace svx {
namespace {

TEST(CounterTest, StripedSumIsExactUnderConcurrentIncrement) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Add(i % 3 == 0 ? 2 : 1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Per thread: ceil(kIncrements / 3) adds of 2, the rest of 1.
  const int64_t twos = (kIncrements + 2) / 3;
  const int64_t per_thread = 2 * twos + (kIncrements - twos);
  EXPECT_EQ(c.Value(), kThreads * per_thread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 40);
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h;
  h.Observe(0);   // bucket 0 (exact zeros)
  h.Observe(-5);  // clamped to 0
  h.Observe(1);   // bucket 1: [1, 2)
  h.Observe(2);   // bucket 2: [2, 4)
  h.Observe(3);   // bucket 2
  h.Observe(4);   // bucket 3: [4, 8)
  h.Observe(7);   // bucket 3
  h.Observe(8);   // bucket 4: [8, 16)
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 2);
  EXPECT_EQ(h.BucketCount(4), 1);
  EXPECT_EQ(h.Count(), 8);
  EXPECT_EQ(h.Sum(), 0 + 0 + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  // Three samples: buckets 0, 1, 3.
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  // p0 clamps to rank 1 → the zero bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0);
  // rank 1.5 lands mid-bucket-1 ([1, 2)): 1 + 0.5 * 1.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  // rank 2.7 lands in bucket 3 ([4, 8)) at within = 0.7.
  EXPECT_NEAR(h.Quantile(0.9), 6.8, 1e-9);
  // p1 is the top of the highest non-empty bucket's interpolation.
  EXPECT_NEAR(h.Quantile(1.0), 8.0, 1e-9);
}

TEST(HistogramTest, CountIsExactUnderConcurrentObserve) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kObservations = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) h.Observe((t + 1) * 100 + i % 7);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kObservations);
}

TEST(MetricRegistryTest, SameNameReturnsSameHandle) {
  MetricRegistry reg;
  Counter* a = reg.counter("x_total", "first help wins");
  Counter* b = reg.counter("x_total", "ignored");
  EXPECT_EQ(a, b);
  Gauge* g1 = reg.gauge("g");
  Gauge* g2 = reg.gauge("g");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.histogram("h_us");
  Histogram* h2 = reg.histogram("h_us");
  EXPECT_EQ(h1, h2);
}

/// Fills a private registry with one metric of each kind and deterministic
/// values, for the golden exposition tests below.
void FillGoldenRegistry(MetricRegistry* reg) {
  reg->counter("test_requests_total", "requests served")->Add(3);
  reg->gauge("test_epoch")->Set(7);
  Histogram* h = reg->histogram("test_latency_us", "op latency");
  h->Observe(0);
  h->Observe(1);
  h->Observe(5);
}

TEST(MetricRegistryTest, GoldenPrometheusText) {
  MetricRegistry reg;
  FillGoldenRegistry(&reg);
  const char* expected =
      "# TYPE test_epoch gauge\n"
      "test_epoch 7\n"
      "# HELP test_latency_us op latency\n"
      "# TYPE test_latency_us histogram\n"
      "test_latency_us_bucket{le=\"0\"} 1\n"
      "test_latency_us_bucket{le=\"1\"} 2\n"
      "test_latency_us_bucket{le=\"3\"} 2\n"
      "test_latency_us_bucket{le=\"7\"} 3\n"
      "test_latency_us_bucket{le=\"+Inf\"} 3\n"
      "test_latency_us_sum 6\n"
      "test_latency_us_count 3\n"
      "# HELP test_requests_total requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n";
  EXPECT_EQ(reg.RenderPrometheusText(), expected);
}

TEST(MetricRegistryTest, GoldenJson) {
  MetricRegistry reg;
  FillGoldenRegistry(&reg);
  const char* expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"test_requests_total\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"test_epoch\": 7\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"test_latency_us\": {\n"
      "      \"count\": 3,\n"
      "      \"sum\": 6,\n"
      "      \"p50\": 1.500,\n"
      "      \"p90\": 6.800,\n"
      "      \"p99\": 7.880\n"
      "    }\n"
      "  }\n"
      "}";
  EXPECT_EQ(reg.RenderJson(), expected);
}

TEST(MetricRegistryTest, StandardCatalogCoversAllDomains) {
  metrics::RegisterStandardMetrics();
  std::string text = MetricRegistry::Global().RenderPrometheusText();
  // One representative metric per domain, present even when unexercised.
  EXPECT_NE(text.find("svx_rewrite_calls_total"), std::string::npos);
  EXPECT_NE(text.find("svx_containment_memo_hits_total"), std::string::npos);
  EXPECT_NE(text.find("svx_maintenance_passes_total"), std::string::npos);
  EXPECT_NE(text.find("svx_epoch_current"), std::string::npos);
  EXPECT_NE(text.find("svx_executor_runs_total"), std::string::npos);
  EXPECT_NE(text.find("svx_persist_bytes_written_total"), std::string::npos);
  EXPECT_NE(text.find("svx_rewrite_latency_us_bucket"), std::string::npos);
}

}  // namespace
}  // namespace svx
