#include "src/util/interner.h"

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(Interner, InternIsIdempotent) {
  StringInterner in;
  int32_t a = in.Intern("item");
  EXPECT_EQ(in.Intern("item"), a);
  EXPECT_EQ(in.size(), 1);
}

TEST(Interner, DistinctStringsDistinctIds) {
  StringInterner in;
  int32_t a = in.Intern("a");
  int32_t b = in.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Get(a), "a");
  EXPECT_EQ(in.Get(b), "b");
}

TEST(Interner, FindWithoutInterning) {
  StringInterner in;
  EXPECT_EQ(in.Find("missing"), StringInterner::kNone);
  in.Intern("present");
  EXPECT_EQ(in.Find("present"), 0);
  EXPECT_EQ(in.Find("missing"), StringInterner::kNone);
}

TEST(Interner, IdsAreDense) {
  StringInterner in;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(in.Intern("s" + std::to_string(i)), i);
  }
  EXPECT_EQ(in.size(), 100);
}

}  // namespace
}  // namespace svx
