#include "src/pattern/predicate.h"

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(Predicate, TrueFalseBasics) {
  EXPECT_TRUE(Predicate::True().IsTrue());
  EXPECT_FALSE(Predicate::True().IsFalse());
  EXPECT_TRUE(Predicate::False().IsFalse());
  EXPECT_FALSE(Predicate::False().IsTrue());
}

TEST(Predicate, AtomMembership) {
  EXPECT_TRUE(Predicate::Eq(3).Contains(3));
  EXPECT_FALSE(Predicate::Eq(3).Contains(4));
  EXPECT_TRUE(Predicate::Lt(5).Contains(4));
  EXPECT_FALSE(Predicate::Lt(5).Contains(5));
  EXPECT_TRUE(Predicate::Gt(5).Contains(6));
  EXPECT_FALSE(Predicate::Gt(5).Contains(5));
  EXPECT_TRUE(Predicate::Le(5).Contains(5));
  EXPECT_TRUE(Predicate::Ge(5).Contains(5));
}

TEST(Predicate, AndIntersects) {
  Predicate p = Predicate::Gt(2).And(Predicate::Lt(5));
  EXPECT_TRUE(p.Contains(3));
  EXPECT_TRUE(p.Contains(4));
  EXPECT_FALSE(p.Contains(2));
  EXPECT_FALSE(p.Contains(5));
}

TEST(Predicate, AndDisjointIsFalse) {
  EXPECT_TRUE(Predicate::Lt(2).And(Predicate::Gt(5)).IsFalse());
  EXPECT_TRUE(Predicate::Eq(1).And(Predicate::Eq(2)).IsFalse());
}

TEST(Predicate, OrMergesAdjacentIntegerIntervals) {
  // [1,2] ∪ [3,4] = [1,4] over the integers.
  Predicate p = Predicate::Range(1, 2).Or(Predicate::Range(3, 4));
  EXPECT_EQ(p.intervals().size(), 1u);
  EXPECT_EQ(p.intervals()[0].lo, 1);
  EXPECT_EQ(p.intervals()[0].hi, 4);
}

TEST(Predicate, OrKeepsGaps) {
  Predicate p = Predicate::Eq(1).Or(Predicate::Eq(5));
  EXPECT_EQ(p.intervals().size(), 2u);
  EXPECT_TRUE(p.Contains(1));
  EXPECT_FALSE(p.Contains(3));
  EXPECT_TRUE(p.Contains(5));
}

TEST(Predicate, NotComplementsAtom) {
  Predicate p = Predicate::Eq(3).Not();
  EXPECT_FALSE(p.Contains(3));
  EXPECT_TRUE(p.Contains(2));
  EXPECT_TRUE(p.Contains(4));
  EXPECT_TRUE(Predicate::True().Not().IsFalse());
  EXPECT_TRUE(Predicate::False().Not().IsTrue());
}

TEST(Predicate, DoubleNegationIsIdentity) {
  Predicate p = Predicate::Gt(2).And(Predicate::Lt(9)).Or(Predicate::Eq(-4));
  EXPECT_EQ(p.Not().Not(), p);
}

TEST(Predicate, ImplicationBasics) {
  EXPECT_TRUE(Predicate::Eq(3).Implies(Predicate::Gt(0)));
  EXPECT_FALSE(Predicate::Gt(0).Implies(Predicate::Eq(3)));
  EXPECT_TRUE(Predicate::False().Implies(Predicate::Eq(1)));
  EXPECT_TRUE(Predicate::Eq(1).Implies(Predicate::True()));
  // The paper's §4.2 example: (v=3)∧(v>0) => (v>1).
  Predicate lhs = Predicate::Eq(3).And(Predicate::Gt(0));
  EXPECT_TRUE(lhs.Implies(Predicate::Gt(1)));
}

TEST(Predicate, ImplicationIntoDisjunction) {
  // v>0 => (0<v<5) ∨ (v>3).
  Predicate lhs = Predicate::Gt(0);
  Predicate rhs = Predicate::Gt(0).And(Predicate::Lt(5)).Or(Predicate::Gt(3));
  EXPECT_TRUE(lhs.Implies(rhs));
  // but not v>=0.
  EXPECT_FALSE(Predicate::Ge(0).Implies(rhs));
}

TEST(Predicate, ContainsValueParsesIntegers) {
  EXPECT_TRUE(Predicate::Eq(42).ContainsValue("42"));
  EXPECT_TRUE(Predicate::Eq(42).ContainsValue(" 42 "));
  EXPECT_FALSE(Predicate::Eq(42).ContainsValue("41"));
  EXPECT_FALSE(Predicate::Eq(42).ContainsValue("fortytwo"));
  // Non-numeric values satisfy only the True formula.
  EXPECT_TRUE(Predicate::True().ContainsValue("fortytwo"));
}

TEST(Predicate, RoundTripToString) {
  const char* cases[] = {"v=3",          "v<5",        "v>2",
                         "v>2&v<7",      "v<0|v=5",    "v=1|v=3|v=9",
                         "false"};
  for (const char* c : cases) {
    Result<Predicate> p = Predicate::Parse(c);
    ASSERT_TRUE(p.ok()) << c;
    EXPECT_EQ(p->ToString(), c);
  }
  EXPECT_EQ(Predicate::True().ToString(), "");
}

TEST(Predicate, ParseOperatorsAndParens) {
  Result<Predicate> p = Predicate::Parse("(v>1&v<4)|v=9");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(2));
  EXPECT_TRUE(p->Contains(9));
  EXPECT_FALSE(p->Contains(5));
  Result<Predicate> le = Predicate::Parse("v<=3");
  ASSERT_TRUE(le.ok());
  EXPECT_TRUE(le->Contains(3));
  EXPECT_FALSE(le->Contains(4));
  Result<Predicate> ge = Predicate::Parse("v>=-2");
  ASSERT_TRUE(ge.ok());
  EXPECT_TRUE(ge->Contains(-2));
  EXPECT_FALSE(ge->Contains(-3));
}

TEST(Predicate, ParseErrors) {
  EXPECT_FALSE(Predicate::Parse("v").ok());
  EXPECT_FALSE(Predicate::Parse("v=").ok());
  EXPECT_FALSE(Predicate::Parse("v=x").ok());
  EXPECT_FALSE(Predicate::Parse("(v=1").ok());
  EXPECT_FALSE(Predicate::Parse("v=1)").ok());
  EXPECT_FALSE(Predicate::Parse("w=1").ok());
}

TEST(Predicate, EndpointsCollectConstants) {
  Predicate p = Predicate::Gt(2).And(Predicate::Lt(7)).Or(Predicate::Eq(10));
  std::vector<int64_t> e = p.Endpoints();
  EXPECT_EQ(e, (std::vector<int64_t>{3, 6, 10}));
}

TEST(Predicate, HashConsistency) {
  Predicate a = Predicate::Gt(0).And(Predicate::Lt(5));
  Predicate b = Predicate::Range(1, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

// Property-style sweep: random formulas obey boolean algebra laws.
class PredicateAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(PredicateAlgebra, DeMorganAndImplicationConsistency) {
  int seed = GetParam();
  auto mk = [&](int salt) {
    // Deterministic small formula from the seed.
    int64_t c1 = (seed * 7 + salt * 3) % 10;
    int64_t c2 = (seed * 5 + salt * 11) % 10;
    Predicate p = Predicate::Gt(c1).And(Predicate::Lt(c2 + 6));
    if ((seed + salt) % 3 == 0) p = p.Or(Predicate::Eq(c2 - 3));
    if ((seed + salt) % 4 == 1) p = p.Not();
    return p;
  };
  Predicate a = mk(1);
  Predicate b = mk(2);
  // De Morgan.
  EXPECT_EQ(a.And(b).Not(), a.Not().Or(b.Not()));
  EXPECT_EQ(a.Or(b).Not(), a.Not().And(b.Not()));
  // Implication is containment.
  EXPECT_TRUE(a.And(b).Implies(a));
  EXPECT_TRUE(a.Implies(a.Or(b)));
  // Membership coincides point-wise on a sample.
  for (int64_t v = -15; v <= 15; ++v) {
    EXPECT_EQ(a.And(b).Contains(v), a.Contains(v) && b.Contains(v));
    EXPECT_EQ(a.Or(b).Contains(v), a.Contains(v) || b.Contains(v));
    EXPECT_EQ(a.Not().Contains(v), !a.Contains(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredicateAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace svx
