#include "src/containment/containment.h"

#include <gtest/gtest.h>

#include "src/containment/satisfiability.h"
#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_io.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

bool Contained(std::string_view p, std::string_view q, const Summary& s,
               ContainmentOptions opts = {}) {
  Result<bool> r =
      IsContained(MustParsePattern(p), MustParsePattern(q), s, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

bool InUnion(std::string_view p, std::vector<std::string> qs,
             const Summary& s, ContainmentOptions opts = {}) {
  std::vector<Pattern> patterns;
  patterns.reserve(qs.size());
  for (const std::string& q : qs) patterns.push_back(MustParsePattern(q));
  std::vector<const Pattern*> ptrs;
  for (const Pattern& q : patterns) ptrs.push_back(&q);
  Result<bool> r = IsContainedInUnion(MustParsePattern(p), ptrs, s, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(Containment, SelfContainment) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  EXPECT_TRUE(Contained("a(//b{id}(/c))", "a(//b{id}(/c))", *s));
}

TEST(Containment, ChildWithinDescendant) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  EXPECT_TRUE(Contained("a(/b{id})", "a(//b{id})", *s));
  EXPECT_FALSE(Contained("a(//b{id})", "a(/b{id})", *s));
}

TEST(Containment, ArityMismatchFails) {
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  EXPECT_FALSE(Contained("a(/b{id}(/c{id}))", "a(/b{id})", *s));
}

TEST(Containment, SummaryMakesImplicitNodesFree) {
  // §3.2 example: S = r(a(b)), q = /r//a//b, p1 = /r//b; p1 ≡S q although
  // p1 lacks the a node.
  std::unique_ptr<Summary> s = Sum("r(a(b))");
  EXPECT_TRUE(Contained("r(//b{id})", "r(//a(//b{id}))", *s));
  EXPECT_TRUE(Contained("r(//a(//b{id}))", "r(//b{id})", *s));
}

TEST(Containment, SummaryConstrainedStarIsItem) {
  // §1 "Summary-based rewriting": a view over children of regions having
  // description children is a view over item nodes when the summary
  // guarantees all such children are items. The reverse direction needs the
  // integrity constraint that every item has a description (strong edge).
  std::unique_ptr<Summary> s =
      Sum("site(regions(asia(item(description!(text) name))))");
  EXPECT_TRUE(Contained("site(//regions(//*{id}(/description)))",
                        "site(//item{id})", *s));
  EXPECT_TRUE(Contained("site(//item{id})",
                        "site(//regions(//*{id}(/description)))", *s));
  // Without the strong edge, items lacking a description escape the view.
  std::unique_ptr<Summary> weak =
      Sum("site(regions(asia(item(description(text) name))))");
  EXPECT_TRUE(Contained("site(//regions(//*{id}(/description)))",
                        "site(//item{id})", *weak));
  EXPECT_FALSE(Contained("site(//item{id})",
                         "site(//regions(//*{id}(/description)))", *weak));
}

TEST(Containment, NegativeWhenPathsDiffer) {
  std::unique_ptr<Summary> s = Sum("a(b c(b))");
  EXPECT_FALSE(Contained("a(//b{id})", "a(/c(/b{id}))", *s));
  EXPECT_TRUE(Contained("a(/c(/b{id}))", "a(//b{id})", *s));
}

TEST(Containment, UnsatisfiableContainedInEverything) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  EXPECT_TRUE(Contained("a(/z{id})", "a(/b{id})", *s));
}

// ---- Unions (Prop 3.2) ----

TEST(Containment, UnionCoversWhatMembersCannot) {
  std::unique_ptr<Summary> s = Sum("a(b d(b))");
  EXPECT_TRUE(InUnion("a(//b{id})", {"a(/b{id})", "a(/d(/b{id}))"}, *s));
  EXPECT_FALSE(Contained("a(//b{id})", "a(/b{id})", *s));
  EXPECT_FALSE(Contained("a(//b{id})", "a(/d(/b{id}))", *s));
}

TEST(Containment, UnionNegative) {
  std::unique_ptr<Summary> s = Sum("a(b d(b) e(b))");
  EXPECT_FALSE(InUnion("a(//b{id})", {"a(/b{id})", "a(/d(/b{id}))"}, *s));
}

TEST(Containment, EmptyUnionOnlyContainsUnsatisfiable) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  EXPECT_FALSE(InUnion("a(/b{id})", {}, *s));
  EXPECT_TRUE(InUnion("a(/z{id})", {}, *s));
}

// ---- Enhanced summaries (§4.1, Figure 8) ----

TEST(Containment, StrongEdgesEnableEquivalence) {
  // Every b has a c child and every a has an f child: p1 = a/b is
  // equivalent to p2 = a(/b(/c) /f) under the enhanced summary.
  std::unique_ptr<Summary> s = Sum("a(b(c! e) f!)");
  EXPECT_TRUE(Contained("a(/b{id})", "a(/b{id}(/c) /f)", *s));
  EXPECT_TRUE(Contained("a(/b{id}(/c) /f)", "a(/b{id})", *s));
}

TEST(Containment, WithoutStrongEdgesNoEquivalence) {
  std::unique_ptr<Summary> s = Sum("a(b(c! e) f!)");
  ContainmentOptions opts;
  opts.model.use_strong_edges = false;
  EXPECT_FALSE(Contained("a(/b{id})", "a(/b{id}(/c) /f)", *s, opts));
  EXPECT_TRUE(Contained("a(/b{id}(/c) /f)", "a(/b{id})", *s, opts));
}

// ---- Decorated patterns (§4.2, Figure 9) ----

TEST(Containment, DecoratedSingle) {
  std::unique_ptr<Summary> s = Sum("r(c(b))");
  EXPECT_TRUE(Contained("r(/c{id}[v=3])", "r(/c{id}[v>1])", *s));
  EXPECT_FALSE(Contained("r(/c{id}[v>1])", "r(/c{id}[v=3])", *s));
  EXPECT_TRUE(Contained("r(/c{id}[v=3](/b[v>0]))",
                        "r(/c{id}[v>1](/b[v>0]))", *s));
}

TEST(Containment, DecoratedPredicateOnNonReturnNode) {
  std::unique_ptr<Summary> s = Sum("r(c(b))");
  EXPECT_TRUE(Contained("r(/c{id}(/b[v=4]))", "r(/c{id}(/b[v>0]))", *s));
  EXPECT_FALSE(Contained("r(/c{id}(/b[v=0]))", "r(/c{id}(/b[v>0]))", *s));
}

TEST(Containment, PaperFigure9UnionExample) {
  // Mirror of the paper's worked §4.2 example: pφ2 ⊆S pφ1 ∪ pφ3 ∪ pφ4
  // by the two-part condition, with each canonical tree of pφ2 covered by a
  // different disjunct combination.
  std::unique_ptr<Summary> s = Sum("r(c(b) d(c(b)))");
  std::string p2 = "r(//c{id}[v=3](/b[v>0]))";
  std::string p3 = "r(/c{id}[v>1](/b))";
  std::string p1 = "r(/d(/c{id}[v=3](/b[v<5])))";
  std::string p4 = "r(//c{id}[v<5](/b[v>2]))";
  EXPECT_TRUE(InUnion(p2, {p1, p3, p4}, *s));
  // Without pφ4, the deep tree's values v_b >= 5 are uncovered.
  EXPECT_FALSE(InUnion(p2, {p1, p3}, *s));
  // Without pφ1, the deep tree's values v_b in (0,2] are uncovered.
  EXPECT_FALSE(InUnion(p2, {p3, p4}, *s));
}

TEST(Containment, ValueDisjunctionAcrossUnionMembers) {
  // Neither member alone implies, their union does: v<5 ∪ v>3 covers all.
  std::unique_ptr<Summary> s = Sum("r(c)");
  EXPECT_TRUE(
      InUnion("r(/c{id})", {"r(/c{id}[v<5])", "r(/c{id}[v>3])"}, *s));
  EXPECT_FALSE(
      InUnion("r(/c{id})", {"r(/c{id}[v<5])", "r(/c{id}[v>7])"}, *s));
}

// ---- Optional edges (§4.3, Figure 10) ----

TEST(Containment, OptionalPatternContainment) {
  std::unique_ptr<Summary> s = Sum("a(c(b d(b e)))");
  // p1's optional d-subtree stores b; p2 asks any descendant b optionally.
  EXPECT_TRUE(Contained("a(//c{id}(?/d(/b{id} /e)))",
                        "a(//*{id}(?//b{id}))", *s));
  EXPECT_FALSE(Contained("a(//*{id}(?//b{id}))",
                         "a(//c{id}(?/d(/b{id} /e)))", *s));
}

TEST(Containment, OptionalVsRequiredDiffer) {
  std::unique_ptr<Summary> s = Sum("a(c(b))");
  // Optional produces ⊥ rows that the required pattern cannot produce...
  // unless the summary's strong edges forbid the ⊥ (not the case here).
  EXPECT_FALSE(Contained("a(/c{id}(?/b{id}))", "a(/c{id}(/b{id}))", *s));
  EXPECT_TRUE(Contained("a(/c{id}(/b{id}))", "a(/c{id}(?/b{id}))", *s));
}

TEST(Containment, StrongEdgeCollapsesOptionalToRequired) {
  // With a/c/b strong, every c has a b: the ⊥ variant is impossible and the
  // two patterns coincide.
  std::unique_ptr<Summary> s = Sum("a(c(b!))");
  EXPECT_TRUE(Contained("a(/c{id}(?/b{id}))", "a(/c{id}(/b{id}))", *s));
  EXPECT_TRUE(Contained("a(/c{id}(/b{id}))", "a(/c{id}(?/b{id}))", *s));
}

// ---- Attribute patterns (Prop 4.1) ----

TEST(Containment, AttributeAnnotationMustMatch) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  EXPECT_FALSE(Contained("a(/b{id,v})", "a(/b{id})", *s));
  EXPECT_FALSE(Contained("a(/b{id})", "a(/b{id,v})", *s));
  EXPECT_TRUE(Contained("a(/b{id,v})", "a(//b{id,v})", *s));
  EXPECT_FALSE(Contained("a(/b{c})", "a(/b{l})", *s));
}

// ---- Nested edges (Prop 4.2) ----

TEST(Containment, NestingDepthMustMatch) {
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  EXPECT_FALSE(Contained("a(n/b(/c{id}))", "a(/b(/c{id}))", *s));
  EXPECT_FALSE(Contained("a(/b(/c{id}))", "a(n/b(/c{id}))", *s));
  EXPECT_TRUE(Contained("a(n/b(/c{id}))", "a(n/b(/c{id}))", *s));
}

TEST(Containment, NestingAnchorsMustAgree) {
  // p nests c under b (anchor path /a/b); q nests under a (anchor /a):
  // different anchors, not contained.
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  EXPECT_FALSE(Contained("a(/b(n/c{id}))", "a(n/b(/c{id}))", *s));
}

TEST(Containment, OneToOneRelaxationOnNestingAnchor) {
  // a->b is one-to-one: nesting under a equals nesting under b (§4.5).
  std::unique_ptr<Summary> s = Sum("a(b!!(c))");
  EXPECT_TRUE(Contained("a(/b(n/c{id}))", "a(n/b(/c{id}))", *s));
  ContainmentOptions opts;
  opts.use_one_to_one_relaxation = false;
  EXPECT_FALSE(Contained("a(/b(n/c{id}))", "a(n/b(/c{id}))", *s, opts));
}

TEST(Containment, NonOneToOneAnchorNotRelaxed) {
  std::unique_ptr<Summary> s = Sum("a(b!(c))");  // strong but not one-to-one
  EXPECT_FALSE(Contained("a(/b(n/c{id}))", "a(n/b(/c{id}))", *s));
}

// ---- Equivalence & union-in-union ----

TEST(Containment, Equivalence) {
  std::unique_ptr<Summary> s = Sum("r(a(b))");
  Result<bool> eq = AreEquivalent(MustParsePattern("r(//b{id})"),
                                  MustParsePattern("r(/a(/b{id}))"), *s);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(Containment, UnionInUnion) {
  std::unique_ptr<Summary> s = Sum("a(b d(b))");
  Pattern p1 = MustParsePattern("a(/b{id})");
  Pattern p2 = MustParsePattern("a(/d(/b{id}))");
  Pattern q = MustParsePattern("a(//b{id})");
  Result<bool> r = IsUnionContainedInUnion({&p1, &p2}, {&q}, *s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  Result<bool> r2 = IsUnionContainedInUnion({&q}, {&p1, &p2}, *s);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
}

// ---- Satisfiability helpers ----

TEST(Satisfiability, TriviallyUnsatisfiable) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  EXPECT_TRUE(TriviallyUnsatisfiable(MustParsePattern("a(/z{id})"), *s));
  EXPECT_FALSE(TriviallyUnsatisfiable(MustParsePattern("a(/b{id})"), *s));
  // Optional subtrees do not make the pattern unsatisfiable.
  EXPECT_FALSE(TriviallyUnsatisfiable(MustParsePattern("a(/b{id}(?/z))"), *s));
}

TEST(Satisfiability, FilterSatisfiable) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  std::vector<Pattern> ps;
  ps.push_back(MustParsePattern("a(/b{id})"));
  ps.push_back(MustParsePattern("a(/z{id})"));
  ps.push_back(MustParsePattern("a(//b{id})"));
  std::vector<Pattern> kept = FilterSatisfiable(ps, *s);
  EXPECT_EQ(kept.size(), 2u);
}

// Parameterized sweep: containment decision is consistent with evaluation
// over the canonical trees themselves (soundness spot-check).
class ContainmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentSweep, ReflexiveAndTransitiveChains) {
  std::unique_ptr<Summary> s = Sum("a(b(c(d)) e(b(c)))");
  const std::vector<std::string> chain = {
      "a(//d{id})",
      "a(//c(/d{id}))",
      "a(/b(/c(/d{id})))",
  };
  int i = GetParam() % static_cast<int>(chain.size());
  // Every member is contained in itself and in looser members.
  EXPECT_TRUE(Contained(chain[static_cast<size_t>(i)],
                        chain[static_cast<size_t>(i)], *s));
  for (int j = 0; j <= i; ++j) {
    EXPECT_TRUE(Contained(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(j)], *s))
        << chain[static_cast<size_t>(i)] << " vs "
        << chain[static_cast<size_t>(j)];
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContainmentSweep, ::testing::Range(0, 3));

}  // namespace
}  // namespace svx
