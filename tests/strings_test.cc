#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(Strings, SplitBasic) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(".a", '.'), (std::vector<std::string>{"", "a"}));
}

TEST(Strings, JoinBasic) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(Strings, SplitJoinRoundTrip) {
  std::string s = "site/regions/asia/item";
  EXPECT_EQ(Join(Split(s, '/'), "/"), s);
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\n\tx\r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Strings, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("4.2").has_value());
  EXPECT_FALSE(ParseInt64("x42").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(Strings, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

}  // namespace
}  // namespace svx
