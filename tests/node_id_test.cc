#include "src/xml/node_id.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(OrdPath, RootAndChildren) {
  OrdPath root = OrdPath::Root();
  EXPECT_EQ(root.ToString(), "1");
  EXPECT_EQ(root.Depth(), 1);
  OrdPath c = root.Child(3);
  EXPECT_EQ(c.ToString(), "1.3");
  EXPECT_EQ(c.Child(1).ToString(), "1.3.1");
}

TEST(OrdPath, FromStringRoundTrip) {
  OrdPath p = OrdPath::FromString("1.3.3.1");
  ASSERT_TRUE(p.IsValid());
  EXPECT_EQ(p.ToString(), "1.3.3.1");
  EXPECT_EQ(p.Depth(), 4);
}

TEST(OrdPath, FromStringRejectsMalformed) {
  EXPECT_FALSE(OrdPath::FromString("").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.x").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.0").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.-2").IsValid());
}

TEST(OrdPath, ParentDerivation) {
  // The paper's §4.6 navfID: an element's ID derives from its child's ID.
  OrdPath p = OrdPath::FromString("1.3.3.1");
  EXPECT_EQ(p.Parent().ToString(), "1.3.3");
  EXPECT_EQ(p.Parent().Parent().ToString(), "1.3");
  EXPECT_FALSE(OrdPath::Root().Parent().IsValid());
}

TEST(OrdPath, AncestorSteps) {
  OrdPath p = OrdPath::FromString("1.2.3.4.5");
  EXPECT_EQ(p.Ancestor(0), p);
  EXPECT_EQ(p.Ancestor(2).ToString(), "1.2.3");
  EXPECT_EQ(p.Ancestor(4).ToString(), "1");
  EXPECT_FALSE(p.Ancestor(5).IsValid());
}

TEST(OrdPath, StructuralRelationships) {
  // §1: "structural IDs allow deciding whether an element is a parent
  // (ancestor) of another by comparing their IDs".
  OrdPath a = OrdPath::FromString("1.3");
  OrdPath b = OrdPath::FromString("1.3.3");
  OrdPath c = OrdPath::FromString("1.3.3.1");
  OrdPath d = OrdPath::FromString("1.5");
  EXPECT_TRUE(a.IsParentOf(b));
  EXPECT_FALSE(a.IsParentOf(c));
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_TRUE(a.IsAncestorOf(c));
  EXPECT_FALSE(a.IsAncestorOf(d));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_FALSE(a.IsAncestorOf(a));
  EXPECT_TRUE(a.IsAncestorOrSelf(a));
}

TEST(OrdPath, DocumentOrderIsPreorder) {
  std::vector<OrdPath> ids = {
      OrdPath::FromString("1"),     OrdPath::FromString("1.1"),
      OrdPath::FromString("1.1.1"), OrdPath::FromString("1.2"),
      OrdPath::FromString("1.10"),
  };
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(ids[i] < ids[j], i < j)
          << ids[i].ToString() << " vs " << ids[j].ToString();
    }
  }
}

TEST(OrdPath, SortOrdersSiblingsNumerically) {
  // "1.10" must sort after "1.9" (component-wise, not lexicographic).
  EXPECT_TRUE(OrdPath::FromString("1.9") < OrdPath::FromString("1.10"));
}

TEST(OrdPath, HashAndEquality) {
  OrdPath a = OrdPath::FromString("1.2.3");
  OrdPath b = OrdPath::Root().Child(2).Child(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, a.Parent());
}

// ---------------------------------------------------------------------------
// Careting (mid-sibling insertion ids)
// ---------------------------------------------------------------------------

TEST(OrdPathCaret, FromStringRoundTripsCarets) {
  OrdPath p = OrdPath::FromString("1.3.^.1");
  ASSERT_TRUE(p.IsValid());
  EXPECT_EQ(p.ToString(), "1.3.^.1");
  OrdPath q = OrdPath::FromString("1.0.1");
  ASSERT_TRUE(q.IsValid());
  EXPECT_EQ(q.ToString(), "1.0.1");
  // Trailing carets never end a valid id.
  EXPECT_FALSE(OrdPath::FromString("1.3.^").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.0").IsValid());
}

TEST(OrdPathCaret, HighCaretKeysAddNoDepth) {
  // "1.3.^.1" names a sibling squeezed in after "1.3"'s subtree.
  OrdPath p = OrdPath::FromString("1.3.^.1");
  EXPECT_EQ(p.Depth(), 2);
  EXPECT_EQ(p.Parent().ToString(), "1");
  // Its own children go one level down as usual.
  EXPECT_EQ(p.Child(2).Depth(), 3);
  EXPECT_EQ(p.Child(2).Parent(), p);
  // "1.0.1" is a child before the first child.
  OrdPath q = OrdPath::FromString("1.0.1");
  EXPECT_EQ(q.Depth(), 2);
  EXPECT_EQ(q.Parent().ToString(), "1");
  // Ancestor steps through caret keys.
  EXPECT_EQ(p.Child(2).Ancestor(2).ToString(), "1");
}

TEST(OrdPathCaret, StructuralRelationshipsAreCaretAware) {
  OrdPath anchor = OrdPath::FromString("1.3");
  OrdPath caret = OrdPath::FromString("1.3.^.1");
  OrdPath caret_child = OrdPath::FromString("1.3.^.1.1");
  // The caret node extends "1.3"'s components but is its sibling.
  EXPECT_FALSE(anchor.IsAncestorOf(caret));
  EXPECT_FALSE(anchor.IsParentOf(caret));
  EXPECT_FALSE(anchor.IsAncestorOf(caret_child));
  EXPECT_TRUE(OrdPath::Root().IsParentOf(caret));
  EXPECT_TRUE(caret.IsParentOf(caret_child));
  EXPECT_TRUE(OrdPath::Root().IsAncestorOf(caret_child));
  // Low-caret first children are ordinary descendants.
  EXPECT_TRUE(OrdPath::Root().IsParentOf(OrdPath::FromString("1.0.1")));
}

TEST(OrdPathCaret, CaretBeforeSortsBetweenNeighbors) {
  OrdPath parent = OrdPath::Root();
  OrdPath left = OrdPath::FromString("1.3");
  OrdPath left_desc = OrdPath::FromString("1.3.7.2");
  OrdPath right = OrdPath::FromString("1.4");
  OrdPath x = OrdPath::CaretBefore(parent, left, right);
  EXPECT_EQ(x.ToString(), "1.3.^.1");
  EXPECT_TRUE(left < x && x < right);
  EXPECT_TRUE(left_desc < x) << "must follow the left subtree";
  EXPECT_EQ(x.Depth(), 2);

  // Before a first child: descend with a low caret.
  OrdPath first = OrdPath::CaretBefore(parent, OrdPath(), right);
  EXPECT_EQ(first.ToString(), "1.3");  // ordinal room before "1.4"
  OrdPath before_one =
      OrdPath::CaretBefore(parent, OrdPath(), OrdPath::FromString("1.1"));
  EXPECT_EQ(before_one.ToString(), "1.0.1");
  EXPECT_TRUE(parent < before_one &&
              before_one < OrdPath::FromString("1.1"));
}

TEST(OrdPathCaret, RepeatedInsertsAtTheSameSlotStayOrdered) {
  // Keep inserting before the same right sibling; every new id must fall
  // strictly between the (previous) left neighbor's subtree and `right`.
  OrdPath parent = OrdPath::Root();
  OrdPath left = OrdPath::FromString("1.1");
  OrdPath right = OrdPath::FromString("1.2");
  std::vector<OrdPath> all = {left, right};
  OrdPath cur_left = left;
  for (int i = 0; i < 8; ++i) {
    OrdPath x = OrdPath::CaretBefore(parent, cur_left, right);
    EXPECT_TRUE(cur_left < x && x < right) << x.ToString();
    EXPECT_EQ(x.Depth(), 2) << x.ToString();
    EXPECT_EQ(x.Parent(), parent) << x.ToString();
    all.push_back(x);
    cur_left = x;  // next insert goes between x and right
  }
  // And inserting always-first keeps descending below `left`'s slot.
  OrdPath cur_right = right;
  for (int i = 0; i < 8; ++i) {
    OrdPath x = OrdPath::CaretBefore(parent, left, cur_right);
    EXPECT_TRUE(left < x && x < cur_right) << x.ToString();
    EXPECT_EQ(x.Depth(), 2) << x.ToString();
    EXPECT_EQ(x.Parent(), parent) << x.ToString();
    all.push_back(x);
    cur_right = x;
  }
  for (const OrdPath& p : all) {
    EXPECT_FALSE(left.IsAncestorOf(p)) << p.ToString();
  }
}

}  // namespace
}  // namespace svx
