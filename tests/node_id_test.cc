#include "src/xml/node_id.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(OrdPath, RootAndChildren) {
  OrdPath root = OrdPath::Root();
  EXPECT_EQ(root.ToString(), "1");
  EXPECT_EQ(root.Depth(), 1);
  OrdPath c = root.Child(3);
  EXPECT_EQ(c.ToString(), "1.3");
  EXPECT_EQ(c.Child(1).ToString(), "1.3.1");
}

TEST(OrdPath, FromStringRoundTrip) {
  OrdPath p = OrdPath::FromString("1.3.3.1");
  ASSERT_TRUE(p.IsValid());
  EXPECT_EQ(p.ToString(), "1.3.3.1");
  EXPECT_EQ(p.Depth(), 4);
}

TEST(OrdPath, FromStringRejectsMalformed) {
  EXPECT_FALSE(OrdPath::FromString("").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.x").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.0").IsValid());
  EXPECT_FALSE(OrdPath::FromString("1.-2").IsValid());
}

TEST(OrdPath, ParentDerivation) {
  // The paper's §4.6 navfID: an element's ID derives from its child's ID.
  OrdPath p = OrdPath::FromString("1.3.3.1");
  EXPECT_EQ(p.Parent().ToString(), "1.3.3");
  EXPECT_EQ(p.Parent().Parent().ToString(), "1.3");
  EXPECT_FALSE(OrdPath::Root().Parent().IsValid());
}

TEST(OrdPath, AncestorSteps) {
  OrdPath p = OrdPath::FromString("1.2.3.4.5");
  EXPECT_EQ(p.Ancestor(0), p);
  EXPECT_EQ(p.Ancestor(2).ToString(), "1.2.3");
  EXPECT_EQ(p.Ancestor(4).ToString(), "1");
  EXPECT_FALSE(p.Ancestor(5).IsValid());
}

TEST(OrdPath, StructuralRelationships) {
  // §1: "structural IDs allow deciding whether an element is a parent
  // (ancestor) of another by comparing their IDs".
  OrdPath a = OrdPath::FromString("1.3");
  OrdPath b = OrdPath::FromString("1.3.3");
  OrdPath c = OrdPath::FromString("1.3.3.1");
  OrdPath d = OrdPath::FromString("1.5");
  EXPECT_TRUE(a.IsParentOf(b));
  EXPECT_FALSE(a.IsParentOf(c));
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_TRUE(a.IsAncestorOf(c));
  EXPECT_FALSE(a.IsAncestorOf(d));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_FALSE(a.IsAncestorOf(a));
  EXPECT_TRUE(a.IsAncestorOrSelf(a));
}

TEST(OrdPath, DocumentOrderIsPreorder) {
  std::vector<OrdPath> ids = {
      OrdPath::FromString("1"),     OrdPath::FromString("1.1"),
      OrdPath::FromString("1.1.1"), OrdPath::FromString("1.2"),
      OrdPath::FromString("1.10"),
  };
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(ids[i] < ids[j], i < j)
          << ids[i].ToString() << " vs " << ids[j].ToString();
    }
  }
}

TEST(OrdPath, SortOrdersSiblingsNumerically) {
  // "1.10" must sort after "1.9" (component-wise, not lexicographic).
  EXPECT_TRUE(OrdPath::FromString("1.9") < OrdPath::FromString("1.10"));
}

TEST(OrdPath, HashAndEquality) {
  OrdPath a = OrdPath::FromString("1.2.3");
  OrdPath b = OrdPath::Root().Child(2).Child(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, a.Parent());
}

}  // namespace
}  // namespace svx
