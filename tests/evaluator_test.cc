#include "src/pattern/evaluator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<std::vector<int32_t>> Tuples(const std::vector<EvalRow>& rows) {
  std::vector<std::vector<int32_t>> out;
  for (const EvalRow& r : rows) out.push_back(r.nodes);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Evaluator, SimpleChildMatch) {
  std::unique_ptr<Document> d = Doc("a(b b c)");
  Pattern p = MustParsePattern("a(/b{id})");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{1}, {2}}));
}

TEST(Evaluator, DescendantMatch) {
  std::unique_ptr<Document> d = Doc("a(b(c(b)) b)");
  Pattern p = MustParsePattern("a(//b{id})");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{1}, {3}, {4}}));
}

TEST(Evaluator, MultipleReturnNodesCrossProduct) {
  std::unique_ptr<Document> d = Doc("a(b b c c)");
  Pattern p = MustParsePattern("a(/b{id} /c{id})");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(rows.size(), 4u);  // 2 b's x 2 c's
}

TEST(Evaluator, RootLabelMustMatch) {
  std::unique_ptr<Document> d = Doc("a(b)");
  Pattern p = MustParsePattern("z(/b{id})");
  EXPECT_TRUE(EvaluateOnDocument(p, *d).empty());
}

TEST(Evaluator, ValuePredicateFiltersNodes) {
  std::unique_ptr<Document> d = Doc("a(b=1 b=5 b=9 b)");
  Pattern p = MustParsePattern("a(/b{id}[v>2&v<7])");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{2}}));
}

TEST(Evaluator, WildcardAndSharedStructure) {
  std::unique_ptr<Document> d = Doc("a(x(d) y(d) z)");
  Pattern p = MustParsePattern("a(/*{id}(/d))");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{1}, {3}}));
}

// ---- Optional edges (paper Figure 10 shape) ----

TEST(Evaluator, OptionalEdgeProducesBottom) {
  // d: a(c1(b d(b e)) c2) — c2 has no d subtree: (c2, ⊥) must be produced.
  std::unique_ptr<Document> d = Doc("a(c(b d(b e)) c)");
  Pattern p = MustParsePattern("a(//c{id}(?/d(/b{id} /e)))");
  auto rows = EvaluateOnDocument(p, *d);
  // c1 -> (c1, b-under-d); c2 -> (c2, ⊥).
  std::vector<std::vector<int32_t>> expected{{1, 4}, {6, EvalRow::kBottom}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Tuples(rows), expected);
}

TEST(Evaluator, OptionalBottomOnlyWhenNoMatchExists) {
  // Def 4.1 3(b): ⊥ is allowed only if no embedding exists under e(n1).
  std::unique_ptr<Document> d = Doc("a(c(d))");
  Pattern p = MustParsePattern("a(/c{id}(?/d{id}))");
  auto rows = EvaluateOnDocument(p, *d);
  // d exists, so (c, ⊥) must NOT be produced.
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{1, 2}}));
}

TEST(Evaluator, PaperFigure10Semantics) {
  // Figure 10: p1(t) = {(c1,b2),(c1,b3),(c2,⊥)}; b2 lacks a sibling e yet
  // appears; c2 appears with ⊥.
  // Build t with: c1 having b-d1(b2) d2(b3 e), c2 with d3 only (no b under
  // its d, so no match for the optional subtree -> ⊥... we mirror the spirit
  // with a simpler tree).
  std::unique_ptr<Document> d = Doc("a(c(d(b) d(b e)) c(d))");
  // p: a(//c{id}(?/d(/b{id})))
  Pattern p = MustParsePattern("a(//c{id}(?/d(/b{id})))");
  auto rows = EvaluateOnDocument(p, *d);
  std::vector<std::vector<int32_t>> expected{
      {1, 3}, {1, 5}, {7, EvalRow::kBottom}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Tuples(rows), expected);
}

TEST(Evaluator, NestedOptionalEdges) {
  std::unique_ptr<Document> d = Doc("a(c c(d) c(d(b)))");
  Pattern p = MustParsePattern("a(//c{id}(?/d{id}(?/b{id})))");
  auto rows = EvaluateOnDocument(p, *d);
  std::vector<std::vector<int32_t>> expected{
      {1, EvalRow::kBottom, EvalRow::kBottom},
      {2, 3, EvalRow::kBottom},
      {4, 5, 6}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Tuples(rows), expected);
}

// ---- Nesting sequences (§4.5) ----

TEST(Evaluator, NestingSequenceRecordsUpperNodes) {
  std::unique_ptr<Document> d = Doc("a(b(c) b(c))");
  Pattern p = MustParsePattern("a(n//c{id})");
  auto rows = EvaluateReturnRows(p, DocumentTreeView(*d),
                                 FormulaMode::kImplication);
  ASSERT_EQ(rows.size(), 2u);
  for (const EvalRow& r : rows) {
    ASSERT_EQ(r.nesting[0].size(), 1u);
    // The upper node of the nested edge is the pattern root binding (a = 0).
    EXPECT_EQ(r.nesting[0][0], 0);
  }
}

TEST(Evaluator, DeepNestingSequence) {
  std::unique_ptr<Document> d = Doc("a(b(c(e)))");
  Pattern p = MustParsePattern("a(n/b(n//e{id}))");
  auto rows = EvaluateReturnRows(p, DocumentTreeView(*d),
                                 FormulaMode::kImplication);
  ASSERT_EQ(rows.size(), 1u);
  // ns(e) = (a-binding, b-binding) = (0, 1).
  EXPECT_EQ(rows[0].nesting[0], (std::vector<int32_t>{0, 1}));
}

TEST(Evaluator, DuplicateRowsDeduplicated) {
  // Two embeddings with the same return bindings yield one row.
  std::unique_ptr<Document> d = Doc("a(b(x) b(x) c)");
  Pattern p = MustParsePattern("a(//b //c{id})");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(rows.size(), 1u);
}

TEST(Evaluator, ContainsNodeTupleHelper) {
  std::unique_ptr<Document> d = Doc("a(b)");
  Pattern p = MustParsePattern("a(/b{id})");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_TRUE(ContainsNodeTuple(rows, {1}));
  EXPECT_FALSE(ContainsNodeTuple(rows, {0}));
}

TEST(Evaluator, NonReturnNodesConstrainButDontProject) {
  std::unique_ptr<Document> d = Doc("a(b(q) b)");
  Pattern p = MustParsePattern("a(/b{id}(/q))");
  auto rows = EvaluateOnDocument(p, *d);
  EXPECT_EQ(Tuples(rows), (std::vector<std::vector<int32_t>>{{1}}));
}

}  // namespace
}  // namespace svx
