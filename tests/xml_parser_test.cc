#include "src/xml/parser.h"

#include <gtest/gtest.h>

#include "src/xml/serializer.h"

namespace svx {
namespace {

std::unique_ptr<Document> MustParseXml(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseXml(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(XmlParser, MinimalDocument) {
  std::unique_ptr<Document> d = MustParseXml("<a/>");
  EXPECT_EQ(d->size(), 1);
  EXPECT_EQ(d->label(0), "a");
}

TEST(XmlParser, NestedElementsAndText) {
  std::unique_ptr<Document> d =
      MustParseXml("<a><b>1</b><c><d>2</d><e/></c></a>");
  ASSERT_EQ(d->size(), 5);
  EXPECT_EQ(d->label(1), "b");
  EXPECT_EQ(d->value(1), "1");
  EXPECT_EQ(d->label(3), "d");
  EXPECT_EQ(d->value(3), "2");
}

TEST(XmlParser, AttributesBecomeAtChildren) {
  std::unique_ptr<Document> d =
      MustParseXml("<item id=\"i7\" featured=\"yes\"><name>pen</name></item>");
  std::vector<NodeIndex> kids = d->children(0);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(d->label(kids[0]), "@id");
  EXPECT_EQ(d->value(kids[0]), "i7");
  EXPECT_EQ(d->label(kids[1]), "@featured");
  EXPECT_EQ(d->value(kids[1]), "yes");
  EXPECT_EQ(d->label(kids[2]), "name");
}

TEST(XmlParser, EntitiesDecoded) {
  std::unique_ptr<Document> d =
      MustParseXml("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;</a>");
  EXPECT_EQ(d->value(0), "<x> & \"y\" 'z' A");
}

TEST(XmlParser, CommentsAndPIsSkipped) {
  std::unique_ptr<Document> d = MustParseXml(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- in -->"
      "<b>1</b><?pi data?></a>");
  EXPECT_EQ(d->size(), 2);
  EXPECT_EQ(d->value(1), "1");
}

TEST(XmlParser, CData) {
  std::unique_ptr<Document> d = MustParseXml("<a><![CDATA[<raw>&]]></a>");
  EXPECT_EQ(d->value(0), "<raw>&");
}

TEST(XmlParser, DoctypeSkipped) {
  std::unique_ptr<Document> d =
      MustParseXml("<!DOCTYPE site SYSTEM \"xmark.dtd\"><site/>");
  EXPECT_EQ(d->label(0), "site");
}

TEST(XmlParser, MixedContentKeepsElementChildren) {
  // Direct character data becomes the element's value; markup children stay
  // separate (paper data model §2.1).
  std::unique_ptr<Document> d =
      MustParseXml("<text>Stainless steel, <bold>gold plated</bold></text>");
  ASSERT_EQ(d->size(), 2);
  EXPECT_EQ(d->value(0), "Stainless steel,");
  EXPECT_EQ(d->label(1), "bold");
  EXPECT_EQ(d->value(1), "gold plated");
}

TEST(XmlParser, Whitespace) {
  std::unique_ptr<Document> d = MustParseXml("<a>\n  <b> 1 </b>\n</a>");
  EXPECT_EQ(d->size(), 2);
  EXPECT_EQ(d->value(1), "1");
  EXPECT_FALSE(d->has_value(0));
}

TEST(XmlParser, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());
  EXPECT_FALSE(ParseXml("<a x=unquoted/>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("junk<a/>").ok());
}

TEST(XmlSerializer, RoundTripThroughParser) {
  const char* xml =
      "<site><regions><asia><item id=\"i1\"><name>pen</name>"
      "<description>nice <bold>gold</bold></description></item>"
      "</asia></regions></site>";
  std::unique_ptr<Document> d = MustParseXml(xml);
  std::string out = SerializeXml(*d);
  std::unique_ptr<Document> d2 = MustParseXml(out);
  ASSERT_EQ(d->size(), d2->size());
  for (NodeIndex n = 0; n < d->size(); ++n) {
    EXPECT_EQ(d->label(n), d2->label(n));
    EXPECT_EQ(d->has_value(n), d2->has_value(n));
    if (d->has_value(n)) {
      EXPECT_EQ(d->value(n), d2->value(n));
    }
    EXPECT_EQ(d->parent(n), d2->parent(n));
  }
}

TEST(XmlSerializer, PrettyPrintIndents) {
  std::unique_ptr<Document> d = MustParseXml("<a><b>1</b></a>");
  std::string out = SerializeXml(*d, 2);
  EXPECT_NE(out.find("\n"), std::string::npos);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
}

}  // namespace
}  // namespace svx
