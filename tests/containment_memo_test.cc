#include "src/containment/memo.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/summary/summary_io.h"
#include "src/util/rng.h"
#include "src/workload/pattern_generator.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ContainmentMemo, AgreesWithDirectCalls) {
  std::unique_ptr<Summary> s = Sum("r(a(b c(b)) b d(a(b) e))");
  ContainmentMemo memo;
  ContainmentOptions opts;
  Pattern p1 = MustParsePattern("r(//a(//b{id}))");
  Pattern p2 = MustParsePattern("r(//b{id})");
  Result<bool> direct = IsContained(p1, p2, *s, opts);
  Result<bool> memoized = memo.Contained(p1, p2, *s, opts);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(memoized.ok());
  EXPECT_EQ(*direct, *memoized);
  EXPECT_EQ(memo.misses(), 1u);
  // The repeat is a hit with the same answer.
  Result<bool> again = memo.Contained(p1, p2, *s, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *direct);
  EXPECT_EQ(memo.hits(), 1u);
}

/// Randomized property: over generated pattern pairs, the memoized decision
/// (miss and hit alike) agrees with the unmemoized one, for plain and union
/// containment.
TEST(ContainmentMemo, PropertyMemoizedAgreesWithUnmemoized) {
  std::unique_ptr<Summary> s =
      Sum("site(regions(asia(item(name description(text))) "
          "europe(item(name payment))) people(person(name address(city))) "
          "open_auctions(open_auction(bidder(increase) initial)))");
  Rng rng(20260728);
  PatternGenOptions gen;
  gen.num_nodes = 5;
  gen.num_return = 1;
  gen.p_optional = 0.3;

  ContainmentMemo memo;
  ContainmentOptions opts;
  int checked = 0;
  for (int iter = 0; iter < 60; ++iter) {
    Result<Pattern> p = GeneratePattern(*s, gen, &rng);
    Result<Pattern> q = GeneratePattern(*s, gen, &rng);
    Result<Pattern> u = GeneratePattern(*s, gen, &rng);
    if (!p.ok() || !q.ok() || !u.ok()) continue;

    Result<bool> direct = IsContained(*p, *q, *s, opts);
    Result<bool> memo1 = memo.Contained(*p, *q, *s, opts);
    Result<bool> memo2 = memo.Contained(*p, *q, *s, opts);  // hit path
    if (direct.ok()) {
      ASSERT_TRUE(memo1.ok());
      ASSERT_TRUE(memo2.ok());
      EXPECT_EQ(*memo1, *direct)
          << PatternToString(*p) << " vs " << PatternToString(*q);
      EXPECT_EQ(*memo2, *direct);
      ++checked;
    }

    std::vector<const Pattern*> members{&*q, &*u};
    Result<bool> dunion = IsContainedInUnion(*p, members, *s, opts);
    Result<bool> munion1 = memo.ContainedInUnion(*p, members, *s, opts);
    // Union membership order must not matter for the key or the answer.
    std::vector<const Pattern*> swapped{&*u, &*q};
    Result<bool> munion2 = memo.ContainedInUnion(*p, swapped, *s, opts);
    if (dunion.ok()) {
      ASSERT_TRUE(munion1.ok());
      ASSERT_TRUE(munion2.ok());
      EXPECT_EQ(*munion1, *dunion);
      EXPECT_EQ(*munion2, *dunion);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20) << "generator produced too few decidable pairs";
  EXPECT_GT(memo.hits(), 0u);
  EXPECT_GT(memo.misses(), 0u);
}

/// Differing options must not share entries: the §4.5 relaxation can change
/// the verdict, so it is part of the fingerprint.
TEST(ContainmentMemo, OptionsEnterTheKey) {
  std::unique_ptr<Summary> s = Sum("a(b(c))");
  ContainmentMemo memo;
  Pattern p = MustParsePattern("a(/b{id}(n/c{v}))");
  Pattern q = MustParsePattern("a(/b{id}(n/c{v}))");
  ContainmentOptions relaxed;
  relaxed.use_one_to_one_relaxation = true;
  ContainmentOptions strict;
  strict.use_one_to_one_relaxation = false;
  Result<bool> r1 = memo.Contained(p, q, *s, relaxed);
  Result<bool> r2 = memo.Contained(p, q, *s, strict);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(memo.misses(), 2u) << "distinct options must miss separately";
  EXPECT_EQ(*r1, *IsContained(p, q, *s, relaxed));
  EXPECT_EQ(*r2, *IsContained(p, q, *s, strict));
}

TEST(ContainmentMemo, ClearDropsEntries) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  ContainmentMemo memo;
  Pattern p = MustParsePattern("a(/b{id})");
  ASSERT_TRUE(memo.Contained(p, p, *s, {}).ok());
  EXPECT_EQ(memo.size(), 1u);
  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
  ASSERT_TRUE(memo.Contained(p, p, *s, {}).ok());
  EXPECT_EQ(memo.misses(), 2u);
}

}  // namespace
}  // namespace svx
