#include "src/summary/summary.h"

#include <gtest/gtest.h>

#include "src/summary/summary_builder.h"
#include "src/summary/summary_io.h"
#include "src/xml/builder.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(SummaryBuilder, MergesSamePathNodes) {
  // Figure 3 spirit: all nodes reachable by one path map to one summary node.
  std::unique_ptr<Document> d = Doc("a(b b b c(d) c(d d))");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  // Paths: /a, /a/b, /a/c, /a/c/d.
  EXPECT_EQ(s->size(), 4);
  EXPECT_EQ(s->label(0), "a");
  EXPECT_EQ(s->Resolve("/a/b"), 1);
  EXPECT_EQ(s->Resolve("/a/c"), 2);
  EXPECT_EQ(s->Resolve("/a/c/d"), 3);
}

TEST(SummaryBuilder, AnnotatesDocument) {
  std::unique_ptr<Document> d = Doc("a(b c(d) b)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  EXPECT_TRUE(d->has_path_annotation());
  PathId b = s->Resolve("/a/b");
  EXPECT_EQ(d->path_id(1), b);
  EXPECT_EQ(d->path_id(4), b);
  EXPECT_EQ(d->nodes_on_path(b), (std::vector<NodeIndex>{1, 4}));
}

TEST(SummaryBuilder, SameLabelDifferentPathsStayDistinct) {
  // b occurs under /a and under /a/c: two summary nodes.
  std::unique_ptr<Document> d = Doc("a(b c(b))");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  EXPECT_EQ(s->size(), 4);
  EXPECT_NE(s->Resolve("/a/b"), s->Resolve("/a/c/b"));
}

TEST(SummaryBuilder, StrongEdges) {
  // Every c has a d child -> strong; only some b have e -> not strong.
  std::unique_ptr<Document> d = Doc("a(c(d) c(d d) b(e) b)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  EXPECT_TRUE(s->strong_edge(s->Resolve("/a/c/d")));
  EXPECT_FALSE(s->strong_edge(s->Resolve("/a/b/e")));
  // The document root's children: a has exactly one... c appears twice, so
  // /a/c is strong iff every a node (just one) has >= 1 c child.
  EXPECT_TRUE(s->strong_edge(s->Resolve("/a/c")));
}

TEST(SummaryBuilder, OneToOneEdges) {
  std::unique_ptr<Document> d = Doc("a(c(d) c(d d) b(e) b(e))");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  // Every c has >= 1 d, but one c has two -> strong, not one-to-one.
  EXPECT_TRUE(s->strong_edge(s->Resolve("/a/c/d")));
  EXPECT_FALSE(s->one_to_one(s->Resolve("/a/c/d")));
  // Every b has exactly one e -> one-to-one.
  EXPECT_TRUE(s->one_to_one(s->Resolve("/a/b/e")));
  EXPECT_EQ(s->num_strong_edges(), 4);  // c, c/d, b, b/e
  EXPECT_EQ(s->num_one_to_one_edges(), 1);
}

TEST(SummaryBuilder, MultiDocumentWeakensConstraints) {
  // Doc 1: every b has e. Doc 2 introduces b without e -> edge not strong.
  std::unique_ptr<Document> d1 = Doc("a(b(e))");
  std::unique_ptr<Document> d2 = Doc("a(b)");
  SummaryBuilder builder;
  builder.Add(d1.get());
  builder.Add(d2.get());
  std::unique_ptr<Summary> s = builder.Finish();
  EXPECT_EQ(s->size(), 3);
  EXPECT_FALSE(s->strong_edge(s->Resolve("/a/b/e")));
}

TEST(SummaryBuilder, NewPathAfterParentSeenIsNotStrong) {
  // Doc 1 has a(b); doc 2 has a(b(c)): /a/b/c cannot be strong because doc1's
  // b had no c.
  std::unique_ptr<Document> d1 = Doc("a(b)");
  std::unique_ptr<Document> d2 = Doc("a(b(c))");
  SummaryBuilder builder;
  builder.Add(d1.get());
  builder.Add(d2.get());
  std::unique_ptr<Summary> s = builder.Finish();
  EXPECT_FALSE(s->strong_edge(s->Resolve("/a/b/c")));
}

TEST(Summary, AncestorAndChainQueries) {
  std::unique_ptr<Document> d = Doc("a(b(c(d)) e)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  PathId a = s->Resolve("/a");
  PathId c = s->Resolve("/a/b/c");
  PathId dd = s->Resolve("/a/b/c/d");
  PathId e = s->Resolve("/a/e");
  EXPECT_TRUE(s->IsAncestor(a, dd));
  EXPECT_FALSE(s->IsAncestor(dd, a));
  EXPECT_FALSE(s->IsAncestor(c, e));
  EXPECT_TRUE(s->IsAncestorOrSelf(c, c));
  std::vector<PathId> chain = s->Chain(a, dd);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.front(), a);
  EXPECT_EQ(chain.back(), dd);
  EXPECT_EQ(s->PathString(dd), "/a/b/c/d");
}

TEST(Summary, DescendantsPreorder) {
  std::unique_ptr<Document> d = Doc("a(b(c) e)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  std::vector<PathId> desc = s->Descendants(s->root());
  EXPECT_EQ(desc.size(), 3u);
  EXPECT_EQ(s->PathString(desc[0]), "/a/b");
  EXPECT_EQ(s->PathString(desc[1]), "/a/b/c");
  EXPECT_EQ(s->PathString(desc[2]), "/a/e");
}

TEST(SummaryIo, ParseAndPrint) {
  Result<std::unique_ptr<Summary>> s = ParseSummary("a(b!(c(d b!) e) f!!)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->size(), 7);
  EXPECT_TRUE((*s)->strong_edge((*s)->Resolve("/a/b")));
  EXPECT_TRUE((*s)->strong_edge((*s)->Resolve("/a/b/c/b")));
  EXPECT_FALSE((*s)->strong_edge((*s)->Resolve("/a/b/e")));
  EXPECT_TRUE((*s)->one_to_one((*s)->Resolve("/a/f")));
  EXPECT_TRUE((*s)->strong_edge((*s)->Resolve("/a/f")) ||
              (*s)->one_to_one((*s)->Resolve("/a/f")));
  EXPECT_EQ(SummaryToString(**s), "a(b!(c(d b!) e) f!!)");
}

TEST(SummaryIo, RejectsDuplicatesAndBadRoot) {
  EXPECT_FALSE(ParseSummary("a(b b)").ok());
  EXPECT_FALSE(ParseSummary("a!").ok());
  EXPECT_FALSE(ParseSummary("").ok());
  EXPECT_FALSE(ParseSummary("a(b").ok());
}

TEST(SummaryIo, StrongClosure) {
  Result<std::unique_ptr<Summary>> sr = ParseSummary("a(b!(c!) d(e!) f)");
  ASSERT_TRUE(sr.ok());
  const Summary& s = **sr;
  // Closure of {a}: follows a->b (strong), b->c (strong); not a->d, a->f.
  std::vector<PathId> cl = s.StrongClosure({s.root()});
  std::vector<std::string> paths;
  for (PathId p : cl) paths.push_back(s.PathString(p));
  EXPECT_EQ(paths, (std::vector<std::string>{"/a", "/a/b", "/a/b/c"}));
  // Closure of {d}: adds e.
  cl = s.StrongClosure({s.Resolve("/a/d")});
  EXPECT_EQ(cl.size(), 2u);
}

TEST(Conformance, ExactConformance) {
  std::unique_ptr<Document> d = Doc("a(b(e) b(e) c)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  EXPECT_TRUE(Conforms(*d, *s));
  // A different doc with same paths but weaker constraints does not conform
  // exactly (b without e breaks the strong edge).
  std::unique_ptr<Document> d2 = Doc("a(b(e) b c)");
  EXPECT_FALSE(Conforms(*d2, *s));
  // Missing path.
  std::unique_ptr<Document> d3 = Doc("a(b(e) b(e))");
  EXPECT_FALSE(Conforms(*d3, *s));
  // Extra path.
  std::unique_ptr<Document> d4 = Doc("a(b(e) b(e) c(x))");
  EXPECT_FALSE(Conforms(*d4, *s));
}

TEST(Conformance, WeakConformance) {
  // /a/b and /a/c are strong (the root has both); /a/b/e is not strong
  // (one b lacks e).
  std::unique_ptr<Document> d = Doc("a(b(e) b c)");
  std::unique_ptr<Summary> s = SummaryBuilder::Build(d.get());
  // Sub-documents weakly conform if paths exist and strong edges hold;
  // dropping the non-strong e is fine.
  std::unique_ptr<Document> sub = Doc("a(b c)");
  EXPECT_TRUE(WeaklyConforms(*sub, *s));
  // Missing the strong c child: violates.
  std::unique_ptr<Document> bad = Doc("a(b)");
  EXPECT_FALSE(WeaklyConforms(*bad, *s));
  // Unknown path: violates.
  std::unique_ptr<Document> unknown = Doc("a(z)");
  EXPECT_FALSE(WeaklyConforms(*unknown, *s));
}

TEST(Summary, StructurallyEquals) {
  // Same paths, same constraint flags, different instance counts.
  std::unique_ptr<Document> d1 = Doc("a(b b c c)");
  std::unique_ptr<Document> d2 = Doc("a(b b b c c)");
  std::unique_ptr<Summary> s1 = SummaryBuilder::Build(d1.get());
  std::unique_ptr<Summary> s2 = SummaryBuilder::Build(d2.get());
  EXPECT_TRUE(s1->StructurallyEquals(*s2));
  // Different paths.
  std::unique_ptr<Document> d3 = Doc("a(b b c c d)");
  std::unique_ptr<Summary> s3 = SummaryBuilder::Build(d3.get());
  EXPECT_FALSE(s1->StructurallyEquals(*s3));
  // Same paths, different flags (here /a/b becomes one-to-one).
  std::unique_ptr<Document> d4 = Doc("a(b c c)");
  std::unique_ptr<Summary> s4 = SummaryBuilder::Build(d4.get());
  EXPECT_FALSE(s1->StructurallyEquals(*s4));
}

TEST(Summary, ResolveEdgeCases) {
  Result<std::unique_ptr<Summary>> s = ParseSummary("a(b(c))");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->Resolve("/a/b/c"), 2);
  EXPECT_EQ((*s)->Resolve("/x"), kInvalidPath);
  EXPECT_EQ((*s)->Resolve("/a/z"), kInvalidPath);
  EXPECT_EQ((*s)->Resolve(""), kInvalidPath);
  EXPECT_EQ((*s)->Resolve("a/b"), 1);  // leading slash optional
}

}  // namespace
}  // namespace svx
