#include "src/pattern/embedding.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_io.h"

namespace svx {
namespace {

std::unique_ptr<Summary> Sum(std::string_view s) {
  Result<std::unique_ptr<Summary>> r = ParseSummary(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<std::string> PathsOf(const AssociatedPaths& ap, const Summary& s,
                                 PatternNodeId n) {
  std::vector<std::string> out;
  for (PathId p : ap.feasible[static_cast<size_t>(n)]) {
    out.push_back(s.PathString(p));
  }
  return out;
}

TEST(AssociatedPaths, SimpleChain) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  Pattern p = MustParsePattern("a(//b{id}(/c))");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_EQ(PathsOf(ap, *s, 0), (std::vector<std::string>{"/a"}));
  EXPECT_EQ(PathsOf(ap, *s, 1),
            (std::vector<std::string>{"/a/b", "/a/d/b"}));
  EXPECT_EQ(PathsOf(ap, *s, 2),
            (std::vector<std::string>{"/a/b/c", "/a/d/b/c"}));
}

TEST(AssociatedPaths, ChildAxisRestricts) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  Pattern p = MustParsePattern("a(/b{id})");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_EQ(PathsOf(ap, *s, 1), (std::vector<std::string>{"/a/b"}));
}

TEST(AssociatedPaths, BottomUpFiltering) {
  // b nodes exist on two paths but only one has a c child: the child
  // condition filters the other.
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b))");
  Pattern p = MustParsePattern("a(//b{id}(/c))");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_EQ(PathsOf(ap, *s, 1), (std::vector<std::string>{"/a/b"}));
}

TEST(AssociatedPaths, TopDownFiltering) {
  // c exists under both b's, but the pattern anchors b under d.
  std::unique_ptr<Summary> s = Sum("a(b(c) d(b(c)))");
  Pattern p = MustParsePattern("a(/d(/b(/c{id})))");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_EQ(PathsOf(ap, *s, 3), (std::vector<std::string>{"/a/d/b/c"}));
}

TEST(AssociatedPaths, UnsatisfiablePattern) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Pattern p = MustParsePattern("a(/z{id})");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_FALSE(ap.AllNonEmpty());
}

TEST(AssociatedPaths, RootMustMatchSummaryRoot) {
  std::unique_ptr<Summary> s = Sum("a(b)");
  Pattern p = MustParsePattern("b(/a{id})");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_TRUE(ap.feasible[0].empty());
}

TEST(AssociatedPaths, WildcardMatchesEverything) {
  std::unique_ptr<Summary> s = Sum("a(b(c) d)");
  Pattern p = MustParsePattern("a(//*{id})");
  AssociatedPaths ap = ComputeAssociatedPaths(p, *s);
  EXPECT_EQ(ap.feasible[1].size(), 3u);  // /a/b, /a/b/c, /a/d
}

TEST(EnumerateEmbeddings, AllEmbeddingsFound) {
  // Paper §2.4 example shape: p' = /a//*//e on a summary where * can bind
  // to two nodes.
  std::unique_ptr<Summary> s = Sum("a(b(c(e)))");
  Pattern p = MustParsePattern("a(//*(//e{id}))");
  std::vector<SummaryEmbedding> all;
  Status st = EnumerateEmbeddings(p, *s, 1000,
                                  [&](const SummaryEmbedding& e) {
                                    all.push_back(e);
                                    return true;
                                  });
  ASSERT_TRUE(st.ok());
  // * binds to b or c; e fixed.
  EXPECT_EQ(all.size(), 2u);
}

TEST(EnumerateEmbeddings, CountMatchesEnumeration) {
  std::unique_ptr<Summary> s = Sum("a(b(c(e) e) d(e))");
  Pattern p = MustParsePattern("a(//e{id})");
  Result<size_t> n = CountEmbeddings(p, *s, 1000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
}

TEST(EnumerateEmbeddings, LimitEnforced) {
  std::unique_ptr<Summary> s = Sum("a(b(c(e) e) d(e))");
  Pattern p = MustParsePattern("a(//*{id} //*{v})");
  Result<size_t> n = CountEmbeddings(p, *s, 3);
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kResourceExhausted);
}

TEST(EnumerateEmbeddings, EarlyStopViaCallback) {
  std::unique_ptr<Summary> s = Sum("a(b(c(e) e) d(e))");
  Pattern p = MustParsePattern("a(//e{id})");
  int seen = 0;
  Status st = EnumerateEmbeddings(p, *s, 1000,
                                  [&](const SummaryEmbedding&) {
                                    ++seen;
                                    return seen < 2;
                                  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(seen, 2);
}

TEST(EnumerateEmbeddings, DescendantAxisIsStrict) {
  // // means strict descendant: a//a has no embedding in a one-node summary.
  std::unique_ptr<Summary> s = Sum("a");
  Pattern p = MustParsePattern("a(//a{id})");
  Result<size_t> n = CountEmbeddings(p, *s, 10);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(EnumerateEmbeddings, RecursiveSummary) {
  // parlist/listitem-style recursion unfolded twice in the summary.
  std::unique_ptr<Summary> s =
      Sum("item(parlist(listitem(parlist(listitem(text)) text)))");
  Pattern p = MustParsePattern("item(//listitem{id})");
  Result<size_t> n = CountEmbeddings(p, *s, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

}  // namespace
}  // namespace svx
