// Compile-and-behavior coverage for the annotated mutex wrappers
// (src/util/mutex.h) and the thread-safety macro family
// (src/util/thread_annotations.h).
//
// Two things are under test. First, that the macros expand cleanly on every
// compiler: this file declares a class using the full annotation vocabulary
// (capability members, SVX_GUARDED_BY, SVX_REQUIRES, SVX_EXCLUDES,
// SVX_ACQUIRE/SVX_RELEASE, SVX_NO_THREAD_SAFETY_ANALYSIS) — on GCC the
// macros must vanish without residue, on Clang the usage below must pass
// -Werror=thread-safety. Second, that the wrappers actually lock: mutual
// exclusion, reader sharing, writer exclusivity, and TwoMutexLock's
// address-ordered acquisition are exercised with real threads.
//
// The negative direction (annotation violations failing to compile) cannot
// be a runtime test; tools/lint.sh's annotation probe covers it by
// compiling a deliberate violation and requiring the error.
#include "src/util/thread_annotations.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/mutex.h"

namespace svx {
namespace {

// Exercises the full macro vocabulary; must compile on GCC and Clang alike.
class AnnotatedCounter {
 public:
  void Increment() SVX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    IncrementLocked();
  }

  void IncrementLocked() SVX_REQUIRES(mu_) { ++value_; }

  int value() const SVX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

  void LockManually() SVX_ACQUIRE(mu_) { mu_.Lock(); }
  void UnlockManually() SVX_RELEASE(mu_) { mu_.Unlock(); }

  // Deliberately unchecked accessor (e.g. for single-threaded setup).
  int value_unsafe() const SVX_NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  mutable Mutex mu_;
  int value_ SVX_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, AnnotatedClassCountsUnderContention) {
  AnnotatedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(counter.value_unsafe(), kThreads * kIncrements);
}

TEST(ThreadAnnotations, ManualAcquireReleasePairWorks) {
  AnnotatedCounter counter;
  counter.LockManually();
  counter.IncrementLocked();
  counter.UnlockManually();
  EXPECT_EQ(counter.value(), 1);
}

TEST(Mutex, TryLockReflectsHeldState) {
  Mutex mu;
  mu.Lock();
  // A second claim must fail — probed from another thread, since retrying
  // try_lock on the owning thread is undefined for std::mutex.
  std::atomic<bool> second_claim{false};
  std::thread probe([&] {
    if (mu.TryLock()) {
      second_claim = true;
      mu.Unlock();
    }
  });
  probe.join();
  EXPECT_FALSE(second_claim);
  mu.Unlock();
  std::thread again([&] {
    if (mu.TryLock()) {
      second_claim = true;
      mu.Unlock();
    }
  });
  again.join();
  EXPECT_TRUE(second_claim);
}

TEST(SharedMutex, ReadersShareWritersExclude) {
  SharedMutex mu;

  // Two readers hold the shared side at once.
  mu.ReaderLock();
  std::atomic<bool> reader_entered{false};
  std::atomic<bool> writer_entered{false};
  std::thread reader([&] {
    ReaderMutexLock lock(&mu);
    reader_entered = true;
  });
  reader.join();
  EXPECT_TRUE(reader_entered);

  // A writer cannot enter while a reader holds the lock.
  std::thread writer_probe([&] {
    if (mu.TryLock()) {
      writer_entered = true;
      mu.Unlock();
    }
  });
  writer_probe.join();
  EXPECT_FALSE(writer_entered);
  mu.ReaderUnlock();

  // With the reader gone the writer side is available, and excludes readers.
  mu.Lock();
  std::atomic<bool> reader_blocked{true};
  std::thread reader_probe([&] {
    if (mu.ReaderTryLock()) {
      reader_blocked = false;
      mu.ReaderUnlock();
    }
  });
  reader_probe.join();
  EXPECT_TRUE(reader_blocked);
  mu.Unlock();
}

TEST(SharedMutex, WriterMutexLockIsExclusive) {
  SharedMutex mu;
  int value = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ReaderMutexLock lock(&mu);
  EXPECT_EQ(value, kThreads * kIncrements);
}

TEST(TwoMutexLock, LocksBothWhicheverOrder) {
  Mutex a;
  Mutex b;
  int value = 0;
  constexpr int kIterations = 2000;
  // One thread locks (a, b), the other (b, a): without the address-ordered
  // acquisition this interleaving deadlocks quickly.
  std::thread t1([&] {
    for (int i = 0; i < kIterations; ++i) {
      TwoMutexLock lock(&a, &b);
      ++value;
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kIterations; ++i) {
      TwoMutexLock lock(&b, &a);
      ++value;
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(value, 2 * kIterations);
}

// Outside the analysis: passing one mutex twice makes the SVX_ACQUIRE(a, b)
// contract self-referential, which the analysis (rightly) flags, but the
// aliased case is exactly what this test pins down at runtime.
void LockAliased(Mutex* mu) SVX_NO_THREAD_SAFETY_ANALYSIS {
  TwoMutexLock lock(mu, mu);  // must not self-deadlock or double-unlock
}

TEST(TwoMutexLock, AliasedArgumentsLockOnce) {
  Mutex mu;
  LockAliased(&mu);
  std::atomic<bool> lockable{false};
  std::thread probe([&] {
    if (mu.TryLock()) {
      lockable = true;
      mu.Unlock();
    }
  });
  probe.join();
  EXPECT_TRUE(lockable);
}

}  // namespace
}  // namespace svx
