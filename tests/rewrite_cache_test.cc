#include "src/viewstore/rewrite_cache.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/summary/summary_builder.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/builder.h"
#include "src/xml/update.h"

namespace svx {
namespace {

std::unique_ptr<Document> Doc(std::string_view s) {
  Result<std::unique_ptr<Document>> r = ParseTreeNotation(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

std::vector<std::string> Compacts(const std::vector<Rewriting>& rws) {
  std::vector<std::string> out;
  for (const Rewriting& r : rws) out.push_back(r.compact);
  return out;
}

class RewriteCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = Doc("a(b=1 b=2 c=3)");
    summary_ = SummaryBuilder::Build(doc_.get());
    ASSERT_TRUE(
        catalog_.Materialize({"V", MustParsePattern("a(/b{id,v})")}, *doc_)
            .ok());
  }

  Rewriter MakeRewriter() {
    RewriterOptions opts;
    opts.memo = catalog_.containment_memo();
    Rewriter rw(*summary_, opts);
    for (const auto& v : catalog_.views()) rw.AddView(v->def);
    return rw;
  }

  std::vector<Rewriting> RewriteCached(Rewriter* rw, std::string_view q,
                                       RewriteStats* stats = nullptr) {
    Result<std::vector<Rewriting>> r = CachedRewrite(
        catalog_.rewrite_cache(), rw, MustParsePattern(q), stats);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  std::unique_ptr<Document> doc_;
  std::unique_ptr<Summary> summary_;
  ViewCatalog catalog_;  // no store dir: in-memory only
};

TEST_F(RewriteCacheTest, HitServesIdenticalPlans) {
  Rewriter rw = MakeRewriter();
  RewriteStats cold;
  std::vector<Rewriting> first = RewriteCached(&rw, "a(/b{v})", &cold);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(cold.rewrite_cache_hits, 0u);
  EXPECT_EQ(catalog_.rewrite_cache()->misses(), 1u);

  RewriteStats warm;
  std::vector<Rewriting> second = RewriteCached(&rw, "a(/b{v})", &warm);
  EXPECT_EQ(warm.rewrite_cache_hits, 1u);
  EXPECT_EQ(catalog_.rewrite_cache()->hits(), 1u);
  EXPECT_EQ(Compacts(first), Compacts(second));
  // Served plans are clones: executing/mutating one call's plans must not
  // affect the cache (pointer inequality is enough here).
  ASSERT_FALSE(second.empty());
  EXPECT_NE(first[0].plan.get(), second[0].plan.get());
}

TEST_F(RewriteCacheTest, EmptyResultIsCachedToo) {
  Rewriter rw = MakeRewriter();
  // The view stores b columns only; a c query has no rewriting.
  std::vector<Rewriting> none = RewriteCached(&rw, "a(/c{v})");
  EXPECT_TRUE(none.empty());
  RewriteStats warm;
  std::vector<Rewriting> again = RewriteCached(&rw, "a(/c{v})", &warm);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(warm.rewrite_cache_hits, 1u);
}

TEST_F(RewriteCacheTest, ApplyUpdateInvalidates) {
  Rewriter rw = MakeRewriter();
  std::vector<Rewriting> cold = RewriteCached(&rw, "a(/b{v})");
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 1u);
  ASSERT_TRUE(catalog_.containment_memo()->size() > 0 ||
              catalog_.containment_memo()->misses() > 0);

  std::unique_ptr<Document> sub = Doc("b=9");
  Result<UpdateResult> up = InsertSubtree(*doc_, OrdPath::Root(), *sub);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  ASSERT_TRUE(catalog_.ApplyUpdate(up->delta).ok());

  // Cached plan dropped, memo cleared.
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 0u);
  EXPECT_EQ(catalog_.containment_memo()->size(), 0u);

  // Re-rewriting matches a fresh rewriter's output over the new world.
  std::unique_ptr<Summary> new_summary = SummaryBuilder::Build(up->doc.get());
  Rewriter fresh(*new_summary);
  for (const auto& v : catalog_.views()) fresh.AddView(v->def);
  Result<std::vector<Rewriting>> expect =
      fresh.Rewrite(MustParsePattern("a(/b{v})"));
  ASSERT_TRUE(expect.ok());

  summary_ = std::move(new_summary);
  doc_ = std::move(up->doc);
  Rewriter rw2 = MakeRewriter();
  RewriteStats stats;
  std::vector<Rewriting> recomputed = RewriteCached(&rw2, "a(/b{v})", &stats);
  EXPECT_EQ(stats.rewrite_cache_hits, 0u) << "stale plan served after update";
  EXPECT_EQ(Compacts(recomputed), Compacts(*expect));
}

TEST_F(RewriteCacheTest, ViewAddAndDropInvalidate) {
  Rewriter rw = MakeRewriter();
  RewriteCached(&rw, "a(/b{v})");
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 1u);

  // Add: a new view can enable new (cheaper) plans.
  ASSERT_TRUE(
      catalog_.Materialize({"W", MustParsePattern("a(/c{id,v})")}, *doc_)
          .ok());
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 0u);

  Rewriter rw2 = MakeRewriter();
  RewriteCached(&rw2, "a(/c{v})");
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 1u);

  // Drop: cached plans may reference the dropped view.
  ASSERT_TRUE(catalog_.Drop("W").ok());
  EXPECT_EQ(catalog_.rewrite_cache()->size(), 0u);
  EXPECT_EQ(catalog_.Find("W"), nullptr);
  EXPECT_FALSE(catalog_.Drop("W").ok());

  // After the drop, the c query has no rewriting again — and the fresh
  // (uncached) result reflects that.
  Rewriter rw3 = MakeRewriter();
  RewriteStats stats;
  std::vector<Rewriting> none = RewriteCached(&rw3, "a(/c{v})", &stats);
  EXPECT_EQ(stats.rewrite_cache_hits, 0u);
  EXPECT_TRUE(none.empty());
}

TEST_F(RewriteCacheTest, WarmHitReplaysSearchCounters) {
  Rewriter rw = MakeRewriter();
  RewriteStats cold;
  std::vector<Rewriting> first = RewriteCached(&rw, "a(/b{v})", &cold);
  ASSERT_FALSE(first.empty());
  ASSERT_GT(cold.candidates_built, 0u);

  RewriteStats warm;
  std::vector<Rewriting> second = RewriteCached(&rw, "a(/b{v})", &warm);
  ASSERT_EQ(warm.rewrite_cache_hits, 1u);
  ASSERT_FALSE(second.empty());
  // The hit replays the insert-time search counters instead of leaving the
  // caller's stats zeroed — dashboards see what the cached entry cost.
  EXPECT_EQ(warm.views_total, cold.views_total);
  EXPECT_EQ(warm.views_kept, cold.views_kept);
  EXPECT_EQ(warm.candidates_built, cold.candidates_built);
  EXPECT_EQ(warm.join_candidates, cold.join_candidates);
  EXPECT_EQ(warm.equivalence_tests, cold.equivalence_tests);
  EXPECT_EQ(warm.candidates_pruned, cold.candidates_pruned);
  EXPECT_EQ(warm.containment_memo_hits, cold.containment_memo_hits);
  EXPECT_EQ(warm.containment_memo_misses, cold.containment_memo_misses);
  EXPECT_EQ(warm.results, cold.results);
  EXPECT_EQ(warm.cheapest_cost, cold.cheapest_cost);
  EXPECT_EQ(warm.costliest_cost, cold.costliest_cost);
}

TEST(RewriteCacheUnit, EvictionClearsWhenFull) {
  RewriteCache cache;
  cache.max_entries = 2;
  std::vector<Rewriting> empty;
  cache.Insert("q1", empty);
  cache.Insert("q2", empty);
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert("q3", empty);  // full: table dropped, then q3 inserted
  EXPECT_EQ(cache.size(), 1u);
  std::vector<Rewriting> out;
  EXPECT_TRUE(cache.Lookup("q3", &out));
  EXPECT_FALSE(cache.Lookup("q1", &out));
}

}  // namespace
}  // namespace svx
