#include "src/util/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/util/check.h"

namespace svx {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// Status and Result are [[nodiscard]]: dropping a return is a compile error
// under -Werror=unused-result, which only a negative-compile harness can
// assert (tools/lint.sh carries one). Here we pin the positive side: every
// sanctioned way of consuming a Status still compiles.
TEST(Status, SanctionedConsumptionCompiles) {
  auto make = [] { return Status::NotFound("x"); };
  Status kept = make();
  EXPECT_FALSE(kept.ok());
  if (!make().ok()) {
    SUCCEED();
  }
  (void)make();  // explicit discard stays available for fire-and-forget
}

Status FailsAtStep(int failing_step, int* reached) {
  *reached = 1;
  SVX_RETURN_IF_ERROR(failing_step == 1 ? Status::ParseError("step 1")
                                        : Status::OK());
  *reached = 2;
  SVX_RETURN_IF_ERROR(failing_step == 2 ? Status::Internal("step 2")
                                        : Status::OK());
  *reached = 3;
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagatesFirstError) {
  int reached = 0;
  Status s = FailsAtStep(1, &reached);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(reached, 1);

  s = FailsAtStep(2, &reached);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(reached, 2);
}

TEST(StatusMacros, ReturnIfErrorFallsThroughOnOk) {
  int reached = 0;
  EXPECT_TRUE(FailsAtStep(0, &reached).ok());
  EXPECT_EQ(reached, 3);
}

Result<int> Doubled(Result<int> input) {
  SVX_ASSIGN_OR_RETURN(int v, std::move(input));
  return 2 * v;
}

TEST(StatusMacros, AssignOrReturnUnwrapsValue) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(StatusMacros, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(Status::ResourceExhausted("budget"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

Status TwoAssignsInOneFunction() {
  // Two expansions in one scope: __COUNTER__ must keep the temporaries
  // from colliding.
  SVX_ASSIGN_OR_RETURN(int a, Result<int>(1));
  SVX_ASSIGN_OR_RETURN(int b, Result<int>(2));
  return a + b == 3 ? Status::OK() : Status::Internal("bad sum");
}

TEST(StatusMacros, AssignOrReturnExpandsTwicePerScope) {
  EXPECT_TRUE(TwoAssignsInOneFunction().ok());
}

TEST(Checks, DcheckPassesOnTrueCondition) {
  SVX_DCHECK(1 + 1 == 2);
  SVX_DCHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(Checks, DcheckEvaluationMatchesBuildType) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  SVX_DCHECK(count());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);  // release: condition compiled, never run
#else
  EXPECT_EQ(evaluations, 1);  // debug: full SVX_CHECK behavior
#endif
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(Checks, DcheckAbortsOnViolationInDebug) {
  EXPECT_DEATH(SVX_DCHECK_MSG(false, "boom"), "boom");
}
#endif

}  // namespace
}  // namespace svx
