#include "src/util/status.h"

#include <gtest/gtest.h>

namespace svx {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace svx
