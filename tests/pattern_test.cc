#include "src/pattern/pattern.h"

#include <gtest/gtest.h>

#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"

namespace svx {
namespace {

TEST(PatternParser, SimpleChain) {
  Pattern p = MustParsePattern("a(/b(//c))");
  ASSERT_EQ(p.size(), 3);
  EXPECT_EQ(p.node(0).label, "a");
  EXPECT_EQ(p.node(1).label, "b");
  EXPECT_EQ(p.node(1).axis, Axis::kChild);
  EXPECT_EQ(p.node(2).label, "c");
  EXPECT_EQ(p.node(2).axis, Axis::kDescendant);
  EXPECT_EQ(p.node(2).parent, 1);
}

TEST(PatternParser, AttributesAndReturnNodes) {
  Pattern p = MustParsePattern("a(//b{id,v} /c{c}(/d{l}))");
  std::vector<PatternNodeId> rets = p.ReturnNodes();
  ASSERT_EQ(rets.size(), 3u);
  EXPECT_EQ(p.node(rets[0]).label, "b");
  EXPECT_EQ(p.node(rets[0]).attrs, kAttrId | kAttrValue);
  EXPECT_EQ(p.node(rets[1]).attrs, kAttrContent);
  EXPECT_EQ(p.node(rets[2]).attrs, kAttrLabel);
  EXPECT_EQ(p.Arity(), 3);
}

TEST(PatternParser, PredicatesParsed) {
  Pattern p = MustParsePattern("a(/b{id}[v>2&v<9])");
  EXPECT_TRUE(p.node(1).pred.Contains(5));
  EXPECT_FALSE(p.node(1).pred.Contains(9));
  EXPECT_TRUE(p.HasPredicates());
}

TEST(PatternParser, OptionalAndNestedFlags) {
  Pattern p = MustParsePattern("a(?//b{id} n/c{v} ?n//d{c})");
  EXPECT_TRUE(p.node(1).optional);
  EXPECT_FALSE(p.node(1).nested);
  EXPECT_FALSE(p.node(2).optional);
  EXPECT_TRUE(p.node(2).nested);
  EXPECT_TRUE(p.node(3).optional);
  EXPECT_TRUE(p.node(3).nested);
  EXPECT_TRUE(p.HasOptionalEdges());
  EXPECT_TRUE(p.HasNestedEdges());
  EXPECT_EQ(p.OptionalEdges(), (std::vector<PatternNodeId>{1, 3}));
}

TEST(PatternParser, WildcardLabel) {
  Pattern p = MustParsePattern("a(//*{id})");
  EXPECT_TRUE(p.node(1).IsWildcard());
}

TEST(PatternParser, LabelNamedNNotConfusedWithNestedFlag) {
  // "n" as an element name parses; "n/" at edge position is the flag.
  Pattern p = MustParsePattern("n(/n(n/n))");
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.node(2).label, "n");
  EXPECT_TRUE(p.node(2).nested);
}

TEST(PatternParser, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("a(b)").ok());      // missing axis
  EXPECT_FALSE(ParsePattern("a(/b").ok());      // missing paren
  EXPECT_FALSE(ParsePattern("a()").ok());       // empty children
  EXPECT_FALSE(ParsePattern("a{zz}").ok());     // unknown attribute
  EXPECT_FALSE(ParsePattern("a[x>2]").ok());    // bad predicate
  EXPECT_FALSE(ParsePattern("?/a").ok());       // root has no edge
  EXPECT_FALSE(ParsePattern("a(/b) junk").ok());
}

TEST(PatternPrinter, RoundTrip) {
  const char* cases[] = {
      "a",
      "a(/b //c)",
      "site(//item{id}(/name{v} ?n//listitem{c}))",
      "a(//b{id,v}[v=3] /c{l,c})",
      "a(//*{id}(?/d[v<5|v>9]))",
  };
  for (const char* c : cases) {
    Pattern p = MustParsePattern(c);
    EXPECT_EQ(PatternToString(p), c);
    // Re-parse the printed form: must be identical again.
    Pattern p2 = MustParsePattern(PatternToString(p));
    EXPECT_EQ(PatternToString(p2), c);
  }
}

TEST(Pattern, NestingDepthAndAncestors) {
  Pattern p = MustParsePattern("a(n/b(/c(n//d{id})))");
  PatternNodeId d = 3;
  EXPECT_EQ(p.NestingDepth(d), 2);
  std::vector<PatternNodeId> anc = p.NestingAncestors(d);
  ASSERT_EQ(anc.size(), 2u);
  EXPECT_EQ(p.node(anc[0]).label, "b");
  EXPECT_EQ(p.node(anc[1]).label, "d");
  EXPECT_EQ(p.NestingDepth(0), 0);
}

TEST(Pattern, StrictClearsOptional) {
  Pattern p = MustParsePattern("a(?//b{id}(?/c))");
  Pattern s = p.Strict();
  EXPECT_FALSE(s.HasOptionalEdges());
  EXPECT_TRUE(p.HasOptionalEdges());  // original untouched
}

TEST(Pattern, WithReturnNodesMasksAttrs) {
  Pattern p = MustParsePattern("a(//b{id} /c{v})");
  Pattern q = p.WithReturnNodes({2});
  EXPECT_EQ(q.Arity(), 1);
  EXPECT_EQ(q.node(2).attrs, kAttrId);
  EXPECT_EQ(q.node(1).attrs, 0);
}

TEST(Pattern, EraseSubtrees) {
  Pattern p = MustParsePattern("a(/b(/c /d) //e)");
  std::vector<PatternNodeId> old_to_new;
  Pattern q = p.EraseSubtrees({1}, &old_to_new);
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.node(1).label, "e");
  EXPECT_EQ(old_to_new[0], 0);
  EXPECT_EQ(old_to_new[1], -1);
  EXPECT_EQ(old_to_new[2], -1);
  EXPECT_EQ(old_to_new[4], 1);
}

TEST(Pattern, SubtreeNodesPreorder) {
  Pattern p = MustParsePattern("a(/b(/c /d) //e)");
  EXPECT_EQ(p.SubtreeNodes(1), (std::vector<PatternNodeId>{1, 2, 3}));
  EXPECT_EQ(p.SubtreeNodes(0), (std::vector<PatternNodeId>{0, 1, 2, 3, 4}));
}

TEST(Pattern, IsAncestorOrSelf) {
  Pattern p = MustParsePattern("a(/b(/c) /d)");
  EXPECT_TRUE(p.IsAncestorOrSelf(0, 2));
  EXPECT_TRUE(p.IsAncestorOrSelf(1, 2));
  EXPECT_TRUE(p.IsAncestorOrSelf(2, 2));
  EXPECT_FALSE(p.IsAncestorOrSelf(3, 2));
  EXPECT_FALSE(p.IsAncestorOrSelf(2, 1));
}

TEST(Pattern, ReturnNodesInPreorder) {
  // Construction order differs from preorder; ReturnNodes must follow
  // preorder (document order of the pattern).
  Pattern p;
  PatternNodeId r = p.SetRoot("a");
  PatternNodeId b = p.AddChild(r, "b", Axis::kChild);
  PatternNodeId e = p.AddChild(r, "e", Axis::kChild, kAttrId);
  PatternNodeId c = p.AddChild(b, "c", Axis::kChild, kAttrValue);
  (void)e;
  std::vector<PatternNodeId> rets = p.ReturnNodes();
  ASSERT_EQ(rets.size(), 2u);
  EXPECT_EQ(rets[0], c);  // c precedes e in preorder
  EXPECT_EQ(rets[1], e);
}

}  // namespace
}  // namespace svx
