#include "src/viewstore/catalog_snapshot.h"

#include "src/observability/metrics.h"
#include "src/util/strings.h"

namespace svx {

CatalogSnapshot::CatalogSnapshot()
    : birth_(std::chrono::steady_clock::now()) {
  metrics::EpochsLive()->Add(1);
}

CatalogSnapshot::~CatalogSnapshot() { metrics::EpochsLive()->Add(-1); }

int64_t CatalogSnapshot::AgeMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - birth_)
      .count();
}

const StoredView* CatalogSnapshot::Find(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

int64_t CatalogSnapshot::TotalBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->extent_bytes;
  return total;
}

Catalog CatalogSnapshot::ExecutorCatalog() const {
  Catalog catalog;
  for (const auto& v : views_) catalog.Register(v->def.name, &v->extent);
  return catalog;
}

std::shared_ptr<const ViewIndex> CatalogSnapshot::ViewIndexFor(
    const Summary& summary, const ExpansionOptions& e) const {
  auto build = [&]() {
    auto index = std::make_shared<ViewIndex>(summary, e);
    for (const auto& v : views_) index->AddView(v->def);
    return index;
  };
  // Only the snapshot's own summary can key the cache: its lifetime is
  // pinned by the snapshot, so the identity can never be recycled. A
  // caller-owned summary could be freed and its address reused by a
  // different summary while this snapshot lives (ABA), which would serve
  // an index over the wrong path-id space — build those fresh, uncached.
  if (&summary != summary_.get()) return build();
  std::string key = StrFormat(
      "%zu.%zu.%d.%d.%d.%d", e.max_embeddings, e.max_pieces,
      e.max_strengthen_edges, e.unfold_content ? 1 : 0,
      e.add_virtual_ids ? 1 : 0, e.max_virtual_depth);
  MutexLock lock(&index_mu_);
  for (const auto& [k, index] : indexes_) {
    if (k == key) return index;
  }
  // Built under the lock: concurrent first readers wait instead of
  // duplicating the per-view signature computation.
  auto index = build();
  indexes_.emplace_back(std::move(key), index);
  return index;
}

}  // namespace svx
