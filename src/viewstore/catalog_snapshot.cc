#include "src/viewstore/catalog_snapshot.h"

#include <utility>

#include "src/observability/metrics.h"
#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace svx {

const Table& StoredView::extent() const {
  Result<TablePtr> t = table();
  SVX_CHECK_MSG(t.ok(), "cannot decode extent of view " + def.name + ": " +
                            t.status().message());
  // The slot holds its own reference; the returned reference lives until
  // the budget evicts the table (see header contract).
  return *t.value();
}

Result<TablePtr> StoredView::table() const {
  SVX_DCHECK(columnar != nullptr && residency != nullptr);
  TablePtr t = residency->Get();
  if (t != nullptr) return t;
  Timer timer;
  Result<Table> decoded = columnar->Decode(decode_doc);
  if (!decoded.ok()) return decoded.status();
  residency->budget()->NoteReload(
      static_cast<int64_t>(timer.ElapsedMicros()));
  return residency->Install(
      std::make_shared<Table>(std::move(decoded).value()), extent_bytes,
      evictable());
}

TablePtr StoredView::TryResident() const {
  return residency == nullptr ? nullptr : residency->Get();
}

void StoredView::InstallResident(TablePtr t) const {
  residency->Install(std::move(t), extent_bytes, evictable());
}

CatalogSnapshot::CatalogSnapshot()
    : birth_(std::chrono::steady_clock::now()) {
  metrics::EpochsLive()->Add(1);
}

CatalogSnapshot::~CatalogSnapshot() { metrics::EpochsLive()->Add(-1); }

int64_t CatalogSnapshot::AgeMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - birth_)
      .count();
}

const StoredView* CatalogSnapshot::Find(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

int64_t CatalogSnapshot::TotalBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->extent_bytes;
  return total;
}

int64_t CatalogSnapshot::TotalCompressedBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->compressed_bytes;
  return total;
}

Catalog CatalogSnapshot::ExecutorCatalog() const {
  Catalog catalog;
  for (const auto& v : views_) {
    // Borrowed pointers into the snapshot (valid while the caller holds
    // it). Scans probe the resident decoded table first; a cold scan
    // decodes only the columns the plan references, and a full decode is
    // handed back to the view's residency so the next scan hits.
    const StoredView* raw = v.get();
    ColumnarSource src;
    src.extent = raw->columnar.get();
    src.doc = raw->decode_doc;
    src.resident = [raw]() { return raw->TryResident(); };
    src.loaded = [raw](TablePtr full, int64_t decode_us) {
      raw->residency->budget()->NoteReload(decode_us);
      if (full != nullptr) raw->InstallResident(std::move(full));
    };
    catalog.RegisterColumnar(v->def.name, std::move(src));
  }
  return catalog;
}

std::shared_ptr<const ViewIndex> CatalogSnapshot::ViewIndexFor(
    const Summary& summary, const ExpansionOptions& e) const {
  auto build = [&]() {
    auto index = std::make_shared<ViewIndex>(summary, e);
    for (const auto& v : views_) index->AddView(v->def);
    return index;
  };
  // Only the snapshot's own summary can key the cache: its lifetime is
  // pinned by the snapshot, so the identity can never be recycled. A
  // caller-owned summary could be freed and its address reused by a
  // different summary while this snapshot lives (ABA), which would serve
  // an index over the wrong path-id space — build those fresh, uncached.
  if (&summary != summary_.get()) return build();
  std::string key = StrFormat(
      "%zu.%zu.%d.%d.%d.%d", e.max_embeddings, e.max_pieces,
      e.max_strengthen_edges, e.unfold_content ? 1 : 0,
      e.add_virtual_ids ? 1 : 0, e.max_virtual_depth);
  MutexLock lock(&index_mu_);
  for (const auto& [k, index] : indexes_) {
    if (k == key) return index;
  }
  // Built under the lock: concurrent first readers wait instead of
  // duplicating the per-view signature computation.
  auto index = build();
  indexes_.emplace_back(std::move(key), index);
  return index;
}

}  // namespace svx
