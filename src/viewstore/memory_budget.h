// Catalog-level memory accounting for decoded extents (cf. pequod's
// pqmemory tracking): the compressed columnar form of every extent is
// always resident; the decoded row-major Table is a cache entry charged
// against a MemoryBudget and evicted LRU-cold when the budget overflows.
//
// Pinning is by shared_ptr: eviction only resets the budget's own TablePtr,
// so a snapshot reader or in-flight plan holding the pointer keeps the
// decoded table alive (and its bytes are freed only when the last pin
// drops). Extents that cannot be re-decoded (content references with no
// document to rebind against) are installed non-evictable.
//
// One MemoryBudget may be shared by several catalogs (ShardedCatalog gives
// all shards one budget); a default-constructed budget is unlimited and
// degenerates to a plain always-resident cache, which is the pre-budget
// behavior.
#ifndef SVX_VIEWSTORE_MEMORY_BUDGET_H_
#define SVX_VIEWSTORE_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>

#include "src/algebra/relation.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace svx {

class ExtentResidency;

/// Shared accounting across every ExtentResidency charged to it. All state
/// is behind one mutex; decode work always happens outside it.
class MemoryBudget {
 public:
  /// `limit_bytes` <= 0 means unlimited (nothing is ever evicted).
  explicit MemoryBudget(int64_t limit_bytes = 0) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  int64_t limit_bytes() const { return limit_; }
  int64_t resident_bytes() const SVX_EXCLUDES(mu_);

  /// Cumulative counts for DebugMetrics; the same events also feed the
  /// global svx_extent_* metrics.
  int64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  int64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }

  /// Records one decode-from-columnar (an eviction reload or first cold
  /// use) taking `us` microseconds.
  void NoteReload(int64_t us);

 private:
  friend class ExtentResidency;
  struct Slot;

  TablePtr Lookup(Slot* slot) SVX_EXCLUDES(mu_);
  TablePtr Install(Slot* slot, TablePtr table, int64_t bytes, bool evictable)
      SVX_EXCLUDES(mu_);
  void Drop(Slot* slot) SVX_EXCLUDES(mu_);
  void Detach(Slot* slot) SVX_EXCLUDES(mu_);
  void EnforceLocked(const Slot* exempt) SVX_REQUIRES(mu_);

  const int64_t limit_;
  mutable Mutex mu_;
  int64_t resident_ SVX_GUARDED_BY(mu_) = 0;
  std::list<Slot*> lru_ SVX_GUARDED_BY(mu_);  // front = hottest
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> reloads_{0};
};

/// One stored view's residency slot: holds (via the budget) the cached
/// decoded Table. Created once per StoredView rebuild and shared by every
/// epoch that shares the view.
class ExtentResidency {
 public:
  /// `budget` must be non-null (use a default MemoryBudget for unlimited).
  explicit ExtentResidency(std::shared_ptr<MemoryBudget> budget);
  ~ExtentResidency();
  ExtentResidency(const ExtentResidency&) = delete;
  ExtentResidency& operator=(const ExtentResidency&) = delete;

  /// The cached decoded table, touching it in the LRU; null if evicted or
  /// never installed. The returned shared_ptr is the caller's pin.
  TablePtr Get() const;

  /// Offers a decoded table. First wins: if a concurrent decode already
  /// installed one, that one is kept and returned (the caller's copy is
  /// discarded) so references handed out earlier stay stable. `bytes` is
  /// the decoded (row-major serialized) size charged against the budget;
  /// `evictable` is false for extents that cannot be re-decoded.
  TablePtr Install(TablePtr table, int64_t bytes, bool evictable) const;

  /// Drops the cached table without counting an eviction (the view is being
  /// replaced, not squeezed out).
  void Drop() const;

  /// Declares this extent's compressed payload size, maintaining the global
  /// svx_extent_compressed_bytes gauge across the residency's lifetime.
  void SetCompressedBytes(int64_t bytes) const;

  MemoryBudget* budget() const { return budget_.get(); }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  std::unique_ptr<MemoryBudget::Slot> slot_;  // state guarded by budget_->mu_
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_MEMORY_BUDGET_H_
