// One immutable epoch of the view store, shared between concurrent readers.
//
// The read-mostly serving model (cf. LiquidXML-style redistribution while
// serving): readers acquire the current CatalogSnapshot with one lock-free
// atomic load (ViewCatalog::Snapshot()) and then work entirely against its
// immutable world — view definitions, extents, statistics, a prebuilt cost
// model, a lazily built shared ViewIndex, plus the snapshot's pinned
// containment memo and rewrite cache (both internally synchronized).
// Writers (Materialize / Add / Drop / ApplyUpdate / Load) never mutate a
// published snapshot: they build a successor off the read path under the
// catalog's writer mutex and publish it with a single pointer swap. An old
// epoch is retired automatically when its last reader drops the
// shared_ptr; extents the maintenance pass did not touch are shared
// between epochs (copy-on-maintenance), so a snapshot swap is cheap.
#ifndef SVX_VIEWSTORE_CATALOG_SNAPSHOT_H_
#define SVX_VIEWSTORE_CATALOG_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/executor.h"
#include "src/containment/memo.h"
#include "src/rewriting/view.h"
#include "src/rewriting/view_index.h"
#include "src/summary/summary.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/memory_budget.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/statistics.h"
#include "src/xml/document.h"

namespace svx {

/// One catalog entry: definition, compressed columnar extent, statistics,
/// serialized sizes. Immutable once published in a snapshot — maintenance
/// replaces the whole object (copy-on-maintenance) instead of editing it in
/// place, so readers of older epochs keep a consistent extent.
///
/// The extent's truth is `columnar` (columnar.h): dictionary/delta
/// compressed, always resident, sharing untouched column chunks with the
/// previous epoch. The decoded row-major table is a cache managed by the
/// catalog's MemoryBudget — `extent()` / `table()` decode on demand and the
/// budget may evict the decoded form again under memory pressure (the
/// compressed truth never leaves).
struct StoredView {
  ViewDef def;
  ViewStats stats;
  /// Row-major (v1) serialized size: the advisor/cost-model byte currency,
  /// maintained incrementally by maintenance, and the bytes the decoded
  /// table charges against the memory budget.
  int64_t extent_bytes = 0;
  /// Columnar payload size (ColumnarExtent::SerializedByteSize) — what the
  /// compressed extent actually costs to keep resident.
  int64_t compressed_bytes = 0;
  /// The compressed extent. Never null on a published view.
  ColumnarExtentPtr columnar;
  /// Document the extent's content references decode against; null for
  /// content-free extents. Borrowed with the same lifetime rules as the
  /// NodeRefs it produces (the snapshot pins the document when serving
  /// with shared ownership).
  const Document* decode_doc = nullptr;
  /// This view's decoded-table slot in the catalog's MemoryBudget.
  std::shared_ptr<ExtentResidency> residency;

  /// The decoded row-major extent, decoding (and installing it resident)
  /// if the budget evicted it. The reference stays valid while the decoded
  /// table is resident — fine single-threaded and under an unlimited
  /// budget; concurrent readers under a real budget must pin via table().
  /// CHECK-fails if decoding fails (cannot happen for catalog-built views
  /// whose content references were validated against decode_doc).
  const Table& extent() const;

  /// The decoded extent, pinned: the returned shared_ptr keeps the table
  /// alive across evictions. Decodes on a miss (counted as a reload).
  [[nodiscard]] Result<TablePtr> table() const;

  /// The resident decoded table, or null without decoding.
  TablePtr TryResident() const;

  /// Installs `t` as the resident decoded table (charging extent_bytes to
  /// the budget); keeps the first installation on a race.
  void InstallResident(TablePtr t) const;

  /// Whether the budget may evict the decoded table: it can always be
  /// re-decoded unless content references lost their document.
  bool evictable() const {
    return columnar == nullptr || !columnar->has_content() ||
           decode_doc != nullptr;
  }

  /// Persistence generation of this extent's on-disk files
  /// ("<name>.<generation>.extent"/".stats"); 0 = not persisted yet.
  /// Writer-private: assigned under the catalog's writer mutex when the
  /// view is saved, never read on the read path.
  mutable uint64_t generation = 0;

  /// Per-column value counts for O(|delta|) statistics refresh
  /// (statistics.h). Writer-private like `generation`: built on first
  /// maintenance, handed to the successor StoredView on every ApplyUpdate,
  /// never read on the read path.
  mutable std::shared_ptr<ValueCountCache> value_counts;
};

/// An immutable epoch of the catalog (see file comment). Construction and
/// publication are the ViewCatalog's business; readers only consume.
class CatalogSnapshot {
 public:
  /// Maintains the svx_epochs_live gauge: +1 at construction, -1 when the
  /// last holder (reader or catalog) drops the epoch — live minus one is
  /// the number of retired epochs still pinned by readers.
  ~CatalogSnapshot();

  /// Monotonically increasing epoch number (1 = the catalog's initial
  /// empty snapshot).
  uint64_t epoch() const { return epoch_; }

  /// Microseconds since this epoch was constructed (≈ published): the
  /// serving staleness the future server's admission control gates on.
  int64_t AgeMicros() const;

  const std::vector<std::shared_ptr<const StoredView>>& views() const {
    return views_;
  }
  int32_t size() const { return static_cast<int32_t>(views_.size()); }

  const StoredView* Find(const std::string& name) const;

  /// Total serialized size of all extents (row-major v1 bytes).
  int64_t TotalBytes() const;

  /// Total compressed columnar size of all extents.
  int64_t TotalCompressedBytes() const;

  /// The document this epoch's extents reference, when the catalog serves
  /// with shared ownership (ViewCatalog::BindDocument / the shared-pointer
  /// ApplyUpdate overload); nullptr when document lifetime is managed by
  /// the caller. Holding the snapshot keeps the document alive — what lets
  /// a maintenance pass retire the old document while old-epoch readers
  /// still resolve content references into it.
  const Document* document() const { return doc_.get(); }

  /// The summary of document(), when bound; nullptr otherwise.
  const Summary* summary() const { return summary_.get(); }

  /// Executor bindings for this epoch's extents. Borrowed pointers into the
  /// snapshot: valid while the caller holds the snapshot shared_ptr.
  Catalog ExecutorCatalog() const;

  /// Cost model over this epoch's statistics, prebuilt at publication.
  const CostModel& cost_model() const { return cost_model_; }

  /// This epoch's rewrite cache. Fresh per epoch (the successor of a
  /// mutation starts empty — that is the invalidation), thread-safe, and
  /// shared by every reader of the epoch.
  RewriteCache* rewrite_cache() const { return rewrite_cache_.get(); }

  /// This epoch's pinned containment memo (pass as RewriterOptions::memo).
  /// Thread-safe; replaced whenever a published document change makes the
  /// summary stale, shared across view-set-only mutations.
  ContainmentMemo* containment_memo() const { return memo_.get(); }

  /// The shared, snapshot-owned ViewIndex over this epoch's views for
  /// (summary, expansion) — pass as RewriterOptions::shared_view_index to a
  /// Rewriter whose views were added in views() order. When `summary` is
  /// this snapshot's own summary() (the serving path), the index is built
  /// once per expansion fingerprint under an internal mutex and shared by
  /// all readers of the epoch, living as long as the snapshot; for any
  /// other summary (whose lifetime the snapshot cannot pin) a fresh
  /// uncached index is returned, owned by the caller's shared_ptr.
  std::shared_ptr<const ViewIndex> ViewIndexFor(
      const Summary& summary, const ExpansionOptions& expansion) const
      SVX_EXCLUDES(index_mu_);

 private:
  friend class ViewCatalog;
  CatalogSnapshot();

  uint64_t epoch_ = 0;
  std::chrono::steady_clock::time_point birth_;
  std::vector<std::shared_ptr<const StoredView>> views_;
  std::shared_ptr<const Document> doc_;
  std::shared_ptr<const Summary> summary_;
  std::shared_ptr<RewriteCache> rewrite_cache_;
  std::shared_ptr<ContainmentMemo> memo_;
  CostModel cost_model_;

  mutable Mutex index_mu_;
  mutable std::vector<std::pair<std::string, std::shared_ptr<const ViewIndex>>>
      indexes_ SVX_GUARDED_BY(index_mu_);  // over summary_, keyed by
                                           // expansion fingerprint
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_CATALOG_SNAPSHOT_H_
