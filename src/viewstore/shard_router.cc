#include "src/viewstore/shard_router.h"

#include <algorithm>

#include "src/rewriting/view.h"
#include "src/util/strings.h"

namespace svx {

ShardRouter ShardRouter::Partition(const Document& doc, int num_shards) {
  std::vector<OrdPath> boundaries;
  if (num_shards <= 1 || doc.root() == kInvalidNode) {
    return ShardRouter(std::move(boundaries));
  }
  // Top-level children with their subtree sizes, in document order.
  std::vector<NodeIndex> tops = doc.children(doc.root());
  if (tops.size() < 2) return ShardRouter(std::move(boundaries));
  int shards = std::min<int>(num_shards, static_cast<int>(tops.size()));

  int64_t remaining = 0;
  for (NodeIndex t : tops) remaining += doc.subtree_end(t) - t;
  int64_t acc = 0;
  int cuts_left = shards - 1;
  for (size_t i = 0; i < tops.size() && cuts_left > 0; ++i) {
    // Greedy balance: close the current range once it reaches its fair
    // share of what is left, then start the next range at the next child.
    int64_t ranges_left = cuts_left + 1;
    int64_t target = (remaining + ranges_left - 1) / ranges_left;
    int64_t size = doc.subtree_end(tops[i]) - tops[i];
    acc += size;
    remaining -= size;
    bool must_cut =
        static_cast<int64_t>(tops.size() - i - 1) == cuts_left;
    if ((acc >= target || must_cut) && i + 1 < tops.size()) {
      boundaries.push_back(doc.ord_path(tops[i + 1]));
      acc = 0;
      --cuts_left;
    }
  }
  return ShardRouter(std::move(boundaries));
}

ShardRouter ShardRouter::FromBoundaries(std::vector<OrdPath> boundaries) {
  std::sort(boundaries.begin(), boundaries.end());
  return ShardRouter(std::move(boundaries));
}

int ShardRouter::Route(const OrdPath& id) const {
  // Boundaries are sorted in document order; the owning shard is the count
  // of boundaries at or before `id`. std::upper_bound would need operator<
  // over (boundary, id) pairs; the boundary list is tiny (N-1 entries), so
  // a linear scan is both simpler and faster in practice.
  int shard = 0;
  for (const OrdPath& b : boundaries_) {
    if (b.Compare(id) <= 0) ++shard;
  }
  return shard;
}

std::string ShardRouter::Serialize() const {
  std::string out;
  for (const OrdPath& b : boundaries_) {
    out += b.ToString();
    out += '\n';
  }
  return out;
}

ShardRouter ShardRouter::Deserialize(const std::string& text) {
  std::vector<OrdPath> boundaries;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    OrdPath id = OrdPath::FromString(std::string(trimmed));
    if (id.IsValid()) boundaries.push_back(std::move(id));
  }
  return FromBoundaries(std::move(boundaries));
}

ViewAnchor AnalyzeViewAnchor(const Pattern& pattern,
                             const std::string& view_name) {
  ViewAnchor anchor;
  for (PatternNodeId a : pattern.ReturnNodes()) {
    if ((pattern.node(a).attrs & kAttrId) == 0) continue;
    if (a == pattern.root()) continue;
    if (pattern.NestingDepth(a) != 0) continue;
    // The anchor column must never be ⊥: reject optional edges anywhere on
    // the root path (an optional edge below `a` only pads other columns).
    bool optional_path = false;
    for (PatternNodeId n = a; n != pattern.root();
         n = pattern.node(n).parent) {
      if (pattern.node(n).optional || pattern.node(n).nested) {
        optional_path = true;
        break;
      }
    }
    if (optional_path) continue;
    // Locality: every pattern node on the anchor's root path or inside its
    // subtree. Any node off that spine (a sibling branch) could bind in a
    // different top-level subtree than the anchor, making rows span shards.
    bool local = true;
    for (PatternNodeId n = 0; n < pattern.size(); ++n) {
      if (!pattern.IsAncestorOrSelf(n, a) && !pattern.IsAncestorOrSelf(a, n)) {
        local = false;
        break;
      }
    }
    if (!local) continue;
    Schema schema = ViewSchema(pattern, view_name);
    int32_t col = schema.Find(
        StrFormat("%s.n%d.id", view_name.c_str(), a));
    if (col < 0) continue;
    anchor.partitionable = true;
    anchor.node = a;
    anchor.column = col;
    return anchor;
  }
  return anchor;
}

}  // namespace svx
