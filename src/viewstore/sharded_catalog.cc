#include "src/viewstore/sharded_catalog.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "src/algebra/executor.h"
#include "src/maintenance/delta_router.h"
#include "src/rewriting/rewriter.h"
#include "src/util/fileio.h"
#include "src/util/strings.h"
#include "src/viewstore/rewrite_cache.h"

namespace svx {

namespace {

namespace fs = std::filesystem;

/// Keeps only the rows whose anchor id routes to this shard. Views without
/// an anchor are left untouched (they live in the global catalog; a shard
/// should never hold one, but Filter must not corrupt it if it does).
class ShardPartition : public ExtentPartition {
 public:
  ShardPartition(std::shared_ptr<const ShardRouter> router, int shard)
      : router_(std::move(router)), shard_(shard) {}

  void Filter(const ViewDef& def, Table* extent) const override {
    ViewAnchor anchor = AnalyzeViewAnchor(def.pattern, def.name);
    if (!anchor.partitionable || anchor.column < 0 ||
        anchor.column >= extent->schema().size()) {
      return;
    }
    std::vector<Tuple>& rows = extent->mutable_rows();
    size_t out = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value& id = rows[i][static_cast<size_t>(anchor.column)];
      if (!id.IsId() || router_->Route(id.AsId()) != shard_) continue;
      if (out != i) rows[out] = std::move(rows[i]);
      ++out;
    }
    rows.resize(out);
  }

 private:
  const std::shared_ptr<const ShardRouter> router_;
  const int shard_;
};

/// Rewrites `query` through the snapshot's caches and shared view index,
/// returning the cheapest rewriting. NotFound = no rewriting exists.
Result<std::vector<Rewriting>> RewriteOn(const CatalogSnapshot& snap,
                                         const Pattern& query) {
  if (snap.summary() == nullptr) {
    return Status::InvalidArgument(
        "snapshot has no bound document/summary (use BindDocument or the "
        "shared-pointer Load)");
  }
  RewriterOptions opts;
  opts.max_results = 1;
  opts.cost_model = &snap.cost_model();
  opts.memo = snap.containment_memo();
  std::shared_ptr<const ViewIndex> index =
      snap.ViewIndexFor(*snap.summary(), opts.expansion);
  opts.shared_view_index = index.get();
  Rewriter rewriter(*snap.summary(), opts);
  for (const auto& v : snap.views()) rewriter.AddView(v->def);
  RewriteStats stats;
  Result<std::vector<Rewriting>> rws =
      CachedRewrite(snap.rewrite_cache(), &rewriter, query, &stats);
  if (!rws.ok()) return rws.status();
  if (rws->empty()) return Status::NotFound("no rewriting for query");
  return rws;
}

/// The single-catalog serving path (cf. bench_concurrent's reader loop).
Result<Table> RewriteAndExecute(const CatalogSnapshot& snap,
                                const Pattern& query) {
  Result<std::vector<Rewriting>> rws = RewriteOn(snap, query);
  if (!rws.ok()) return rws.status();
  return Execute(*rws->front().plan, snap.ExecutorCatalog());
}

/// Merges per-shard result slices into one table in canonical document
/// order. Slices of an anchored query are disjoint (each row carries its
/// anchor id, owned by exactly one shard), so concatenating and sorting
/// once yields the document-order result without a k-way merge.
Table MergeSlices(std::vector<Table> parts) {
  Table out(parts.front().schema());
  for (Table& t : parts) {
    for (Tuple& row : t.mutable_rows()) {
      out.mutable_rows().push_back(std::move(row));
    }
  }
  out.SortRowsCanonical();
  return out;
}

}  // namespace

Result<Table> ShardedSnapshot::ExecuteQuery(const Pattern& query,
                                            bool parallel) const {
  // The same locality test that shards views: an anchored query's result
  // rows each live in exactly one shard, so shard slices partition the full
  // result. Anything else (no anchoring return id, nodes off the spine —
  // e.g. a cross-subtree join) must see whole extents: the global catalog.
  ViewAnchor anchor = AnalyzeViewAnchor(query, "q");
  if (!anchor.partitionable || shards_.empty()) {
    return RewriteAndExecute(*global_, query);
  }
  // Every shard stores the same view definitions, so a rewriting found on
  // one shard is valid on all of them: rewrite ONCE (through shard 0's
  // caches), then execute the plan against each shard's extents. A plan
  // references views by name; each shard's executor resolves its own
  // slice.
  Result<std::vector<Rewriting>> rws = RewriteOn(*shards_[0], query);
  if (!rws.ok()) {
    if (rws.status().code() == StatusCode::kNotFound) {
      // No shard can serve the query from its views (identical view sets)
      // — fall back to the global catalog.
      return RewriteAndExecute(*global_, query);
    }
    return rws.status();
  }
  const PlanNode& plan = *rws->front().plan;
  std::vector<std::optional<Result<Table>>> slots(shards_.size());
  if (parallel && shards_.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      threads.emplace_back([this, &plan, &slots, i]() {
        slots[i] = Execute(plan, shards_[i]->ExecutorCatalog());
      });
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      slots[i] = Execute(plan, shards_[i]->ExecutorCatalog());
    }
  }
  std::vector<Table> parts;
  parts.reserve(slots.size());
  for (std::optional<Result<Table>>& slot : slots) {
    if (!slot->ok()) return slot->status();
    parts.push_back(std::move(**slot));
  }
  return MergeSlices(std::move(parts));
}

uint64_t ShardedSnapshot::EpochSum() const {
  uint64_t sum = global_ != nullptr ? global_->epoch() : 0;
  for (const auto& s : shards_) sum += s->epoch();
  return sum;
}

ShardedCatalog::ShardedCatalog(const ShardedCatalogOptions& options,
                               std::shared_ptr<const ShardRouter> router)
    : options_(options), router_(std::move(router)) {
  const int n = router_->num_shards();
  // One budget across every catalog: a shard decoding an extent can evict
  // another shard's cold table, so the cap is global, not per shard.
  auto budget =
      std::make_shared<MemoryBudget>(options_.memory_budget_bytes);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ViewCatalogOptions vo;
    if (!options_.dir.empty()) {
      vo.dir = (fs::path(options_.dir) / StrFormat("shard-%d", i)).string();
    }
    vo.enable_delta_log = options_.enable_delta_log;
    vo.memory_budget = budget;
    auto catalog = std::make_unique<ViewCatalog>(std::move(vo));
    catalog->SetShardLabel(i);
    catalog->SetExtentPartition(std::make_shared<ShardPartition>(router_, i));
    shards_.push_back(std::move(catalog));
  }
  ViewCatalogOptions go;
  if (!options_.dir.empty()) {
    go.dir = (fs::path(options_.dir) / "global").string();
  }
  go.enable_delta_log = options_.enable_delta_log;
  go.memory_budget = std::move(budget);
  global_ = std::make_unique<ViewCatalog>(std::move(go));
}

ShardedCatalog::~ShardedCatalog() {
  for (auto& lane : lanes_) {
    MutexLock lock(&lane->mu);
    lane->stop = true;
    lane->cv.SignalAll();
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::Create(
    const ShardedCatalogOptions& options, std::shared_ptr<const Document> doc,
    std::shared_ptr<const Summary> summary) {
  if (doc == nullptr) {
    return Status::InvalidArgument("sharded catalog requires a document");
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.enable_delta_log && options.dir.empty()) {
    return Status::InvalidArgument("delta log requires a store directory");
  }
  auto router = std::make_shared<ShardRouter>(
      ShardRouter::Partition(*doc, options.num_shards));
  if (!options.dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.dir, ec);
    if (ec) {
      return Status::Internal("cannot create store dir " + options.dir + ": " +
                              ec.message());
    }
    SVX_RETURN_IF_ERROR(
        WriteFileBytes((fs::path(options.dir) / "shards.txt").string(),
                       router->Serialize()));
  }
  std::unique_ptr<ShardedCatalog> catalog(
      new ShardedCatalog(options, std::move(router)));
  for (auto& shard : catalog->shards_) shard->BindDocument(doc, summary);
  catalog->global_->BindDocument(std::move(doc), std::move(summary));
  catalog->StartLanes();
  return catalog;
}

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::Open(
    const ShardedCatalogOptions& options, std::shared_ptr<const Document> doc,
    std::shared_ptr<const Summary> summary) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("Open requires a store directory");
  }
  if (doc == nullptr) {
    return Status::InvalidArgument("sharded catalog requires a document");
  }
  Result<std::string> boundaries =
      ReadFileBytes((fs::path(options.dir) / "shards.txt").string());
  if (!boundaries.ok()) return boundaries.status();
  auto router =
      std::make_shared<ShardRouter>(ShardRouter::Deserialize(*boundaries));
  std::unique_ptr<ShardedCatalog> catalog(
      new ShardedCatalog(options, std::move(router)));
  auto recover = [&](ViewCatalog* c) -> Status {
    // A catalog that never checkpointed has no manifest (it also has no
    // views — view-set mutations checkpoint immediately); start it empty.
    if (!fs::exists(fs::path(c->dir()) / "manifest.txt")) {
      c->BindDocument(doc, summary);
      return Status::OK();
    }
    return c->Load(doc, summary);
  };
  for (auto& shard : catalog->shards_) {
    SVX_RETURN_IF_ERROR(recover(shard.get()));
  }
  SVX_RETURN_IF_ERROR(recover(catalog->global_.get()));
  catalog->StartLanes();
  return catalog;
}

void ShardedCatalog::StartLanes() {
  if (!options_.async) return;
  lanes_.reserve(shards_.size() + 1);
  for (auto& shard : shards_) {
    auto lane = std::make_unique<Lane>();
    lane->thread =
        std::thread(&ShardedCatalog::LaneLoop, this, lane.get(), shard.get());
    lanes_.push_back(std::move(lane));
  }
  auto lane = std::make_unique<Lane>();
  lane->thread =
      std::thread(&ShardedCatalog::LaneLoop, this, lane.get(), global_.get());
  lanes_.push_back(std::move(lane));
}

void ShardedCatalog::LaneLoop(Lane* lane, ViewCatalog* catalog) {
  for (;;) {
    std::vector<Pending> batch;
    {
      MutexLock lock(&lane->mu);
      while (lane->queue.empty() && !lane->stop) lane->cv.Wait(&lane->mu);
      if (lane->queue.empty()) break;  // stop requested and fully drained
      // Drain everything queued into one batch — the coalescing: K deltas
      // become one maintenance pass and one published epoch.
      batch.assign(std::make_move_iterator(lane->queue.begin()),
                   std::make_move_iterator(lane->queue.end()));
      lane->queue.clear();
      lane->busy = true;
    }
    std::vector<DocumentDelta> deltas;
    deltas.reserve(batch.size());
    for (const Pending& p : batch) deltas.push_back(p.delta);
    Status s = catalog->ApplyUpdateBatch(deltas, batch.back().new_doc,
                                         batch.back().new_summary);
    {
      MutexLock lock(&lane->mu);
      lane->busy = false;
      if (!s.ok() && lane->error.ok()) lane->error = s;
      lane->cv.SignalAll();
    }
  }
}

Status ShardedCatalog::EnqueueTo(Lane* lane, const DocumentDelta& delta,
                                 std::shared_ptr<const Document> new_doc,
                                 std::shared_ptr<const Summary> new_summary) {
  MutexLock lock(&lane->mu);
  if (lane->stop) return Status::Internal("sharded catalog is shutting down");
  if (!lane->error.ok()) return lane->error;  // sticky: fail fast
  lane->queue.push_back(
      Pending{delta, std::move(new_doc), std::move(new_summary)});
  lane->cv.SignalAll();
  return Status::OK();
}

Status ShardedCatalog::ApplyUpdate(const DocumentDelta& delta,
                                   std::shared_ptr<const Document> new_doc,
                                   std::shared_ptr<const Summary> new_summary,
                                   TraceSpan* span) {
  if (new_doc == nullptr || new_doc.get() != delta.new_doc) {
    return Status::InvalidArgument(
        "shared document must be the delta's new_doc");
  }
  const int target = RouteDelta(*router_, delta);
  // The global catalog sees every delta (its views span all shards); skip
  // it while it holds none so empty passes don't dilute the batching.
  const bool global_active = global_->size() > 0;
  if (!options_.async) {
    SVX_RETURN_IF_ERROR(shards_[static_cast<size_t>(target)]->ApplyUpdateBatch(
        {delta}, new_doc, new_summary, nullptr, span));
    if (global_active) {
      SVX_RETURN_IF_ERROR(global_->ApplyUpdateBatch(
          {delta}, std::move(new_doc), std::move(new_summary), nullptr, span));
    }
    return Status::OK();
  }
  SVX_RETURN_IF_ERROR(EnqueueTo(lanes_[static_cast<size_t>(target)].get(),
                                delta, new_doc, new_summary));
  if (global_active) {
    SVX_RETURN_IF_ERROR(EnqueueTo(lanes_.back().get(), delta,
                                  std::move(new_doc), std::move(new_summary)));
  }
  return Status::OK();
}

Status ShardedCatalog::Flush() {
  Status first = Status::OK();
  for (auto& lane : lanes_) {
    MutexLock lock(&lane->mu);
    while (!lane->queue.empty() || lane->busy) lane->cv.Wait(&lane->mu);
    if (first.ok() && !lane->error.ok()) first = lane->error;
  }
  return first;
}

Status ShardedCatalog::Materialize(const ViewDef& def, const Document& doc) {
  SVX_RETURN_IF_ERROR(Flush());
  ViewAnchor anchor = AnalyzeViewAnchor(def.pattern, def.name);
  Table extent = MaterializeView(def.pattern, def.name, doc);
  if (!anchor.partitionable) {
    return global_->Add(def, std::move(extent));
  }
  // One evaluation, N registrations: each shard's partition filter keeps
  // only the rows it owns.
  for (auto& shard : shards_) {
    SVX_RETURN_IF_ERROR(shard->Add(def, extent));
  }
  return Status::OK();
}

Status ShardedCatalog::Save() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("sharded catalog has no store dir");
  }
  SVX_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) SVX_RETURN_IF_ERROR(shard->Save());
  return global_->Save();
}

ShardedSnapshot ShardedCatalog::Snapshot() const {
  ShardedSnapshot snap;
  snap.shards_.reserve(shards_.size());
  for (const auto& shard : shards_) snap.shards_.push_back(shard->Snapshot());
  snap.global_ = global_->Snapshot();
  return snap;
}

std::string ShardedCatalog::DebugMetrics() const {
  uint64_t epoch_sum = 0;
  int64_t max_age_us = 0;
  int64_t wal_depth_total = 0;
  std::string out = StrFormat("{\"num_shards\":%d,\"async\":%s,\"shards\":[",
                              num_shards(), options_.async ? "true" : "false");
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i != 0) out += ',';
    out += shards_[i]->DebugMetrics();
    std::shared_ptr<const CatalogSnapshot> snap = shards_[i]->Snapshot();
    epoch_sum += snap->epoch();
    max_age_us = std::max(max_age_us, snap->AgeMicros());
    wal_depth_total += shards_[i]->wal_depth();
  }
  out += "],\"global\":";
  out += global_->DebugMetrics();
  epoch_sum += global_->Snapshot()->epoch();
  wal_depth_total += global_->wal_depth();
  out += StrFormat(
      ",\"epoch_sum\":%llu,\"max_epoch_age_us\":%lld,\"wal_depth_total\":%lld}",
      static_cast<unsigned long long>(epoch_sum),
      static_cast<long long>(max_age_us),
      static_cast<long long>(wal_depth_total));
  return out;
}

}  // namespace svx
