// Per-operator cost constants for the CostModel, versioned so fitted
// profiles age out when the model's term structure changes.
//
// The model's cost is *linear* in these constants: every operator
// contributes (constant × work-unit count), where the unit counts depend
// only on cardinality estimates, never on the constants themselves. That
// makes calibration an ordinary least-squares fit of measured executor
// times against per-plan unit vectors — which is exactly what
// tools/calibrate_costs does. Constants are expressed relative to the cost
// of scanning one view row (scan stays at 1.0 by convention, so "cost 500"
// keeps meaning "about as expensive as scanning 500 rows").
//
// Three layers, later wins:
//   1. DefaultCostConstants(): the paper-era uncalibrated guesses; the
//      unit tests pin today's estimate values through these.
//   2. CalibratedCostConstants(): the baked-in fit from the last
//      tools/calibrate_costs run (see the table below). Used by
//      ViewCatalog for every published snapshot's cost model.
//   3. A store-local cost_profile.txt in the catalog directory, written by
//      tools/calibrate_costs --write <store_dir>, loaded at catalog open.
#ifndef SVX_VIEWSTORE_COST_CONSTANTS_H_
#define SVX_VIEWSTORE_COST_CONSTANTS_H_

#include <array>
#include <cstdint>
#include <string>

namespace svx {

/// Bumped whenever the CostModel's term structure changes meaning (new
/// operators, redefined units). Profiles with another version are ignored.
inline constexpr int32_t kCostProfileVersion = 1;

struct CostConstants {
  static constexpr size_t kNumTerms = 9;

  double scan = 1.0;           // per row scanned from a view extent
  double eq_join = 1.0;        // per input row hashed/probed by ⋈=
  double parent_join = 1.0;    // per input row probed by ⋈≺
  double ancestor_join = 1.0;  // per ORDPATH-prefix probe of ⋈≺≺
  double emit = 1.0;           // per row materialized (join output, unnest)
  double select = 1.0;         // per row filtered by σ
  double project = 0.1;        // per row copied by π
  double sort = 1.0;           // per row ordered/deduped (union, group-by)
  double nav = 1.0;            // per navigation step (navC, navfID)

  std::array<double, kNumTerms> ToArray() const {
    return {scan, eq_join, parent_join, ancestor_join, emit,
            select, project, sort, nav};
  }
  static CostConstants FromArray(const std::array<double, kNumTerms>& a) {
    CostConstants c;
    c.scan = a[0];
    c.eq_join = a[1];
    c.parent_join = a[2];
    c.ancestor_join = a[3];
    c.emit = a[4];
    c.select = a[5];
    c.project = a[6];
    c.sort = a[7];
    c.nav = a[8];
    return c;
  }
  /// Term names in ToArray() order (profile keys, calibration output).
  static const char* TermName(size_t i);
};

/// The uncalibrated defaults (every term 1.0 except the cheap projection);
/// reproduce the pre-calibration estimates bit-exactly.
inline CostConstants DefaultCostConstants() { return CostConstants{}; }

/// The constants fitted by the last `tools/calibrate_costs` run against
/// measured executor times (XMark scale 0.5: 161 samples over per-view
/// extent scans plus every workload rewriting; non-negative least squares,
/// scan pinned to 1.0; Spearman vs measured ms 0.961 -> 0.975). Terms the
/// active-set fit clamped to zero (ancestor_join, emit, project, sort —
/// not independently identifiable from this workload's plans, which
/// exercise them only alongside dominant scan work) keep their
/// uncalibrated defaults so no operator ever ranks as free. Re-run the
/// tool and paste its constants block here to refresh.
inline CostConstants CalibratedCostConstants() {
  CostConstants c;
  c.scan = 1.0;
  c.eq_join = 7.05192;
  c.parent_join = 7.51262;
  c.ancestor_join = 1.0;  // not identified by the fit; default kept
  c.emit = 1.0;           // not identified by the fit; default kept
  c.select = 14.1524;
  c.project = 0.1;        // not identified by the fit; default kept
  c.sort = 1.0;           // not identified by the fit; default kept
  c.nav = 1.30611;
  return c;
}

/// FNV-1a over the profile version, default-rows assumption, and the bit
/// patterns of every term, so any change to the effective cost model is
/// visible to cache keys (plan choice depends on the constants).
uint64_t CostConstantsFingerprint(const CostConstants& c, double default_rows);

/// Reads `path` (a "key value" per-line text profile, '#' comments). On a
/// missing file, a version mismatch, or a parse error returns false and
/// leaves *out untouched.
bool LoadCostProfile(const std::string& path, CostConstants* out);

/// Writes a loadable profile to `path`. Returns false on I/O failure.
bool SaveCostProfile(const std::string& path, const CostConstants& c);

}  // namespace svx

#endif  // SVX_VIEWSTORE_COST_CONSTANTS_H_
