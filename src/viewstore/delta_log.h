// Per-shard write-ahead delta log: the durability half of the sharded
// catalog. A maintenance pass appends one checksummed record describing the
// tuple-level view deltas it is about to publish; crash recovery replays the
// log on top of the last persisted extents instead of re-materializing.
//
// On-disk format (little-endian), reusing the PR-5 crash-safe conventions
// (generation-suffixed immutable names, sweep of unreferenced files):
//
//   segment file:  wal.<generation>.log
//     header:      "SVXW" u32(version = 1)
//     record*:     u32 payload_len, u32 crc32(payload), payload
//   payload:       u64 epoch, u32 nviews, per view:
//                    str view_name
//                    u32 ndeletes, ndeletes x str delete_key (EncodeTupleKey)
//                    str inserts_bytes (SerializeExtent of inserted rows,
//                                       empty when the view had no inserts)
//   str = u32 length + bytes.
//
// Torn-write contract: a record is visible iff its length prefix, checksum
// and payload all parse. A torn tail (partial final record after a crash
// mid-append) is tolerated only in the newest segment, where ReadSegment
// truncates the file back to the last valid record; torn bytes in any older
// segment are corruption and fail recovery. Rotation on successful Save
// bumps the generation and the manifest's WAL floor, so stale segments are
// never replayed even if a crash leaves them on disk until the next sweep.
#ifndef SVX_VIEWSTORE_DELTA_LOG_H_
#define SVX_VIEWSTORE_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace svx {

/// Tuple-level delta for one view inside one WAL record. Delete keys are
/// EncodeTupleKey encodings (rebind-invariant), inserts are a serialized
/// extent holding only the inserted rows.
struct WalViewDelta {
  std::string view;
  std::vector<std::string> delete_keys;
  std::string inserts_bytes;
};

/// One maintenance pass's durable delta: the epoch it published and the
/// per-view tuple changes relative to the previous epoch.
struct WalRecord {
  uint64_t epoch = 0;
  std::vector<WalViewDelta> views;
};

/// Append handle over one WAL segment. Not thread-safe: the owning catalog
/// serializes appends under its writer mutex.
class DeltaLog {
 public:
  ~DeltaLog();
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Opens segment wal.<generation>.log in `dir` for appending, writing the
  /// header if the file is new or empty. An existing non-empty segment is
  /// appended to (recovery reopens the replayed segment).
  [[nodiscard]] static Result<std::unique_ptr<DeltaLog>> Open(
      const std::string& dir, uint64_t generation);

  /// Appends one record and flushes it to the OS. Updates
  /// svx_wal_bytes_total / svx_wal_records_total.
  [[nodiscard]] Status Append(const WalRecord& record);

  uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }
  /// Records appended through this handle (not counting pre-existing ones).
  int64_t records_appended() const { return records_appended_; }
  int64_t bytes_appended() const { return bytes_appended_; }

  // ---- Segment naming ----
  static std::string SegmentFileName(uint64_t generation);
  /// Parses "wal.<generation>.log"; returns false for any other name.
  static bool ParseSegmentFileName(std::string_view name,
                                   uint64_t* generation);

  // ---- Recovery-side static helpers ----

  /// Reads every valid record of one segment. With `truncate_torn_tail`,
  /// unparseable bytes at the end are treated as a torn final record: the
  /// file is truncated back to the last valid record (counted in
  /// svx_wal_torn_truncations_total) and the call succeeds; without it the
  /// same condition is a ParseError.
  [[nodiscard]] static Result<std::vector<WalRecord>> ReadSegment(
      const std::string& path, bool truncate_torn_tail);

  /// Replays `dir`'s segments with generation >= min_generation in
  /// generation order, returning records with epoch > min_epoch. A torn
  /// tail is tolerated (and truncated) only in the newest such segment.
  /// Counts returned records in svx_wal_replays_total.
  [[nodiscard]] static Result<std::vector<WalRecord>> Replay(
      const std::string& dir, uint64_t min_generation, uint64_t min_epoch);

  /// Deletes segments with generation < keep_generation (the orphan sweep
  /// run by Save and Load). Returns the number of files removed.
  static int SweepSegments(const std::string& dir, uint64_t keep_generation);

  /// CRC-32 (IEEE 802.3, poly 0xEDB88320) over `bytes`.
  static uint32_t Crc32(std::string_view bytes);

  /// Serializes / parses one record payload (exposed for tests).
  static std::string EncodePayload(const WalRecord& record);
  [[nodiscard]] static Result<WalRecord> DecodePayload(std::string_view bytes);

 private:
  DeltaLog(std::string path, uint64_t generation, std::FILE* file)
      : path_(std::move(path)), generation_(generation), file_(file) {}

  std::string path_;
  uint64_t generation_;
  std::FILE* file_;
  int64_t records_appended_ = 0;
  int64_t bytes_appended_ = 0;
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_DELTA_LOG_H_
