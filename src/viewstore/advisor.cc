#include "src/viewstore/advisor.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/strings.h"
#include "src/viewstore/view_catalog.h"

namespace svx {

namespace {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// The predicate-stripped generalization of a query: same shape, no value
/// formulas. Nodes that carried a predicate gain a V attribute so the
/// rewriter's §4.6 value adaptation can re-apply the formula as σ.
Pattern Generalize(const Pattern& q) {
  Pattern g = q;
  for (PatternNodeId n = 0; n < g.size(); ++n) {
    Pattern::Node& node = g.mutable_node(n);
    if (!node.pred.IsTrue()) {
      node.pred = Predicate::True();
      node.attrs |= kAttrValue;
    }
  }
  return g;
}

}  // namespace

AdvisorProposal AdviseViews(const std::vector<Pattern>& workload,
                            const Summary& summary, const Document& doc,
                            const AdvisorOptions& options) {
  AdvisorProposal proposal;
  if (workload.empty() || summary.size() == 0) return proposal;
  const std::string& root_label = summary.label(summary.root());

  // ---- Candidate generation (deduplicated by pattern text). ----
  std::vector<ViewDef> candidates;
  std::unordered_set<std::string> seen_patterns;
  auto add_candidate = [&](std::string name, Pattern pattern) {
    std::string text = PatternToString(pattern);
    if (!seen_patterns.insert(text).second) return;
    candidates.push_back({std::move(name), std::move(pattern)});
  };
  for (size_t i = 0; i < workload.size(); ++i) {
    if (workload[i].size() == 0 || workload[i].Arity() == 0) continue;
    add_candidate(StrFormat("W%zu", i), workload[i]);
    if (options.generalized_candidates) {
      add_candidate(StrFormat("G%zu", i), Generalize(workload[i]));
    }
  }
  if (options.base_view_candidates) {
    std::vector<std::string> labels;
    for (const Pattern& q : workload) {
      for (PatternNodeId n = 1; n < q.size(); ++n) {
        if (!q.node(n).IsWildcard()) labels.push_back(q.node(n).label);
      }
    }
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    for (const std::string& label : labels) {
      if (label == root_label) continue;
      Result<Pattern> p = ParsePattern(StrFormat(
          "%s(//%s{id,v})", root_label.c_str(), label.c_str()));
      if (p.ok()) add_candidate("Base_" + label, std::move(*p));
    }
  }
  proposal.candidates_considered = candidates.size();
  if (candidates.empty()) return proposal;

  // ---- Materialize candidates once: size + statistics. Candidates that
  // fail to materialize (e.g. unstorable names) are dropped, not fatal. ----
  ViewCatalog scratch;
  std::vector<ViewDef> usable;
  for (ViewDef& c : candidates) {
    if (scratch.Materialize(c, doc).ok()) usable.push_back(std::move(c));
  }
  candidates = std::move(usable);
  if (candidates.empty()) return proposal;
  std::vector<const StoredView*> stored;
  for (const ViewDef& c : candidates) stored.push_back(scratch.Find(c.name));

  // ---- Benefit matrix: cost of answering query q from candidate v. ----
  const double baseline = static_cast<double>(doc.size());
  std::vector<std::vector<double>> cost(candidates.size());
  for (size_t v = 0; v < candidates.size(); ++v) {
    CostModel model;
    model.AddViewStats(candidates[v].name, stored[v]->stats);
    RewriterOptions ropts = options.rewriter;
    ropts.stop_at_first = false;
    ropts.max_results = std::max<size_t>(ropts.max_results, 2);
    ropts.cost_model = &model;
    Rewriter rewriter(summary, ropts);
    rewriter.AddView(candidates[v]);
    cost[v].assign(workload.size(), kInfiniteCost);
    for (size_t q = 0; q < workload.size(); ++q) {
      if (workload[q].size() == 0 || workload[q].Arity() == 0) continue;
      Result<std::vector<Rewriting>> rws = rewriter.Rewrite(workload[q]);
      if (rws.ok() && !rws->empty()) {
        cost[v][q] = rws->front().est_cost;  // cheapest: cost-ranked
      }
    }
  }

  // ---- Greedy selection by marginal benefit under the budget. ----
  std::vector<double> best_cost(workload.size(), baseline);
  std::vector<bool> taken(candidates.size(), false);
  while (proposal.chosen.size() < options.max_views) {
    double best_gain = 0;
    size_t best_v = candidates.size();
    for (size_t v = 0; v < candidates.size(); ++v) {
      if (taken[v]) continue;
      if (proposal.total_bytes + stored[v]->extent_bytes >
          options.size_budget_bytes) {
        continue;
      }
      double gain = 0;
      for (size_t q = 0; q < workload.size(); ++q) {
        if (cost[v][q] < best_cost[q]) gain += best_cost[q] - cost[v][q];
      }
      // Ties: prefer the smaller extent, then the earlier candidate.
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best_v < candidates.size() &&
           stored[v]->extent_bytes < stored[best_v]->extent_bytes)) {
        best_gain = gain;
        best_v = v;
      }
    }
    if (best_v == candidates.size() || best_gain <= 0) break;
    taken[best_v] = true;
    AdvisedView picked;
    picked.def = candidates[best_v];
    picked.bytes = stored[best_v]->extent_bytes;
    picked.benefit = best_gain;
    for (size_t q = 0; q < workload.size(); ++q) {
      if (cost[best_v][q] < best_cost[q]) {
        picked.queries.push_back(q);
        best_cost[q] = cost[best_v][q];
      }
    }
    proposal.total_bytes += picked.bytes;
    proposal.total_benefit += picked.benefit;
    proposal.chosen.push_back(std::move(picked));
  }
  return proposal;
}

}  // namespace svx
