// Catalog-level cache of rewrite results.
//
// Million-user traffic is dominated by repeat queries, and a Rewrite() call
// is pure given (query, view set, summary, rewriter options): the ranked
// rewriting list can be cached under the query's canonical pattern text
// (salted by CachedRewrite with the rewriter's configuration) and served in
// microseconds.
// Each CatalogSnapshot owns one cache: a catalog mutation (Materialize /
// Add / Drop / ApplyUpdate / Load) publishes a successor snapshot with a
// fresh cache (carrying the cumulative hit/miss/invalidation counters), so
// a hit is always as fresh as a recomputation against that snapshot's view
// set and document.
//
// Thread-safe: an internal mutex guards the table, so concurrent readers
// of one snapshot share warm entries.
//
// Entries store plans by value; Lookup returns deep clones, so callers own
// their plans and cache entries stay immutable.
#ifndef SVX_VIEWSTORE_REWRITE_CACHE_H_
#define SVX_VIEWSTORE_REWRITE_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/rewriting/rewriter.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace svx {

class RewriteCache {
 public:
  /// Cache key of a query pattern (its round-trippable text form).
  static std::string KeyFor(const Pattern& q);

  /// Returns true and fills `out` with cloned rewritings (ranked order
  /// preserved) when `key` is cached. An entry may hold zero rewritings —
  /// "no rewriting exists" is equally worth caching. With a non-null
  /// `stats`, the search counters recorded at insert time (candidates
  /// built/pruned, equivalence tests, memo hits/misses, ...) are copied
  /// into it, so a warm hit reports the work its entry originally cost
  /// instead of zeros; the timing fields are left to the caller.
  bool Lookup(const std::string& key, std::vector<Rewriting>* out,
              RewriteStats* stats = nullptr) const SVX_EXCLUDES(mu_);

  /// Caches `rewritings` (cloned) under `key`, replacing any previous
  /// entry, together with the search stats that produced them (replayed on
  /// hits — see Lookup). When the cache is full, the whole table is dropped
  /// first — a crude but constant-time eviction; `max_entries` is high
  /// enough that this only guards against unbounded ad-hoc query streams.
  void Insert(const std::string& key, const std::vector<Rewriting>& rewritings,
              const RewriteStats* stats = nullptr) SVX_EXCLUDES(mu_);

  /// Drops every entry. Called when the snapshot's world is replaced (the
  /// catalog normally swaps in a fresh cache instead).
  void Invalidate() SVX_EXCLUDES(mu_);

  /// Seeds the cumulative counters from a predecessor cache, counting one
  /// invalidation when the predecessor held entries — how a successor
  /// snapshot's fresh cache keeps hit/miss observability continuous.
  void CarryCountersFrom(const RewriteCache& prior) SVX_EXCLUDES(mu_);

  size_t size() const SVX_EXCLUDES(mu_);
  size_t hits() const SVX_EXCLUDES(mu_);
  size_t misses() const SVX_EXCLUDES(mu_);
  size_t invalidations() const SVX_EXCLUDES(mu_);

  /// Set before the cache is shared across threads.
  size_t max_entries = 4096;

 private:
  struct Entry {
    std::vector<Rewriting> rewritings;
    RewriteStats stats;  // the miss-time search counters
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ SVX_GUARDED_BY(mu_);
  mutable size_t hits_ SVX_GUARDED_BY(mu_) = 0;
  mutable size_t misses_ SVX_GUARDED_BY(mu_) = 0;
  size_t invalidations_ SVX_GUARDED_BY(mu_) = 0;
};

/// Rewrites `q` through `cache`: serves a hit (setting
/// stats->rewrite_cache_hits and the timing fields), otherwise calls
/// rewriter->Rewrite(q, stats) and caches the ok() result. With a null
/// cache this is exactly rewriter->Rewrite.
[[nodiscard]] Result<std::vector<Rewriting>> CachedRewrite(
    RewriteCache* cache, Rewriter* rewriter, const Pattern& q,
    RewriteStats* stats = nullptr);

}  // namespace svx

#endif  // SVX_VIEWSTORE_REWRITE_CACHE_H_
