// Shard routing for the sharded catalog: the document is partitioned into N
// contiguous ORDPATH ranges cut at top-level subtree boundaries (the
// LiquidXML-style subtree/path-range fragmentation), and both document
// deltas and view extent rows route to the shard owning their range.
//
// Why top-level subtrees: ORDPATH order is document order with ancestors
// preceding descendants, so the subtree of a depth-2 node is exactly the
// half-open ORDPATH interval [id, next-sibling-id). Cutting only at depth-2
// boundaries means any update region (always depth >= 2 — root insert/delete
// is forbidden) falls entirely inside one shard, and any anchored view row
// belongs to the shard of its anchor node.
#ifndef SVX_VIEWSTORE_SHARD_ROUTER_H_
#define SVX_VIEWSTORE_SHARD_ROUTER_H_

#include <string>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/xml/document.h"
#include "src/xml/node_id.h"

namespace svx {

/// Immutable ORDPATH-range partition of a document. Shard i covers ids in
/// [boundaries()[i-1], boundaries()[i]) with shard 0 covering everything
/// before boundaries()[0] (the root id among it) and the last shard
/// everything after the final boundary. Boundaries are the ORDPATHs of the
/// top-level children starting shards 1..N-1.
class ShardRouter {
 public:
  /// Cuts `doc` into at most `num_shards` ranges, greedily balancing
  /// top-level subtree sizes. The effective shard count is
  /// min(num_shards, number of top-level children), never less than 1.
  static ShardRouter Partition(const Document& doc, int num_shards);

  /// Rebuilds a router from persisted boundaries (recovery path).
  static ShardRouter FromBoundaries(std::vector<OrdPath> boundaries);

  int num_shards() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }

  /// Shard owning `id`: the number of boundaries <= id in document order.
  /// Total — every valid ORDPATH routes somewhere, including ids careted
  /// between existing siblings.
  int Route(const OrdPath& id) const;

  const std::vector<OrdPath>& boundaries() const { return boundaries_; }

  /// One line per boundary, for the shards.txt manifest.
  std::string Serialize() const;
  static ShardRouter Deserialize(const std::string& text);

 private:
  explicit ShardRouter(std::vector<OrdPath> boundaries)
      : boundaries_(std::move(boundaries)) {}

  std::vector<OrdPath> boundaries_;  // sorted, depth-2 ORDPATHs
};

/// Result of the per-view partitionability analysis.
struct ViewAnchor {
  /// True when every row of the view can be attributed to one shard.
  bool partitionable = false;
  /// The anchor return node (first qualifying ID return node in preorder).
  PatternNodeId node = -1;
  /// Index of the anchor's ".id" column in the view schema.
  int32_t column = -1;
};

/// Decides whether a view's extent can be row-partitioned by shard. A view
/// is partitionable iff it has a return node `a` carrying kAttrId such that
///   * `a` is not the pattern root (root rows span every shard),
///   * `a` is at nesting depth 0 (its id appears as a top-level column and
///     is never null),
///   * no edge on the root path to `a` is optional (so the column is never
///     ⊥-padded),
///   * every pattern node is an ancestor-or-self of `a` or a descendant of
///     `a` — then a document change inside one top-level subtree can only
///     create or delete rows whose anchor lies in that same subtree.
/// Views failing the test go to the catalog's global (unsharded) store.
ViewAnchor AnalyzeViewAnchor(const Pattern& pattern,
                             const std::string& view_name);

}  // namespace svx

#endif  // SVX_VIEWSTORE_SHARD_ROUTER_H_
