// Binary serialization of materialized view extents (Schema + rows),
// including nested tables, ⊥ values, ORDPATH ids and content references.
// Content references are persisted as the referenced node's ORDPATH and
// rebound against a Document on load (the store keeps references into the
// repository, not copies — §4.4 "stored ... as a reference").
//
// Format (little-endian, version 1):
//   "SVXT" u32(version)
//   schema:   u32 ncols { str name, u8 kind, u8 has_nested, [schema] }
//   rows:     u64 nrows, per row per column one cell:
//     u8 tag: 0 ⊥ | 1 string | 2 id | 3 content | 4 nested
//     payload: string -> str; id/content -> u32 ncomp, i32 components;
//              nested -> u64 nrows + cells (schema taken from the column)
//   str = u32 length + bytes.
#ifndef SVX_VIEWSTORE_EXTENT_IO_H_
#define SVX_VIEWSTORE_EXTENT_IO_H_

#include <string>
#include <string_view>

#include "src/algebra/relation.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// Serializes `table` (schema + rows) into a compact binary string.
/// Deterministic: equal tables produce identical bytes.
std::string SerializeExtent(const Table& table);

/// Size of SerializeExtent(table) without building the bytes.
int64_t ExtentByteSize(const Table& table);

/// Serialized size of one row's cells (rows carry no per-row header, so
/// ExtentByteSize changes by exactly this much per inserted/deleted row —
/// the incremental byte accounting used by view maintenance).
int64_t TupleByteSize(const Tuple& tuple);

/// Parses a serialized extent. Content cells are rebound against `doc` via
/// their ORDPATH ids; a content cell with `doc == nullptr` or an id absent
/// from `doc` is an error.
[[nodiscard]] Result<Table> DeserializeExtent(std::string_view bytes,
                                              const Document* doc);

/// File convenience wrappers around the two functions above.
[[nodiscard]] Status WriteExtentFile(const std::string& path,
                                     const Table& table);
[[nodiscard]] Result<Table> ReadExtentFile(const std::string& path,
                                           const Document* doc);

/// Serializes one cell value (the row encoding above, without the schema) —
/// a stable deep encoding also used for exact distinct counting. Content
/// cells encode as the referenced node's ORDPATH, so the encoding is
/// invariant under RebindTupleContent.
void EncodeValue(const Value& v, std::string* out);

/// EncodeValue folded over a whole row — the stable tuple identity used by
/// incremental maintenance to match deltas against stored extents.
std::string EncodeTupleKey(const Tuple& tuple);

/// Rebinds every content reference in the tuple (deep, including nested
/// tables) to `doc` via its ORDPATH — the in-memory analogue of the
/// serialize-then-rebind round trip, used after a document update. Fails
/// with NotFound if a referenced ORDPATH is absent from `doc`.
[[nodiscard]] Status RebindTupleContent(Tuple* tuple, const Document& doc);

}  // namespace svx

#endif  // SVX_VIEWSTORE_EXTENT_IO_H_
