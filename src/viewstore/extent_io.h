// Binary serialization of materialized view extents (Schema + rows),
// including nested tables, ⊥ values, ORDPATH ids and content references.
// Content references are persisted as the referenced node's ORDPATH and
// rebound against a Document on load (the store keeps references into the
// repository, not copies — §4.4 "stored ... as a reference").
//
// Version 1 (row-major; still written for WAL payloads and still loadable):
//   "SVXT" u32(1)
//   schema:   u32 ncols { str name, u8 kind, u8 has_nested, [schema] }
//   rows:     u64 nrows, per row per column one cell:
//     u8 tag: 0 ⊥ | 1 string | 2 id | 3 content | 4 nested
//     payload: string -> str; id/content -> u32 ncomp, i32 components;
//              nested -> u64 nrows + cells (schema taken from the column)
//   str = u32 length + bytes.
//
// Version 2 (columnar; what the store writes for extents):
//   "SVXT" u32(2) u64(uncompressed_bytes = the v1 serialized size)
//   schema (as above), then the ColumnarExtent payload (columnar.h): a
//   varint row count plus one tagged compressed chunk per column.
#ifndef SVX_VIEWSTORE_EXTENT_IO_H_
#define SVX_VIEWSTORE_EXTENT_IO_H_

#include <string>
#include <string_view>

#include "src/algebra/columnar.h"
#include "src/algebra/relation.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// Serializes `table` (schema + rows) into a compact binary string.
/// Deterministic: equal tables produce identical bytes.
std::string SerializeExtent(const Table& table);

/// Size of SerializeExtent(table) without building the bytes.
int64_t ExtentByteSize(const Table& table);

/// Serialized size of one row's cells (rows carry no per-row header, so
/// ExtentByteSize changes by exactly this much per inserted/deleted row —
/// the incremental byte accounting used by view maintenance).
int64_t TupleByteSize(const Tuple& tuple);

/// Parses a serialized extent of either version into a row-major table.
/// Content cells are rebound against `doc` via their ORDPATH ids; a content
/// cell with `doc == nullptr` or an id absent from `doc` is an error.
[[nodiscard]] Result<Table> DeserializeExtent(std::string_view bytes,
                                              const Document* doc);

/// Serializes a columnar extent as a version-2 extent file.
/// `uncompressed_bytes` is the v1 (row-major) serialized size recorded in
/// the header — the size a decoded table will charge against the memory
/// budget. Deterministic.
std::string SerializeColumnarExtent(const ColumnarExtent& extent,
                                    int64_t uncompressed_bytes);

/// A columnar parse of either extent version (the lazy-decode load path).
struct ColumnarLoad {
  ColumnarExtentPtr columnar;
  int64_t uncompressed_bytes = 0;
  /// Set when the file was row-major v1: parsing it decoded the rows anyway,
  /// so the caller can install them as the resident table for free.
  TablePtr decoded;
};

/// Parses either version without materializing rows when possible: a v2
/// file yields its chunks directly (no Document needed — content stays as
/// ORDPATHs); a v1 file is decoded (requiring `doc` if it has content
/// references) and re-encoded columnar.
[[nodiscard]] Result<ColumnarLoad> DeserializeExtentColumnar(
    std::string_view bytes, const Document* doc);

[[nodiscard]] Result<ColumnarLoad> ReadExtentFileColumnar(
    const std::string& path, const Document* doc);

/// File convenience wrappers around the two functions above.
[[nodiscard]] Status WriteExtentFile(const std::string& path,
                                     const Table& table);
[[nodiscard]] Result<Table> ReadExtentFile(const std::string& path,
                                           const Document* doc);

/// Serializes one cell value (the row encoding above, without the schema) —
/// a stable deep encoding also used for exact distinct counting. Content
/// cells encode as the referenced node's ORDPATH, so the encoding is
/// invariant under RebindTupleContent.
void EncodeValue(const Value& v, std::string* out);

/// EncodeValue folded over a whole row — the stable tuple identity used by
/// incremental maintenance to match deltas against stored extents.
std::string EncodeTupleKey(const Tuple& tuple);

/// Rebinds every content reference in the tuple (deep, including nested
/// tables) to `doc` via its ORDPATH — the in-memory analogue of the
/// serialize-then-rebind round trip, used after a document update. Fails
/// with NotFound if a referenced ORDPATH is absent from `doc`.
[[nodiscard]] Status RebindTupleContent(Tuple* tuple, const Document& doc);

}  // namespace svx

#endif  // SVX_VIEWSTORE_EXTENT_IO_H_
