// Statistics-driven cost estimation for candidate rewritings (cf. rdf3x's
// Costs/PlanGen pairing). The model walks a logical plan bottom-up,
// estimating output cardinality and cumulative cost per operator:
//   * view scans cost their extent row count;
//   * ⋈= uses distinct-count containment selectivity (|L||R| / max(dl, dr));
//   * ⋈≺ / ⋈≺≺ model the executor's ORDPATH hash-probe (each right row
//     probes its parent id, or its ≤ depth ancestor prefixes);
//   * selections apply per-kind selectivities (σ≠⊥ uses the measured
//     non-null fraction over the owning view's row count).
// Column statistics are keyed by (view, column): a plan column is resolved
// to its originating view scan by walking the plan (its *provenance*), so
// views that expose same-named columns never alias each other's statistics.
#ifndef SVX_VIEWSTORE_COST_MODEL_H_
#define SVX_VIEWSTORE_COST_MODEL_H_

#include <string>
#include <unordered_map>

#include "src/algebra/plan.h"
#include "src/viewstore/cost_constants.h"
#include "src/viewstore/statistics.h"

namespace svx {

/// Cardinality and cost estimate for (a subtree of) a plan.
struct CostEstimate {
  double rows = 0;  // estimated output cardinality
  double cost = 0;  // cumulative work (rows touched), scan-cost units
};

/// Estimates plan costs from per-view extent statistics.
class CostModel {
 public:
  /// Registers the statistics of one materialized view, replacing any
  /// previous registration under the same name (including its column
  /// statistics — nothing stale survives a re-registration).
  void AddViewStats(const std::string& view_name, const ViewStats& stats);

  bool HasView(const std::string& view_name) const {
    return views_.count(view_name) != 0;
  }

  /// Bottom-up estimate for `plan`. Unknown views scan `default_rows`.
  CostEstimate Estimate(const PlanNode& plan) const {
    return Estimate(plan, nullptr);
  }

  /// As Estimate(), also accumulating the per-term work-unit counts into
  /// *units (ToArray() order) when non-null: cost == constants · units
  /// exactly, which is what tools/calibrate_costs fits against measured
  /// times. The caller zero-initializes *units.
  CostEstimate Estimate(const PlanNode& plan,
                        std::array<double, CostConstants::kNumTerms>* units)
      const;

  /// Shorthand for Estimate(plan).cost.
  double EstimateCost(const PlanNode& plan) const {
    return Estimate(plan).cost;
  }

  /// Per-operator cost constants (see cost_constants.h). Cardinality
  /// estimates never depend on these; only the cost side does.
  CostConstants constants;

  /// Assumed extent size for views without registered statistics.
  double default_rows = 1000;

 private:
  /// One registered view: extent row count plus column stats by name
  /// (ComputeViewStats flattens nested inner columns into the same list).
  struct PerView {
    int64_t num_rows = 0;
    std::unordered_map<std::string, ColumnStats> columns;
  };

  /// A plan column resolved to its source: the owning view's stats entry
  /// and (when known) the column's stats. Either may be null — derived
  /// columns (group-by groups, navigation, parent derivation) and
  /// ambiguous unions have no single origin.
  struct Origin {
    const PerView* view = nullptr;
    const ColumnStats* column = nullptr;
  };

  /// Walks the plan to the view scan contributing output column `col`.
  Origin ResolveColumn(const PlanNode& plan, int32_t col) const;

  std::unordered_map<std::string, PerView> views_;
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_COST_MODEL_H_
