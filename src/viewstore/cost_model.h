// Statistics-driven cost estimation for candidate rewritings (cf. rdf3x's
// Costs/PlanGen pairing). The model walks a logical plan bottom-up,
// estimating output cardinality and cumulative cost per operator:
//   * view scans cost their extent row count;
//   * ⋈= uses distinct-count containment selectivity (|L||R| / max(dl, dr));
//   * ⋈≺ / ⋈≺≺ model the executor's ORDPATH hash-probe (each right row
//     probes its parent id, or its ≤ depth ancestor prefixes);
//   * selections apply per-kind selectivities (σ≠⊥ uses the measured
//     non-null fraction when the column's statistics are known).
// Column statistics are looked up by column *name* ("V1.n2.id"), which view
// scans introduce and joins/selections preserve.
#ifndef SVX_VIEWSTORE_COST_MODEL_H_
#define SVX_VIEWSTORE_COST_MODEL_H_

#include <string>
#include <unordered_map>

#include "src/algebra/plan.h"
#include "src/viewstore/statistics.h"

namespace svx {

/// Cardinality and cost estimate for (a subtree of) a plan.
struct CostEstimate {
  double rows = 0;  // estimated output cardinality
  double cost = 0;  // cumulative work (rows touched), scan-cost units
};

/// Estimates plan costs from per-view extent statistics.
class CostModel {
 public:
  /// Registers the statistics of one materialized view. Column names are
  /// assumed globally unique across views (the ViewSchema "<view>.n<k>.<a>"
  /// convention guarantees this for distinct view names).
  void AddViewStats(const std::string& view_name, const ViewStats& stats);

  bool HasView(const std::string& view_name) const {
    return views_.count(view_name) != 0;
  }

  /// Bottom-up estimate for `plan`. Unknown views scan `default_rows`.
  CostEstimate Estimate(const PlanNode& plan) const;

  /// Shorthand for Estimate(plan).cost.
  double EstimateCost(const PlanNode& plan) const {
    return Estimate(plan).cost;
  }

  /// Assumed extent size for views without registered statistics.
  double default_rows = 1000;

 private:
  const ColumnStats* FindColumn(const std::string& name) const;

  std::unordered_map<std::string, int64_t> views_;  // name -> extent rows
  std::unordered_map<std::string, ColumnStats> columns_;  // by column name
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_COST_MODEL_H_
