// Persistent materialized-view store (cf. the pequod cache server): a
// catalog of view definitions with their materialized extents and
// statistics, serialized to a store directory and reloaded on startup.
//
// Concurrency model: the catalog publishes immutable CatalogSnapshot epochs
// behind one swap-only pointer (catalog_snapshot.h). Readers call
// Snapshot() — a constant-time shared-locked pointer copy — and never
// block on maintenance work; every mutator serializes on an internal
// writer mutex, builds the successor epoch off the read path, and
// publishes it by swapping the pointer (the only instant the exclusive
// side of the epoch lock is held). std::atomic<std::shared_ptr> would make
// the read side lock-free outright, but libstdc++ 12's implementation is
// not ThreadSanitizer-clean (its lock-bit protocol trips TSan even on a
// minimal load/store loop), and a race-checkable store beats shaving one
// uncontended rwlock off a path that then rewrites and executes a query.
// The single-threaded convenience accessors (views(), Find(),
// rewrite_cache(), ExecutorCatalog(), ...) read the current epoch and
// return borrowed pointers that stay valid until the next mutation —
// concurrent readers must hold a Snapshot() instead.
//
// On-disk layout under the store directory:
//   manifest.txt            "svx-viewstore 3", then "epoch <E>",
//                           optionally "wal <G>", then one
//                           "view <name> <generation> <pattern>" line per
//                           view (ParsePattern syntax)
//   <name>.<gen>.extent     binary extent (see extent_io.h)
//   <name>.<gen>.stats      text statistics (see statistics.h)
//   wal.<gen>.log           write-ahead delta log segment (delta_log.h),
//                           present in delta-log mode
// Extent/stats files are immutable once written: every changed extent is
// saved under a fresh generation and the manifest is flipped last, so a
// crash at any point leaves the previous manifest referencing complete,
// unmixed files of the previous generations. Unreferenced generations (and
// WAL segments below the manifest's floor) are swept after a successful
// save and on Load(). Version-1 ("view <name> <pattern>" over unsuffixed
// files) and version-2 manifests still load.
//
// Delta-log durability (ViewCatalogOptions::enable_delta_log): instead of
// rewriting changed extents on every maintenance pass, ApplyUpdate appends
// one checksummed record of the pass's tuple-level deltas to the current
// WAL segment before publishing. The manifest records the epoch E its
// extents capture and the segment-generation floor G; recovery loads the
// extents, replays records with epoch > E from segments >= G (tolerating a
// torn final record in the newest segment), and resumes. A successful
// Save() checkpoints: extents are persisted, the manifest advances E and G,
// the log rotates to a fresh segment and stale segments are swept.
#ifndef SVX_VIEWSTORE_VIEW_CATALOG_H_
#define SVX_VIEWSTORE_VIEW_CATALOG_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/containment/memo.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"
#include "src/rewriting/view.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/viewstore/catalog_snapshot.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/delta_log.h"
#include "src/viewstore/memory_budget.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/statistics.h"
#include "src/xml/update.h"

namespace svx {

/// What one ApplyUpdate pass did, per catalog.
struct MaintenanceStats {
  int32_t views_touched = 0;    // views whose extent changed
  int32_t views_rebuilt = 0;    // fell back to full rematerialization
  int32_t views_shared = 0;     // carried into the new epoch untouched
  int64_t tuples_inserted = 0;  // across all incremental deltas
  int64_t tuples_deleted = 0;
  int32_t deltas_applied = 0;   // batch size of the pass
};

/// Construction options (the string-only constructor remains equivalent to
/// {.dir = s}).
struct ViewCatalogOptions {
  /// Store directory; created on Save() if missing. Empty = in-memory.
  std::string dir;
  /// Write-ahead delta-log durability (requires a store directory; see the
  /// file comment). Maintenance passes append to the log instead of
  /// rewriting extents; Save() checkpoints and rotates.
  bool enable_delta_log = false;
  /// Memory budget for decoded extents, in bytes; <= 0 = unlimited (every
  /// decoded extent stays resident — the pre-budget behavior). The
  /// compressed columnar extents are always resident; when the decoded
  /// tables exceed the budget the coldest are evicted and re-decoded
  /// lazily on the next access (memory_budget.h).
  int64_t memory_budget_bytes = 0;
  /// Share one budget across several catalogs (ShardedCatalog passes one
  /// to all shards). When set, memory_budget_bytes is ignored.
  std::shared_ptr<MemoryBudget> memory_budget;
};

/// Row-level partition filter for catalogs that store only one shard's
/// slice of each extent (ShardedCatalog installs one per shard). Called
/// under the writer mutex whenever a full extent enters the catalog — Add
/// and maintenance rebuilds — so persisted and maintained extents stay
/// shard-pure.
class ExtentPartition {
 public:
  virtual ~ExtentPartition() = default;
  /// Drops rows this partition does not own, in place. Must leave the
  /// extent of a view it cannot attribute untouched.
  virtual void Filter(const ViewDef& def, Table* extent) const = 0;
};

/// A set of materialized views backed by a store directory.
class ViewCatalog {
 public:
  ViewCatalog();
  /// `dir` is created on Save() if missing.
  explicit ViewCatalog(std::string dir);
  explicit ViewCatalog(ViewCatalogOptions options);

  const std::string& dir() const { return dir_; }
  int32_t size() const { return Current()->size(); }

  /// The current epoch's views (single-threaded convenience; see file
  /// comment for the borrowing rules).
  const std::vector<std::shared_ptr<const StoredView>>& views() const {
    return Current()->views();
  }

  /// The current epoch: a constant-time pointer copy under the shared side
  /// of the epoch lock (writers hold the exclusive side only for their
  /// final pointer swap — never while computing the successor). Readers
  /// hold the returned shared_ptr for as long as they use anything reached
  /// through it; the epoch (and the document it pins, if bound) stays
  /// alive until the last holder drops it.
  std::shared_ptr<const CatalogSnapshot> Snapshot() const
      SVX_EXCLUDES(snapshot_mu_) {
    metrics::SnapshotAcquisitions()->Add(1);
    ReaderMutexLock lock(&snapshot_mu_);
    return snapshot_;
  }

  /// Publishes a successor epoch that pins `doc` (and its `summary`) with
  /// shared ownership, so readers of that epoch keep the document alive.
  /// Use once at startup; afterwards the shared-pointer ApplyUpdate
  /// overload keeps successive epochs bound to successive documents.
  void BindDocument(std::shared_ptr<const Document> doc,
                    std::shared_ptr<const Summary> summary)
      SVX_EXCLUDES(writer_mu_);

  /// Evaluates `def` over `doc` and registers the result (replacing any
  /// same-named view). Statistics are computed at materialization time.
  [[nodiscard]] Status Materialize(const ViewDef& def, const Document& doc)
      SVX_EXCLUDES(writer_mu_);

  /// Registers an externally produced extent. Rows are brought into the
  /// canonical extent order (Table::SortRowsCanonical), so equal extents
  /// are stored byte-identically however they were produced.
  [[nodiscard]] Status Add(ViewDef def, Table extent)
      SVX_EXCLUDES(writer_mu_);

  /// Maintains every stored extent under a document update: computes a
  /// tuple-level delta per view (src/maintenance/), builds a successor
  /// epoch applying it — sharing untouched extents with the current epoch,
  /// falling back to rematerialization when incremental evaluation does
  /// not apply — rebinds stored content references to delta.new_doc,
  /// refreshes statistics in O(|delta|) through per-view value-count
  /// caches, persists changed extents under fresh generations when the
  /// catalog has a store directory, and publishes the successor with one
  /// pointer swap. Afterwards every extent is byte-identical to a fresh
  /// materialization over delta.new_doc. Readers of older epochs are
  /// undisturbed (but with this overload the caller owns both documents'
  /// lifetimes, as with delta itself).
  [[nodiscard]] Status ApplyUpdate(const DocumentDelta& delta,
                                   MaintenanceStats* out_stats = nullptr)
      SVX_EXCLUDES(writer_mu_);

  /// ApplyUpdate for concurrent serving: the successor epoch takes shared
  /// ownership of `new_doc` (which must be delta.new_doc) and
  /// `new_summary`, so the writer may drop the old document right after —
  /// old-epoch readers keep it alive through their snapshot.
  [[nodiscard]] Status ApplyUpdate(const DocumentDelta& delta,
                                   std::shared_ptr<const Document> new_doc,
                                   std::shared_ptr<const Summary> new_summary,
                                   MaintenanceStats* out_stats = nullptr)
      SVX_EXCLUDES(writer_mu_);

  /// Coalesced maintenance: applies an in-order run of deltas from one
  /// document's update history as ONE maintenance pass publishing ONE epoch
  /// — the multi-writer batching the sharded catalog's writer queues drain
  /// into. The run may be gapped (a shard's subsequence of the full
  /// stream), provided the omitted updates touch no rows of any stored
  /// view — the sharded catalog's region routing guarantees exactly this.
  /// `new_doc`, when given, must be the last delta's new_doc. Per view, the
  /// tuple deltas of the steps are folded over a private working extent;
  /// content references rebind once against the final document. `span`
  /// (optional) gets a "maintenance_pass" child span carrying
  /// deltas/epoch/views_touched attrs (and the shard label when set).
  [[nodiscard]] Status ApplyUpdateBatch(
      const std::vector<DocumentDelta>& deltas,
      std::shared_ptr<const Document> new_doc,
      std::shared_ptr<const Summary> new_summary,
      MaintenanceStats* out_stats = nullptr, TraceSpan* span = nullptr)
      SVX_EXCLUDES(writer_mu_);

  /// Installs the shard row filter (see ExtentPartition). Set before the
  /// catalog is used concurrently.
  void SetExtentPartition(std::shared_ptr<const ExtentPartition> partition)
      SVX_EXCLUDES(writer_mu_);

  /// Tags this catalog's per-shard metric series (`...{shard="N"}`) and
  /// DebugMetrics()/trace output with a shard index. Set once at setup.
  void SetShardLabel(int shard) SVX_EXCLUDES(writer_mu_);

  /// Removes the named view from the catalog (files are swept on the next
  /// Save()). NotFound when no such view is registered.
  [[nodiscard]] Status Drop(const std::string& name)
      SVX_EXCLUDES(writer_mu_);

  const StoredView* Find(const std::string& name) const {
    return Current()->Find(name);
  }

  /// Total serialized size of all extents — the advisor's budget currency.
  int64_t TotalBytes() const { return Current()->TotalBytes(); }

  /// Total compressed (columnar) size of all extents — what the store
  /// actually keeps resident; compare against TotalBytes() for the
  /// compression ratio.
  int64_t TotalCompressedBytes() const {
    return Current()->TotalCompressedBytes();
  }

  /// The current epoch's rewrite cache (src/viewstore/rewrite_cache.h).
  /// Every catalog mutation publishes a successor epoch with a fresh cache
  /// — the successor serves no stale plans — carrying the cumulative
  /// hit/miss/invalidation counters.
  RewriteCache* rewrite_cache() const { return Current()->rewrite_cache(); }

  /// The current epoch's pinned containment memo (pass as
  /// RewriterOptions::memo). Replaced whenever the document — and hence
  /// the summary — may change (ApplyUpdate / Load / BindDocument); shared
  /// across view-set-only mutations, whose decisions it does not affect.
  ContainmentMemo* containment_memo() const {
    return Current()->containment_memo();
  }

  /// Writes manifest, extents and statistics under dir(). Crash-safe:
  /// changed extents are written under fresh generation-suffixed names
  /// (plus a temp-file + rename per file), the manifest is renamed into
  /// place last, and only then are unreferenced generations swept — an
  /// interrupted save leaves the previous manifest pointing at the
  /// previous, still complete files.
  [[nodiscard]] Status Save() const SVX_EXCLUDES(writer_mu_);

  /// Replaces the catalog contents with the store at dir(). `doc` rebinds
  /// content references (may be nullptr when no view stores content).
  [[nodiscard]] Status Load(const Document* doc) SVX_EXCLUDES(writer_mu_);

  /// Load for concurrent serving: the loaded epoch pins `doc`/`summary`.
  [[nodiscard]] Status Load(std::shared_ptr<const Document> doc,
                            std::shared_ptr<const Summary> summary)
      SVX_EXCLUDES(writer_mu_);

  /// Executor bindings for the current epoch's extents (borrowed pointers;
  /// valid until the next mutation — concurrent readers use
  /// Snapshot()->ExecutorCatalog()).
  Catalog ExecutorCatalog() const { return Current()->ExecutorCatalog(); }

  /// Cost model over all registered views' statistics (by value; prefer
  /// Snapshot()->cost_model() to avoid the copy).
  CostModel BuildCostModel() const { return Current()->cost_model(); }

  /// One JSON object describing the current epoch for debug endpoints:
  /// epoch id and age, view count and bytes, live epoch count, and the
  /// epoch's rewrite-cache counters. Also refreshes the svx_epoch_current
  /// and svx_epoch_age_us gauges so a registry render taken afterwards
  /// reflects this catalog.
  std::string DebugMetrics() const;

  /// WAL records appended since the last checkpoint — the replay depth a
  /// crash right now would incur (0 without a delta log).
  int64_t wal_depth() const {
    return wal_depth_.load(std::memory_order_relaxed);
  }

  /// The decoded-extent memory budget this catalog charges (never null;
  /// unlimited unless configured, possibly shared across catalogs).
  const std::shared_ptr<MemoryBudget>& memory_budget() const {
    return budget_;
  }

 private:
  /// The current epoch for the single-threaded convenience accessors. The
  /// returned shared_ptr keeps the epoch alive for the full expression;
  /// borrowed pointers derived from it stay valid while the catalog still
  /// holds that epoch (i.e. until the next mutation).
  std::shared_ptr<const CatalogSnapshot> Current() const { return Snapshot(); }

  /// Builds and publishes the successor epoch (writer mutex held).
  /// `doc_changed` replaces the containment memo and rebinds the epoch's
  /// document/summary to the given values (possibly null — the caller
  /// manages lifetimes then); otherwise the current bindings carry over
  /// and doc/summary must be null.
  void PublishLocked(std::vector<std::shared_ptr<const StoredView>> views,
                     std::shared_ptr<const Document> doc,
                     std::shared_ptr<const Summary> summary, bool doc_changed)
      SVX_REQUIRES(writer_mu_);

  /// Writes every not-yet-persisted view under a fresh generation, flips
  /// the manifest recording `epoch` as the persisted state (and the WAL
  /// floor in delta-log mode), sweeps unreferenced files (writer mutex
  /// held). In delta-log mode this is the checkpoint: the log rotates to a
  /// fresh segment and stale segments are swept.
  Status PersistLocked(
      const std::vector<std::shared_ptr<const StoredView>>& views,
      uint64_t epoch) const SVX_REQUIRES(writer_mu_);

  Status ApplyUpdateBatchImpl(const std::vector<DocumentDelta>& deltas,
                              std::shared_ptr<const Document> new_doc,
                              std::shared_ptr<const Summary> new_summary,
                              MaintenanceStats* out_stats, TraceSpan* span)
      SVX_EXCLUDES(writer_mu_);
  Status LoadImpl(const Document* doc, std::shared_ptr<const Document> shared,
                  std::shared_ptr<const Summary> summary)
      SVX_EXCLUDES(writer_mu_);

  /// Opens (lazily) the current WAL segment for appending.
  Status EnsureWalLocked() const SVX_REQUIRES(writer_mu_);

  std::string dir_;
  bool enable_delta_log_ = false;
  /// Decoded-extent accounting; every StoredView's residency slot is
  /// charged here. Set in the ctor, immutable afterwards.
  std::shared_ptr<MemoryBudget> budget_;
  /// Per-operator cost constants baked into every published snapshot's cost
  /// model. Starts from the last tools/calibrate_costs fit; a store-local
  /// cost_profile.txt (written with --write) overrides it at open. Set in
  /// the ctor before any publish and immutable afterwards.
  CostConstants cost_constants_ = CalibratedCostConstants();
  /// Serializes every mutator (and Save). Readers never take it.
  mutable Mutex writer_mu_;
  /// Guards only snapshot_ itself: shared for the reader pointer copy,
  /// exclusive for the writer's publish swap.
  mutable SharedMutex snapshot_mu_;
  std::shared_ptr<const CatalogSnapshot> snapshot_ SVX_GUARDED_BY(snapshot_mu_);
  uint64_t next_epoch_ SVX_GUARDED_BY(writer_mu_) = 1;
  mutable uint64_t next_generation_ SVX_GUARDED_BY(writer_mu_) = 1;
  /// True once next_generation_ is known to exceed every generation in
  /// dir_ (set by a v2+ Load or by PersistLocked's directory scan) — the
  /// cross-process never-reuse guard.
  mutable bool generation_seeded_ SVX_GUARDED_BY(writer_mu_) = false;

  /// Shard row filter (null = whole extents); writer-side only.
  std::shared_ptr<const ExtentPartition> partition_ SVX_GUARDED_BY(writer_mu_);
  /// Shard label (-1 = none). Atomic: set once at setup, read by the
  /// lock-free DebugMetrics path.
  std::atomic<int> shard_{-1};
  /// Cached `...{shard="N"}` labeled handles (set by SetShardLabel so the
  /// maintenance hot path never does a registry lookup).
  std::atomic<Counter*> shard_passes_{nullptr};
  std::atomic<Counter*> shard_deltas_{nullptr};
  std::atomic<Gauge*> shard_epoch_age_{nullptr};

  // ---- Delta-log state (all writer-side; mutable because Save() and
  // PersistLocked are const like next_generation_) ----
  /// Open segment for appends; null until the first WAL write.
  mutable std::unique_ptr<DeltaLog> wal_ SVX_GUARDED_BY(writer_mu_);
  /// Generation of the segment appends go to.
  mutable uint64_t wal_generation_ SVX_GUARDED_BY(writer_mu_) = 1;
  /// Oldest segment generation recovery must replay (the manifest's floor).
  mutable uint64_t wal_floor_ SVX_GUARDED_BY(writer_mu_) = 1;
  /// Records appended since the last checkpoint — the replay depth a crash
  /// right now would incur. Atomic only for DebugMetrics visibility.
  mutable std::atomic<int64_t> wal_depth_{0};
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_VIEW_CATALOG_H_
