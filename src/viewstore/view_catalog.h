// Persistent materialized-view store (cf. the pequod cache server): a
// catalog of view definitions with their materialized extents and
// statistics, serialized to a store directory and reloaded on startup.
//
// On-disk layout under the store directory:
//   manifest.txt          "svx-viewstore 1", then one "view <name> <pattern>"
//                         line per view (ParsePattern syntax)
//   <name>.extent         binary extent (see extent_io.h)
//   <name>.stats          text statistics (see statistics.h)
#ifndef SVX_VIEWSTORE_VIEW_CATALOG_H_
#define SVX_VIEWSTORE_VIEW_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/rewriting/view.h"
#include "src/util/status.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/statistics.h"

namespace svx {

/// One catalog entry: definition, extent, statistics, serialized size.
struct StoredView {
  ViewDef def;
  Table extent;
  ViewStats stats;
  int64_t extent_bytes = 0;  // serialized extent size
};

/// A set of materialized views backed by a store directory.
class ViewCatalog {
 public:
  ViewCatalog() = default;
  /// `dir` is created on Save() if missing.
  explicit ViewCatalog(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  int32_t size() const { return static_cast<int32_t>(views_.size()); }
  const std::vector<std::unique_ptr<StoredView>>& views() const {
    return views_;
  }

  /// Evaluates `def` over `doc` and registers the result (replacing any
  /// same-named view). Statistics are computed at materialization time.
  Status Materialize(const ViewDef& def, const Document& doc);

  /// Registers an externally produced extent.
  Status Add(ViewDef def, Table extent);

  const StoredView* Find(const std::string& name) const;

  /// Total serialized size of all extents — the advisor's budget currency.
  int64_t TotalBytes() const;

  /// Writes manifest, extents and statistics under dir().
  Status Save() const;

  /// Replaces the catalog contents with the store at dir(). `doc` rebinds
  /// content references (may be nullptr when no view stores content).
  Status Load(const Document* doc);

  /// Executor bindings for the stored extents (borrowed pointers; valid
  /// while the catalog outlives the returned object and is not mutated).
  Catalog ExecutorCatalog() const;

  /// Cost model over all registered views' statistics.
  CostModel BuildCostModel() const;

 private:
  std::string dir_;
  std::vector<std::unique_ptr<StoredView>> views_;  // stable addresses
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_VIEW_CATALOG_H_
