// Persistent materialized-view store (cf. the pequod cache server): a
// catalog of view definitions with their materialized extents and
// statistics, serialized to a store directory and reloaded on startup.
//
// On-disk layout under the store directory:
//   manifest.txt          "svx-viewstore 1", then one "view <name> <pattern>"
//                         line per view (ParsePattern syntax)
//   <name>.extent         binary extent (see extent_io.h)
//   <name>.stats          text statistics (see statistics.h)
#ifndef SVX_VIEWSTORE_VIEW_CATALOG_H_
#define SVX_VIEWSTORE_VIEW_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/executor.h"
#include "src/containment/memo.h"
#include "src/rewriting/view.h"
#include "src/util/status.h"
#include "src/viewstore/cost_model.h"
#include "src/viewstore/rewrite_cache.h"
#include "src/viewstore/statistics.h"
#include "src/xml/update.h"

namespace svx {

/// What one ApplyUpdate pass did, per catalog.
struct MaintenanceStats {
  int32_t views_touched = 0;    // views whose extent changed
  int32_t views_rebuilt = 0;    // fell back to full rematerialization
  int64_t tuples_inserted = 0;  // across all incremental deltas
  int64_t tuples_deleted = 0;
};

/// One catalog entry: definition, extent, statistics, serialized size.
struct StoredView {
  ViewDef def;
  Table extent;
  ViewStats stats;
  int64_t extent_bytes = 0;  // serialized extent size
};

/// A set of materialized views backed by a store directory.
class ViewCatalog {
 public:
  ViewCatalog() = default;
  /// `dir` is created on Save() if missing.
  explicit ViewCatalog(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  int32_t size() const { return static_cast<int32_t>(views_.size()); }
  const std::vector<std::unique_ptr<StoredView>>& views() const {
    return views_;
  }

  /// Evaluates `def` over `doc` and registers the result (replacing any
  /// same-named view). Statistics are computed at materialization time.
  Status Materialize(const ViewDef& def, const Document& doc);

  /// Registers an externally produced extent. Rows are brought into the
  /// canonical extent order (Table::SortRowsCanonical), so equal extents
  /// are stored byte-identically however they were produced.
  Status Add(ViewDef def, Table extent);

  /// Maintains every stored extent under a document update: computes a
  /// tuple-level delta per view (src/maintenance/), applies it — falling
  /// back to rematerialization when incremental evaluation does not
  /// apply — rebinds stored content references to delta.new_doc, refreshes
  /// statistics incrementally, and, when the catalog has a store
  /// directory, persists the result. Afterwards every extent is
  /// byte-identical to a fresh materialization over delta.new_doc.
  Status ApplyUpdate(const DocumentDelta& delta,
                     MaintenanceStats* out_stats = nullptr);

  /// Removes the named view from the catalog (files are swept on the next
  /// Save()). NotFound when no such view is registered.
  Status Drop(const std::string& name);

  const StoredView* Find(const std::string& name) const;

  /// Total serialized size of all extents — the advisor's budget currency.
  int64_t TotalBytes() const;

  /// Cache of ranked rewrite results keyed by canonical query text
  /// (src/viewstore/rewrite_cache.h). Invalidated by every catalog
  /// mutation: Materialize / Add / Drop / ApplyUpdate / Load.
  RewriteCache* rewrite_cache() const { return &rewrite_cache_; }

  /// Containment memo pinned across Rewrite() calls against this catalog's
  /// document (pass as RewriterOptions::memo). Cleared whenever the
  /// document — and hence the summary — may change (ApplyUpdate / Load).
  ContainmentMemo* containment_memo() const { return &containment_memo_; }

  /// Writes manifest, extents and statistics under dir(). Crash-safe:
  /// every file is written to a temp name and renamed into place, with the
  /// manifest renamed last — an interrupted save leaves the previous
  /// manifest pointing at the previous (still present) files. Extent/stats
  /// files no longer referenced by the manifest (replaced or dropped
  /// views, stale temps) are swept afterwards.
  Status Save() const;

  /// Replaces the catalog contents with the store at dir(). `doc` rebinds
  /// content references (may be nullptr when no view stores content).
  Status Load(const Document* doc);

  /// Executor bindings for the stored extents (borrowed pointers; valid
  /// while the catalog outlives the returned object and is not mutated).
  Catalog ExecutorCatalog() const;

  /// Cost model over all registered views' statistics.
  CostModel BuildCostModel() const;

 private:
  std::string dir_;
  std::vector<std::unique_ptr<StoredView>> views_;  // stable addresses
  mutable RewriteCache rewrite_cache_;
  mutable ContainmentMemo containment_memo_;
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_VIEW_CATALOG_H_
