// Per-view extent statistics, computed at materialization time and persisted
// alongside the extent (cf. rdf3x's StatisticsSegment): row counts, per-column
// non-null and exact distinct counts, value-length / id-depth bounds, and
// nested-table row totals. The CostModel turns these into cardinality and
// cost estimates for candidate rewritings.
#ifndef SVX_VIEWSTORE_STATISTICS_H_
#define SVX_VIEWSTORE_STATISTICS_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/algebra/columnar.h"
#include "src/algebra/relation.h"
#include "src/util/status.h"

namespace svx {

/// Statistics for one extent column.
struct ColumnStats {
  std::string name;
  int64_t non_null = 0;
  int64_t distinct = 0;  // exact, over non-null values (deep for nested)
  /// For strings: byte length; for ids and content references: node depth;
  /// for nested tables: rows per group. 0/0 when the column is all-⊥.
  int64_t min_len = 0;
  int64_t max_len = 0;
  /// Total rows across all nested-table values (0 for scalar columns).
  int64_t nested_rows = 0;

  bool operator==(const ColumnStats&) const = default;
};

/// Statistics for one view extent.
struct ViewStats {
  int64_t num_rows = 0;
  /// Schema columns in order; each nested column is followed by aggregate
  /// stats for its inner columns (across all groups).
  std::vector<ColumnStats> columns;

  const ColumnStats* Find(const std::string& name) const;

  bool operator==(const ViewStats&) const = default;
};

/// Scans `extent` once and computes exact statistics.
ViewStats ComputeViewStats(const Table& extent);

/// Computes the same statistics straight from a compressed columnar extent:
/// dictionary columns read distinct/length bounds off the dictionary and
/// never touch row values; nested columns take group counts from the offset
/// index and recurse into the shared child extent; only id, content, raw
/// and nested-group-distinct passes decode their one column. `doc` is
/// needed only when a raw chunk holds content references (columnar.h); a
/// content reference that does not resolve in `doc` is a programming error
/// (callers validate resolution first, ForEachContentId). Result is exactly
/// ComputeViewStats(decoded table).
ViewStats ComputeViewStats(const ColumnarExtent& extent, const Document* doc);

/// Refreshes `stats` to describe `extent` after a tuple delta was applied
/// by incremental view maintenance. With no deleted rows, the additive
/// counters (row count, non-null, nested totals, length bounds) are
/// updated from the inserted tuples in O(|delta|) and only the exact
/// distinct counts are re-derived with a column scan; a delete forces a
/// full recomputation (distinct counts and length bounds cannot shrink
/// incrementally). The result always equals ComputeViewStats(extent).
ViewStats RefreshViewStats(const ViewStats& stats, const Table& extent,
                           int64_t deleted_rows,
                           const std::vector<Tuple>& inserted);

/// Per-column multiset indexes over one extent: for every stats column
/// (ComputeViewStats emission order, nested columns flattened) the exact
/// count of each distinct encoded value and of each value length. They make
/// every ViewStats counter — including distinct counts and length bounds,
/// which are not incrementally maintainable from the stats alone —
/// refreshable in O(|delta| log) per tuple delta, where RefreshViewStats
/// has to rescan whole columns.
struct ValueCountCache {
  struct Column {
    /// Encoded value (extent_io EncodeValue) → multiplicity. Its size is
    /// the column's exact distinct count.
    std::unordered_map<std::string, int64_t> values;
    /// Value length (ValueLength measure of statistics.cc) → multiplicity.
    /// Ordered, so min/max length are the first/last key.
    std::map<int64_t, int64_t> lengths;
  };
  std::vector<Column> columns;
};

/// Scans `extent` once and builds its value-count cache (same cost class as
/// ComputeViewStats).
ValueCountCache BuildValueCounts(const Table& extent);

/// Refreshes `stats` through `cache` after incremental maintenance removed
/// the tuples `deleted` and appended the tuples `inserted`: both the cache
/// and the returned stats are updated in O((|deleted|+|inserted|) log)
/// without touching the extent. `schema` is the extent's schema; `stats`
/// and `cache` must describe the pre-delta extent. Afterwards both equal a
/// full recomputation over the post-delta extent.
ViewStats RefreshViewStatsCached(const ViewStats& stats, const Schema& schema,
                                 ValueCountCache* cache,
                                 const std::vector<Tuple>& deleted,
                                 const std::vector<Tuple>& inserted);

/// Line-based text serialization, round-trippable:
///   rows <n>
///   col <name> <non_null> <distinct> <min_len> <max_len> <nested_rows>
std::string ViewStatsToString(const ViewStats& stats);
[[nodiscard]] Result<ViewStats> ParseViewStats(std::string_view text);

}  // namespace svx

#endif  // SVX_VIEWSTORE_STATISTICS_H_
