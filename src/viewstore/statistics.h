// Per-view extent statistics, computed at materialization time and persisted
// alongside the extent (cf. rdf3x's StatisticsSegment): row counts, per-column
// non-null and exact distinct counts, value-length / id-depth bounds, and
// nested-table row totals. The CostModel turns these into cardinality and
// cost estimates for candidate rewritings.
#ifndef SVX_VIEWSTORE_STATISTICS_H_
#define SVX_VIEWSTORE_STATISTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/algebra/relation.h"
#include "src/util/status.h"

namespace svx {

/// Statistics for one extent column.
struct ColumnStats {
  std::string name;
  int64_t non_null = 0;
  int64_t distinct = 0;  // exact, over non-null values (deep for nested)
  /// For strings: byte length; for ids and content references: node depth;
  /// for nested tables: rows per group. 0/0 when the column is all-⊥.
  int64_t min_len = 0;
  int64_t max_len = 0;
  /// Total rows across all nested-table values (0 for scalar columns).
  int64_t nested_rows = 0;

  bool operator==(const ColumnStats&) const = default;
};

/// Statistics for one view extent.
struct ViewStats {
  int64_t num_rows = 0;
  /// Schema columns in order; each nested column is followed by aggregate
  /// stats for its inner columns (across all groups).
  std::vector<ColumnStats> columns;

  const ColumnStats* Find(const std::string& name) const;

  bool operator==(const ViewStats&) const = default;
};

/// Scans `extent` once and computes exact statistics.
ViewStats ComputeViewStats(const Table& extent);

/// Refreshes `stats` to describe `extent` after a tuple delta was applied
/// by incremental view maintenance. With no deleted rows, the additive
/// counters (row count, non-null, nested totals, length bounds) are
/// updated from the inserted tuples in O(|delta|) and only the exact
/// distinct counts are re-derived with a column scan; a delete forces a
/// full recomputation (distinct counts and length bounds cannot shrink
/// incrementally). The result always equals ComputeViewStats(extent).
ViewStats RefreshViewStats(const ViewStats& stats, const Table& extent,
                           int64_t deleted_rows,
                           const std::vector<Tuple>& inserted);

/// Line-based text serialization, round-trippable:
///   rows <n>
///   col <name> <non_null> <distinct> <min_len> <max_len> <nested_rows>
std::string ViewStatsToString(const ViewStats& stats);
Result<ViewStats> ParseViewStats(std::string_view text);

}  // namespace svx

#endif  // SVX_VIEWSTORE_STATISTICS_H_
