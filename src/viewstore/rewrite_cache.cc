#include "src/viewstore/rewrite_cache.h"

#include "src/observability/metrics.h"
#include "src/observability/trace.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/cost_model.h"

namespace svx {

namespace {

std::vector<Rewriting> CloneRewritings(const std::vector<Rewriting>& rws) {
  std::vector<Rewriting> out;
  out.reserve(rws.size());
  for (const Rewriting& r : rws) {
    out.push_back({r.plan->Clone(), r.compact, r.est_cost});
  }
  return out;
}

}  // namespace

std::string RewriteCache::KeyFor(const Pattern& q) {
  return PatternToString(q);
}

bool RewriteCache::Lookup(const std::string& key, std::vector<Rewriting>* out,
                          RewriteStats* stats) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    metrics::RewriteCacheMisses()->Add(1);
    return false;
  }
  ++hits_;
  metrics::RewriteCacheHits()->Add(1);
  *out = CloneRewritings(it->second.rewritings);
  if (stats != nullptr) {
    // Replay the search counters the entry cost when it was computed; the
    // caller overwrites the timing fields with the (warm) lookup time.
    const RewriteStats& s = it->second.stats;
    stats->views_total = s.views_total;
    stats->views_kept = s.views_kept;
    stats->candidates_built = s.candidates_built;
    stats->join_candidates = s.join_candidates;
    stats->equivalence_tests = s.equivalence_tests;
    stats->candidates_pruned = s.candidates_pruned;
    stats->containment_memo_hits = s.containment_memo_hits;
    stats->containment_memo_misses = s.containment_memo_misses;
    stats->results = s.results;
    stats->cheapest_cost = s.cheapest_cost;
    stats->costliest_cost = s.costliest_cost;
    stats->plans_generated = s.plans_generated;
    stats->plans_dominated = s.plans_dominated;
    stats->plans_retained = s.plans_retained;
    // Truncated searches are never cached (see CachedRewrite), so a hit is
    // always a complete search.
    stats->search_truncated = false;
  }
  return true;
}

void RewriteCache::Insert(const std::string& key,
                          const std::vector<Rewriting>& rewritings,
                          const RewriteStats* stats) {
  Entry entry;
  entry.rewritings = CloneRewritings(rewritings);
  if (stats != nullptr) entry.stats = *stats;
  MutexLock lock(&mu_);
  if (entries_.size() >= max_entries && entries_.find(key) == entries_.end()) {
    entries_.clear();
  }
  entries_[key] = std::move(entry);
}

void RewriteCache::Invalidate() {
  MutexLock lock(&mu_);
  if (!entries_.empty()) ++invalidations_;
  entries_.clear();
}

void RewriteCache::CarryCountersFrom(const RewriteCache& prior) {
  TwoMutexLock lock(&mu_, &prior.mu_);
  hits_ = prior.hits_;
  misses_ = prior.misses_;
  invalidations_ = prior.invalidations_ + (prior.entries_.empty() ? 0 : 1);
}

size_t RewriteCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

size_t RewriteCache::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

size_t RewriteCache::misses() const {
  MutexLock lock(&mu_);
  return misses_;
}

size_t RewriteCache::invalidations() const {
  MutexLock lock(&mu_);
  return invalidations_;
}

Result<std::vector<Rewriting>> CachedRewrite(RewriteCache* cache,
                                             Rewriter* rewriter,
                                             const Pattern& q,
                                             RewriteStats* stats) {
  if (cache == nullptr) return rewriter->Rewrite(q, stats);
  Timer timer;
  // The ranked list depends on the rewriter's configuration and view set,
  // not just the query — salt the key with every result-affecting option so
  // rewriters with different configurations sharing one catalog cache do
  // not serve each other mismatched plans. Distinct cost models or view
  // sets of equal size are not distinguished; don't share a catalog across
  // those.
  const RewriterOptions& o = rewriter->options();
  const ExpansionOptions& e = o.expansion;
  const ContainmentOptions& c = o.containment;
  // Plan choice depends on the effective cost constants, so the salt
  // carries the model's fingerprint (not just its presence) plus the
  // enumeration strategy.
  const uint64_t model_fp =
      o.cost_model != nullptr
          ? CostConstantsFingerprint(o.cost_model->constants,
                                     o.cost_model->default_rows)
          : 0;
  std::string key = StrFormat(
      "%s|r%zu.v%d.p%d.c%zu.pc%zu.a%zu.u%zu.up%zu.%d%d%d%d.m%llx.dp%d"
      "|e%zu.%zu.%d.%d.%d.%d|k%d.%d.%zu.%zu.%zu.%d",
      RewriteCache::KeyFor(q).c_str(), o.max_results, rewriter->num_views(),
      o.max_plan_views, o.max_candidates, o.max_pieces, o.max_assignments,
      o.max_union_size, o.max_union_partials, o.prune_views ? 1 : 0,
      o.prune_same_pattern ? 1 : 0, o.stop_at_first ? 1 : 0,
      o.use_view_index ? 1 : 0,
      static_cast<unsigned long long>(model_fp),  // NOLINT(runtime/int)
      o.use_dp_enumeration ? 1 : 0,
      e.max_embeddings, e.max_pieces, e.max_strengthen_edges,
      e.unfold_content ? 1 : 0, e.add_virtual_ids ? 1 : 0,
      e.max_virtual_depth, c.use_one_to_one_relaxation ? 1 : 0,
      c.model.use_strong_edges ? 1 : 0, c.model.max_embeddings,
      c.model.max_trees, c.max_grid_points, c.model.max_optional_edges);
  std::vector<Rewriting> cached;
  bool hit;
  {
    ScopedSpan span(rewriter->options().trace, "cache-lookup");
    hit = cache->Lookup(key, &cached, stats);
    span.Attr("hit", hit ? "true" : "false");
  }
  if (hit) {
    if (stats != nullptr) {
      stats->rewrite_cache_hits = 1;
      stats->results = cached.size();  // authoritative even for entries
                                       // inserted without stats
      stats->first_ms = timer.ElapsedMillis();
      stats->total_ms = timer.ElapsedMillis();
    }
    return cached;
  }
  RewriteStats local_stats;
  RewriteStats* effective = stats != nullptr ? stats : &local_stats;
  Result<std::vector<Rewriting>> fresh = rewriter->Rewrite(q, effective);
  // A time-budget-truncated search is load-dependent, and a budget-truncated
  // search (search_truncated: a candidate overflowed the merged-piece cap)
  // dropped plans it never examined; caching either would pin a transiently
  // inferior (possibly empty) plan list until the next catalog mutation.
  if (fresh.ok() && !effective->time_budget_hit &&
      !effective->search_truncated) {
    cache->Insert(key, *fresh, effective);
  }
  return fresh;
}

}  // namespace svx
