#include "src/viewstore/view_catalog.h"

#include <filesystem>

#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/fileio.h"
#include "src/util/strings.h"
#include "src/viewstore/extent_io.h"

namespace svx {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestHeader = "svx-viewstore 1";

bool SafeName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    // '@' and '#' appear in attribute/text labels ("B3_@category") and are
    // plain filename characters on POSIX.
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
              c == '@' || c == '#';
    if (!ok) return false;
  }
  return name[0] != '.';
}

}  // namespace

Status ViewCatalog::Materialize(const ViewDef& def, const Document& doc) {
  return Add(def, MaterializeView(def.pattern, def.name, doc));
}

Status ViewCatalog::Add(ViewDef def, Table extent) {
  if (!SafeName(def.name)) {
    return Status::InvalidArgument("view name not storable: " + def.name);
  }
  // The extent format cannot represent rows without columns; reject them
  // here so Save()/Load() round-trips everything this catalog accepts.
  if (extent.schema().size() == 0 && extent.NumRows() > 0) {
    return Status::InvalidArgument(
        "zero-column extent with rows is not storable: " + def.name);
  }
  auto stored = std::make_unique<StoredView>();
  stored->stats = ComputeViewStats(extent);
  stored->extent_bytes = ExtentByteSize(extent);
  stored->def = std::move(def);
  stored->extent = std::move(extent);
  for (auto& v : views_) {
    if (v->def.name == stored->def.name) {
      v = std::move(stored);
      return Status::OK();
    }
  }
  views_.push_back(std::move(stored));
  return Status::OK();
}

const StoredView* ViewCatalog::Find(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

int64_t ViewCatalog::TotalBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->extent_bytes;
  return total;
}

Status ViewCatalog::Save() const {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + dir_ + ": " +
                            ec.message());
  }
  std::string manifest(kManifestHeader);
  manifest.push_back('\n');
  for (const auto& v : views_) {
    manifest += StrFormat("view %s %s\n", v->def.name.c_str(),
                          PatternToString(v->def.pattern).c_str());
    Status s = WriteExtentFile(
        (fs::path(dir_) / (v->def.name + ".extent")).string(), v->extent);
    if (!s.ok()) return s;
    s = WriteFileBytes((fs::path(dir_) / (v->def.name + ".stats")).string(),
                      ViewStatsToString(v->stats));
    if (!s.ok()) return s;
  }
  return WriteFileBytes((fs::path(dir_) / "manifest.txt").string(), manifest);
}

Status ViewCatalog::Load(const Document* doc) {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  Result<std::string> manifest =
      ReadFileBytes((fs::path(dir_) / "manifest.txt").string());
  if (!manifest.ok()) return manifest.status();

  std::vector<std::unique_ptr<StoredView>> loaded;
  bool saw_header = false;
  for (const std::string& raw : Split(*manifest, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kManifestHeader) {
        return Status::ParseError("bad manifest header: " + raw);
      }
      saw_header = true;
      continue;
    }
    if (!StartsWith(line, "view ")) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    std::string_view rest = line.substr(5);
    size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    auto stored = std::make_unique<StoredView>();
    stored->def.name = std::string(rest.substr(0, space));
    if (!SafeName(stored->def.name)) {
      return Status::ParseError("unsafe view name in manifest: " + raw);
    }
    Result<Pattern> pattern = ParsePattern(rest.substr(space + 1));
    if (!pattern.ok()) return pattern.status();
    stored->def.pattern = std::move(*pattern);

    fs::path extent_path = fs::path(dir_) / (stored->def.name + ".extent");
    Result<Table> extent = ReadExtentFile(extent_path.string(), doc);
    if (!extent.ok()) return extent.status();
    stored->extent = std::move(*extent);
    // The file we just parsed is the serialized form; its size is the
    // extent's byte size (fall back to recomputing on a stat error).
    std::error_code size_ec;
    uintmax_t file_size = fs::file_size(extent_path, size_ec);
    stored->extent_bytes = size_ec ? ExtentByteSize(stored->extent)
                                   : static_cast<int64_t>(file_size);

    Result<std::string> stats_text =
        ReadFileBytes((fs::path(dir_) / (stored->def.name + ".stats")).string());
    if (!stats_text.ok()) return stats_text.status();
    Result<ViewStats> stats = ParseViewStats(*stats_text);
    if (!stats.ok()) return stats.status();
    stored->stats = std::move(*stats);

    loaded.push_back(std::move(stored));
  }
  if (!saw_header) return Status::ParseError("empty manifest");
  views_ = std::move(loaded);
  return Status::OK();
}

Catalog ViewCatalog::ExecutorCatalog() const {
  Catalog catalog;
  for (const auto& v : views_) catalog.Register(v->def.name, &v->extent);
  return catalog;
}

CostModel ViewCatalog::BuildCostModel() const {
  CostModel model;
  for (const auto& v : views_) model.AddViewStats(v->def.name, v->stats);
  return model;
}

}  // namespace svx
