#include "src/viewstore/view_catalog.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "src/maintenance/delta_evaluator.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/fileio.h"
#include "src/util/strings.h"
#include "src/viewstore/extent_io.h"

namespace svx {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestHeader = "svx-viewstore 1";

bool SafeName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    // '@' and '#' appear in attribute/text labels ("B3_@category") and are
    // plain filename characters on POSIX.
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
              c == '@' || c == '#';
    if (!ok) return false;
  }
  return name[0] != '.';
}

bool SchemaHasContent(const Schema& schema) {
  for (const ColumnSpec& c : schema.columns()) {
    if (c.kind == ColumnKind::kContent) return true;
    if (c.nested != nullptr && SchemaHasContent(*c.nested)) return true;
  }
  return false;
}

/// Writes `bytes` to `path` via a temp file + rename, so readers (and
/// crash recovery) never observe a half-written file.
Status WriteFileAtomic(const fs::path& path, std::string_view bytes) {
  fs::path tmp = path;
  tmp += ".tmp";
  Status s = WriteFileBytes(tmp.string(), bytes);
  if (!s.ok()) return s;
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename " + tmp.string() + ": " +
                            ec.message());
  }
  return Status::OK();
}

}  // namespace

Status ViewCatalog::Materialize(const ViewDef& def, const Document& doc) {
  return Add(def, MaterializeView(def.pattern, def.name, doc));
}

Status ViewCatalog::Add(ViewDef def, Table extent) {
  if (!SafeName(def.name)) {
    return Status::InvalidArgument("view name not storable: " + def.name);
  }
  // The view set changes: cached rewrite plans may miss (or wrongly keep
  // using) this view. The containment memo only depends on the summary and
  // stays valid.
  rewrite_cache_.Invalidate();
  // The extent format cannot represent rows without columns; reject them
  // here so Save()/Load() round-trips everything this catalog accepts.
  if (extent.schema().size() == 0 && extent.NumRows() > 0) {
    return Status::InvalidArgument(
        "zero-column extent with rows is not storable: " + def.name);
  }
  extent.SortRowsCanonical();
  auto stored = std::make_unique<StoredView>();
  stored->stats = ComputeViewStats(extent);
  stored->extent_bytes = ExtentByteSize(extent);
  stored->def = std::move(def);
  stored->extent = std::move(extent);
  for (auto& v : views_) {
    if (v->def.name == stored->def.name) {
      v = std::move(stored);
      return Status::OK();
    }
  }
  views_.push_back(std::move(stored));
  return Status::OK();
}

Status ViewCatalog::Drop(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->def.name == name) {
      views_.erase(it);
      rewrite_cache_.Invalidate();
      return Status::OK();
    }
  }
  return Status::NotFound("no such view: " + name);
}

const StoredView* ViewCatalog::Find(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

int64_t ViewCatalog::TotalBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->extent_bytes;
  return total;
}

Status ViewCatalog::Save() const {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + dir_ + ": " +
                            ec.message());
  }
  // Extents and stats first (each atomically), the manifest last: a crash
  // anywhere mid-save leaves the previous manifest referencing only files
  // that are still fully present.
  std::string manifest(kManifestHeader);
  manifest.push_back('\n');
  for (const auto& v : views_) {
    manifest += StrFormat("view %s %s\n", v->def.name.c_str(),
                          PatternToString(v->def.pattern).c_str());
    Status s = WriteFileAtomic(fs::path(dir_) / (v->def.name + ".extent"),
                               SerializeExtent(v->extent));
    if (!s.ok()) return s;
    s = WriteFileAtomic(fs::path(dir_) / (v->def.name + ".stats"),
                        ViewStatsToString(v->stats));
    if (!s.ok()) return s;
  }
  Status s = WriteFileAtomic(fs::path(dir_) / "manifest.txt", manifest);
  if (!s.ok()) return s;

  // Sweep files the new manifest does not reference: extents/stats of
  // replaced or dropped views and temp files of interrupted saves.
  std::unordered_set<std::string> live{"manifest.txt"};
  for (const auto& v : views_) {
    live.insert(v->def.name + ".extent");
    live.insert(v->def.name + ".stats");
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;  // best-effort
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    std::string ext = entry.path().extension().string();
    if (ext != ".extent" && ext != ".stats" && ext != ".tmp") continue;
    if (live.count(name) != 0) continue;
    std::error_code remove_ec;
    fs::remove(entry.path(), remove_ec);
  }
  return Status::OK();
}

Status ViewCatalog::ApplyUpdate(const DocumentDelta& delta,
                                MaintenanceStats* out_stats) {
  if (delta.old_doc == nullptr || delta.new_doc == nullptr) {
    return Status::InvalidArgument("document delta without documents");
  }
  // The document changes: cached plans were ranked against stale statistics
  // and the memo's decisions were made against the old summary.
  rewrite_cache_.Invalidate();
  containment_memo_.Clear();
  MaintenanceStats ms;
  std::vector<const StoredView*> dirty;
  for (auto& v : views_) {
    auto rebuild = [&]() {
      Table extent =
          MaterializeView(v->def.pattern, v->def.name, *delta.new_doc);
      extent.SortRowsCanonical();
      v->stats = ComputeViewStats(extent);
      v->extent = std::move(extent);
      v->extent_bytes = ExtentByteSize(v->extent);
      ++ms.views_rebuilt;
      ++ms.views_touched;
      dirty.push_back(v.get());
    };
    TableDelta td =
        ComputeViewDelta(v->def.pattern, v->def.name, v->extent, delta);
    if (td.full_rebuild) {
      rebuild();
      continue;
    }
    // Apply the delta in place: remove by key, rebind survivors' content
    // references to the new document (ORDPATH stability makes this a pure
    // re-lookup — and it is needed even with an empty delta, since the old
    // document may be destroyed after this call), append inserts, restore
    // the canonical order. Byte sizes track per-tuple cell sizes (rows
    // carry no per-row header), so the recorded size stays exact without a
    // full recount.
    std::vector<Tuple>& rows = v->extent.mutable_rows();
    int64_t deleted = 0;
    if (!td.delete_rows.empty()) {
      // The delta was computed against this very extent, so dropping by
      // row index avoids re-encoding the whole extent for key matching.
      size_t next_delete = 0;
      size_t out = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (next_delete < td.delete_rows.size() &&
            static_cast<int64_t>(i) == td.delete_rows[next_delete]) {
          v->extent_bytes -= TupleByteSize(rows[i]);
          ++deleted;
          ++next_delete;
          continue;
        }
        if (out != i) rows[out] = std::move(rows[i]);
        ++out;
      }
      rows.resize(out);
    }
    if (SchemaHasContent(v->extent.schema())) {
      bool rebound = true;
      for (Tuple& row : rows) {
        if (!RebindTupleContent(&row, *delta.new_doc).ok()) {
          // A stored reference did not survive as expected; rather than
          // leave this view half-patched (and pointing into old_doc),
          // rebuild it from the new document.
          rebound = false;
          break;
        }
      }
      if (!rebound) {
        rebuild();
        continue;
      }
    }
    for (const Tuple& t : td.inserts) {
      v->extent_bytes += TupleByteSize(t);
      rows.push_back(t);
    }
    if (deleted > 0 || !td.inserts.empty()) {
      v->stats = RefreshViewStats(v->stats, v->extent, deleted, td.inserts);
      v->extent.SortRowsCanonical();
      ++ms.views_touched;
      dirty.push_back(v.get());
    }
    ms.tuples_deleted += deleted;
    ms.tuples_inserted += static_cast<int64_t>(td.inserts.size());
  }
  if (out_stats != nullptr) *out_stats = ms;
  if (dir_.empty()) return Status::OK();

  // Persist incrementally: the views whose extent changed — plus any view
  // whose files are not on disk yet (the catalog may never have been
  // saved) — then the manifest, which must reference only present files.
  // No sweep needed: file names are unchanged.
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + dir_ + ": " +
                            ec.message());
  }
  std::unordered_set<const StoredView*> dirty_set(dirty.begin(), dirty.end());
  for (const auto& v : views_) {
    fs::path extent_path = fs::path(dir_) / (v->def.name + ".extent");
    fs::path stats_path = fs::path(dir_) / (v->def.name + ".stats");
    if (dirty_set.count(v.get()) == 0 && fs::exists(extent_path) &&
        fs::exists(stats_path)) {
      continue;
    }
    Status s = WriteFileAtomic(extent_path, SerializeExtent(v->extent));
    if (!s.ok()) return s;
    s = WriteFileAtomic(stats_path, ViewStatsToString(v->stats));
    if (!s.ok()) return s;
  }
  std::string manifest(kManifestHeader);
  manifest.push_back('\n');
  for (const auto& v : views_) {
    manifest += StrFormat("view %s %s\n", v->def.name.c_str(),
                          PatternToString(v->def.pattern).c_str());
  }
  return WriteFileAtomic(fs::path(dir_) / "manifest.txt", manifest);
}

Status ViewCatalog::Load(const Document* doc) {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  Result<std::string> manifest =
      ReadFileBytes((fs::path(dir_) / "manifest.txt").string());
  if (!manifest.ok()) return manifest.status();

  std::vector<std::unique_ptr<StoredView>> loaded;
  bool saw_header = false;
  for (const std::string& raw : Split(*manifest, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kManifestHeader) {
        return Status::ParseError("bad manifest header: " + raw);
      }
      saw_header = true;
      continue;
    }
    if (!StartsWith(line, "view ")) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    std::string_view rest = line.substr(5);
    size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    auto stored = std::make_unique<StoredView>();
    stored->def.name = std::string(rest.substr(0, space));
    if (!SafeName(stored->def.name)) {
      return Status::ParseError("unsafe view name in manifest: " + raw);
    }
    Result<Pattern> pattern = ParsePattern(rest.substr(space + 1));
    if (!pattern.ok()) return pattern.status();
    stored->def.pattern = std::move(*pattern);

    fs::path extent_path = fs::path(dir_) / (stored->def.name + ".extent");
    Result<Table> extent = ReadExtentFile(extent_path.string(), doc);
    if (!extent.ok()) return extent.status();
    stored->extent = std::move(*extent);
    // The file we just parsed is the serialized form; its size is the
    // extent's byte size (fall back to recomputing on a stat error).
    std::error_code size_ec;
    uintmax_t file_size = fs::file_size(extent_path, size_ec);
    stored->extent_bytes = size_ec ? ExtentByteSize(stored->extent)
                                   : static_cast<int64_t>(file_size);

    Result<std::string> stats_text =
        ReadFileBytes((fs::path(dir_) / (stored->def.name + ".stats")).string());
    if (!stats_text.ok()) return stats_text.status();
    Result<ViewStats> stats = ParseViewStats(*stats_text);
    if (!stats.ok()) return stats.status();
    stored->stats = std::move(*stats);

    loaded.push_back(std::move(stored));
  }
  if (!saw_header) return Status::ParseError("empty manifest");
  views_ = std::move(loaded);
  rewrite_cache_.Invalidate();
  containment_memo_.Clear();
  return Status::OK();
}

Catalog ViewCatalog::ExecutorCatalog() const {
  Catalog catalog;
  for (const auto& v : views_) catalog.Register(v->def.name, &v->extent);
  return catalog;
}

CostModel ViewCatalog::BuildCostModel() const {
  CostModel model;
  for (const auto& v : views_) model.AddViewStats(v->def.name, v->stats);
  return model;
}

}  // namespace svx
