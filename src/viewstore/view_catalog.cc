#include "src/viewstore/view_catalog.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/maintenance/delta_evaluator.h"
#include "src/pattern/pattern_parser.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/check.h"
#include "src/util/fileio.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"
#include "src/util/timer.h"
#include "src/viewstore/extent_io.h"

namespace svx {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestHeaderV1 = "svx-viewstore 1";
constexpr std::string_view kManifestHeaderV2 = "svx-viewstore 2";
constexpr std::string_view kManifestHeaderV3 = "svx-viewstore 3";

bool SafeName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    // '@' and '#' appear in attribute/text labels ("B3_@category") and are
    // plain filename characters on POSIX.
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
              c == '@' || c == '#';
    if (!ok) return false;
  }
  return name[0] != '.';
}

/// Writes `bytes` to `path` via a temp file + rename, so readers (and
/// crash recovery) never observe a half-written file.
Status WriteFileAtomic(const fs::path& path, std::string_view bytes) {
  fs::path tmp = path;
  tmp += ".tmp";
  SVX_RETURN_IF_ERROR(WriteFileBytes(tmp.string(), bytes));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename " + tmp.string() + ": " +
                            ec.message());
  }
  return Status::OK();
}

std::string ExtentFileName(const StoredView& v) {
  return StrFormat("%s.%llu.extent", v.def.name.c_str(),
                   static_cast<unsigned long long>(v.generation));
}

std::string StatsFileName(const StoredView& v) {
  return StrFormat("%s.%llu.stats", v.def.name.c_str(),
                   static_cast<unsigned long long>(v.generation));
}

/// Removes every *.extent / *.stats / *.tmp file under `dir` that `live`
/// does not reference (replaced generations, dropped views, interrupted
/// temps). Best-effort.
void SweepUnreferenced(const std::string& dir,
                       const std::unordered_set<std::string>& live) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    std::string ext = entry.path().extension().string();
    if (ext != ".extent" && ext != ".stats" && ext != ".tmp") continue;
    if (live.count(name) != 0) continue;
    std::error_code remove_ec;
    fs::remove(entry.path(), remove_ec);
  }
}

std::unordered_set<std::string> LiveFileSet(
    const std::vector<std::shared_ptr<const StoredView>>& views) {
  std::unordered_set<std::string> live{"manifest.txt"};
  for (const auto& v : views) {
    live.insert(ExtentFileName(*v));
    live.insert(StatsFileName(*v));
  }
  return live;
}

/// The document any content reference in `table` points into (deep),
/// nullptr when content-free — what the columnar extent decodes against.
const Document* FindContentDoc(const Table& table) {
  for (const Tuple& row : table.rows()) {
    for (const Value& v : row) {
      if (v.IsContent()) return v.AsContent().doc;
      if (v.IsTable()) {
        const Document* d = FindContentDoc(v.AsTable());
        if (d != nullptr) return d;
      }
    }
  }
  return nullptr;
}

/// Installs `extent` as `sv`'s stored representation: encodes the columnar
/// truth (sharing chunks unchanged since `prev`, when given), installs the
/// decoded table resident against `budget`, and records the byte sizes.
/// `extent_bytes` is the row-major serialized size — callers either track
/// it incrementally or pass ExtentByteSize(extent).
void SetExtent(StoredView* sv, Table extent, int64_t extent_bytes,
               const ColumnarExtent* prev,
               const std::shared_ptr<MemoryBudget>& budget) {
  sv->extent_bytes = extent_bytes;
  sv->decode_doc = FindContentDoc(extent);
  auto columnar = std::make_shared<ColumnarExtent>(
      prev != nullptr ? ColumnarExtent::EncodeSharing(extent, *prev)
                      : ColumnarExtent::Encode(extent));
  sv->compressed_bytes = columnar->SerializedByteSize();
  sv->columnar = std::move(columnar);
  sv->residency = std::make_shared<ExtentResidency>(budget);
  sv->residency->SetCompressedBytes(sv->compressed_bytes);
  sv->InstallResident(std::make_shared<Table>(std::move(extent)));
}

}  // namespace

ViewCatalog::ViewCatalog() : ViewCatalog(std::string()) {}

ViewCatalog::ViewCatalog(std::string dir)
    : ViewCatalog([&] {
        ViewCatalogOptions o;
        o.dir = std::move(dir);
        return o;
      }()) {}

ViewCatalog::ViewCatalog(ViewCatalogOptions options)
    : dir_(std::move(options.dir)),
      enable_delta_log_(options.enable_delta_log && !dir_.empty()),
      budget_(options.memory_budget != nullptr
                  ? std::move(options.memory_budget)
                  : std::make_shared<MemoryBudget>(
                        options.memory_budget_bytes)) {
  if (!dir_.empty()) {
    // Best effort: a missing or stale profile just keeps the baked fit.
    LoadCostProfile((fs::path(dir_) / "cost_profile.txt").string(),
                    &cost_constants_);
  }
  // NOLINTNEXTLINE(modernize-make-shared): private ctor, friend-only access.
  auto initial = std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot());
  initial->epoch_ = next_epoch_++;
  initial->rewrite_cache_ = std::make_shared<RewriteCache>();
  initial->memo_ = std::make_shared<ContainmentMemo>();
  snapshot_ = std::move(initial);
}

void ViewCatalog::SetExtentPartition(
    std::shared_ptr<const ExtentPartition> partition) {
  MutexLock lock(&writer_mu_);
  partition_ = std::move(partition);
}

void ViewCatalog::SetShardLabel(int shard) {
  shard_.store(shard, std::memory_order_relaxed);
  if (shard >= 0) {
    // Resolve the labeled handles once: the maintenance hot path only loads
    // these atomics, never touching the registry mutex.
    shard_passes_.store(
        metrics::ShardCounter("svx_maintenance_passes_total", shard,
                              "Maintenance passes applied to this shard."),
        std::memory_order_release);
    shard_deltas_.store(
        metrics::ShardCounter("svx_deltas_applied_total", shard,
                              "Document deltas folded into this shard."),
        std::memory_order_release);
    shard_epoch_age_.store(metrics::ShardEpochAgeUs(shard),
                           std::memory_order_release);
  } else {
    shard_passes_.store(nullptr, std::memory_order_release);
    shard_deltas_.store(nullptr, std::memory_order_release);
    shard_epoch_age_.store(nullptr, std::memory_order_release);
  }
}

void ViewCatalog::PublishLocked(
    std::vector<std::shared_ptr<const StoredView>> views,
    std::shared_ptr<const Document> doc,
    std::shared_ptr<const Summary> summary, bool doc_changed) {
  std::shared_ptr<const CatalogSnapshot> old = Current();
  // NOLINTNEXTLINE(modernize-make-shared): private ctor, friend-only access.
  auto snap = std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot());
  snap->epoch_ = next_epoch_++;
  snap->views_ = std::move(views);
  // A document change rebinds (even to null: the caller owns lifetimes
  // then); view-set-only mutations keep serving the same document.
  snap->doc_ = doc_changed ? std::move(doc) : old->doc_;
  snap->summary_ = doc_changed ? std::move(summary) : old->summary_;
  // A fresh cache per epoch is the invalidation: the successor can never
  // serve a plan ranked against the old view set or document.
  snap->rewrite_cache_ = std::make_shared<RewriteCache>();
  snap->rewrite_cache_->CarryCountersFrom(*old->rewrite_cache_);
  // Containment only depends on the summary: view-set mutations share the
  // memo, document changes replace it.
  snap->memo_ =
      doc_changed ? std::make_shared<ContainmentMemo>() : old->memo_;
  snap->cost_model_.constants = cost_constants_;
  for (const auto& v : snap->views_) {
    snap->cost_model_.AddViewStats(v->def.name, v->stats);
  }
  // The successor is complete; the exclusive side of the epoch lock is
  // held only for this swap. The displaced epoch is released outside the
  // lock — when the writer holds its last reference, retiring it tears
  // down extents (possibly a whole document), which must not block
  // readers.
  const uint64_t published_epoch = snap->epoch_;
  std::shared_ptr<const CatalogSnapshot> retired;
  {
    WriterMutexLock lock(&snapshot_mu_);
    retired = std::move(snapshot_);
    snapshot_ = std::move(snap);
  }
  metrics::EpochCurrent()->Set(static_cast<int64_t>(published_epoch));
  metrics::EpochPublishes()->Add(1);
}

void ViewCatalog::BindDocument(std::shared_ptr<const Document> doc,
                               std::shared_ptr<const Summary> summary) {
  MutexLock lock(&writer_mu_);
  PublishLocked(Current()->views(), std::move(doc), std::move(summary),
                /*doc_changed=*/true);
}

Status ViewCatalog::Materialize(const ViewDef& def, const Document& doc) {
  return Add(def, MaterializeView(def.pattern, def.name, doc));
}

Status ViewCatalog::Add(ViewDef def, Table extent) {
  if (!SafeName(def.name)) {
    return Status::InvalidArgument("view name not storable: " + def.name);
  }
  // The extent format cannot represent rows without columns; reject them
  // here so Save()/Load() round-trips everything this catalog accepts.
  if (extent.schema().size() == 0 && extent.NumRows() > 0) {
    return Status::InvalidArgument(
        "zero-column extent with rows is not storable: " + def.name);
  }
  MutexLock lock(&writer_mu_);
  if (partition_ != nullptr) partition_->Filter(def, &extent);
  extent.SortRowsCanonical();
  std::vector<std::shared_ptr<const StoredView>> next = Current()->views();
  // A replaced view's columnar extent seeds chunk sharing: re-adding an
  // equal extent keeps every column chunk (and its bytes) shared.
  const ColumnarExtent* prev = nullptr;
  for (const auto& v : next) {
    if (v->def.name == def.name) prev = v->columnar.get();
  }
  auto stored = std::make_shared<StoredView>();
  stored->def = std::move(def);
  const int64_t bytes = ExtentByteSize(extent);
  SetExtent(stored.get(), std::move(extent), bytes, prev, budget_);
  // Statistics come off the compressed chunks (dictionaries carry the
  // distinct counts and length bounds), not a row rescan.
  stored->stats = ComputeViewStats(*stored->columnar, stored->decode_doc);

  bool replaced = false;
  for (auto& v : next) {
    if (v->def.name == stored->def.name) {
      v = std::move(stored);
      replaced = true;
      break;
    }
  }
  if (!replaced) next.push_back(std::move(stored));
  PublishLocked(std::move(next), nullptr, nullptr, /*doc_changed=*/false);
  if (enable_delta_log_) {
    // A view-set mutation changes what WAL replay must resolve by name;
    // checkpoint immediately so no log record can ever reference a view
    // the persisted manifest does not know.
    std::shared_ptr<const CatalogSnapshot> cur = Current();
    return PersistLocked(cur->views(), cur->epoch());
  }
  return Status::OK();
}

Status ViewCatalog::Drop(const std::string& name) {
  MutexLock lock(&writer_mu_);
  std::vector<std::shared_ptr<const StoredView>> next = Current()->views();
  auto it = std::find_if(next.begin(), next.end(),
                         [&](const auto& v) { return v->def.name == name; });
  if (it == next.end()) return Status::NotFound("no such view: " + name);
  next.erase(it);
  PublishLocked(std::move(next), nullptr, nullptr, /*doc_changed=*/false);
  if (enable_delta_log_) {
    std::shared_ptr<const CatalogSnapshot> cur = Current();
    return PersistLocked(cur->views(), cur->epoch());
  }
  return Status::OK();
}

Status ViewCatalog::Save() const {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  MutexLock lock(&writer_mu_);
  std::shared_ptr<const CatalogSnapshot> cur = Current();
  return PersistLocked(cur->views(), cur->epoch());
}

Status ViewCatalog::EnsureWalLocked() const {
  if (wal_ != nullptr && wal_->generation() == wal_generation_) {
    return Status::OK();
  }
  Result<std::unique_ptr<DeltaLog>> log = DeltaLog::Open(dir_, wal_generation_);
  if (!log.ok()) return log.status();
  wal_ = std::move(log).value();
  return Status::OK();
}

Status ViewCatalog::PersistLocked(
    const std::vector<std::shared_ptr<const StoredView>>& views,
    uint64_t epoch) const {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + dir_ + ": " +
                            ec.message());
  }
  // Never-reuse is a cross-process property: a fresh catalog saving into a
  // directory another instance populated (without Load()ing it) must not
  // re-mint generations already on disk — overwriting "<name>.<gen>.extent"
  // in place would reopen the crash window the generations close. Seed the
  // counter past everything present, once per catalog.
  if (!generation_seeded_) {
    uint64_t max_gen = 0;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
      if (ec) break;
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext != ".extent" && ext != ".stats") continue;
      std::string stem = entry.path().stem().string();  // "<name>.<gen>"
      size_t dot = stem.rfind('.');
      if (dot == std::string::npos) continue;  // version-1 unsuffixed file
      std::optional<int64_t> gen = ParseInt64(stem.substr(dot + 1));
      if (gen && *gen > 0) {
        max_gen = std::max(max_gen, static_cast<uint64_t>(*gen));
      }
    }
    next_generation_ = std::max(next_generation_, max_gen + 1);
    generation_seeded_ = true;
  }
  // Extents and stats first, each under a generation-suffixed name that no
  // previous save ever used (plus a temp + rename per file), the manifest
  // last: a crash anywhere mid-save leaves the previous manifest
  // referencing only complete files of the previous generations — file
  // names are never reused, so versions cannot mix.
  // The v3 manifest records the epoch its extents capture; in delta-log
  // mode it also advances the WAL segment floor past the current segment,
  // making this save the checkpoint that retires every earlier record.
  const uint64_t new_floor = wal_generation_ + 1;
  std::string manifest(kManifestHeaderV3);
  manifest.push_back('\n');
  manifest += StrFormat("epoch %llu\n", static_cast<unsigned long long>(epoch));
  if (enable_delta_log_) {
    manifest +=
        StrFormat("wal %llu\n", static_cast<unsigned long long>(new_floor));
  }
  for (const auto& v : views) {
    if (v->generation == 0 ||
        !fs::exists(fs::path(dir_) / ExtentFileName(*v)) ||
        !fs::exists(fs::path(dir_) / StatsFileName(*v))) {
      v->generation = next_generation_++;
      std::string extent_bytes =
          SerializeColumnarExtent(*v->columnar, v->extent_bytes);
      std::string stats_bytes = ViewStatsToString(v->stats);
      SVX_RETURN_IF_ERROR(
          WriteFileAtomic(fs::path(dir_) / ExtentFileName(*v), extent_bytes));
      SVX_RETURN_IF_ERROR(
          WriteFileAtomic(fs::path(dir_) / StatsFileName(*v), stats_bytes));
      metrics::PersistBytesWritten()->Add(
          static_cast<int64_t>(extent_bytes.size() + stats_bytes.size()));
      metrics::PersistFilesWritten()->Add(2);
    }
    manifest += StrFormat("view %s %llu %s\n", v->def.name.c_str(),
                          static_cast<unsigned long long>(v->generation),
                          PatternToString(v->def.pattern).c_str());
  }
  SVX_RETURN_IF_ERROR(
      WriteFileAtomic(fs::path(dir_) / "manifest.txt", manifest));
  metrics::PersistBytesWritten()->Add(static_cast<int64_t>(manifest.size()));
  metrics::PersistFilesWritten()->Add(1);
  SweepUnreferenced(dir_, LiveFileSet(views));
  // Rotate and truncate the delta log: the manifest (already flipped) names
  // `new_floor`, so records in the old segments can never replay again —
  // close the old segment, open the fresh one, sweep the rest. A crash
  // between the flip and the fresh segment's creation is safe: replay from
  // a floor with no segments is empty, and the extents are complete.
  wal_generation_ = new_floor;
  wal_floor_ = new_floor;
  wal_depth_.store(0, std::memory_order_relaxed);
  if (enable_delta_log_) {
    wal_.reset();
    SVX_RETURN_IF_ERROR(EnsureWalLocked());
  }
  DeltaLog::SweepSegments(dir_, new_floor);
  return Status::OK();
}

Status ViewCatalog::ApplyUpdate(const DocumentDelta& delta,
                                MaintenanceStats* out_stats) {
  return ApplyUpdateBatchImpl({delta}, nullptr, nullptr, out_stats, nullptr);
}

Status ViewCatalog::ApplyUpdate(const DocumentDelta& delta,
                                std::shared_ptr<const Document> new_doc,
                                std::shared_ptr<const Summary> new_summary,
                                MaintenanceStats* out_stats) {
  if (new_doc == nullptr || new_doc.get() != delta.new_doc) {
    return Status::InvalidArgument(
        "shared document must be the delta's new_doc");
  }
  return ApplyUpdateBatchImpl({delta}, std::move(new_doc),
                              std::move(new_summary), out_stats, nullptr);
}

Status ViewCatalog::ApplyUpdateBatch(const std::vector<DocumentDelta>& deltas,
                                     std::shared_ptr<const Document> new_doc,
                                     std::shared_ptr<const Summary> new_summary,
                                     MaintenanceStats* out_stats,
                                     TraceSpan* span) {
  if (deltas.empty()) return Status::InvalidArgument("empty delta batch");
  if (new_doc != nullptr && new_doc.get() != deltas.back().new_doc) {
    return Status::InvalidArgument(
        "shared document must be the last delta's new_doc");
  }
  return ApplyUpdateBatchImpl(deltas, std::move(new_doc),
                              std::move(new_summary), out_stats, span);
}

Status ViewCatalog::ApplyUpdateBatchImpl(
    const std::vector<DocumentDelta>& deltas,
    std::shared_ptr<const Document> new_doc,
    std::shared_ptr<const Summary> new_summary, MaintenanceStats* out_stats,
    TraceSpan* span) {
  for (const DocumentDelta& delta : deltas) {
    if (delta.old_doc == nullptr || delta.new_doc == nullptr) {
      return Status::InvalidArgument("document delta without documents");
    }
  }
  const Document& final_doc = *deltas.back().new_doc;
  Timer timer;
  ScopedSpan pass_span(span, "maintenance_pass");
  const int shard = shard_.load(std::memory_order_relaxed);
  if (shard >= 0) pass_span.Attr("shard", static_cast<int64_t>(shard));
  pass_span.Attr("deltas", static_cast<int64_t>(deltas.size()));
  MutexLock lock(&writer_mu_);
  std::shared_ptr<const CatalogSnapshot> cur = Current();
  MaintenanceStats ms;
  ms.deltas_applied = static_cast<int32_t>(deltas.size());
  // WAL eligibility: the whole pass logs as one record of net tuple changes
  // — unless any view rebuilds, which is not expressible as a tuple delta
  // and forces a full checkpoint instead.
  bool wal_eligible = enable_delta_log_;
  std::vector<WalViewDelta> wal_views;
  std::vector<std::shared_ptr<const StoredView>> next;
  next.reserve(cur->views().size());
  for (const std::shared_ptr<const StoredView>& v : cur->views()) {
    const bool has_content = v->columnar->has_content();
    // The view's value-count cache, built from the pre-batch extent on
    // first use and folded step by step (writer-private, see StoredView).
    std::shared_ptr<ValueCountCache> cache = std::move(v->value_counts);
    // Delta evaluation needs the decoded rows; `base` decodes them back in
    // if the budget evicted the table, and pins them for the whole pass.
    Result<TablePtr> base_result = v->table();
    if (!base_result.ok()) return base_result.status();
    TablePtr base = std::move(base_result).value();
    // Copy-on-maintenance, lazily: readers of the current epoch keep the
    // pre-update extent; `extent` always points at the rows the next step's
    // delta must be computed against; `working` is the successor's private
    // row-major copy, encoded columnar once the batch is folded.
    std::shared_ptr<StoredView> nv;
    Table working;
    const Table* extent = base.get();
    auto ensure_copy = [&]() {
      if (nv != nullptr) return;
      nv = std::make_shared<StoredView>();
      nv->def = v->def;
      nv->extent_bytes = v->extent_bytes;
      nv->stats = v->stats;
      working = *base;
      extent = &working;
    };
    bool rebuilt = false;
    // Net tuple changes across the batch, keyed by stable tuple encoding —
    // a delete cancels a pending insert of the same row and vice versa, so
    // the WAL record captures only what replay must actually change.
    std::map<std::string, Tuple> net_inserts;
    std::set<std::string> net_deletes;
    auto rebuild = [&]() {
      ensure_copy();
      Table fresh = MaterializeView(v->def.pattern, v->def.name, final_doc);
      if (partition_ != nullptr) partition_->Filter(v->def, &fresh);
      fresh.SortRowsCanonical();
      working = std::move(fresh);
      nv->extent_bytes = ExtentByteSize(working);
      cache = nullptr;  // counts describe the discarded extent
      rebuilt = true;
      wal_eligible = false;
      ++ms.views_rebuilt;
      ++ms.views_touched;
    };
    for (const DocumentDelta& delta : deltas) {
      TableDelta td =
          ComputeViewDelta(v->def.pattern, v->def.name, *extent, delta);
      if (td.full_rebuild) {
        // Rebuilding from the batch's final document subsumes every
        // remaining step: stop folding.
        rebuild();
        break;
      }
      if (td.Empty()) continue;  // content rebind happens once, at the end
      ensure_copy();
      if (cache == nullptr) {
        // Must describe the pre-step extent: build before mutating rows.
        cache = std::make_shared<ValueCountCache>(BuildValueCounts(*extent));
      }
      std::vector<Tuple>& rows = working.mutable_rows();
      int64_t deleted = 0;
      if (!td.delete_rows.empty()) {
        // The delta was computed against this very extent (same row
        // order), so dropping by index avoids re-encoding rows for key
        // matching.
        size_t next_delete = 0;
        size_t out = 0;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (next_delete < td.delete_rows.size() &&
              static_cast<int64_t>(i) == td.delete_rows[next_delete]) {
            nv->extent_bytes -= TupleByteSize(rows[i]);
            ++deleted;
            ++next_delete;
            continue;
          }
          if (out != i) rows[out] = std::move(rows[i]);
          ++out;
        }
        rows.resize(out);
      }
      // Byte sizes track per-tuple cell sizes (rows carry no per-row
      // header), so the recorded size stays exact without a full recount.
      for (const Tuple& t : td.inserts) {
        nv->extent_bytes += TupleByteSize(t);
        rows.push_back(t);
      }
      nv->stats = RefreshViewStatsCached(nv->stats, working.schema(),
                                         cache.get(), td.deletes, td.inserts);
      // The next step's delta is computed against canonical row order.
      working.SortRowsCanonical();
      ms.tuples_deleted += deleted;
      ms.tuples_inserted += static_cast<int64_t>(td.inserts.size());
      if (wal_eligible) {
        for (const Tuple& t : td.deletes) {
          std::string key = EncodeTupleKey(t);
          if (net_inserts.erase(key) == 0) net_deletes.insert(std::move(key));
        }
        for (const Tuple& t : td.inserts) {
          std::string key = EncodeTupleKey(t);
          if (net_deletes.erase(key) == 0) {
            net_inserts.insert_or_assign(std::move(key), t);
          }
        }
      }
    }
    if (!rebuilt && nv == nullptr && !has_content) {
      // Nothing in the extent references any document version in the
      // batch: the stored view — and its on-disk generation — carries into
      // the new epoch as-is, shared with readers of older epochs.
      v->value_counts = std::move(cache);
      next.push_back(v);
      ++ms.views_shared;
      continue;
    }
    if (!rebuilt && has_content && nv == nullptr) {
      // Untouched content view. Content references are stored as ORDPATHs
      // (document-independent), so the whole compressed extent — every
      // chunk, and its on-disk generation — carries across the document
      // change; only the decode document moves forward. Survival means
      // every reference resolves in the final document, validated off the
      // chunks without decoding any rows; a reference that did not survive
      // as expected means the view cannot be patched incrementally:
      // rebuild it.
      Status valid = v->columnar->ForEachContentId([&](const OrdPath& id) {
        if (final_doc.FindByOrdPath(id) == kInvalidNode) {
          return Status::NotFound("content reference lost: " + id.ToString());
        }
        return Status::OK();
      });
      if (valid.ok()) {
        auto carried = std::make_shared<StoredView>();
        carried->def = v->def;
        carried->stats = v->stats;
        carried->extent_bytes = v->extent_bytes;
        carried->compressed_bytes = v->compressed_bytes;
        carried->columnar = v->columnar;
        carried->decode_doc = &final_doc;
        carried->generation = v->generation;  // on-disk bytes unchanged
        carried->residency = std::make_shared<ExtentResidency>(budget_);
        carried->residency->SetCompressedBytes(carried->compressed_bytes);
        // Rebind the resident decoded copy if there is one (a pure ORDPATH
        // re-lookup); a cold view stays cold and the next access decodes
        // against the final document directly.
        if (TablePtr res = v->TryResident()) {
          Table copy = *res;
          bool rebound = true;
          for (Tuple& row : copy.mutable_rows()) {
            if (!RebindTupleContent(&row, final_doc).ok()) {
              rebound = false;
              break;
            }
          }
          if (rebound) {
            carried->InstallResident(std::make_shared<Table>(std::move(copy)));
          }
        }
        carried->value_counts = std::move(cache);
        next.push_back(std::move(carried));
        ++ms.views_shared;
        continue;
      }
      rebuild();
    } else if (!rebuilt && has_content) {
      // Touched content view: rebind the surviving rows of the working
      // copy to the final document; a lost reference forces a rebuild.
      bool rebound = true;
      for (Tuple& row : working.mutable_rows()) {
        if (!RebindTupleContent(&row, final_doc).ok()) {
          rebound = false;
          break;
        }
      }
      if (!rebound) rebuild();
    }
    if (rebuilt) {
      // generation 0: persisted fresh. Chunk sharing with the old columnar
      // still applies — a rebuild often reproduces most columns unchanged.
      const int64_t bytes = nv->extent_bytes;
      SetExtent(nv.get(), std::move(working), bytes, v->columnar.get(),
                budget_);
      nv->stats = ComputeViewStats(*nv->columnar, nv->decode_doc);
      next.push_back(std::move(nv));
      continue;
    }
    // Only tuple-changed views reach here (rebind-only content views were
    // carried above); generation stays 0 so the extent persists fresh.
    ++ms.views_touched;
    nv->value_counts = std::move(cache);
    if (wal_eligible && (!net_deletes.empty() || !net_inserts.empty())) {
      WalViewDelta wd;
      wd.view = v->def.name;
      wd.delete_keys.assign(net_deletes.begin(), net_deletes.end());
      Table inserts(working.schema());
      for (const auto& [key, row] : net_inserts) inserts.AddRow(row);
      wd.inserts_bytes = SerializeExtent(inserts);
      wal_views.push_back(std::move(wd));
    }
    {
      // The incremental byte accounting (TupleByteSize adds/removes above)
      // keeps extent_bytes exact without a recount.
      const int64_t bytes = nv->extent_bytes;
      SetExtent(nv.get(), std::move(working), bytes, v->columnar.get(),
                budget_);
    }
    next.push_back(std::move(nv));
  }
  if (out_stats != nullptr) *out_stats = ms;
  // Delta evaluation is done; everything past this point — durability and
  // the publish swap — is time the new epoch exists but is not yet served.
  const int64_t maintained_us = static_cast<int64_t>(timer.ElapsedMicros());
  // The epoch PublishLocked will mint; recorded in the WAL before the swap
  // so replay can tell which records a persisted manifest already covers.
  const uint64_t publish_epoch = next_epoch_;
  pass_span.Attr("epoch", publish_epoch);
  pass_span.Attr("views_touched", static_cast<int64_t>(ms.views_touched));
  pass_span.Attr("views_rebuilt", static_cast<int64_t>(ms.views_rebuilt));
  if (wal_eligible) {
    if (!wal_views.empty()) {
      ScopedSpan wal_span(pass_span.get(), "wal_append");
      SVX_RETURN_IF_ERROR(EnsureWalLocked());
      WalRecord record;
      record.epoch = publish_epoch;
      record.views = std::move(wal_views);
      SVX_RETURN_IF_ERROR(wal_->Append(record));
      wal_depth_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (!dir_.empty()) {
    // Per-pass extent persistence without a WAL, or the checkpoint a
    // rebuild forces in WAL mode.
    ScopedSpan persist_span(pass_span.get(), "persist");
    SVX_RETURN_IF_ERROR(PersistLocked(next, publish_epoch));
  }
  PublishLocked(std::move(next), std::move(new_doc), std::move(new_summary),
                /*doc_changed=*/true);
  const int64_t total_us = static_cast<int64_t>(timer.ElapsedMicros());
  metrics::MaintenancePasses()->Add(1);
  metrics::MaintenanceViewsTouched()->Add(ms.views_touched);
  metrics::MaintenanceViewsRebuilt()->Add(ms.views_rebuilt);
  metrics::MaintenanceViewsShared()->Add(ms.views_shared);
  metrics::MaintenanceTuplesInserted()->Add(ms.tuples_inserted);
  metrics::MaintenanceTuplesDeleted()->Add(ms.tuples_deleted);
  metrics::MaintenanceApplyLatencyUs()->Observe(total_us);
  metrics::EpochPublishLagUs()->Observe(total_us - maintained_us);
  metrics::DeltasApplied()->Add(static_cast<int64_t>(deltas.size()));
  if (deltas.size() > 1) {
    metrics::DeltasCoalesced()->Add(static_cast<int64_t>(deltas.size() - 1));
  }
  if (Counter* c = shard_passes_.load(std::memory_order_acquire)) c->Add(1);
  if (Counter* c = shard_deltas_.load(std::memory_order_acquire)) {
    c->Add(static_cast<int64_t>(deltas.size()));
  }
  return Status::OK();
}

Status ViewCatalog::Load(const Document* doc) {
  return LoadImpl(doc, nullptr, nullptr);
}

Status ViewCatalog::Load(std::shared_ptr<const Document> doc,
                         std::shared_ptr<const Summary> summary) {
  const Document* raw = doc.get();
  return LoadImpl(raw, std::move(doc), std::move(summary));
}

Status ViewCatalog::LoadImpl(const Document* doc,
                             std::shared_ptr<const Document> shared,
                             std::shared_ptr<const Summary> summary) {
  if (dir_.empty()) return Status::InvalidArgument("catalog has no store dir");
  Result<std::string> manifest =
      ReadFileBytes((fs::path(dir_) / "manifest.txt").string());
  if (!manifest.ok()) return manifest.status();

  MutexLock lock(&writer_mu_);
  std::vector<std::shared_ptr<const StoredView>> loaded;
  uint64_t max_generation = 0;
  uint64_t persisted_epoch = 0;  // epoch the manifest's extents capture
  uint64_t wal_floor = 0;        // first WAL segment generation to replay
  int version = 0;
  for (const std::string& raw : Split(*manifest, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (version == 0) {
      if (line == kManifestHeaderV1) {
        version = 1;
      } else if (line == kManifestHeaderV2) {
        version = 2;
      } else if (line == kManifestHeaderV3) {
        version = 3;
      } else {
        return Status::ParseError("bad manifest header: " + raw);
      }
      continue;
    }
    if (version >= 3 && StartsWith(line, "epoch ")) {
      std::optional<int64_t> e = ParseInt64(line.substr(6));
      if (!e || *e < 0) {
        return Status::ParseError("bad epoch in manifest: " + raw);
      }
      persisted_epoch = static_cast<uint64_t>(*e);
      continue;
    }
    if (version >= 3 && StartsWith(line, "wal ")) {
      std::optional<int64_t> g = ParseInt64(line.substr(4));
      if (!g || *g <= 0) {
        return Status::ParseError("bad wal floor in manifest: " + raw);
      }
      wal_floor = static_cast<uint64_t>(*g);
      continue;
    }
    if (!StartsWith(line, "view ")) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    std::string_view rest = line.substr(5);
    size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("bad manifest line: " + raw);
    }
    auto stored = std::make_shared<StoredView>();
    stored->def.name = std::string(rest.substr(0, space));
    if (!SafeName(stored->def.name)) {
      return Status::ParseError("unsafe view name in manifest: " + raw);
    }
    rest = rest.substr(space + 1);
    if (version >= 2) {
      space = rest.find(' ');
      if (space == std::string_view::npos) {
        return Status::ParseError("bad manifest line: " + raw);
      }
      std::optional<int64_t> gen = ParseInt64(rest.substr(0, space));
      if (!gen || *gen <= 0) {
        return Status::ParseError("bad generation in manifest: " + raw);
      }
      stored->generation = static_cast<uint64_t>(*gen);
      max_generation = std::max(max_generation, stored->generation);
      rest = rest.substr(space + 1);
    }
    Result<Pattern> pattern = ParsePattern(rest);
    if (!pattern.ok()) return pattern.status();
    stored->def.pattern = std::move(*pattern);

    // Version-1 stores used unsuffixed file names (generation 0 here, so a
    // later Save migrates them to suffixed generations).
    fs::path extent_path =
        fs::path(dir_) / (version >= 2 ? ExtentFileName(*stored)
                                       : stored->def.name + ".extent");
    // A v2 (columnar) file loads without materializing rows — the extent
    // stays cold until something scans it; a v1 (row-major) file decoded
    // its rows during parsing, so they install resident for free.
    Result<ColumnarLoad> load = ReadExtentFileColumnar(extent_path.string(),
                                                       doc);
    if (!load.ok()) return load.status();
    stored->columnar = std::move(load->columnar);
    stored->extent_bytes = load->uncompressed_bytes;
    stored->compressed_bytes = stored->columnar->SerializedByteSize();
    if (stored->columnar->has_content()) {
      if (doc == nullptr) {
        return Status::InvalidArgument(
            "extent has content references but no document was supplied");
      }
      // Validate every reference off the chunks (a v1 load already did so
      // by decoding); a cold columnar extent must never fail its lazy
      // decode later.
      SVX_RETURN_IF_ERROR(
          stored->columnar->ForEachContentId([&](const OrdPath& id) {
            if (doc->FindByOrdPath(id) == kInvalidNode) {
              return Status::NotFound("content reference " + id.ToString() +
                                      " not in the document");
            }
            return Status::OK();
          }));
      stored->decode_doc = doc;
    }
    stored->residency = std::make_shared<ExtentResidency>(budget_);
    stored->residency->SetCompressedBytes(stored->compressed_bytes);
    if (load->decoded != nullptr) stored->InstallResident(load->decoded);

    fs::path stats_path =
        fs::path(dir_) / (version >= 2 ? StatsFileName(*stored)
                                       : stored->def.name + ".stats");
    Result<std::string> stats_text = ReadFileBytes(stats_path.string());
    if (!stats_text.ok()) return stats_text.status();
    Result<ViewStats> stats = ParseViewStats(*stats_text);
    if (!stats.ok()) return stats.status();
    stored->stats = std::move(*stats);

    loaded.push_back(std::move(stored));
  }
  if (version == 0) return Status::ParseError("empty manifest");
  next_generation_ = std::max(next_generation_, max_generation + 1);
  // Sweep generations an interrupted save (or a pre-crash manifest flip)
  // left behind — everything the manifest we just loaded does not name.
  // After the sweep the manifest's max generation is the directory's, so
  // the counter is fully seeded (a v1 store keeps the lazy directory scan
  // in PersistLocked, since it never swept suffixed orphans). The sweep
  // runs before WAL replay marks views dirty, while every generation still
  // names its live on-disk file.
  if (version >= 2) {
    SweepUnreferenced(dir_, LiveFileSet(loaded));
    generation_seeded_ = true;
  }
  // WAL recovery: replay every record past the persisted epoch from
  // segments at or above the manifest's floor, and sweep orphaned segments
  // a completed checkpoint retired. Replayed views drop to generation 0 so
  // the next checkpoint persists them fresh; until then the disk keeps the
  // old extents *and* the segments, so a crash mid-recovery just replays
  // again.
  uint64_t max_segment = 0;
  {
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
      if (ec) break;
      uint64_t gen = 0;
      if (entry.is_regular_file() &&
          DeltaLog::ParseSegmentFileName(entry.path().filename().string(),
                                         &gen)) {
        max_segment = std::max(max_segment, gen);
      }
    }
  }
  DeltaLog::SweepSegments(dir_, wal_floor);
  Result<std::vector<WalRecord>> records =
      DeltaLog::Replay(dir_, wal_floor, persisted_epoch);
  if (!records.ok()) return records.status();
  uint64_t max_epoch = persisted_epoch;
  if (!records->empty()) {
    std::unordered_map<std::string, StoredView*> by_name;
    for (const auto& v : loaded) {
      by_name[v->def.name] = const_cast<StoredView*>(v.get());
    }
    // Replay mutates rows, so each touched view decodes into a private
    // working table once, and re-encodes when every record is folded.
    std::map<StoredView*, Table> dirty;
    auto working_rows = [&](StoredView* sv) -> Result<Table*> {
      auto it = dirty.find(sv);
      if (it == dirty.end()) {
        Result<Table> decoded = sv->columnar->Decode(sv->decode_doc);
        if (!decoded.ok()) return decoded.status();
        it = dirty.emplace(sv, std::move(decoded).value()).first;
      }
      return &it->second;
    };
    for (const WalRecord& rec : *records) {
      max_epoch = std::max(max_epoch, rec.epoch);
      for (const WalViewDelta& wd : rec.views) {
        auto it = by_name.find(wd.view);
        if (it == by_name.end()) {
          // Checkpoints are forced on every view-set mutation, so a record
          // naming an unknown view means the store is corrupt.
          return Status::ParseError("WAL record references unknown view: " +
                                    wd.view);
        }
        Result<Table*> working = working_rows(it->second);
        if (!working.ok()) return working.status();
        if (!wd.delete_keys.empty()) {
          std::set<std::string> keys(wd.delete_keys.begin(),
                                     wd.delete_keys.end());
          std::vector<Tuple>& rows = (*working)->mutable_rows();
          size_t out = 0;
          for (size_t i = 0; i < rows.size(); ++i) {
            if (keys.count(EncodeTupleKey(rows[i])) != 0) continue;
            if (out != i) rows[out] = std::move(rows[i]);
            ++out;
          }
          rows.resize(out);
        }
        if (!wd.inserts_bytes.empty()) {
          Result<Table> inserts = DeserializeExtent(wd.inserts_bytes, doc);
          if (!inserts.ok()) return inserts.status();
          for (Tuple& row : inserts->mutable_rows()) {
            (*working)->mutable_rows().push_back(std::move(row));
          }
        }
      }
    }
    for (auto& [sv, table] : dirty) {
      table.SortRowsCanonical();
      sv->stats = ComputeViewStats(table);
      const int64_t bytes = ExtentByteSize(table);
      SetExtent(sv, std::move(table), bytes, sv->columnar.get(), budget_);
      sv->generation = 0;
    }
  }
  // Seed the WAL counters: appends continue into the newest segment on
  // disk; the epoch counter resumes past everything ever published so
  // future WAL records never collide with replayed ones.
  wal_floor_ = std::max<uint64_t>(wal_floor, 1);
  wal_generation_ = std::max(wal_floor_, max_segment);
  wal_depth_.store(static_cast<int64_t>(records->size()),
                   std::memory_order_relaxed);
  next_epoch_ = std::max(next_epoch_, max_epoch + 1);
  PublishLocked(std::move(loaded), std::move(shared), std::move(summary),
                /*doc_changed=*/true);
  return Status::OK();
}

std::string ViewCatalog::DebugMetrics() const {
  std::shared_ptr<const CatalogSnapshot> snap = Snapshot();
  const int64_t age_us = snap->AgeMicros();
  // Refresh the point-in-time gauges so a registry render taken right after
  // this call describes this catalog's serving state.
  metrics::EpochCurrent()->Set(static_cast<int64_t>(snap->epoch()));
  metrics::EpochAgeUs()->Set(age_us);
  if (Gauge* g = shard_epoch_age_.load(std::memory_order_acquire)) {
    g->Set(age_us);
  }
  const RewriteCache* cache = snap->rewrite_cache();
  const int shard = shard_.load(std::memory_order_relaxed);
  JsonWriter w;
  w.BeginObject();
  if (shard >= 0) w.KV("shard", static_cast<int64_t>(shard));
  w.KV("epoch", static_cast<uint64_t>(snap->epoch()));
  w.KV("epoch_age_us", age_us);
  w.KV("wal_depth", wal_depth_.load(std::memory_order_relaxed));
  w.KV("epochs_live", metrics::EpochsLive()->Value());
  w.KV("views", static_cast<int64_t>(snap->size()));
  w.KV("total_bytes", snap->TotalBytes());
  w.KV("extent_compressed_bytes", snap->TotalCompressedBytes());
  w.KV("extent_resident_bytes", budget_->resident_bytes());
  w.KV("extent_evictions", budget_->evictions());
  w.KV("extent_reloads", budget_->reloads());
  w.KV("memory_budget_bytes", budget_->limit_bytes());
  w.Key("rewrite_cache");
  w.BeginObject();
  w.KV("entries", static_cast<uint64_t>(cache->size()));
  w.KV("hits", static_cast<uint64_t>(cache->hits()));
  w.KV("misses", static_cast<uint64_t>(cache->misses()));
  w.KV("invalidations", static_cast<uint64_t>(cache->invalidations()));
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace svx
