#include "src/viewstore/cost_model.h"

#include <algorithm>

namespace svx {

namespace {

// Default selectivities when no statistics apply.
constexpr double kLabelSelectivity = 0.2;
constexpr double kValueSelectivity = 0.33;
constexpr double kNonNullSelectivity = 0.9;

double ClampRows(double rows) { return std::max(rows, 1.0); }

}  // namespace

void CostModel::AddViewStats(const std::string& view_name,
                             const ViewStats& stats) {
  PerView view;
  view.num_rows = stats.num_rows;
  // Includes the inner columns of nested columns (ComputeViewStats emits
  // them with their own unique names), so estimates survive an unnest.
  for (const ColumnStats& c : stats.columns) {
    view.columns[c.name] = c;
  }
  views_[view_name] = std::move(view);
}

CostModel::Origin CostModel::ResolveColumn(const PlanNode& plan,
                                           int32_t col) const {
  if (col < 0 || col >= plan.schema.size()) return {};
  switch (plan.kind) {
    case PlanKind::kViewScan: {
      auto it = views_.find(plan.view_name);
      if (it == views_.end()) return {};
      const PerView& view = it->second;
      auto c = view.columns.find(plan.schema.column(col).name);
      return {&view, c == view.columns.end() ? nullptr : &c->second};
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      int32_t nl = plan.children[0]->schema.size();
      if (col < nl) return ResolveColumn(*plan.children[0], col);
      if (plan.nested_join) return {};  // the synthesized nested column
      return ResolveColumn(*plan.children[1], col - nl);
    }
    case PlanKind::kSelect:
      return ResolveColumn(*plan.children[0], col);
    case PlanKind::kProject:
      return ResolveColumn(*plan.children[0],
                           plan.project_cols[static_cast<size_t>(col)]);
    case PlanKind::kUnion: {
      // Same position in every branch; only an unambiguous origin counts.
      Origin first = ResolveColumn(*plan.children[0], col);
      for (size_t i = 1; i < plan.children.size(); ++i) {
        Origin o = ResolveColumn(*plan.children[i], col);
        if (o.view != first.view || o.column != first.column) return {};
      }
      return first;
    }
    case PlanKind::kUnnest: {
      const Schema& in = plan.children[0]->schema;
      int32_t ninner = in.column(plan.unnest_col).nested->size();
      if (col < plan.unnest_col) return ResolveColumn(*plan.children[0], col);
      if (col < plan.unnest_col + ninner) {
        // An inner column of the flattened nested column: its stats live
        // flat under the owning view (see AddViewStats).
        Origin outer = ResolveColumn(*plan.children[0], plan.unnest_col);
        if (outer.view == nullptr) return {};
        auto c = outer.view->columns.find(plan.schema.column(col).name);
        return {outer.view,
                c == outer.view->columns.end() ? nullptr : &c->second};
      }
      return ResolveColumn(*plan.children[0], col - ninner + 1);
    }
    case PlanKind::kGroupBy: {
      int32_t nkeys = static_cast<int32_t>(plan.group_key_cols.size());
      if (col < nkeys) {
        return ResolveColumn(*plan.children[0],
                             plan.group_key_cols[static_cast<size_t>(col)]);
      }
      return {};  // the synthesized group column
    }
    case PlanKind::kNavigate:
    case PlanKind::kDeriveParent: {
      int32_t nin = plan.children[0]->schema.size();
      if (col < nin) return ResolveColumn(*plan.children[0], col);
      return {};  // derived columns carry no stored statistics
    }
  }
  return {};
}

CostEstimate CostModel::Estimate(const PlanNode& plan) const {
  switch (plan.kind) {
    case PlanKind::kViewScan: {
      auto it = views_.find(plan.view_name);
      double rows = it == views_.end()
                        ? default_rows
                        : static_cast<double>(it->second.num_rows);
      return {rows, rows};
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      CostEstimate l = Estimate(*plan.children[0]);
      CostEstimate r = Estimate(*plan.children[1]);
      const ColumnStats* lc =
          ResolveColumn(*plan.children[0], plan.left_col).column;
      const ColumnStats* rc =
          ResolveColumn(*plan.children[1], plan.right_col).column;
      double dl = lc != nullptr ? static_cast<double>(lc->distinct) : l.rows;
      double dr = rc != nullptr ? static_cast<double>(rc->distinct) : r.rows;
      double rows;
      double probe;
      if (plan.kind == PlanKind::kIdEqJoin) {
        // Containment assumption: |L ⋈= R| = |L||R| / max(dl, dr).
        rows = l.rows * r.rows / ClampRows(std::max(dl, dr));
        probe = l.rows + r.rows;
      } else if (plan.struct_axis == StructAxis::kParent) {
        // Each right row has exactly one parent id; it matches the left rows
        // sharing that id (|L| / dl on average) if the parent is stored.
        rows = r.rows * l.rows / ClampRows(dl);
        probe = l.rows + r.rows;
      } else {
        // Ancestor: each right row probes up to depth(right) prefixes.
        double depth =
            rc != nullptr && rc->non_null > 0
                ? static_cast<double>(rc->min_len + rc->max_len) / 2.0
                : 4.0;
        rows = r.rows * std::max(depth - 1.0, 1.0) * l.rows /
               ClampRows(dl * 2.0);
        probe = l.rows + r.rows * depth;
      }
      rows = std::min(rows, l.rows * r.rows);
      if (plan.nested_join) rows = std::min(rows, l.rows);
      return {rows, l.cost + r.cost + probe + rows};
    }
    case PlanKind::kSelect: {
      CostEstimate in = Estimate(*plan.children[0]);
      Origin origin = ResolveColumn(*plan.children[0], plan.select_col);
      const ColumnStats* c = origin.column;
      double sel;
      switch (plan.select_kind) {
        case SelectKind::kLabelEq:
          // With stats: assume labels uniform over the distinct count.
          sel = c != nullptr && c->distinct > 0
                    ? 1.0 / static_cast<double>(c->distinct)
                    : kLabelSelectivity;
          break;
        case SelectKind::kValuePred:
          sel = kValueSelectivity;
          break;
        case SelectKind::kNonNull:
        case SelectKind::kIsNull: {
          double nn = kNonNullSelectivity;
          if (c != nullptr && origin.view != nullptr &&
              origin.view->num_rows > 0) {
            // The owning view's non-null fraction carries over through
            // upstream operators (independence assumption). Using the
            // view's row count as the denominator — not the post-filter
            // input cardinality — keeps the fraction a property of the
            // stored data rather than of the plan shape above it.
            nn = static_cast<double>(std::max<int64_t>(c->non_null, 0)) /
                 static_cast<double>(origin.view->num_rows);
            nn = std::min(std::max(nn, 0.0), 1.0);
          }
          sel = plan.select_kind == SelectKind::kNonNull ? nn : 1.0 - nn;
          break;
        }
        default:
          sel = 1.0;
      }
      return {in.rows * sel, in.cost + in.rows};
    }
    case PlanKind::kProject: {
      CostEstimate in = Estimate(*plan.children[0]);
      return {in.rows, in.cost + 0.1 * in.rows};
    }
    case PlanKind::kUnion: {
      CostEstimate out{0, 0};
      for (const auto& child : plan.children) {
        CostEstimate c = Estimate(*child);
        out.rows += c.rows;
        out.cost += c.cost;
      }
      out.cost += out.rows;  // set-semantics dedup pass
      return out;
    }
    case PlanKind::kUnnest: {
      CostEstimate in = Estimate(*plan.children[0]);
      const ColumnStats* c =
          ResolveColumn(*plan.children[0], plan.unnest_col).column;
      double avg_group =
          c != nullptr && c->non_null > 0
              ? static_cast<double>(c->nested_rows) /
                    static_cast<double>(c->non_null)
              : 2.0;
      double rows = in.rows * std::max(avg_group, 1.0);
      return {rows, in.cost + rows};
    }
    case PlanKind::kGroupBy: {
      CostEstimate in = Estimate(*plan.children[0]);
      double rows = ClampRows(in.rows * 0.5);
      return {rows, in.cost + in.rows};
    }
    case PlanKind::kNavigate: {
      CostEstimate in = Estimate(*plan.children[0]);
      double steps =
          static_cast<double>(std::max<size_t>(plan.navigate_steps.size(), 1));
      return {in.rows, in.cost + in.rows * steps};
    }
    case PlanKind::kDeriveParent: {
      CostEstimate in = Estimate(*plan.children[0]);
      return {in.rows, in.cost + in.rows};
    }
  }
  SVX_CHECK(false);
  return {};
}

}  // namespace svx
