#include "src/viewstore/cost_model.h"

#include <algorithm>

namespace svx {

namespace {

// Default selectivities when no statistics apply.
constexpr double kLabelSelectivity = 0.2;
constexpr double kValueSelectivity = 0.33;
constexpr double kNonNullSelectivity = 0.9;

double ClampRows(double rows) { return std::max(rows, 1.0); }

}  // namespace

void CostModel::AddViewStats(const std::string& view_name,
                             const ViewStats& stats) {
  views_[view_name] = stats.num_rows;
  // Includes the inner columns of nested columns (ComputeViewStats emits
  // them with their own unique names), so estimates survive an unnest.
  for (const ColumnStats& c : stats.columns) {
    columns_[c.name] = c;
  }
}

const ColumnStats* CostModel::FindColumn(const std::string& name) const {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : &it->second;
}

CostEstimate CostModel::Estimate(const PlanNode& plan) const {
  switch (plan.kind) {
    case PlanKind::kViewScan: {
      auto it = views_.find(plan.view_name);
      double rows =
          it == views_.end() ? default_rows : static_cast<double>(it->second);
      return {rows, rows};
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      CostEstimate l = Estimate(*plan.children[0]);
      CostEstimate r = Estimate(*plan.children[1]);
      const Schema& ls = plan.children[0]->schema;
      const Schema& rs = plan.children[1]->schema;
      const ColumnStats* lc =
          plan.left_col >= 0 && plan.left_col < ls.size()
              ? FindColumn(ls.column(plan.left_col).name)
              : nullptr;
      const ColumnStats* rc =
          plan.right_col >= 0 && plan.right_col < rs.size()
              ? FindColumn(rs.column(plan.right_col).name)
              : nullptr;
      double dl = lc != nullptr ? static_cast<double>(lc->distinct) : l.rows;
      double dr = rc != nullptr ? static_cast<double>(rc->distinct) : r.rows;
      double rows;
      double probe;
      if (plan.kind == PlanKind::kIdEqJoin) {
        // Containment assumption: |L ⋈= R| = |L||R| / max(dl, dr).
        rows = l.rows * r.rows / ClampRows(std::max(dl, dr));
        probe = l.rows + r.rows;
      } else if (plan.struct_axis == StructAxis::kParent) {
        // Each right row has exactly one parent id; it matches the left rows
        // sharing that id (|L| / dl on average) if the parent is stored.
        rows = r.rows * l.rows / ClampRows(dl);
        probe = l.rows + r.rows;
      } else {
        // Ancestor: each right row probes up to depth(right) prefixes.
        double depth =
            rc != nullptr && rc->non_null > 0
                ? static_cast<double>(rc->min_len + rc->max_len) / 2.0
                : 4.0;
        rows = r.rows * std::max(depth - 1.0, 1.0) * l.rows /
               ClampRows(dl * 2.0);
        probe = l.rows + r.rows * depth;
      }
      rows = std::min(rows, l.rows * r.rows);
      if (plan.nested_join) rows = std::min(rows, l.rows);
      return {rows, l.cost + r.cost + probe + rows};
    }
    case PlanKind::kSelect: {
      CostEstimate in = Estimate(*plan.children[0]);
      const Schema& s = plan.children[0]->schema;
      const ColumnStats* c =
          plan.select_col >= 0 && plan.select_col < s.size()
              ? FindColumn(s.column(plan.select_col).name)
              : nullptr;
      double sel;
      switch (plan.select_kind) {
        case SelectKind::kLabelEq:
          // With stats: assume labels uniform over the distinct count.
          sel = c != nullptr && c->distinct > 0
                    ? 1.0 / static_cast<double>(c->distinct)
                    : kLabelSelectivity;
          break;
        case SelectKind::kValuePred:
          sel = kValueSelectivity;
          break;
        case SelectKind::kNonNull:
        case SelectKind::kIsNull: {
          double nn = kNonNullSelectivity;
          if (c != nullptr) {
            // The non-null fraction of the source extent carries over.
            double base = static_cast<double>(std::max<int64_t>(
                c->non_null, 0));
            // Denominator: the view's row count is not recorded per column;
            // approximate with the larger of non_null and the input rows.
            double denom = std::max(base, in.rows);
            nn = denom > 0 ? base / denom : kNonNullSelectivity;
            nn = std::min(std::max(nn, 0.0), 1.0);
          }
          sel = plan.select_kind == SelectKind::kNonNull ? nn : 1.0 - nn;
          break;
        }
        default:
          sel = 1.0;
      }
      return {in.rows * sel, in.cost + in.rows};
    }
    case PlanKind::kProject: {
      CostEstimate in = Estimate(*plan.children[0]);
      return {in.rows, in.cost + 0.1 * in.rows};
    }
    case PlanKind::kUnion: {
      CostEstimate out{0, 0};
      for (const auto& child : plan.children) {
        CostEstimate c = Estimate(*child);
        out.rows += c.rows;
        out.cost += c.cost;
      }
      out.cost += out.rows;  // set-semantics dedup pass
      return out;
    }
    case PlanKind::kUnnest: {
      CostEstimate in = Estimate(*plan.children[0]);
      const Schema& s = plan.children[0]->schema;
      const ColumnStats* c =
          plan.unnest_col >= 0 && plan.unnest_col < s.size()
              ? FindColumn(s.column(plan.unnest_col).name)
              : nullptr;
      double avg_group =
          c != nullptr && c->non_null > 0
              ? static_cast<double>(c->nested_rows) /
                    static_cast<double>(c->non_null)
              : 2.0;
      double rows = in.rows * std::max(avg_group, 1.0);
      return {rows, in.cost + rows};
    }
    case PlanKind::kGroupBy: {
      CostEstimate in = Estimate(*plan.children[0]);
      double rows = ClampRows(in.rows * 0.5);
      return {rows, in.cost + in.rows};
    }
    case PlanKind::kNavigate: {
      CostEstimate in = Estimate(*plan.children[0]);
      double steps =
          static_cast<double>(std::max<size_t>(plan.navigate_steps.size(), 1));
      return {in.rows, in.cost + in.rows * steps};
    }
    case PlanKind::kDeriveParent: {
      CostEstimate in = Estimate(*plan.children[0]);
      return {in.rows, in.cost + in.rows};
    }
  }
  SVX_CHECK(false);
  return {};
}

}  // namespace svx
