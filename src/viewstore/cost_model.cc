#include "src/viewstore/cost_model.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace svx {

namespace {

// Default selectivities when no statistics apply. These stay fixed
// fractions (they model *data*, not per-row work), so they are not part of
// the calibrated constants.
constexpr double kLabelSelectivity = 0.2;
constexpr double kValueSelectivity = 0.33;
constexpr double kNonNullSelectivity = 0.9;

double ClampRows(double rows) { return std::max(rows, 1.0); }

// Work-unit indexes, CostConstants::ToArray() order.
enum : size_t {
  kUScan = 0,
  kUEqJoin = 1,
  kUParentJoin = 2,
  kUAncestorJoin = 3,
  kUEmit = 4,
  kUSelect = 5,
  kUProject = 6,
  kUSort = 7,
  kUNav = 8,
};

void AddUnits(std::array<double, CostConstants::kNumTerms>* units, size_t i,
              double v) {
  if (units != nullptr) (*units)[i] += v;
}

}  // namespace

const char* CostConstants::TermName(size_t i) {
  static const char* const kNames[kNumTerms] = {
      "scan", "eq_join", "parent_join", "ancestor_join", "emit",
      "select", "project", "sort", "nav"};
  return i < kNumTerms ? kNames[i] : "?";
}

uint64_t CostConstantsFingerprint(const CostConstants& c,
                                  double default_rows) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(kCostProfileVersion));
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double), "double must be 64-bit");
  std::memcpy(&bits, &default_rows, sizeof(bits));
  mix(bits);
  for (double term : c.ToArray()) {
    std::memcpy(&bits, &term, sizeof(bits));
    mix(bits);
  }
  return h;
}

bool LoadCostProfile(const std::string& path, CostConstants* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  CostConstants c;
  auto arr = c.ToArray();
  bool version_ok = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "version") {
      int32_t v = -1;
      if (!(ls >> v) || v != kCostProfileVersion) return false;
      version_ok = true;
      continue;
    }
    double value = 0;
    if (!(ls >> value) || !(value >= 0)) return false;
    bool known = false;
    for (size_t i = 0; i < CostConstants::kNumTerms; ++i) {
      if (key == CostConstants::TermName(i)) {
        arr[i] = value;
        known = true;
        break;
      }
    }
    // Unknown keys are tolerated (forward compatibility within a version).
    (void)known;
  }
  if (!version_ok) return false;
  *out = CostConstants::FromArray(arr);
  return true;
}

bool SaveCostProfile(const std::string& path, const CostConstants& c) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << "# svx cost profile (tools/calibrate_costs); units relative to\n"
         "# scanning one view row. Loaded by ViewCatalog at open.\n";
  out << "version " << kCostProfileVersion << "\n";
  auto arr = c.ToArray();
  for (size_t i = 0; i < CostConstants::kNumTerms; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", arr[i]);
    out << CostConstants::TermName(i) << " " << buf << "\n";
  }
  return out.good();
}

void CostModel::AddViewStats(const std::string& view_name,
                             const ViewStats& stats) {
  PerView view;
  view.num_rows = stats.num_rows;
  // Includes the inner columns of nested columns (ComputeViewStats emits
  // them with their own unique names), so estimates survive an unnest.
  for (const ColumnStats& c : stats.columns) {
    view.columns[c.name] = c;
  }
  views_[view_name] = std::move(view);
}

CostModel::Origin CostModel::ResolveColumn(const PlanNode& plan,
                                           int32_t col) const {
  if (col < 0 || col >= plan.schema.size()) return {};
  switch (plan.kind) {
    case PlanKind::kViewScan: {
      auto it = views_.find(plan.view_name);
      if (it == views_.end()) return {};
      const PerView& view = it->second;
      auto c = view.columns.find(plan.schema.column(col).name);
      return {&view, c == view.columns.end() ? nullptr : &c->second};
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      int32_t nl = plan.children[0]->schema.size();
      if (col < nl) return ResolveColumn(*plan.children[0], col);
      if (plan.nested_join) return {};  // the synthesized nested column
      return ResolveColumn(*plan.children[1], col - nl);
    }
    case PlanKind::kSelect:
      return ResolveColumn(*plan.children[0], col);
    case PlanKind::kProject:
      return ResolveColumn(*plan.children[0],
                           plan.project_cols[static_cast<size_t>(col)]);
    case PlanKind::kUnion: {
      // Same position in every branch; only an unambiguous origin counts.
      Origin first = ResolveColumn(*plan.children[0], col);
      for (size_t i = 1; i < plan.children.size(); ++i) {
        Origin o = ResolveColumn(*plan.children[i], col);
        if (o.view != first.view || o.column != first.column) return {};
      }
      return first;
    }
    case PlanKind::kUnnest: {
      const Schema& in = plan.children[0]->schema;
      int32_t ninner = in.column(plan.unnest_col).nested->size();
      if (col < plan.unnest_col) return ResolveColumn(*plan.children[0], col);
      if (col < plan.unnest_col + ninner) {
        // An inner column of the flattened nested column: its stats live
        // flat under the owning view (see AddViewStats).
        Origin outer = ResolveColumn(*plan.children[0], plan.unnest_col);
        if (outer.view == nullptr) return {};
        auto c = outer.view->columns.find(plan.schema.column(col).name);
        return {outer.view,
                c == outer.view->columns.end() ? nullptr : &c->second};
      }
      return ResolveColumn(*plan.children[0], col - ninner + 1);
    }
    case PlanKind::kGroupBy: {
      int32_t nkeys = static_cast<int32_t>(plan.group_key_cols.size());
      if (col < nkeys) {
        return ResolveColumn(*plan.children[0],
                             plan.group_key_cols[static_cast<size_t>(col)]);
      }
      return {};  // the synthesized group column
    }
    case PlanKind::kNavigate:
    case PlanKind::kDeriveParent: {
      int32_t nin = plan.children[0]->schema.size();
      if (col < nin) return ResolveColumn(*plan.children[0], col);
      return {};  // derived columns carry no stored statistics
    }
  }
  return {};
}

CostEstimate CostModel::Estimate(
    const PlanNode& plan,
    std::array<double, CostConstants::kNumTerms>* units) const {
  switch (plan.kind) {
    case PlanKind::kViewScan: {
      auto it = views_.find(plan.view_name);
      double rows = it == views_.end()
                        ? default_rows
                        : static_cast<double>(it->second.num_rows);
      AddUnits(units, kUScan, rows);
      return {rows, constants.scan * rows};
    }
    case PlanKind::kIdEqJoin:
    case PlanKind::kStructJoin: {
      CostEstimate l = Estimate(*plan.children[0], units);
      CostEstimate r = Estimate(*plan.children[1], units);
      const ColumnStats* lc =
          ResolveColumn(*plan.children[0], plan.left_col).column;
      const ColumnStats* rc =
          ResolveColumn(*plan.children[1], plan.right_col).column;
      double dl = lc != nullptr ? static_cast<double>(lc->distinct) : l.rows;
      double dr = rc != nullptr ? static_cast<double>(rc->distinct) : r.rows;
      double rows;
      double probe;
      double probe_constant;
      if (plan.kind == PlanKind::kIdEqJoin) {
        // Containment assumption: |L ⋈= R| = |L||R| / max(dl, dr).
        rows = l.rows * r.rows / ClampRows(std::max(dl, dr));
        probe = l.rows + r.rows;
        probe_constant = constants.eq_join;
        AddUnits(units, kUEqJoin, probe);
      } else if (plan.struct_axis == StructAxis::kParent) {
        // Each right row has exactly one parent id; it matches the left rows
        // sharing that id (|L| / dl on average) if the parent is stored.
        rows = r.rows * l.rows / ClampRows(dl);
        probe = l.rows + r.rows;
        probe_constant = constants.parent_join;
        AddUnits(units, kUParentJoin, probe);
      } else {
        // Ancestor: each right row probes up to depth(right) prefixes.
        double depth =
            rc != nullptr && rc->non_null > 0
                ? static_cast<double>(rc->min_len + rc->max_len) / 2.0
                : 4.0;
        rows = r.rows * std::max(depth - 1.0, 1.0) * l.rows /
               ClampRows(dl * 2.0);
        probe = l.rows + r.rows * depth;
        probe_constant = constants.ancestor_join;
        AddUnits(units, kUAncestorJoin, probe);
      }
      rows = std::min(rows, l.rows * r.rows);
      if (plan.nested_join) rows = std::min(rows, l.rows);
      AddUnits(units, kUEmit, rows);
      return {rows, l.cost + r.cost + probe_constant * probe +
                        constants.emit * rows};
    }
    case PlanKind::kSelect: {
      CostEstimate in = Estimate(*plan.children[0], units);
      Origin origin = ResolveColumn(*plan.children[0], plan.select_col);
      const ColumnStats* c = origin.column;
      double sel;
      switch (plan.select_kind) {
        case SelectKind::kLabelEq:
          // With stats: assume labels uniform over the distinct count.
          sel = c != nullptr && c->distinct > 0
                    ? 1.0 / static_cast<double>(c->distinct)
                    : kLabelSelectivity;
          break;
        case SelectKind::kValuePred:
          sel = kValueSelectivity;
          break;
        case SelectKind::kNonNull:
        case SelectKind::kIsNull: {
          double nn = kNonNullSelectivity;
          if (c != nullptr && origin.view != nullptr &&
              origin.view->num_rows > 0) {
            // The owning view's non-null fraction carries over through
            // upstream operators (independence assumption). Using the
            // view's row count as the denominator — not the post-filter
            // input cardinality — keeps the fraction a property of the
            // stored data rather than of the plan shape above it.
            nn = static_cast<double>(std::max<int64_t>(c->non_null, 0)) /
                 static_cast<double>(origin.view->num_rows);
            nn = std::min(std::max(nn, 0.0), 1.0);
          }
          sel = plan.select_kind == SelectKind::kNonNull ? nn : 1.0 - nn;
          break;
        }
        default:
          sel = 1.0;
      }
      AddUnits(units, kUSelect, in.rows);
      return {in.rows * sel, in.cost + constants.select * in.rows};
    }
    case PlanKind::kProject: {
      CostEstimate in = Estimate(*plan.children[0], units);
      AddUnits(units, kUProject, in.rows);
      return {in.rows, in.cost + constants.project * in.rows};
    }
    case PlanKind::kUnion: {
      CostEstimate out{0, 0};
      for (const auto& child : plan.children) {
        CostEstimate c = Estimate(*child, units);
        out.rows += c.rows;
        out.cost += c.cost;
      }
      // Set-semantics dedup pass over the concatenated branches.
      AddUnits(units, kUSort, out.rows);
      out.cost += constants.sort * out.rows;
      return out;
    }
    case PlanKind::kUnnest: {
      CostEstimate in = Estimate(*plan.children[0], units);
      const ColumnStats* c =
          ResolveColumn(*plan.children[0], plan.unnest_col).column;
      double avg_group =
          c != nullptr && c->non_null > 0
              ? static_cast<double>(c->nested_rows) /
                    static_cast<double>(c->non_null)
              : 2.0;
      double rows = in.rows * std::max(avg_group, 1.0);
      AddUnits(units, kUEmit, rows);
      return {rows, in.cost + constants.emit * rows};
    }
    case PlanKind::kGroupBy: {
      CostEstimate in = Estimate(*plan.children[0], units);
      double rows = ClampRows(in.rows * 0.5);
      AddUnits(units, kUSort, in.rows);
      return {rows, in.cost + constants.sort * in.rows};
    }
    case PlanKind::kNavigate: {
      CostEstimate in = Estimate(*plan.children[0], units);
      double steps =
          static_cast<double>(std::max<size_t>(plan.navigate_steps.size(), 1));
      AddUnits(units, kUNav, in.rows * steps);
      return {in.rows, in.cost + constants.nav * (in.rows * steps)};
    }
    case PlanKind::kDeriveParent: {
      CostEstimate in = Estimate(*plan.children[0], units);
      AddUnits(units, kUNav, in.rows);
      return {in.rows, in.cost + constants.nav * in.rows};
    }
  }
  SVX_CHECK(false);
  return {};
}

}  // namespace svx
