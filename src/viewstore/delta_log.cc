#include "src/viewstore/delta_log.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "src/observability/metrics.h"
#include "src/util/fileio.h"
#include "src/util/strings.h"

namespace svx {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'S', 'V', 'X', 'W'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 8;   // magic + version
constexpr size_t kFrameSize = 8;    // payload_len + crc32

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendStr(std::string_view s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian cursor over a payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadStr(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t DeltaLog::Crc32(std::string_view bytes) {
  static const uint32_t* const table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string DeltaLog::SegmentFileName(uint64_t generation) {
  return StrFormat("wal.%llu.log", static_cast<unsigned long long>(generation));
}

bool DeltaLog::ParseSegmentFileName(std::string_view name,
                                    uint64_t* generation) {
  constexpr std::string_view kPrefix = "wal.";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = gen;
  return true;
}

std::string DeltaLog::EncodePayload(const WalRecord& record) {
  std::string out;
  AppendU64(record.epoch, &out);
  AppendU32(static_cast<uint32_t>(record.views.size()), &out);
  for (const WalViewDelta& v : record.views) {
    AppendStr(v.view, &out);
    AppendU32(static_cast<uint32_t>(v.delete_keys.size()), &out);
    for (const std::string& key : v.delete_keys) AppendStr(key, &out);
    AppendStr(v.inserts_bytes, &out);
  }
  return out;
}

Result<WalRecord> DeltaLog::DecodePayload(std::string_view bytes) {
  Reader r(bytes);
  WalRecord record;
  uint32_t nviews = 0;
  if (!r.ReadU64(&record.epoch) || !r.ReadU32(&nviews)) {
    return Status::ParseError("WAL record payload truncated");
  }
  record.views.reserve(nviews);
  for (uint32_t i = 0; i < nviews; ++i) {
    WalViewDelta v;
    uint32_t ndeletes = 0;
    if (!r.ReadStr(&v.view) || !r.ReadU32(&ndeletes)) {
      return Status::ParseError("WAL record payload truncated");
    }
    v.delete_keys.resize(ndeletes);
    for (uint32_t d = 0; d < ndeletes; ++d) {
      if (!r.ReadStr(&v.delete_keys[d])) {
        return Status::ParseError("WAL record payload truncated");
      }
    }
    if (!r.ReadStr(&v.inserts_bytes)) {
      return Status::ParseError("WAL record payload truncated");
    }
    record.views.push_back(std::move(v));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in WAL record payload");
  }
  return record;
}

DeltaLog::~DeltaLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<DeltaLog>> DeltaLog::Open(const std::string& dir,
                                                 uint64_t generation) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create WAL directory %s: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  std::string path = (fs::path(dir) / SegmentFileName(generation)).string();
  // "a+b" creates when missing and positions every write at EOF, which is
  // exactly the append-only contract; ftell after a seek gives the resume
  // offset so we know whether the header is already present.
  std::FILE* f = std::fopen(path.c_str(), "a+b");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open WAL segment %s", path.c_str()));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal(StrFormat("cannot seek WAL %s", path.c_str()));
  }
  long size = std::ftell(f);
  if (size == 0) {
    std::string header;
    header.append(kMagic, sizeof(kMagic));
    AppendU32(kVersion, &header);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return Status::Internal(
          StrFormat("cannot write WAL header to %s", path.c_str()));
    }
    metrics::WalBytesWritten()->Add(static_cast<int64_t>(header.size()));
  }
  return std::unique_ptr<DeltaLog>(
      new DeltaLog(std::move(path), generation, f));
}

Status DeltaLog::Append(const WalRecord& record) {
  std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(kFrameSize + payload.size());
  AppendU32(static_cast<uint32_t>(payload.size()), &frame);
  AppendU32(Crc32(payload), &frame);
  frame += payload;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal(
        StrFormat("WAL append to %s failed", path_.c_str()));
  }
  ++records_appended_;
  bytes_appended_ += static_cast<int64_t>(frame.size());
  metrics::WalRecordsAppended()->Add(1);
  metrics::WalBytesWritten()->Add(static_cast<int64_t>(frame.size()));
  return Status::OK();
}

Result<std::vector<WalRecord>> DeltaLog::ReadSegment(const std::string& path,
                                                     bool truncate_torn_tail) {
  Result<std::string> bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError(
        StrFormat("%s is not a WAL segment", path.c_str()));
  }
  Reader header(std::string_view(bytes).substr(sizeof(kMagic), 4));
  uint32_t version = 0;
  (void)header.ReadU32(&version);
  if (version != kVersion) {
    return Status::ParseError(
        StrFormat("unsupported WAL version %u in %s", version, path.c_str()));
  }

  std::vector<WalRecord> records;
  size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    // A record is valid iff the frame fits, the checksum matches and the
    // payload parses; anything else from `pos` onward is the torn tail.
    bool torn = true;
    if (bytes.size() - pos >= kFrameSize) {
      Reader frame(std::string_view(bytes).substr(pos, kFrameSize));
      uint32_t len = 0;
      uint32_t crc = 0;
      (void)frame.ReadU32(&len);
      (void)frame.ReadU32(&crc);
      if (bytes.size() - pos - kFrameSize >= len) {
        std::string_view payload =
            std::string_view(bytes).substr(pos + kFrameSize, len);
        if (Crc32(payload) == crc) {
          Result<WalRecord> rec = DecodePayload(payload);
          if (rec.ok()) {
            records.push_back(std::move(rec).value());
            pos += kFrameSize + len;
            torn = false;
          }
        }
      }
    }
    if (torn) {
      if (!truncate_torn_tail) {
        return Status::ParseError(StrFormat(
            "torn or corrupt WAL record at offset %zu in %s", pos,
            path.c_str()));
      }
      std::error_code ec;
      fs::resize_file(path, pos, ec);
      if (ec) {
        return Status::Internal(
            StrFormat("cannot truncate torn WAL tail of %s: %s", path.c_str(),
                      ec.message().c_str()));
      }
      metrics::WalTornTruncations()->Add(1);
      break;
    }
  }
  return records;
}

Result<std::vector<WalRecord>> DeltaLog::Replay(const std::string& dir,
                                                uint64_t min_generation,
                                                uint64_t min_epoch) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t gen = 0;
    if (!ParseSegmentFileName(entry.path().filename().string(), &gen)) {
      continue;
    }
    if (gen < min_generation) continue;
    segments.emplace_back(gen, entry.path().string());
  }
  if (ec) {
    return Status::Internal(StrFormat("cannot list WAL directory %s: %s",
                                      dir.c_str(), ec.message().c_str()));
  }
  std::sort(segments.begin(), segments.end());

  std::vector<WalRecord> out;
  for (size_t i = 0; i < segments.size(); ++i) {
    bool newest = i + 1 == segments.size();
    Result<std::vector<WalRecord>> records =
        ReadSegment(segments[i].second, /*truncate_torn_tail=*/newest);
    if (!records.ok()) return records.status();
    for (WalRecord& r : records.value()) {
      if (r.epoch <= min_epoch) continue;
      out.push_back(std::move(r));
    }
  }
  metrics::WalReplays()->Add(static_cast<int64_t>(out.size()));
  return out;
}

int DeltaLog::SweepSegments(const std::string& dir, uint64_t keep_generation) {
  int removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t gen = 0;
    if (!ParseSegmentFileName(entry.path().filename().string(), &gen)) {
      continue;
    }
    if (gen >= keep_generation) continue;
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec)) ++removed;
  }
  return removed;
}

}  // namespace svx
