#include "src/util/check.h"
#include "src/viewstore/extent_io.h"

#include <cstdint>
#include <cstring>
#include <memory>

#include "src/util/fileio.h"
#include "src/util/strings.h"

namespace svx {

namespace {

constexpr char kMagic[4] = {'S', 'V', 'X', 'T'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kColumnarVersion = 2;

enum CellTag : uint8_t {
  kCellNull = 0,
  kCellString = 1,
  kCellId = 2,
  kCellContent = 3,
  kCellNested = 4,
};

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

void PutOrdPath(const OrdPath& id, std::string* out) {
  PutU32(static_cast<uint32_t>(id.components().size()), out);
  for (int32_t c : id.components()) {
    PutU32(static_cast<uint32_t>(c), out);
  }
}

void PutSchema(const Schema& schema, std::string* out) {
  PutU32(static_cast<uint32_t>(schema.size()), out);
  for (const ColumnSpec& col : schema.columns()) {
    PutString(col.name, out);
    PutU8(static_cast<uint8_t>(col.kind), out);
    PutU8(col.nested != nullptr ? 1 : 0, out);
    if (col.nested != nullptr) PutSchema(*col.nested, out);
  }
}

void PutRows(const Table& table, std::string* out) {
  PutU64(static_cast<uint64_t>(table.NumRows()), out);
  for (const Tuple& row : table.rows()) {
    for (const Value& v : row) EncodeValue(v, out);
  }
}

/// Bounds-checked little-endian reader over the serialized bytes.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len) || pos_ + len > bytes_.size()) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool GetOrdPath(OrdPath* id) {
    uint32_t n = 0;
    if (!GetU32(&n) || n > 1u << 20) return false;
    std::vector<int32_t> comps;
    comps.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t c = 0;
      if (!GetU32(&c)) return false;
      comps.push_back(static_cast<int32_t>(c));
    }
    *id = OrdPath(std::move(comps));
    return true;
  }

  size_t pos() const { return pos_; }
  size_t Remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Truncated(const Reader& r) {
  return Status::ParseError(
      StrFormat("truncated extent at offset %zu", r.pos()));
}

Result<Schema> GetSchema(Reader* r, int depth) {
  if (depth > 16) return Status::ParseError("schema nesting too deep");
  uint32_t ncols = 0;
  if (!r->GetU32(&ncols) || ncols > 1u << 16) return Truncated(*r);
  Schema schema;
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnSpec col;
    uint8_t kind = 0;
    uint8_t has_nested = 0;
    if (!r->GetString(&col.name) || !r->GetU8(&kind) ||
        !r->GetU8(&has_nested)) {
      return Truncated(*r);
    }
    if (kind > static_cast<uint8_t>(ColumnKind::kNested)) {
      return Status::ParseError(
          StrFormat("bad column kind %u", static_cast<unsigned>(kind)));
    }
    col.kind = static_cast<ColumnKind>(kind);
    if (has_nested != 0) {
      Result<Schema> nested = GetSchema(r, depth + 1);
      if (!nested.ok()) return nested.status();
      col.nested = std::make_shared<const Schema>(std::move(*nested));
    }
    schema.Append(std::move(col));
  }
  return schema;
}

Result<Table> GetRows(Reader* r, const Schema& schema, const Document* doc,
                      int depth);

Result<Value> GetCell(Reader* r, const ColumnSpec& col, const Document* doc,
                      int depth) {
  uint8_t tag = 0;
  if (!r->GetU8(&tag)) return Truncated(*r);
  switch (tag) {
    case kCellNull:
      return Value();
    case kCellString: {
      std::string s;
      if (!r->GetString(&s)) return Truncated(*r);
      return Value(std::move(s));
    }
    case kCellId: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return Truncated(*r);
      return Value(std::move(id));
    }
    case kCellContent: {
      OrdPath id;
      if (!r->GetOrdPath(&id)) return Truncated(*r);
      if (doc == nullptr) {
        return Status::InvalidArgument(
            "extent has content references but no document was supplied");
      }
      NodeIndex node = doc->FindByOrdPath(id);
      if (node == kInvalidNode) {
        return Status::NotFound(
            "content reference " + id.ToString() + " not in the document");
      }
      return Value(NodeRef{doc, node});
    }
    case kCellNested: {
      if (col.nested == nullptr) {
        return Status::ParseError("nested cell in a non-nested column");
      }
      Result<Table> nested = GetRows(r, *col.nested, doc, depth + 1);
      if (!nested.ok()) return nested.status();
      return Value(std::make_shared<const Table>(std::move(*nested)));
    }
    default:
      return Status::ParseError(
          StrFormat("bad cell tag %u", static_cast<unsigned>(tag)));
  }
}

Result<Table> GetRows(Reader* r, const Schema& schema, const Document* doc,
                      int depth) {
  if (depth > 16) return Status::ParseError("extent nesting too deep");
  uint64_t nrows = 0;
  if (!r->GetU64(&nrows)) return Truncated(*r);
  // Bound the row count by the remaining input (each cell is >= 1 byte), so
  // corrupt headers fail with ParseError instead of allocating unboundedly.
  if (nrows > 0 &&
      (schema.size() == 0 ||
       nrows > r->Remaining() / static_cast<uint64_t>(schema.size()))) {
    return Status::ParseError(
        StrFormat("row count %llu exceeds input size",
                  static_cast<unsigned long long>(nrows)));
  }
  Table table(schema);
  for (uint64_t i = 0; i < nrows; ++i) {
    Tuple row;
    row.reserve(static_cast<size_t>(schema.size()));
    for (int32_t c = 0; c < schema.size(); ++c) {
      Result<Value> v = GetCell(r, schema.column(c), doc, depth);
      if (!v.ok()) return v.status();
      row.push_back(std::move(*v));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  if (v.IsNull()) {
    PutU8(kCellNull, out);
  } else if (v.IsString()) {
    PutU8(kCellString, out);
    PutString(v.AsString(), out);
  } else if (v.IsId()) {
    PutU8(kCellId, out);
    PutOrdPath(v.AsId(), out);
  } else if (v.IsContent()) {
    const NodeRef& ref = v.AsContent();
    SVX_CHECK(ref.doc != nullptr && ref.node != kInvalidNode);
    PutU8(kCellContent, out);
    PutOrdPath(ref.doc->ord_path(ref.node), out);
  } else {
    PutU8(kCellNested, out);
    PutRows(v.AsTable(), out);
  }
}

std::string SerializeExtent(const Table& table) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(kVersion, &out);
  PutSchema(table.schema(), &out);
  PutRows(table, &out);
  return out;
}

namespace {

int64_t SchemaByteSize(const Schema& schema) {
  int64_t size = 4;  // ncols
  for (const ColumnSpec& col : schema.columns()) {
    size += 4 + static_cast<int64_t>(col.name.size()) + 1 + 1;
    if (col.nested != nullptr) size += SchemaByteSize(*col.nested);
  }
  return size;
}

int64_t RowsByteSize(const Table& table);

int64_t CellByteSize(const Value& v) {
  if (v.IsNull()) return 1;
  if (v.IsString()) return 1 + 4 + static_cast<int64_t>(v.AsString().size());
  if (v.IsId()) return 1 + 4 + 4 * static_cast<int64_t>(
                                      v.AsId().components().size());
  if (v.IsContent()) {
    const NodeRef& ref = v.AsContent();
    return 1 + 4 + 4 * static_cast<int64_t>(
                           ref.doc->ord_path(ref.node).Depth());
  }
  return 1 + RowsByteSize(v.AsTable());
}

int64_t RowsByteSize(const Table& table) {
  int64_t size = 8;  // nrows
  for (const Tuple& row : table.rows()) {
    for (const Value& v : row) size += CellByteSize(v);
  }
  return size;
}

}  // namespace

int64_t ExtentByteSize(const Table& table) {
  return static_cast<int64_t>(sizeof(kMagic)) + 4 +
         SchemaByteSize(table.schema()) + RowsByteSize(table);
}

int64_t TupleByteSize(const Tuple& tuple) {
  int64_t size = 0;
  for (const Value& v : tuple) size += CellByteSize(v);
  return size;
}

namespace {

/// Parses the shared "SVXT" + version + schema prefix of either format.
/// On success the reader is positioned at the rows/chunks payload and
/// `*uncompressed_bytes` carries the v2 header size (0 for v1).
Result<Schema> GetHeader(std::string_view bytes, Reader* r, uint32_t* version,
                         int64_t* uncompressed_bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an extent file (bad magic)");
  }
  if (!r->GetU32(version)) return Truncated(*r);
  if (*version != kVersion && *version != kColumnarVersion) {
    return Status::Unsupported(
        StrFormat("extent version %u (want %u or %u)", *version, kVersion,
                  kColumnarVersion));
  }
  *uncompressed_bytes = 0;
  if (*version == kColumnarVersion) {
    uint64_t raw = 0;
    if (!r->GetU64(&raw)) return Truncated(*r);
    *uncompressed_bytes = static_cast<int64_t>(raw);
  }
  return GetSchema(r, 0);
}

}  // namespace

Result<Table> DeserializeExtent(std::string_view bytes, const Document* doc) {
  Reader r(bytes.substr(sizeof(kMagic) <= bytes.size() ? sizeof(kMagic)
                                                       : bytes.size()));
  uint32_t version = 0;
  int64_t uncompressed = 0;
  Result<Schema> schema = GetHeader(bytes, &r, &version, &uncompressed);
  if (!schema.ok()) return schema.status();
  if (version == kColumnarVersion) {
    size_t pos = r.pos();
    std::string_view payload = bytes.substr(sizeof(kMagic));
    Result<ColumnarExtent> columnar =
        ColumnarExtent::FromBytes(payload, &pos, std::move(*schema));
    if (!columnar.ok()) return columnar.status();
    if (pos != payload.size()) {
      return Status::ParseError(
          StrFormat("trailing bytes at offset %zu", pos));
    }
    return columnar->Decode(doc);
  }
  Result<Table> table = GetRows(&r, *schema, doc, 0);
  if (!table.ok()) return table;
  if (!r.AtEnd()) {
    return Status::ParseError(
        StrFormat("trailing bytes at offset %zu", r.pos()));
  }
  return table;
}

std::string SerializeColumnarExtent(const ColumnarExtent& extent,
                                    int64_t uncompressed_bytes) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(kColumnarVersion, &out);
  PutU64(static_cast<uint64_t>(uncompressed_bytes), &out);
  PutSchema(extent.schema(), &out);
  extent.AppendBytes(&out);
  return out;
}

Result<ColumnarLoad> DeserializeExtentColumnar(std::string_view bytes,
                                               const Document* doc) {
  Reader r(bytes.substr(sizeof(kMagic) <= bytes.size() ? sizeof(kMagic)
                                                       : bytes.size()));
  uint32_t version = 0;
  int64_t uncompressed = 0;
  Result<Schema> schema = GetHeader(bytes, &r, &version, &uncompressed);
  if (!schema.ok()) return schema.status();
  ColumnarLoad load;
  if (version == kColumnarVersion) {
    size_t pos = r.pos();
    std::string_view payload = bytes.substr(sizeof(kMagic));
    Result<ColumnarExtent> columnar =
        ColumnarExtent::FromBytes(payload, &pos, std::move(*schema));
    if (!columnar.ok()) return columnar.status();
    if (pos != payload.size()) {
      return Status::ParseError(
          StrFormat("trailing bytes at offset %zu", pos));
    }
    load.columnar =
        std::make_shared<const ColumnarExtent>(std::move(*columnar));
    load.uncompressed_bytes = uncompressed;
    return load;
  }
  // Row-major v1: parsing decodes the rows, so hand them back along with a
  // fresh columnar encoding — the back-compat upgrade path for old stores.
  Result<Table> table = GetRows(&r, *schema, doc, 0);
  if (!table.ok()) return table.status();
  if (!r.AtEnd()) {
    return Status::ParseError(
        StrFormat("trailing bytes at offset %zu", r.pos()));
  }
  load.uncompressed_bytes = static_cast<int64_t>(bytes.size());
  load.columnar = std::make_shared<const ColumnarExtent>(
      ColumnarExtent::Encode(*table));
  load.decoded = std::make_shared<const Table>(std::move(*table));
  return load;
}

Result<ColumnarLoad> ReadExtentFileColumnar(const std::string& path,
                                            const Document* doc) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeExtentColumnar(*bytes, doc);
}

std::string EncodeTupleKey(const Tuple& tuple) {
  std::string key;
  for (const Value& v : tuple) EncodeValue(v, &key);
  return key;
}

Status RebindTupleContent(Tuple* tuple, const Document& doc) {
  for (Value& v : *tuple) {
    if (v.IsContent()) {
      const NodeRef& ref = v.AsContent();
      if (ref.doc == &doc) continue;
      SVX_CHECK(ref.doc != nullptr && ref.node != kInvalidNode);
      const OrdPath& id = ref.doc->ord_path(ref.node);
      NodeIndex node = doc.FindByOrdPath(id);
      if (node == kInvalidNode) {
        return Status::NotFound("content reference " + id.ToString() +
                                " not in the document");
      }
      v = Value(NodeRef{&doc, node});
    } else if (v.IsTable()) {
      const Table& nested = v.AsTable();
      bool has_content = false;
      for (const Tuple& row : nested.rows()) {
        for (const Value& cell : row) {
          if (cell.IsContent() || cell.IsTable()) {
            has_content = true;
            break;
          }
        }
        if (has_content) break;
      }
      if (!has_content) continue;
      Table copy(nested.schema());
      for (const Tuple& row : nested.rows()) {
        Tuple r = row;
        SVX_RETURN_IF_ERROR(RebindTupleContent(&r, doc));
        copy.AddRow(std::move(r));
      }
      v = Value(TablePtr(std::make_shared<const Table>(std::move(copy))));
    }
  }
  return Status::OK();
}

Status WriteExtentFile(const std::string& path, const Table& table) {
  return WriteFileBytes(path, SerializeExtent(table));
}

Result<Table> ReadExtentFile(const std::string& path, const Document* doc) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeExtent(*bytes, doc);
}

}  // namespace svx
