#include "src/viewstore/memory_budget.h"

#include <utility>

#include "src/observability/metrics.h"
#include "src/util/check.h"

namespace svx {

/// Budget-side state of one residency. All fields are guarded by the owning
/// budget's mu_ (the struct is only touched inside MemoryBudget methods).
struct MemoryBudget::Slot {
  TablePtr table;
  int64_t bytes = 0;
  int64_t compressed_bytes = 0;
  bool evictable = true;
  bool linked = false;
  std::list<Slot*>::iterator lru_pos;
};

int64_t MemoryBudget::resident_bytes() const {
  MutexLock lock(&mu_);
  return resident_;
}

void MemoryBudget::NoteReload(int64_t us) {
  reloads_.fetch_add(1, std::memory_order_relaxed);
  metrics::ExtentReloads()->Add(1);
  metrics::ExtentReloadUs()->Observe(us);
}

TablePtr MemoryBudget::Lookup(Slot* slot) {
  MutexLock lock(&mu_);
  if (slot->table != nullptr && slot->linked) {
    lru_.splice(lru_.begin(), lru_, slot->lru_pos);
    slot->lru_pos = lru_.begin();
  }
  return slot->table;
}

TablePtr MemoryBudget::Install(Slot* slot, TablePtr table, int64_t bytes,
                               bool evictable) {
  SVX_DCHECK(table != nullptr);
  MutexLock lock(&mu_);
  if (slot->table != nullptr) {
    // First wins: keep the already-installed table so references handed out
    // by earlier callers stay stable; just touch it.
    if (slot->linked) {
      lru_.splice(lru_.begin(), lru_, slot->lru_pos);
      slot->lru_pos = lru_.begin();
    }
    return slot->table;
  }
  slot->table = std::move(table);
  slot->bytes = bytes;
  slot->evictable = evictable;
  lru_.push_front(slot);
  slot->lru_pos = lru_.begin();
  slot->linked = true;
  resident_ += bytes;
  metrics::ExtentResidentBytes()->Add(bytes);
  EnforceLocked(slot);
  return slot->table;
}

void MemoryBudget::Drop(Slot* slot) {
  MutexLock lock(&mu_);
  if (slot->table == nullptr) return;
  resident_ -= slot->bytes;
  metrics::ExtentResidentBytes()->Add(-slot->bytes);
  if (slot->linked) {
    lru_.erase(slot->lru_pos);
    slot->linked = false;
  }
  slot->table.reset();
  slot->bytes = 0;
}

void MemoryBudget::Detach(Slot* slot) {
  TablePtr release;  // freed outside the lock
  {
    MutexLock lock(&mu_);
    if (slot->table != nullptr) {
      resident_ -= slot->bytes;
      metrics::ExtentResidentBytes()->Add(-slot->bytes);
      if (slot->linked) {
        lru_.erase(slot->lru_pos);
        slot->linked = false;
      }
      release = std::move(slot->table);
    }
  }
  if (slot->compressed_bytes != 0) {
    metrics::ExtentCompressedBytes()->Add(-slot->compressed_bytes);
    slot->compressed_bytes = 0;
  }
}

void MemoryBudget::EnforceLocked(const Slot* exempt) {
  if (limit_ <= 0) return;
  // Walk cold-to-hot, skipping pins we must not break: the slot being
  // installed right now (its caller may be about to hand out a reference)
  // and anything non-evictable.
  auto it = lru_.end();
  while (resident_ > limit_ && it != lru_.begin()) {
    --it;
    Slot* victim = *it;
    if (victim == exempt || !victim->evictable) continue;
    it = lru_.erase(it);
    victim->linked = false;
    resident_ -= victim->bytes;
    metrics::ExtentResidentBytes()->Add(-victim->bytes);
    victim->table.reset();
    victim->bytes = 0;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics::ExtentEvictions()->Add(1);
  }
}

ExtentResidency::ExtentResidency(std::shared_ptr<MemoryBudget> budget)
    : budget_(std::move(budget)), slot_(new MemoryBudget::Slot()) {
  SVX_CHECK(budget_ != nullptr);
}

ExtentResidency::~ExtentResidency() { budget_->Detach(slot_.get()); }

TablePtr ExtentResidency::Get() const { return budget_->Lookup(slot_.get()); }

TablePtr ExtentResidency::Install(TablePtr table, int64_t bytes,
                                  bool evictable) const {
  return budget_->Install(slot_.get(), std::move(table), bytes, evictable);
}

void ExtentResidency::Drop() const { budget_->Drop(slot_.get()); }

void ExtentResidency::SetCompressedBytes(int64_t bytes) const {
  metrics::ExtentCompressedBytes()->Add(bytes - slot_->compressed_bytes);
  slot_->compressed_bytes = bytes;
}

}  // namespace svx
