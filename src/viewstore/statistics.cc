#include "src/viewstore/statistics.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/viewstore/extent_io.h"

namespace svx {

namespace {

/// Length measure entering min_len/max_len (see header).
int64_t ValueLength(const Value& v) {
  if (v.IsString()) return static_cast<int64_t>(v.AsString().size());
  if (v.IsId()) return v.AsId().Depth();
  if (v.IsContent()) {
    const NodeRef& ref = v.AsContent();
    return ref.doc->ord_path(ref.node).Depth();
  }
  return v.AsTable().NumRows();
}

}  // namespace

const ColumnStats* ViewStats::Find(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

namespace {

/// Computes per-column stats over the concatenation of `tables` (all share
/// `schema`) without copying any rows.
void ComputeColumns(const Schema& schema,
                    const std::vector<const Table*>& tables,
                    ViewStats* stats) {
  for (int32_t c = 0; c < schema.size(); ++c) {
    ColumnStats col;
    col.name = schema.column(c).name;
    // Exact distinct via the stable deep cell encoding (hash sets over raw
    // Value hashes could undercount on collisions).
    std::unordered_set<std::string> seen;
    bool any = false;
    for (const Table* table : tables) {
      for (const Tuple& row : table->rows()) {
        const Value& v = row[static_cast<size_t>(c)];
        if (v.IsNull()) continue;
        ++col.non_null;
        int64_t len = ValueLength(v);
        if (!any) {
          col.min_len = col.max_len = len;
          any = true;
        } else {
          col.min_len = std::min(col.min_len, len);
          col.max_len = std::max(col.max_len, len);
        }
        if (v.IsTable()) col.nested_rows += v.AsTable().NumRows();
        std::string key;
        EncodeValue(v, &key);
        seen.insert(std::move(key));
      }
    }
    col.distinct = static_cast<int64_t>(seen.size());
    stats->columns.push_back(std::move(col));

    // Inner columns of a nested column: aggregate across all groups, so the
    // estimates survive an unnest (names stay unique per the ViewSchema
    // convention).
    if (schema.column(c).nested != nullptr) {
      std::vector<const Table*> groups;
      for (const Table* table : tables) {
        for (const Tuple& row : table->rows()) {
          const Value& v = row[static_cast<size_t>(c)];
          if (v.IsTable()) groups.push_back(&v.AsTable());
        }
      }
      ComputeColumns(*schema.column(c).nested, groups, stats);
    }
  }
}

}  // namespace

ViewStats ComputeViewStats(const Table& extent) {
  ViewStats stats;
  stats.num_rows = extent.NumRows();
  ComputeColumns(extent.schema(), {&extent}, &stats);
  return stats;
}

namespace {

/// Decodes column `c` of `extent` alone (other columns come back ⊥).
Table DecodeOneColumn(const ColumnarExtent& extent, int32_t c,
                      const Document* doc) {
  std::vector<bool> used(static_cast<size_t>(extent.num_columns()), false);
  used[static_cast<size_t>(c)] = true;
  Result<Table> decoded = extent.DecodeColumns(used, doc);
  SVX_CHECK_MSG(decoded.ok(), "stats decode of a columnar extent failed: " +
                                  decoded.status().message());
  return std::move(decoded).value();
}

/// ComputeColumns over one decoded column: the fallback for chunks whose
/// stats cannot be read off the encoding (id/content streams, raw cells,
/// nested group distincts).
void ScanColumnValues(const Table& decoded, int32_t c, ColumnStats* col) {
  std::unordered_set<std::string> seen;
  bool any = false;
  for (const Tuple& row : decoded.rows()) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.IsNull()) continue;
    ++col->non_null;
    int64_t len = ValueLength(v);
    if (!any) {
      col->min_len = col->max_len = len;
      any = true;
    } else {
      col->min_len = std::min(col->min_len, len);
      col->max_len = std::max(col->max_len, len);
    }
    if (v.IsTable()) col->nested_rows += v.AsTable().NumRows();
    std::string key;
    EncodeValue(v, &key);
    seen.insert(std::move(key));
  }
  col->distinct = static_cast<int64_t>(seen.size());
}

/// The columnar mirror of ComputeColumns: emits the same stats entries in
/// the same order, reading what it can off the chunk encodings.
void ComputeColumnarStats(const ColumnarExtent& extent, const Document* doc,
                          ViewStats* stats) {
  const Schema& schema = extent.schema();
  for (int32_t c = 0; c < schema.size(); ++c) {
    const ColumnChunkPtr& chunk = extent.column(c);
    ColumnStats col;
    col.name = schema.column(c).name;
    switch (chunk->encoding) {
      case ColumnChunk::kDict: {
        // The dictionary is exactly the column's distinct non-null values,
        // so distinct and the length bounds need no row scan at all.
        for (uint32_t code : chunk->codes) {
          if (code != ColumnChunk::kNullCode) ++col.non_null;
        }
        col.distinct = static_cast<int64_t>(chunk->dict.size());
        bool any = false;
        for (const std::string& s : chunk->dict) {
          int64_t len = static_cast<int64_t>(s.size());
          if (!any) {
            col.min_len = col.max_len = len;
            any = true;
          } else {
            col.min_len = std::min(col.min_len, len);
            col.max_len = std::max(col.max_len, len);
          }
        }
        break;
      }
      case ColumnChunk::kNested: {
        // Group counts come straight off the offset index; only the exact
        // distinct count needs the decoded groups (deep value encoding).
        bool any = false;
        for (int64_t i = 0; i < chunk->num_rows; ++i) {
          if (chunk->nulls[static_cast<size_t>(i)] != 0) continue;
          ++col.non_null;
          int64_t len = chunk->offsets[static_cast<size_t>(i) + 1] -
                        chunk->offsets[static_cast<size_t>(i)];
          if (!any) {
            col.min_len = col.max_len = len;
            any = true;
          } else {
            col.min_len = std::min(col.min_len, len);
            col.max_len = std::max(col.max_len, len);
          }
          col.nested_rows += len;
        }
        std::unordered_set<std::string> seen;
        Table decoded = DecodeOneColumn(extent, c, doc);
        for (const Tuple& row : decoded.rows()) {
          const Value& v = row[static_cast<size_t>(c)];
          if (v.IsNull()) continue;
          std::string key;
          EncodeValue(v, &key);
          seen.insert(std::move(key));
        }
        col.distinct = static_cast<int64_t>(seen.size());
        break;
      }
      case ColumnChunk::kIds:
      case ColumnChunk::kContent:
      case ColumnChunk::kRaw: {
        Table decoded = DecodeOneColumn(extent, c, doc);
        ScanColumnValues(decoded, c, &col);
        break;
      }
    }
    stats->columns.push_back(std::move(col));

    if (schema.column(c).nested != nullptr) {
      if (chunk->encoding == ColumnChunk::kNested && chunk->child != nullptr) {
        // The child extent is all groups' rows back to back — exactly the
        // cross-group aggregate ComputeColumns builds, dictionaries intact.
        ComputeColumnarStats(*chunk->child, doc, stats);
      } else {
        // Raw fallback chunk under a nested schema: gather the decoded
        // groups and aggregate them row-major.
        Table decoded = DecodeOneColumn(extent, c, doc);
        std::vector<const Table*> groups;
        for (const Tuple& row : decoded.rows()) {
          const Value& v = row[static_cast<size_t>(c)];
          if (v.IsTable()) groups.push_back(&v.AsTable());
        }
        ComputeColumns(*schema.column(c).nested, groups, stats);
      }
    }
  }
}

}  // namespace

ViewStats ComputeViewStats(const ColumnarExtent& extent, const Document* doc) {
  ViewStats stats;
  stats.num_rows = extent.num_rows();
  ComputeColumnarStats(extent, doc, &stats);
  return stats;
}

namespace {

/// Number of stats entries ComputeColumns emits for `schema` (own columns
/// plus, recursively, the inner columns of nested columns).
int64_t CountStatsColumns(const Schema& schema) {
  int64_t n = 0;
  for (int32_t c = 0; c < schema.size(); ++c) {
    ++n;
    if (schema.column(c).nested != nullptr) {
      n += CountStatsColumns(*schema.column(c).nested);
    }
  }
  return n;
}

/// Folds the additive counters of `rows` into the stats, mirroring the
/// ComputeColumns traversal order; `cursor` walks stats->columns.
void FoldRowsIntoColumns(const Schema& schema,
                         const std::vector<const Tuple*>& rows,
                         size_t* cursor, ViewStats* stats) {
  for (int32_t c = 0; c < schema.size(); ++c) {
    ColumnStats& col = stats->columns[(*cursor)++];
    for (const Tuple* row : rows) {
      const Value& v = (*row)[static_cast<size_t>(c)];
      if (v.IsNull()) continue;
      int64_t len = ValueLength(v);
      if (col.non_null == 0) {
        col.min_len = col.max_len = len;
      } else {
        col.min_len = std::min(col.min_len, len);
        col.max_len = std::max(col.max_len, len);
      }
      ++col.non_null;
      if (v.IsTable()) col.nested_rows += v.AsTable().NumRows();
    }
    if (schema.column(c).nested != nullptr) {
      std::vector<const Tuple*> inner;
      for (const Tuple* row : rows) {
        const Value& v = (*row)[static_cast<size_t>(c)];
        if (!v.IsTable()) continue;
        for (const Tuple& r : v.AsTable().rows()) inner.push_back(&r);
      }
      FoldRowsIntoColumns(*schema.column(c).nested, inner, cursor, stats);
    }
  }
}

/// Re-derives the exact distinct counts only (one encoding pass).
void RecomputeDistinct(const Schema& schema,
                       const std::vector<const Table*>& tables,
                       size_t* cursor, ViewStats* stats) {
  for (int32_t c = 0; c < schema.size(); ++c) {
    ColumnStats& col = stats->columns[(*cursor)++];
    std::unordered_set<std::string> seen;
    for (const Table* table : tables) {
      for (const Tuple& row : table->rows()) {
        const Value& v = row[static_cast<size_t>(c)];
        if (v.IsNull()) continue;
        std::string key;
        EncodeValue(v, &key);
        seen.insert(std::move(key));
      }
    }
    col.distinct = static_cast<int64_t>(seen.size());
    if (schema.column(c).nested != nullptr) {
      std::vector<const Table*> groups;
      for (const Table* table : tables) {
        for (const Tuple& row : table->rows()) {
          const Value& v = row[static_cast<size_t>(c)];
          if (v.IsTable()) groups.push_back(&v.AsTable());
        }
      }
      RecomputeDistinct(*schema.column(c).nested, groups, cursor, stats);
    }
  }
}

}  // namespace

ViewStats RefreshViewStats(const ViewStats& stats, const Table& extent,
                           int64_t deleted_rows,
                           const std::vector<Tuple>& inserted) {
  if (deleted_rows > 0) return ComputeViewStats(extent);
  if (inserted.empty()) return stats;
  if (static_cast<int64_t>(stats.columns.size()) !=
      CountStatsColumns(extent.schema())) {
    // Stats do not line up with the schema (e.g. computed elsewhere);
    // recompute rather than guess the traversal.
    return ComputeViewStats(extent);
  }
  ViewStats out = stats;
  out.num_rows += static_cast<int64_t>(inserted.size());
  std::vector<const Tuple*> rows;
  rows.reserve(inserted.size());
  for (const Tuple& t : inserted) rows.push_back(&t);
  size_t cursor = 0;
  FoldRowsIntoColumns(extent.schema(), rows, &cursor, &out);
  cursor = 0;
  RecomputeDistinct(extent.schema(), {&extent}, &cursor, &out);
  return out;
}

namespace {

/// Folds `rows` into the cache (and, when `stats` is given, its additive
/// counters) with multiplicity `sign`, mirroring the ComputeColumns
/// traversal; `cursor` walks the flattened stats/cache columns.
void FoldRowsIntoCounts(const Schema& schema,
                        const std::vector<const Tuple*>& rows, size_t* cursor,
                        ValueCountCache* cache, int64_t sign,
                        ViewStats* stats) {
  for (int32_t c = 0; c < schema.size(); ++c) {
    size_t at = (*cursor)++;
    ValueCountCache::Column& col = cache->columns[at];
    ColumnStats* cs = stats != nullptr ? &stats->columns[at] : nullptr;
    for (const Tuple* row : rows) {
      const Value& v = (*row)[static_cast<size_t>(c)];
      if (v.IsNull()) continue;
      std::string key;
      EncodeValue(v, &key);
      auto vit = col.values.try_emplace(std::move(key), 0).first;
      vit->second += sign;
      SVX_DCHECK_MSG(vit->second >= 0, "value count underflow in stats cache");
      if (vit->second == 0) col.values.erase(vit);
      int64_t len = ValueLength(v);
      auto lit = col.lengths.try_emplace(len, 0).first;
      lit->second += sign;
      if (lit->second == 0) col.lengths.erase(lit);
      if (cs != nullptr) {
        cs->non_null += sign;
        if (v.IsTable()) cs->nested_rows += sign * v.AsTable().NumRows();
      }
    }
    if (cs != nullptr) {
      cs->distinct = static_cast<int64_t>(col.values.size());
      cs->min_len = col.lengths.empty() ? 0 : col.lengths.begin()->first;
      cs->max_len = col.lengths.empty() ? 0 : col.lengths.rbegin()->first;
    }
    if (schema.column(c).nested != nullptr) {
      std::vector<const Tuple*> inner;
      for (const Tuple* row : rows) {
        const Value& v = (*row)[static_cast<size_t>(c)];
        if (!v.IsTable()) continue;
        for (const Tuple& r : v.AsTable().rows()) inner.push_back(&r);
      }
      FoldRowsIntoCounts(*schema.column(c).nested, inner, cursor, cache, sign,
                         stats);
    }
  }
}

std::vector<const Tuple*> RowPointers(const std::vector<Tuple>& rows) {
  std::vector<const Tuple*> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(&t);
  return out;
}

}  // namespace

ValueCountCache BuildValueCounts(const Table& extent) {
  ValueCountCache cache;
  cache.columns.resize(
      static_cast<size_t>(CountStatsColumns(extent.schema())));
  std::vector<const Tuple*> rows = RowPointers(extent.rows());
  size_t cursor = 0;
  FoldRowsIntoCounts(extent.schema(), rows, &cursor, &cache, +1, nullptr);
  return cache;
}

ViewStats RefreshViewStatsCached(const ViewStats& stats, const Schema& schema,
                                 ValueCountCache* cache,
                                 const std::vector<Tuple>& deleted,
                                 const std::vector<Tuple>& inserted) {
  SVX_CHECK_MSG(
      static_cast<int64_t>(cache->columns.size()) ==
              CountStatsColumns(schema) &&
          cache->columns.size() == stats.columns.size(),
      "value-count cache does not line up with the extent schema");
  ViewStats out = stats;
  out.num_rows += static_cast<int64_t>(inserted.size()) -
                  static_cast<int64_t>(deleted.size());
  size_t cursor = 0;
  FoldRowsIntoCounts(schema, RowPointers(deleted), &cursor, cache, -1, &out);
  cursor = 0;
  FoldRowsIntoCounts(schema, RowPointers(inserted), &cursor, cache, +1, &out);
  return out;
}

std::string ViewStatsToString(const ViewStats& stats) {
  std::string out = StrFormat("rows %lld\n",
                              static_cast<long long>(stats.num_rows));
  for (const ColumnStats& c : stats.columns) {
    out += StrFormat("col %s %lld %lld %lld %lld %lld\n", c.name.c_str(),
                     static_cast<long long>(c.non_null),
                     static_cast<long long>(c.distinct),
                     static_cast<long long>(c.min_len),
                     static_cast<long long>(c.max_len),
                     static_cast<long long>(c.nested_rows));
  }
  return out;
}

Result<ViewStats> ParseViewStats(std::string_view text) {
  ViewStats stats;
  bool saw_rows = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, ' ');
    if (parts[0] == "rows" && parts.size() == 2) {
      std::optional<int64_t> n = ParseInt64(parts[1]);
      if (!n) return Status::ParseError("bad rows line: " + raw);
      stats.num_rows = *n;
      saw_rows = true;
    } else if (parts[0] == "col" && parts.size() == 7) {
      ColumnStats c;
      c.name = parts[1];
      std::optional<int64_t> vals[5];
      for (int i = 0; i < 5; ++i) {
        vals[i] = ParseInt64(parts[static_cast<size_t>(i) + 2]);
        if (!vals[i]) return Status::ParseError("bad col line: " + raw);
      }
      c.non_null = *vals[0];
      c.distinct = *vals[1];
      c.min_len = *vals[2];
      c.max_len = *vals[3];
      c.nested_rows = *vals[4];
      stats.columns.push_back(std::move(c));
    } else {
      return Status::ParseError("bad stats line: " + raw);
    }
  }
  if (!saw_rows) return Status::ParseError("stats text missing 'rows' line");
  return stats;
}

}  // namespace svx
