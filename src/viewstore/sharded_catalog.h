// Sharded materialized-view catalog: partitions the document into N
// ORDPATH ranges cut at top-level subtree boundaries (shard_router.h) and
// runs one independent ViewCatalog per range — each with its own writer
// mutex, epoch stream, store directory and (optionally) write-ahead delta
// log — plus one "global" catalog holding the views whose rows cannot be
// attributed to a single range (AnalyzeViewAnchor).
//
// Writes: ApplyUpdate routes each DocumentDelta to the shard owning its
// region (delta_router.h). In async mode every shard has a writer lane — a
// queue drained by a background thread that coalesces everything queued
// into ONE ApplyUpdateBatch pass publishing ONE epoch — so a burst of K
// deltas against one shard costs one maintenance pass, and writers against
// different shards never contend on a mutex.
//
// Reads: Snapshot() pins one CatalogSnapshot per shard (scatter);
// ShardedSnapshot::ExecuteQuery rewrites the query per shard through
// shard-local caches and view indexes, executes the per-shard plans
// (optionally in parallel), and merges the slices in document order by the
// anchor ORDPATH (gather). Queries that are not shard-local (no anchoring
// return id, or nodes off the anchor spine) are served by the global
// catalog instead.
//
// On-disk layout under the store directory:
//   shards.txt     one boundary ORDPATH per line (N-1 lines)
//   shard-<i>/     per-shard ViewCatalog store (manifest, extents, WAL)
//   global/        the global catalog's store
// Open() re-creates the router from shards.txt and Load()s every catalog,
// which replays each shard's delta log independently.
#ifndef SVX_VIEWSTORE_SHARDED_CATALOG_H_
#define SVX_VIEWSTORE_SHARDED_CATALOG_H_

#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/viewstore/shard_router.h"
#include "src/viewstore/view_catalog.h"
#include "src/xml/update.h"

namespace svx {

struct ShardedCatalogOptions {
  /// Requested shard count; the effective count is capped by the number of
  /// top-level subtrees in the document (see ShardRouter::Partition).
  int num_shards = 4;
  /// Store directory (shards.txt + one subdirectory per catalog). Empty =
  /// in-memory.
  std::string dir;
  /// Per-shard write-ahead delta log (see view_catalog.h). Requires dir.
  bool enable_delta_log = false;
  /// Background writer lanes: ApplyUpdate enqueues and returns, a per-shard
  /// thread drains the queue in coalesced batches. When false, ApplyUpdate
  /// applies synchronously in the caller's thread.
  bool async = false;
  /// One decoded-extent memory budget shared by every shard catalog and the
  /// global catalog (view_catalog.h); <= 0 = unlimited.
  int64_t memory_budget_bytes = 0;
};

/// One pinned CatalogSnapshot per shard (plus the global catalog's), taken
/// without any cross-shard barrier: shards publish epochs independently, so
/// the per-shard snapshots may pin different document versions — readers
/// get per-shard consistency, not a cross-shard transaction.
class ShardedSnapshot {
 public:
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const std::shared_ptr<const CatalogSnapshot>& shard(int i) const {
    return shards_[static_cast<size_t>(i)];
  }
  const std::shared_ptr<const CatalogSnapshot>& global() const {
    return global_;
  }

  /// Scatter-gather query execution. Shard-local queries (the pattern has
  /// an anchoring return id and every node on its spine — the same test
  /// that shards views) are rewritten and executed per shard through each
  /// shard's caches, then merged in document order; other queries are
  /// served by the global catalog. `parallel` executes the per-shard plans
  /// on one thread per shard. Every pinned snapshot must carry a bound
  /// document and summary (BindDocument / shared-pointer Load).
  [[nodiscard]] Result<Table> ExecuteQuery(const Pattern& query,
                                           bool parallel = false) const;

  /// Sum of the pinned epochs across shards and global — the monotone
  /// counter benchmarks diff to count epochs published.
  uint64_t EpochSum() const;

 private:
  friend class ShardedCatalog;
  std::vector<std::shared_ptr<const CatalogSnapshot>> shards_;
  std::shared_ptr<const CatalogSnapshot> global_;
};

class ShardedCatalog {
 public:
  /// Partitions `doc` and creates empty shard catalogs bound to
  /// doc/summary. Writes shards.txt when options.dir is set.
  static Result<std::unique_ptr<ShardedCatalog>> Create(
      const ShardedCatalogOptions& options,
      std::shared_ptr<const Document> doc,
      std::shared_ptr<const Summary> summary);

  /// Recovers a store Create()d earlier: reads shards.txt, Load()s every
  /// catalog (replaying per-shard delta logs) against `doc`.
  static Result<std::unique_ptr<ShardedCatalog>> Open(
      const ShardedCatalogOptions& options,
      std::shared_ptr<const Document> doc,
      std::shared_ptr<const Summary> summary);

  /// Stops the writer lanes, draining their queues first.
  ~ShardedCatalog();

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  int num_shards() const { return router_->num_shards(); }
  const ShardRouter& router() const { return *router_; }

  /// Evaluates `def` over `doc` once and registers the extent with every
  /// shard (each shard's partition filter keeps only its rows) — or, when
  /// the view is not partitionable, with the global catalog holding the
  /// full extent. Call at setup or after Flush(), with the latest document.
  [[nodiscard]] Status Materialize(const ViewDef& def, const Document& doc);

  /// Routes `delta` to the shard owning its region (and to the global
  /// catalog when it holds views). Sync mode applies in this thread; async
  /// mode enqueues onto the shard's writer lane and returns — a lane drains
  /// its whole queue into one coalesced maintenance pass per wakeup.
  /// `new_doc` must be delta.new_doc.
  [[nodiscard]] Status ApplyUpdate(const DocumentDelta& delta,
                                   std::shared_ptr<const Document> new_doc,
                                   std::shared_ptr<const Summary> new_summary,
                                   TraceSpan* span = nullptr);

  /// Async mode: blocks until every lane's queue is empty and no batch is
  /// in flight, then returns the first sticky lane error (if any). Sync
  /// mode: returns OK immediately.
  [[nodiscard]] Status Flush();

  /// Checkpoints every catalog (Flush()es first in async mode): extents are
  /// persisted and each shard's delta log rotates and truncates.
  [[nodiscard]] Status Save();

  /// Pins one snapshot per shard plus the global catalog's (no barrier —
  /// see ShardedSnapshot).
  ShardedSnapshot Snapshot() const;

  /// One JSON object aggregating per-shard serving state: each shard's
  /// DebugMetrics() object (epoch id/age, WAL depth), the global catalog's,
  /// and cross-shard aggregates (epoch_sum, max_epoch_age_us,
  /// wal_depth_total). Also refreshes the per-shard
  /// svx_shard_epoch_age_us{shard="i"} gauges.
  std::string DebugMetrics() const;

  /// Direct access for tests and benchmarks.
  ViewCatalog* shard_catalog(int i) {
    return shards_[static_cast<size_t>(i)].get();
  }
  ViewCatalog* global_catalog() { return global_.get(); }

 private:
  /// One queued update: the delta plus shared ownership of its successor
  /// document/summary, pinned until the lane's batch publishes them.
  struct Pending {
    DocumentDelta delta;
    std::shared_ptr<const Document> new_doc;
    std::shared_ptr<const Summary> new_summary;
  };

  /// One writer lane: a queue drained by one background thread. The lane
  /// mutex orders producers; draining the whole queue per wakeup is the
  /// multi-writer batching.
  struct Lane {
    Mutex mu;
    CondVar cv;
    std::deque<Pending> queue SVX_GUARDED_BY(mu);
    bool busy SVX_GUARDED_BY(mu) = false;
    bool stop SVX_GUARDED_BY(mu) = false;
    Status error SVX_GUARDED_BY(mu);  // first failed batch, sticky
    std::thread thread;
  };

  ShardedCatalog(const ShardedCatalogOptions& options,
                 std::shared_ptr<const ShardRouter> router);

  void StartLanes();
  void LaneLoop(Lane* lane, ViewCatalog* catalog);
  Status EnqueueTo(Lane* lane, const DocumentDelta& delta,
                   std::shared_ptr<const Document> new_doc,
                   std::shared_ptr<const Summary> new_summary);

  ShardedCatalogOptions options_;
  std::shared_ptr<const ShardRouter> router_;
  std::vector<std::unique_ptr<ViewCatalog>> shards_;
  std::unique_ptr<ViewCatalog> global_;
  /// lanes_[i] drives shards_[i]; lanes_.back() drives global_ (async only).
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace svx

#endif  // SVX_VIEWSTORE_SHARDED_CATALOG_H_
