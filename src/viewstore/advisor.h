// Greedy workload-driven view selection under a size budget (cf.
// "Materialized View Selection by Query Clustering in XML Data Warehouses"):
// candidate views are drawn from the workload (each query itself, its
// predicate-stripped generalization, and 2-node base views over the labels
// the workload touches), each candidate is materialized once to measure its
// size and statistics, and candidates are picked greedily by marginal
// benefit — the statistics-estimated cost saving, over all workload queries,
// of answering a query from the view (decided by the containment-based
// rewriter) instead of scanning the document.
#ifndef SVX_VIEWSTORE_ADVISOR_H_
#define SVX_VIEWSTORE_ADVISOR_H_

#include <string>
#include <vector>

#include "src/rewriting/rewriter.h"
#include "src/summary/summary.h"
#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

struct AdvisorOptions {
  /// Total serialized-extent budget for the proposed view set.
  int64_t size_budget_bytes = 1 << 20;
  /// Hard cap on the number of proposed views.
  size_t max_views = 8;
  /// Include predicate-stripped generalizations of workload queries.
  bool generalized_candidates = true;
  /// Include 2-node base views for each label the workload mentions.
  bool base_view_candidates = true;
  /// Rewriter configuration for the can-this-view-answer-this-query tests
  /// (stop_at_first is overridden; keep the budgets small).
  RewriterOptions rewriter;
};

/// One selected view with its selection-time accounting.
struct AdvisedView {
  ViewDef def;
  int64_t bytes = 0;
  double benefit = 0;           // marginal cost saving when selected
  std::vector<size_t> queries;  // workload indexes this view improved
};

struct AdvisorProposal {
  std::vector<AdvisedView> chosen;
  int64_t total_bytes = 0;
  double total_benefit = 0;
  size_t candidates_considered = 0;
};

/// Proposes a view set for `workload` under the options' budget. Benefit is
/// estimated per (candidate, query) via single-view rewriting; queries no
/// candidate can answer keep their document-scan baseline.
AdvisorProposal AdviseViews(const std::vector<Pattern>& workload,
                            const Summary& summary, const Document& doc,
                            const AdvisorOptions& options);

}  // namespace svx

#endif  // SVX_VIEWSTORE_ADVISOR_H_
