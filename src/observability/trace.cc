#include "src/observability/trace.h"

#include "src/util/json_writer.h"
#include "src/util/strings.h"

namespace svx {

TraceSpan* TraceSpan::StartChild(std::string_view name) {
  children_.push_back(std::unique_ptr<TraceSpan>(new TraceSpan(name)));
  return children_.back().get();
}

void TraceSpan::End() {
  if (ended_) return;
  end_ = Clock::now();
  ended_ = true;
}

int64_t TraceSpan::duration_us() const {
  Clock::time_point end = ended_ ? end_ : Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
      .count();
}

void TraceSpan::AddAttr(std::string_view key, int64_t value) {
  attrs_.push_back({std::string(key),
                    StrFormat("%lld", static_cast<long long>(value)), false});
}

void TraceSpan::AddAttr(std::string_view key, double value) {
  attrs_.push_back({std::string(key), StrFormat("%.3f", value), false});
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  attrs_.push_back({std::string(key), std::string(value), true});
}

const TraceSpan* TraceSpan::FindChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name_ == name) return c.get();
  }
  return nullptr;
}

void TraceSpan::RenderJson(JsonWriter* w) const {
  w->BeginObject();
  w->KV("name", std::string_view(name_));
  w->KV("duration_us", duration_us());
  if (!attrs_.empty()) {
    w->Key("attrs").BeginObject();
    for (const Attr& a : attrs_) {
      w->Key(a.key);
      if (a.quoted) {
        w->Value(std::string_view(a.value));
      } else {
        w->RawNumber(a.value);  // pre-formatted by AddAttr
      }
    }
    w->EndObject();
  }
  if (!children_.empty()) {
    w->Key("children").BeginArray();
    for (const auto& c : children_) c->RenderJson(w);
    w->EndArray();
  }
  w->EndObject();
}

std::string Trace::RenderJson() {
  root_.End();
  JsonWriter w;
  root_.RenderJson(&w);
  std::string out = w.str();
  out += '\n';
  return out;
}

}  // namespace svx
