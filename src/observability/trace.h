// Per-query trace spans: a tree of timed, attributed scopes covering the
// serving path (cache lookup → rewrite phases → containment → plan
// execution), rendered to JSON.
//
// Tracing is opt-in and null-tolerant: every hook is a `TraceSpan*` that
// defaults to nullptr, and ScopedSpan built on a null parent is an inert
// shell, so instrumented code carries no branches. The expected cost of a
// disabled span is two pointer checks.
//
// A Trace (and its span tree) belongs to one query on one thread — the tree
// is deliberately NOT thread-safe, matching the single-threaded execution of
// a query inside a snapshot. Do not share a TraceSpan across threads.
#ifndef SVX_OBSERVABILITY_TRACE_H_
#define SVX_OBSERVABILITY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace svx {

class JsonWriter;

/// One node of the span tree. Created via Trace::root() or
/// TraceSpan::StartChild; spans self-time from construction to End() (or to
/// render time if never ended).
class TraceSpan {
 public:
  TraceSpan* StartChild(std::string_view name);

  /// Stops the clock. Idempotent; ScopedSpan calls this from its destructor.
  void End();

  void AddAttr(std::string_view key, int64_t value);
  void AddAttr(std::string_view key, uint64_t value) {
    AddAttr(key, static_cast<int64_t>(value));
  }
  void AddAttr(std::string_view key, double value);
  void AddAttr(std::string_view key, std::string_view value);
  void AddAttr(std::string_view key, const char* value) {
    AddAttr(key, std::string_view(value));
  }

  const std::string& name() const { return name_; }
  int64_t duration_us() const;
  const std::vector<std::unique_ptr<TraceSpan>>& children() const {
    return children_;
  }

  /// Finds a direct child by name; nullptr when absent. Test helper.
  const TraceSpan* FindChild(std::string_view name) const;

  /// {"name": ..., "duration_us": ..., "attrs": {...}, "children": [...]}
  /// (attrs/children omitted when empty).
  void RenderJson(JsonWriter* w) const;

 private:
  friend class Trace;
  using Clock = std::chrono::steady_clock;

  explicit TraceSpan(std::string_view name)
      : name_(name), start_(Clock::now()) {}

  struct Attr {
    std::string key;
    std::string value;  // pre-formatted
    bool quoted;        // string attrs render quoted, numeric ones bare
  };

  std::string name_;
  Clock::time_point start_;
  Clock::time_point end_{};
  bool ended_ = false;
  std::vector<Attr> attrs_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

/// Owns a span tree for one traced query.
class Trace {
 public:
  explicit Trace(std::string_view name) : root_(name) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  TraceSpan* root() { return &root_; }
  const TraceSpan& root() const { return root_; }

  /// Renders the whole tree; ends the root first so its duration is final.
  std::string RenderJson();

 private:
  TraceSpan root_;
};

/// RAII span: opens a child of `parent` on construction, ends it on scope
/// exit. With a null parent every operation is a no-op, which is how the
/// untraced fast path stays branch-free at call sites.
class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, std::string_view name)
      : span_(parent != nullptr ? parent->StartChild(name) : nullptr) {}
  ~ScopedSpan() {
    if (span_ != nullptr) span_->End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The underlying span — nullptr when tracing is off. Pass as the parent
  /// of nested spans.
  TraceSpan* get() const { return span_; }

  template <typename T>
  void Attr(std::string_view key, T value) {
    if (span_ != nullptr) span_->AddAttr(key, value);
  }

 private:
  TraceSpan* const span_;
};

}  // namespace svx

#endif  // SVX_OBSERVABILITY_TRACE_H_
