#include "src/observability/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/json_writer.h"
#include "src/util/strings.h"

namespace svx {

namespace internal {

size_t ThreadStripeIndex() {
  static std::atomic<size_t> next{0};
  // Round-robin assignment on first use gives adjacent worker threads
  // distinct stripes; a thread keeps its stripe for its lifetime.
  static thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

int64_t Histogram::Count() const {
  int64_t n = 0;
  for (size_t b = 0; b < kBuckets; ++b) n += BucketCount(b);
  return n;
}

double Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  return std::ldexp(1.0, static_cast<int>(b)) - 1;  // 2^b - 1
}

double Histogram::Quantile(double p) const {
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = BucketCount(b);
    total += counts[b];
  }
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based; the bucket whose cumulative
  // count reaches it holds the quantile.
  double rank = std::max(1.0, p * static_cast<double>(total));
  int64_t cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(cum + counts[b]) >= rank) {
      if (b == 0) return 0;
      double lower = std::ldexp(1.0, static_cast<int>(b) - 1);  // 2^(b-1)
      double width = lower;  // bucket spans [2^(b-1), 2^b)
      double within = (rank - static_cast<double>(cum)) /
                      static_cast<double>(counts[b]);
      return lower + within * width;
    }
    cum += counts[b];
  }
  return BucketUpperBound(kBuckets - 1);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(std::string_view name,
                                                    std::string_view help,
                                                    Kind kind) {
  MutexLock lock(&mu_);
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = std::string(help);
    switch (kind) {
      case Kind::kCounter: e.counter = &counters_.emplace_back(); break;
      case Kind::kGauge: e.gauge = &gauges_.emplace_back(); break;
      case Kind::kHistogram: e.histogram = &histograms_.emplace_back(); break;
    }
  }
  SVX_CHECK_MSG(e.kind == kind, "metric re-registered with a different kind");
  return &e;
}

Counter* MetricRegistry::counter(std::string_view name,
                                 std::string_view help) {
  return FindOrCreate(name, help, Kind::kCounter)->counter;
}

Gauge* MetricRegistry::gauge(std::string_view name, std::string_view help) {
  return FindOrCreate(name, help, Kind::kGauge)->gauge;
}

Histogram* MetricRegistry::histogram(std::string_view name,
                                     std::string_view help) {
  return FindOrCreate(name, help, Kind::kHistogram)->histogram;
}

namespace {

std::string FormatValue(double v) {
  // Integral values (the common case: counts, microsecond sums) print
  // without a fractional part; interpolated quantiles keep three digits.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.3f", v);
}

void RenderHistogramText(const std::string& name, const Histogram& h,
                         std::string* out) {
  size_t last = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.BucketCount(b) > 0) last = b;
  }
  int64_t cum = 0;
  for (size_t b = 0; b <= last; ++b) {
    cum += h.BucketCount(b);
    *out += StrFormat("%s_bucket{le=\"%s\"} %lld\n", name.c_str(),
                      FormatValue(Histogram::BucketUpperBound(b)).c_str(),
                      static_cast<long long>(cum));
  }
  // Buckets past `last` are empty, so cum already equals the total count.
  *out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", name.c_str(),
                    static_cast<long long>(cum));
  *out += StrFormat("%s_sum %lld\n", name.c_str(),
                    static_cast<long long>(h.Sum()));
  *out += StrFormat("%s_count %lld\n", name.c_str(),
                    static_cast<long long>(cum));
}

}  // namespace

std::string MetricRegistry::RenderPrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  // Labeled series (`base{shard="0"}`) share one Prometheus family with
  // their base name; HELP/TYPE must appear once per family, not once per
  // series. The map's sort order keeps a family's series adjacent ('{'
  // collates after every metric-name character), so tracking the previous
  // family name is enough to dedupe.
  std::string prev_family;
  for (const auto& [name, e] : entries_) {
    std::string family = name.substr(0, name.find('{'));
    if (family != prev_family) {
      prev_family = family;
      if (!e.help.empty()) {
        out += StrFormat("# HELP %s %s\n", family.c_str(), e.help.c_str());
      }
      switch (e.kind) {
        case Kind::kCounter:
          out += StrFormat("# TYPE %s counter\n", family.c_str());
          break;
        case Kind::kGauge:
          out += StrFormat("# TYPE %s gauge\n", family.c_str());
          break;
        case Kind::kHistogram:
          out += StrFormat("# TYPE %s histogram\n", family.c_str());
          break;
      }
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += StrFormat("%s %lld\n", name.c_str(),
                         static_cast<long long>(e.counter->Value()));
        break;
      case Kind::kGauge:
        out += StrFormat("%s %lld\n", name.c_str(),
                         static_cast<long long>(e.gauge->Value()));
        break;
      case Kind::kHistogram:
        // Histograms are never registered with labels (the _bucket/_sum
        // suffixes would collide with the label syntax).
        RenderHistogramText(name, *e.histogram, &out);
        break;
    }
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  MutexLock lock(&mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, e] : entries_) {
    if (e.kind == Kind::kCounter) w.KV(name, e.counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, e] : entries_) {
    if (e.kind == Kind::kGauge) w.KV(name, e.gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kHistogram) continue;
    const Histogram& h = *e.histogram;
    w.Key(name).BeginObject();
    w.KV("count", h.Count());
    w.KV("sum", h.Sum());
    w.KV("p50", h.Quantile(0.50));
    w.KV("p90", h.Quantile(0.90));
    w.KV("p99", h.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

namespace metrics {

// Each accessor registers on first call and caches the handle; the names
// below are the complete standard catalog (README "Observability" documents
// the same list).

Counter* RewriteCalls() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_calls_total", "Rewriter::Rewrite invocations");
  return m;
}
Counter* RewriteResults() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_results_total", "Rewritings returned across all calls");
  return m;
}
Counter* RewriteCandidatesBuilt() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_candidates_built_total",
      "View-pattern match candidates constructed");
  return m;
}
Counter* RewriteCandidatesPruned() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_candidates_pruned_total",
      "Candidates discarded by coverage/index pruning");
  return m;
}
Counter* RewriteEquivalenceTests() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_equivalence_tests_total",
      "Containment-based equivalence tests run by the rewriter");
  return m;
}
Histogram* RewriteLatencyUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_rewrite_latency_us", "End-to-end Rewriter::Rewrite latency (us)");
  return m;
}
Counter* RewriteCacheHits() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_cache_hits_total", "RewriteCache lookups served warm");
  return m;
}
Counter* RewriteCacheMisses() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_rewrite_cache_misses_total",
      "RewriteCache lookups that fell through to the rewriter");
  return m;
}

Counter* PlansGenerated() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_plans_generated_total",
      "Partial plans constructed by the rewrite plan enumeration");
  return m;
}

Counter* PlansDominated() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_plans_dominated_total",
      "Partial plans discarded by the enumerator's dominance check");
  return m;
}

Histogram* PlanEnumLatencyUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_plan_enum_us", "Plan-enumeration phase latency (us)");
  return m;
}

Counter* ContainmentMemoHits() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_containment_memo_hits_total",
      "Containment decisions answered from the memo");
  return m;
}
Counter* ContainmentMemoMisses() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_containment_memo_misses_total",
      "Containment decisions computed and memoized");
  return m;
}

Counter* MaintenancePasses() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_passes_total", "ApplyUpdate maintenance passes");
  return m;
}
Counter* MaintenanceViewsTouched() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_views_touched_total",
      "Views whose extent changed during maintenance");
  return m;
}
Counter* MaintenanceViewsRebuilt() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_views_rebuilt_total",
      "Views maintained by full rematerialization");
  return m;
}
Counter* MaintenanceViewsShared() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_views_shared_total",
      "Extents carried into the successor epoch unchanged");
  return m;
}
Counter* MaintenanceTuplesInserted() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_tuples_inserted_total",
      "Delta tuples inserted into view extents");
  return m;
}
Counter* MaintenanceTuplesDeleted() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_maintenance_tuples_deleted_total",
      "Delta tuples deleted from view extents");
  return m;
}
Histogram* MaintenanceApplyLatencyUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_maintenance_apply_latency_us",
      "ApplyUpdate latency, delta evaluation through publish (us)");
  return m;
}

Gauge* EpochCurrent() {
  static Gauge* const m = MetricRegistry::Global().gauge(
      "svx_epoch_current", "Epoch id of the published catalog snapshot");
  return m;
}
Counter* EpochPublishes() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_epoch_publish_total", "Catalog snapshot publications");
  return m;
}
Gauge* EpochAgeUs() {
  static Gauge* const m = MetricRegistry::Global().gauge(
      "svx_epoch_age_us",
      "Age of the published snapshot (us); refreshed by DebugMetrics()");
  return m;
}
Gauge* EpochsLive() {
  static Gauge* const m = MetricRegistry::Global().gauge(
      "svx_epochs_live",
      "Live CatalogSnapshot epochs (current + retired ones pinned by readers)");
  return m;
}
Counter* SnapshotAcquisitions() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_snapshot_acquisitions_total", "ViewCatalog::Snapshot() calls");
  return m;
}
Histogram* EpochPublishLagUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_epoch_publish_lag_us",
      "Maintenance start to epoch publish lag (us)");
  return m;
}

Counter* ExecutorRuns() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_executor_runs_total", "Plan executions");
  return m;
}
Counter* ExecutorRowsScanned() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_executor_rows_scanned_total", "Rows read from view extents");
  return m;
}
Counter* ExecutorRowsEmitted() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_executor_rows_emitted_total", "Rows in executed plans' results");
  return m;
}
Histogram* ExecutorLatencyUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_executor_latency_us", "Plan execution latency (us)");
  return m;
}

Counter* PersistBytesWritten() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_persist_bytes_written_total",
      "Bytes written to the on-disk store (extents, stats, manifest)");
  return m;
}
Counter* PersistFilesWritten() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_persist_files_written_total", "Files written to the on-disk store");
  return m;
}

Gauge* ExtentResidentBytes() {
  static Gauge* const m = MetricRegistry::Global().gauge(
      "svx_extent_resident_bytes",
      "Decoded (row-major) extent bytes currently resident across all "
      "memory budgets");
  return m;
}
Gauge* ExtentCompressedBytes() {
  static Gauge* const m = MetricRegistry::Global().gauge(
      "svx_extent_compressed_bytes",
      "Serialized columnar extent bytes held by live stored views");
  return m;
}
Counter* ExtentEvictions() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_extent_evictions_total",
      "Decoded extents evicted by memory-budget pressure");
  return m;
}
Counter* ExtentReloads() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_extent_reloads_total",
      "Extents decoded back from columnar storage after eviction (or first "
      "cold use)");
  return m;
}
Histogram* ExtentReloadUs() {
  static Histogram* const m = MetricRegistry::Global().histogram(
      "svx_extent_reload_us", "Latency of decoding an extent from columnar "
      "storage (us)");
  return m;
}

Counter* DeltasCoalesced() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_deltas_coalesced_total",
      "Queued document deltas folded into an already-pending maintenance "
      "batch instead of publishing their own epoch");
  return m;
}
Counter* DeltasApplied() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_deltas_applied_total",
      "Document deltas applied across all shards");
  return m;
}
Counter* WalBytesWritten() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_wal_bytes_total", "Bytes appended to write-ahead delta logs");
  return m;
}
Counter* WalRecordsAppended() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_wal_records_total", "Records appended to write-ahead delta logs");
  return m;
}
Counter* WalReplays() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_wal_replays_total",
      "Write-ahead log records replayed during catalog recovery");
  return m;
}
Counter* WalTornTruncations() {
  static Counter* const m = MetricRegistry::Global().counter(
      "svx_wal_torn_truncations_total",
      "Torn final WAL records truncated at the last valid checksum");
  return m;
}

Counter* ShardCounter(std::string_view base, int shard,
                      std::string_view help) {
  return MetricRegistry::Global().counter(
      StrFormat("%s{shard=\"%d\"}", std::string(base).c_str(), shard), help);
}
Gauge* ShardGauge(std::string_view base, int shard, std::string_view help) {
  return MetricRegistry::Global().gauge(
      StrFormat("%s{shard=\"%d\"}", std::string(base).c_str(), shard), help);
}

Gauge* ShardEpochAgeUs(int shard) {
  return ShardGauge("svx_shard_epoch_age_us", shard,
                    "Age of the shard's published snapshot (us); refreshed "
                    "by DebugMetrics()");
}

void RegisterStandardMetrics() {
  RewriteCalls();
  RewriteResults();
  RewriteCandidatesBuilt();
  RewriteCandidatesPruned();
  RewriteEquivalenceTests();
  RewriteLatencyUs();
  RewriteCacheHits();
  RewriteCacheMisses();
  PlansGenerated();
  PlansDominated();
  PlanEnumLatencyUs();
  ContainmentMemoHits();
  ContainmentMemoMisses();
  MaintenancePasses();
  MaintenanceViewsTouched();
  MaintenanceViewsRebuilt();
  MaintenanceViewsShared();
  MaintenanceTuplesInserted();
  MaintenanceTuplesDeleted();
  MaintenanceApplyLatencyUs();
  EpochCurrent();
  EpochPublishes();
  EpochAgeUs();
  EpochsLive();
  SnapshotAcquisitions();
  EpochPublishLagUs();
  ExecutorRuns();
  ExecutorRowsScanned();
  ExecutorRowsEmitted();
  ExecutorLatencyUs();
  PersistBytesWritten();
  PersistFilesWritten();
  ExtentResidentBytes();
  ExtentCompressedBytes();
  ExtentEvictions();
  ExtentReloads();
  ExtentReloadUs();
  DeltasCoalesced();
  DeltasApplied();
  WalBytesWritten();
  WalRecordsAppended();
  WalReplays();
  WalTornTruncations();
}

}  // namespace metrics
}  // namespace svx
