// Process-wide metric registry: striped atomic counters, gauges, and
// log-bucketed latency histograms, with Prometheus-text and JSON exposition.
//
// Design constraints, in order:
//   1. Cheap enough to leave on in Release. Counter::Add is one relaxed
//      fetch_add on a cache-line-private stripe chosen by thread; Histogram::
//      Observe is two relaxed fetch_adds plus a bit_width. No locks anywhere
//      on the update path — the registry mutex is only taken at registration
//      (first use per site, a static-local) and at render time.
//   2. TSan/thread-safety clean per the PR-6 discipline: the name→metric maps
//      are SVX_GUARDED_BY the registry mutex; the metric objects themselves
//      are all-atomic and need none.
//   3. Removable: building with -DSVX_METRICS_DISABLED (CMake option
//      SVX_DISABLE_METRICS) turns every update into an inline no-op, which is
//      what the CI overhead gate compares against.
//
// Reads (Value(), Quantile(), renders) are racy-by-design snapshots: relaxed
// loads summed across stripes/buckets. That is the standard contract for
// monitoring counters — a render concurrent with updates sees some recent
// value, not a linearizable cut.
//
// Registered metrics live for the process lifetime (pointers are stable and
// never freed); handles can be cached in static locals at the call site.
#ifndef SVX_OBSERVABILITY_METRICS_H_
#define SVX_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/timer.h"

namespace svx {

class JsonWriter;

namespace internal {
/// Index of this thread's counter stripe: threads are assigned round-robin
/// on first use, so up to kCounterStripes concurrent writers never share a
/// cache line.
size_t ThreadStripeIndex();
}  // namespace internal

/// Monotonically increasing sum, striped across cache lines so concurrent
/// writers on different cores do not bounce one line between them.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(int64_t delta) {
#ifndef SVX_METRICS_DISABLED
    stripes_[internal::ThreadStripeIndex() & (kStripes - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const {
    int64_t sum = 0;
    for (const Stripe& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Last-write-wins instantaneous value (epoch id, live snapshot count, ...).
/// Gauges are written from serialized contexts (the catalog writer lock) or
/// balanced ctor/dtor pairs, so a single atomic suffices — no striping.
class Gauge {
 public:
  void Set(int64_t value) {
#ifndef SVX_METRICS_DISABLED
    v_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(int64_t delta) {
#ifndef SVX_METRICS_DISABLED
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (latencies are
/// recorded in microseconds, sizes in their natural unit). Bucket 0 holds
/// exact zeros; bucket i ≥ 1 holds [2^(i-1), 2^i). Quantiles interpolate
/// linearly inside the hit bucket, so p50/p90/p99 carry at worst one octave
/// of error — plenty for lag gating, and it keeps Observe at two relaxed
/// atomic increments.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(int64_t value) {
#ifndef SVX_METRICS_DISABLED
    uint64_t v = value <= 0 ? 0 : static_cast<uint64_t>(value);
    size_t b = v == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(v));
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<int64_t>(v), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  int64_t Count() const;
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated quantile, p in [0, 1]. Returns 0 on an empty histogram.
  double Quantile(double p) const;

  /// Inclusive upper bound of bucket b (0, 1, 3, 7, 15, ...).
  static double BucketUpperBound(size_t b);

  int64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> sum_{0};
};

/// Observes the scope's duration in microseconds into a histogram on
/// destruction. Null histogram pointers are tolerated (no-op) so call sites
/// need no branching.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* h) : h_(h) {}
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Observe(static_cast<int64_t>(timer_.ElapsedMicros()));
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* const h_;
  Timer timer_;
};

/// Name → metric table with exposition. One process-wide instance
/// (Global()); tests construct private registries.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  /// Finds or creates the named metric. The help string is kept from the
  /// first registration; later calls with a different help are fine and
  /// ignored. Registering the same name as two different kinds aborts —
  /// that is a programming error, not an operational condition.
  Counter* counter(std::string_view name, std::string_view help = "")
      SVX_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name, std::string_view help = "")
      SVX_EXCLUDES(mu_);
  Histogram* histogram(std::string_view name, std::string_view help = "")
      SVX_EXCLUDES(mu_);

  /// Prometheus text exposition format, families sorted by name. Histograms
  /// render cumulative _bucket{le=...} lines up to the last non-empty
  /// bucket, then +Inf, _sum and _count.
  std::string RenderPrometheusText() const SVX_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// p50, p90, p99}}}, names sorted.
  std::string RenderJson() const SVX_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help, Kind kind)
      SVX_EXCLUDES(mu_);

  mutable Mutex mu_;
  // std::deque never moves elements, so handed-out pointers stay valid
  // while the map grows.
  std::deque<Counter> counters_ SVX_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ SVX_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ SVX_GUARDED_BY(mu_);
  std::map<std::string, Entry> entries_ SVX_GUARDED_BY(mu_);
};

// ---- The standard metric catalog -------------------------------------------
//
// Every instrumented site in the library goes through one of these accessors,
// so the metric name, kind and help string have exactly one definition.
// Accessors cache the handle in a function-local static: after the first
// call they are a load plus the atomic update. RegisterStandardMetrics()
// touches every accessor so exposition shows the full catalog (zero-valued)
// even for domains a process never exercised.
namespace metrics {

// Rewrite domain.
Counter* RewriteCalls();
Counter* RewriteResults();
Counter* RewriteCandidatesBuilt();
Counter* RewriteCandidatesPruned();
Counter* RewriteEquivalenceTests();
Histogram* RewriteLatencyUs();
Counter* RewriteCacheHits();
Counter* RewriteCacheMisses();

// Plan enumeration (DP rewriter search).
Counter* PlansGenerated();
Counter* PlansDominated();
Histogram* PlanEnumLatencyUs();

// Containment domain.
Counter* ContainmentMemoHits();
Counter* ContainmentMemoMisses();

// Maintenance domain.
Counter* MaintenancePasses();
Counter* MaintenanceViewsTouched();
Counter* MaintenanceViewsRebuilt();
Counter* MaintenanceViewsShared();
Counter* MaintenanceTuplesInserted();
Counter* MaintenanceTuplesDeleted();
Histogram* MaintenanceApplyLatencyUs();

// Epoch / serving domain.
Gauge* EpochCurrent();
Counter* EpochPublishes();
Gauge* EpochAgeUs();
Gauge* EpochsLive();
Counter* SnapshotAcquisitions();
Histogram* EpochPublishLagUs();

// Executor (serving work) domain.
Counter* ExecutorRuns();
Counter* ExecutorRowsScanned();
Counter* ExecutorRowsEmitted();
Histogram* ExecutorLatencyUs();

// Persistence domain.
Counter* PersistBytesWritten();
Counter* PersistFilesWritten();

// Columnar extent / memory budget domain.
Gauge* ExtentResidentBytes();
Gauge* ExtentCompressedBytes();
Counter* ExtentEvictions();
Counter* ExtentReloads();
Histogram* ExtentReloadUs();

// Sharding / durability domain (PR 8). The per-process totals aggregate
// across shards; the Shard* accessors return per-shard labeled series
// (`base{shard="N"}`) so exposition can attribute epoch age and delta flow
// to an individual shard. Labeled series render inside the same Prometheus
// family as their base name.
Counter* DeltasCoalesced();
Counter* DeltasApplied();
Counter* WalBytesWritten();
Counter* WalRecordsAppended();
Counter* WalReplays();
Counter* WalTornTruncations();

/// `base{shard="N"}` labeled counter/gauge in the global registry. Handles
/// are stable for the process lifetime; callers cache them per shard.
Counter* ShardCounter(std::string_view base, int shard,
                      std::string_view help = "");
Gauge* ShardGauge(std::string_view base, int shard,
                  std::string_view help = "");

/// Per-shard epoch age gauge, svx_shard_epoch_age_us{shard="N"}.
Gauge* ShardEpochAgeUs(int shard);

/// Forces registration of the whole catalog above, so a render covers every
/// domain regardless of which code paths have run. Benches call this once
/// at startup.
void RegisterStandardMetrics();

}  // namespace metrics
}  // namespace svx

#endif  // SVX_OBSERVABILITY_METRICS_H_
