// Incremental view maintenance (ROADMAP "Incremental view maintenance"):
// given a DocumentDelta (one subtree insert or delete, src/xml/update.h),
// re-run the view's tree pattern only against the affected ORDPATH region
// and emit tuple-level insert/delete deltas against the stored extent,
// instead of rematerializing from scratch.
//
// The affected region of an update is the inserted/deleted subtree plus the
// *spine*: its chain of surviving ancestors. A pattern-subtree result under
// a binding can only change if the binding's document subtree contains the
// region (i.e. the binding is on the spine) or the binding itself is inside
// the region — everything else evaluates identically in the old and new
// document because surviving nodes keep their ORDPATHs, labels and values.
// The evaluator walks pattern nodes down the spine, computes per-child hot
// diffs (region matches fully evaluated, spine matches recursed), and
// propagates them through the §4 semantics: cartesian products telescope
// factor by factor, optional edges re-check the ⊥-padding condition, and
// nested edges re-aggregate the affected group.
//
// Set semantics make deletions non-local (a tuple may be justified by a
// match outside the region), so candidate deletes are verified with a
// tuple-constrained derivability test against the new document before they
// are emitted. Tuples are matched by their stable cell encoding
// (EncodeValue), which is invariant under content-reference rebinding.
#ifndef SVX_MAINTENANCE_DELTA_EVALUATOR_H_
#define SVX_MAINTENANCE_DELTA_EVALUATOR_H_

#include <string>
#include <vector>

#include "src/algebra/relation.h"
#include "src/pattern/pattern.h"
#include "src/xml/update.h"

namespace svx {

/// Tuple-level delta against a stored view extent.
struct TableDelta {
  /// Rows to remove, matched against the extent by cell encoding (so the
  /// tuples' content references need not share the extent's Document).
  std::vector<Tuple> deletes;
  /// The same deletions as row indices into the extent the delta was
  /// computed against (ascending) — lets appliers drop rows without
  /// re-encoding the whole extent.
  std::vector<int64_t> delete_rows;
  /// Rows to add; content references are bound to the delta's new_doc.
  std::vector<Tuple> inserts;
  /// True when incremental evaluation does not apply (e.g. the update
  /// touches the pattern root's binding); the caller must rematerialize.
  bool full_rebuild = false;

  bool Empty() const {
    return deletes.empty() && inserts.empty() && !full_rebuild;
  }
};

/// Computes the delta that turns `old_extent` (the extent of
/// `pattern`/`view_name` over delta.old_doc, canonically ordered) into the
/// extent over delta.new_doc. Exact: applying the result reproduces full
/// rematerialization, for every pattern feature (predicates, optional
/// edges, nested edges, all attribute kinds).
[[nodiscard]] TableDelta ComputeViewDelta(const Pattern& pattern,
                            const std::string& view_name,
                            const Table& old_extent,
                            const DocumentDelta& delta);

/// True iff `tuple` is derivable as a result row of `pattern` over `doc`
/// (the verification primitive behind delete emission). Cells are compared
/// by encoding; nested cells must equal the canonically-ordered group.
[[nodiscard]] bool CanDeriveTuple(const Pattern& pattern,
                                  const std::string& view_name,
                    const Document& doc, const Tuple& tuple);

}  // namespace svx

#endif  // SVX_MAINTENANCE_DELTA_EVALUATOR_H_
