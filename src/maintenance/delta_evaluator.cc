#include "src/maintenance/delta_evaluator.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/rewriting/view.h"
#include "src/viewstore/extent_io.h"

namespace svx {

namespace {

/// Stable deep cell encoding of a whole tuple: the multiset/set identity
/// used throughout maintenance (invariant under content rebinding).
std::string TupleKey(const Tuple& t) { return EncodeTupleKey(t); }

std::string ValueKey(const Value& v) {
  std::string key;
  EncodeValue(v, &key);
  return key;
}

/// Removes encoding-identical pairs from the two multisets (no-op deltas
/// that would otherwise churn the extent).
void CancelCommon(std::vector<Tuple>* removed, std::vector<Tuple>* added) {
  if (removed->empty() || added->empty()) return;
  std::unordered_map<std::string, int64_t> counts;
  for (const Tuple& t : *removed) ++counts[TupleKey(t)];
  std::vector<Tuple> kept_added;
  for (Tuple& t : *added) {
    auto it = counts.find(TupleKey(t));
    if (it != counts.end() && it->second > 0) {
      --it->second;  // cancelled against one removed copy
      continue;
    }
    kept_added.push_back(std::move(t));
  }
  // `counts` now holds the multiplicity of removed copies that survived.
  std::vector<Tuple> kept_removed;
  for (Tuple& t : *removed) {
    auto it = counts.find(TupleKey(t));
    if (it->second > 0) {
      --it->second;
      kept_removed.push_back(std::move(t));
    }
  }
  *removed = std::move(kept_removed);
  *added = std::move(kept_added);
}

/// The §4.3 ⊥-padding condition: no candidate of `m` under `dn` yields rows.
bool SubYieldsNothing(const Pattern& p, PatternNodeId m, const Document& doc,
                      NodeIndex dn) {
  for (NodeIndex cand : PatternCandidates(p, m, doc, dn)) {
    if (!PatternSubtreeYieldsNothing(p, m, doc, cand)) return false;
  }
  return true;
}

/// The nested-table value of nested child `m` under binding `dn`
/// (deduplicated, canonically ordered — the extent-at-rest form).
Value GroupValue(const Pattern& p, const std::string& view_name,
                 PatternNodeId m, const Document& doc, NodeIndex dn) {
  auto nested = std::make_shared<Table>(ViewSubtreeSchema(p, m, view_name));
  for (NodeIndex cand : PatternCandidates(p, m, doc, dn)) {
    for (Tuple& t : MaterializeSubtreeRows(p, m, view_name, doc, cand)) {
      nested->AddRow(std::move(t));
    }
  }
  nested->Deduplicate();
  nested->SortRowsCanonical();
  return Value(TablePtr(std::move(nested)));
}

/// Tuple-constrained derivability search (see CanDeriveTuple). Bindings
/// with an ID attribute are pinned via FindByOrdPath; everything else
/// backtracks over the candidate sets.
class Deriver {
 public:
  Deriver(const Pattern& p, const std::string& view_name, const Document& doc)
      : p_(p), view_name_(view_name), doc_(doc) {}

  bool Derive(const Tuple& t) {
    if (doc_.size() == 0) return false;
    if (!PatternNodeMatches(p_, p_.root(), doc_, doc_.root())) return false;
    if (static_cast<int32_t>(t.size()) !=
        PatternSubtreeWidth(p_, p_.root())) {
      return false;
    }
    return DeriveSub(p_.root(), doc_.root(), t, 0);
  }

 private:
  /// True iff MatchSub(pn, dn) can contain exactly cells [pos, pos+width).
  bool DeriveSub(PatternNodeId pn, NodeIndex dn, const Tuple& t, size_t pos) {
    Tuple own = PatternOwnValues(p_, pn, doc_, dn);
    for (const Value& v : own) {
      if (ValueKey(v) != ValueKey(t[pos])) return false;
      ++pos;
    }
    for (PatternNodeId m : p_.node(pn).children) {
      const Pattern::Node& child = p_.node(m);
      if (child.nested) {
        const Value& cell = t[pos];
        if (!cell.IsTable()) return false;
        Value group = GroupValue(p_, view_name_, m, doc_, dn);
        if (ValueKey(group) != ValueKey(cell)) return false;
        ++pos;
        continue;
      }
      size_t w = static_cast<size_t>(PatternSubtreeWidth(p_, m));
      bool ok = false;
      if ((child.attrs & kAttrId) && t[pos].IsId()) {
        // The subtree's first cell is m's own ID: the binding is pinned.
        NodeIndex cand = doc_.FindByOrdPath(t[pos].AsId());
        if (cand != kInvalidNode && AxisHolds(child.axis, dn, cand) &&
            PatternNodeMatches(p_, m, doc_, cand)) {
          ok = DeriveSub(m, cand, t, pos);
        }
      } else {
        for (NodeIndex cand : PatternCandidates(p_, m, doc_, dn)) {
          if (DeriveSub(m, cand, t, pos)) {
            ok = true;
            break;
          }
        }
      }
      if (!ok && child.optional && AllNull(t, pos, w)) {
        ok = SubYieldsNothing(p_, m, doc_, dn);
      }
      if (!ok) return false;
      pos += w;
    }
    return true;
  }

  bool AxisHolds(Axis axis, NodeIndex parent_binding, NodeIndex cand) const {
    if (axis == Axis::kChild) return doc_.parent(cand) == parent_binding;
    return doc_.IsAncestor(parent_binding, cand);
  }

  static bool AllNull(const Tuple& t, size_t pos, size_t w) {
    for (size_t i = 0; i < w; ++i) {
      if (!t[pos + i].IsNull()) return false;
    }
    return true;
  }

  const Pattern& p_;
  const std::string& view_name_;
  const Document& doc_;
};

/// The spine-walking diff evaluator (see header comment).
class DeltaEvaluator {
 public:
  struct Diff {
    std::vector<Tuple> removed, added;
    bool Empty() const { return removed.empty() && added.empty(); }
  };

  DeltaEvaluator(const Pattern& p, const std::string& view_name,
                 const DocumentDelta& delta)
      : p_(p),
        view_name_(view_name),
        delta_(delta),
        old_doc_(*delta.old_doc),
        new_doc_(*delta.new_doc) {}

  /// Resolves the spine in both documents; false if the update shape does
  /// not admit incremental evaluation (caller rematerializes).
  bool Init() {
    const OrdPath& region = delta_.region;
    if (!region.IsValid() || region.Depth() < 2) return false;
    int32_t levels = region.Depth() - 1;
    for (int32_t i = 0; i < levels; ++i) {
      OrdPath id = region.Ancestor(levels - i);
      NodeIndex o = old_doc_.FindByOrdPath(id);
      NodeIndex n = new_doc_.FindByOrdPath(id);
      if (o == kInvalidNode || n == kInvalidNode) return false;
      spine_old_.push_back(o);
      spine_new_.push_back(n);
    }
    region_root_ = RegionDoc().FindByOrdPath(region);
    return region_root_ != kInvalidNode;
  }

  Diff Root() {
    if (old_doc_.size() == 0 || new_doc_.size() == 0) return {};
    // The pattern root binds the document root only; the root survives
    // every update unchanged, so matching is version-independent.
    if (!PatternNodeMatches(p_, p_.root(), old_doc_, old_doc_.root())) {
      return {};
    }
    return DiffAtSpine(p_.root(), 0);
  }

 private:
  bool IsInsert() const { return delta_.kind == DocumentDelta::Kind::kInsert; }

  /// The document the updated region exists in.
  const Document& RegionDoc() const { return IsInsert() ? new_doc_ : old_doc_; }

  /// Diff of MatchSub(pn, spine[d]) between the old and new document.
  Diff DiffAtSpine(PatternNodeId pn, int32_t d) {
    int64_t key = (static_cast<int64_t>(pn) << 32) | d;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Diff out = DiffAtSpineUncached(pn, d);
    memo_.emplace(key, out);
    return out;
  }

  Diff DiffAtSpineUncached(PatternNodeId pn, int32_t d) {
    const std::vector<PatternNodeId>& children = p_.node(pn).children;
    NodeIndex s_old = spine_old_[static_cast<size_t>(d)];
    NodeIndex s_new = spine_new_[static_cast<size_t>(d)];

    // Per-child factor diffs of the §4 product at this binding.
    struct Factor {
      std::vector<Tuple> removed, added;
      bool changed = false;
    };
    std::vector<Factor> factors(children.size());
    size_t nchanged = 0;
    for (size_t i = 0; i < children.size(); ++i) {
      PatternNodeId m = children[i];
      const Pattern::Node& child = p_.node(m);
      Diff hot = HotChildDiff(m, d);
      if (hot.Empty()) continue;
      Factor& f = factors[i];
      if (child.nested) {
        // The group aggregates hot and cold contributions; re-aggregate.
        Value g_old = GroupValue(p_, view_name_, m, old_doc_, s_old);
        Value g_new = GroupValue(p_, view_name_, m, new_doc_, s_new);
        if (ValueKey(g_old) != ValueKey(g_new)) {
          f.changed = true;
          f.removed.push_back(Tuple{std::move(g_old)});
          f.added.push_back(Tuple{std::move(g_new)});
        }
      } else {
        // Re-check the ⊥-padding condition on both sides; the hot diff
        // alone cannot tell whether the whole (hot + cold) sub is empty.
        bool old_pad =
            child.optional && SubYieldsNothing(p_, m, old_doc_, s_old);
        bool new_pad =
            child.optional && SubYieldsNothing(p_, m, new_doc_, s_new);
        if (old_pad && new_pad) continue;
        f.removed = old_pad ? PadRows(m) : std::move(hot.removed);
        f.added = new_pad ? PadRows(m) : std::move(hot.added);
        CancelCommon(&f.removed, &f.added);
        f.changed = !f.removed.empty() || !f.added.empty();
      }
      if (f.changed) ++nchanged;
    }
    Diff out;
    if (nchanged == 0) return out;

    // Telescoped product: rewrite one factor at a time, old → new. Step j
    // contributes  own × Π_{i<j} new_i × (factor-j diff) × Π_{i>j} old_i.
    // Unchanged factors are encoding-identical across versions, so one
    // evaluation (on the new document) serves both sides.
    Tuple own = PatternOwnValues(p_, pn, new_doc_, s_new);
    std::vector<std::optional<std::vector<Tuple>>> full_new(children.size());
    std::vector<std::optional<std::vector<Tuple>>> full_old(children.size());
    auto FullNew = [&](size_t i) -> const std::vector<Tuple>& {
      if (!full_new[i]) {
        full_new[i] = FullFactor(new_doc_, children[i], s_new);
      }
      return *full_new[i];
    };
    auto FullOld = [&](size_t i) -> const std::vector<Tuple>& {
      if (!factors[i].changed) return FullNew(i);
      if (!full_old[i]) {
        full_old[i] = FullFactor(old_doc_, children[i], s_old);
      }
      return *full_old[i];
    };
    for (size_t j = 0; j < children.size(); ++j) {
      if (!factors[j].changed) continue;
      std::vector<const std::vector<Tuple>*> lists(children.size());
      for (size_t i = 0; i < j; ++i) lists[i] = &FullNew(i);
      for (size_t i = j + 1; i < children.size(); ++i) lists[i] = &FullOld(i);
      lists[j] = &factors[j].removed;
      AppendProduct(own, lists, &out.removed);
      lists[j] = &factors[j].added;
      AppendProduct(own, lists, &out.added);
    }
    CancelCommon(&out.removed, &out.added);
    return out;
  }

  /// Diff of child `m`'s combined sub-result under spine[d], restricted to
  /// hot candidates: deeper spine nodes (recursed) and region nodes (fully
  /// evaluated — they exist in only one document version).
  Diff HotChildDiff(PatternNodeId m, int32_t d) {
    Diff out;
    const Pattern::Node& child = p_.node(m);
    int32_t last = static_cast<int32_t>(spine_old_.size()) - 1;
    if (child.axis == Axis::kChild) {
      if (d + 1 <= last && SpineMatches(m, d + 1)) {
        Merge(&out, DiffAtSpine(m, d + 1));
      }
      if (d == last) MergeRegion(&out, RegionRows(m, /*root_only=*/true));
    } else {
      for (int32_t e = d + 1; e <= last; ++e) {
        if (SpineMatches(m, e)) Merge(&out, DiffAtSpine(m, e));
      }
      MergeRegion(&out, RegionRows(m, /*root_only=*/false));
    }
    return out;
  }

  /// Pattern-node match of a spine node (identical in both versions).
  bool SpineMatches(PatternNodeId m, int32_t e) {
    return PatternNodeMatches(p_, m, old_doc_,
                              spine_old_[static_cast<size_t>(e)]);
  }

  static void Merge(Diff* out, Diff in) {
    std::move(in.removed.begin(), in.removed.end(),
              std::back_inserter(out->removed));
    std::move(in.added.begin(), in.added.end(),
              std::back_inserter(out->added));
  }

  /// Region contributions are pure adds (insert) or pure removes (delete).
  void MergeRegion(Diff* out, const std::vector<Tuple>& rows) {
    std::vector<Tuple>& dst = IsInsert() ? out->added : out->removed;
    dst.insert(dst.end(), rows.begin(), rows.end());
  }

  /// Rows of `m` bound inside the region (memoized): all matching region
  /// nodes for the descendant axis, just the region root for the child
  /// axis (deeper region nodes are not children of the spine).
  const std::vector<Tuple>& RegionRows(PatternNodeId m, bool root_only) {
    auto& cache = root_only ? region_root_rows_ : region_rows_;
    auto it = cache.find(m);
    if (it != cache.end()) return it->second;
    const Document& doc = RegionDoc();
    std::vector<Tuple> rows;
    NodeIndex end =
        root_only ? region_root_ + 1 : doc.subtree_end(region_root_);
    for (NodeIndex x = region_root_; x < end; ++x) {
      if (!PatternNodeMatches(p_, m, doc, x)) continue;
      std::vector<Tuple> s = MaterializeSubtreeRows(p_, m, view_name_, doc, x);
      std::move(s.begin(), s.end(), std::back_inserter(rows));
    }
    return cache.emplace(m, std::move(rows)).first->second;
  }

  /// One all-⊥ row of the child's width (the §4.3 padding row).
  std::vector<Tuple> PadRows(PatternNodeId m) const {
    return {Tuple(static_cast<size_t>(PatternSubtreeWidth(p_, m)))};
  }

  /// The full (hot + cold) factor rows of child `m` under a spine binding,
  /// in one document version — the cross terms of the telescoped product.
  std::vector<Tuple> FullFactor(const Document& doc, PatternNodeId m,
                                NodeIndex dn) {
    const Pattern::Node& child = p_.node(m);
    if (child.nested) return {Tuple{GroupValue(p_, view_name_, m, doc, dn)}};
    std::vector<Tuple> sub;
    for (NodeIndex cand : PatternCandidates(p_, m, doc, dn)) {
      std::vector<Tuple> s = MaterializeSubtreeRows(p_, m, view_name_, doc,
                                                    cand);
      std::move(s.begin(), s.end(), std::back_inserter(sub));
    }
    if (sub.empty() && child.optional) return PadRows(m);
    return sub;
  }

  static void AppendProduct(const Tuple& own,
                            const std::vector<const std::vector<Tuple>*>& lists,
                            std::vector<Tuple>* out) {
    for (const std::vector<Tuple>* l : lists) {
      if (l->empty()) return;  // an empty factor annihilates the product
    }
    std::vector<size_t> idx(lists.size(), 0);
    while (true) {
      Tuple row = own;
      for (size_t i = 0; i < lists.size(); ++i) {
        const Tuple& part = (*lists[i])[idx[i]];
        row.insert(row.end(), part.begin(), part.end());
      }
      out->push_back(std::move(row));
      size_t k = lists.size();
      bool done = true;
      while (k-- > 0) {
        if (++idx[k] < lists[k]->size()) {
          done = false;
          break;
        }
        idx[k] = 0;
      }
      if (done) return;
    }
  }

  const Pattern& p_;
  const std::string& view_name_;
  const DocumentDelta& delta_;
  const Document& old_doc_;
  const Document& new_doc_;
  std::vector<NodeIndex> spine_old_, spine_new_;  // depths 1..|region|-1
  NodeIndex region_root_ = kInvalidNode;          // in RegionDoc()
  std::unordered_map<int64_t, Diff> memo_;        // (pn, spine depth)
  std::unordered_map<PatternNodeId, std::vector<Tuple>> region_rows_;
  std::unordered_map<PatternNodeId, std::vector<Tuple>> region_root_rows_;
};

}  // namespace

bool CanDeriveTuple(const Pattern& pattern, const std::string& view_name,
                    const Document& doc, const Tuple& tuple) {
  return Deriver(pattern, view_name, doc).Derive(tuple);
}

TableDelta ComputeViewDelta(const Pattern& pattern,
                            const std::string& view_name,
                            const Table& old_extent,
                            const DocumentDelta& delta) {
  TableDelta td;
  if (delta.old_doc == nullptr || delta.new_doc == nullptr) {
    td.full_rebuild = true;
    return td;
  }
  DeltaEvaluator eval(pattern, view_name, delta);
  if (!eval.Init()) {
    td.full_rebuild = true;
    return td;
  }
  DeltaEvaluator::Diff diff = eval.Root();
  if (diff.Empty()) return td;

  std::unordered_map<std::string, int64_t> old_keys;  // key → row index
  for (int64_t i = 0; i < old_extent.NumRows(); ++i) {
    old_keys.emplace(TupleKey(old_extent.row(i)), i);
  }

  // Deduplicate candidates by encoding; the diff lists are multisets.
  std::unordered_set<std::string> removed_keys;
  std::vector<std::pair<std::string, Tuple>> removed_unique;
  for (Tuple& t : diff.removed) {
    std::string k = TupleKey(t);
    if (removed_keys.insert(k).second) {
      removed_unique.emplace_back(std::move(k), std::move(t));
    }
  }

  // Inserts: new tuples not already present. A tuple also appearing on the
  // removed side has ambiguous net multiplicity — settle by derivability.
  std::unordered_set<std::string> added_seen;
  for (Tuple& t : diff.added) {
    std::string k = TupleKey(t);
    if (!added_seen.insert(k).second) continue;
    if (old_keys.count(k) != 0) continue;  // already stored, stays
    if (removed_keys.count(k) != 0 &&
        !CanDeriveTuple(pattern, view_name, *delta.new_doc, t)) {
      continue;
    }
    td.inserts.push_back(std::move(t));
  }

  // Deletes: stored tuples whose region-using derivations vanished — but a
  // derivation outside the region may still justify them (set semantics),
  // so emit only tuples no longer derivable at all.
  for (auto& [key, t] : removed_unique) {
    auto it = old_keys.find(key);
    if (it == old_keys.end()) continue;
    if (CanDeriveTuple(pattern, view_name, *delta.new_doc, t)) continue;
    td.delete_rows.push_back(it->second);
    td.deletes.push_back(std::move(t));
  }
  std::sort(td.delete_rows.begin(), td.delete_rows.end());

  // Inserted tuples enter the stored extent: bind their content references
  // to the new document.
  for (Tuple& t : td.inserts) {
    Status s = RebindTupleContent(&t, *delta.new_doc);
    if (!s.ok()) {
      td = {};
      td.full_rebuild = true;  // defensive; unreachable for exact diffs
      return td;
    }
  }
  return td;
}

}  // namespace svx
