#include "src/maintenance/delta_router.h"

namespace svx {

int RouteDelta(const ShardRouter& router, const DocumentDelta& delta) {
  return router.Route(delta.region);
}

std::vector<std::vector<size_t>> SplitByShard(
    const ShardRouter& router, const std::vector<DocumentDelta>& deltas) {
  std::vector<std::vector<size_t>> by_shard(
      static_cast<size_t>(router.num_shards()));
  for (size_t i = 0; i < deltas.size(); ++i) {
    by_shard[static_cast<size_t>(RouteDelta(router, deltas[i]))].push_back(i);
  }
  return by_shard;
}

}  // namespace svx
