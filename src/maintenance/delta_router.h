// Routes DocumentDeltas to catalog shards. A delta names one subtree region
// (always depth >= 2: the root cannot be inserted or deleted), and the shard
// router cuts only at top-level subtree boundaries, so every delta falls
// entirely inside exactly one shard — routing is a lookup, not a split.
// Unpartitionable (global) views additionally see every delta regardless of
// shard; that fan-out is the sharded catalog's job, not the router's.
#ifndef SVX_MAINTENANCE_DELTA_ROUTER_H_
#define SVX_MAINTENANCE_DELTA_ROUTER_H_

#include <vector>

#include "src/viewstore/shard_router.h"
#include "src/xml/update.h"

namespace svx {

/// Shard owning `delta`'s region.
int RouteDelta(const ShardRouter& router, const DocumentDelta& delta);

/// Splits an ordered delta stream into per-shard subsequences, preserving
/// the stream order within each shard. result[s] holds indexes into
/// `deltas` for shard s; result.size() == router.num_shards().
std::vector<std::vector<size_t>> SplitByShard(
    const ShardRouter& router, const std::vector<DocumentDelta>& deltas);

}  // namespace svx

#endif  // SVX_MAINTENANCE_DELTA_ROUTER_H_
