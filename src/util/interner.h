// String interning: maps strings to dense int32 ids and back. Used for
// element labels and (optionally) atomic values, so that tree algorithms
// compare ids instead of strings.
#ifndef SVX_UTIL_INTERNER_H_
#define SVX_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace svx {

/// Dense string <-> id bidirectional map. Ids start at 0 and are stable.
class StringInterner {
 public:
  /// Id used for "no string".
  static constexpr int32_t kNone = -1;

  /// Returns the id of `s`, interning it if new.
  int32_t Intern(std::string_view s);

  /// Returns the id of `s`, or kNone if it was never interned.
  int32_t Find(std::string_view s) const;

  /// Returns the string for `id`. Requires 0 <= id < size().
  const std::string& Get(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace svx

#endif  // SVX_UTIL_INTERNER_H_
