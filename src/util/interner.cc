#include "src/util/interner.h"

#include "src/util/check.h"

namespace svx {

int32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  int32_t id = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

int32_t StringInterner::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNone : it->second;
}

const std::string& StringInterner::Get(int32_t id) const {
  SVX_DCHECK(id >= 0 && id < size());
  return strings_[static_cast<size_t>(id)];
}

}  // namespace svx
