// Whole-file read/write with Status error mapping, shared by the stores.
#ifndef SVX_UTIL_FILEIO_H_
#define SVX_UTIL_FILEIO_H_

#include <string>
#include <string_view>

#include "src/util/status.h"

namespace svx {

/// Writes `bytes` to `path`, truncating. Binary-safe.
[[nodiscard]] Status WriteFileBytes(const std::string& path,
                                    std::string_view bytes);

/// Reads all of `path`. Binary-safe.
[[nodiscard]] Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace svx

#endif  // SVX_UTIL_FILEIO_H_
