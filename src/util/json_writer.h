// Streaming JSON emission, shared by the bench report writers and the
// observability exposition code (metrics registry, trace spans). Replaces
// the per-bench hand-rolled StrFormat JSON, which each bench had copied and
// drifted independently.
//
// The writer is a thin state machine: Begin/End pairs open containers, Key
// names the next value inside an object, and the writer inserts commas,
// newlines and two-space indentation. Values are escaped per RFC 8259.
// No validation beyond comma placement is attempted — emitting a key
// outside an object produces syntactically broken JSON, exactly like the
// hand-rolled code it replaces (run the output through a parser in tests).
//
// Not thread-safe; build one writer per report.
#ifndef SVX_UTIL_JSON_WRITER_H_
#define SVX_UTIL_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/strings.h"

namespace svx {

class JsonWriter {
 public:
  /// `pretty` controls newlines + indentation; compact output otherwise.
  explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  /// Names the next value of the enclosing object.
  JsonWriter& Key(std::string_view k) {
    Separate();
    out_ += Quote(k);
    out_ += pretty_ ? ": " : ":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view v) { return Raw(Quote(v)); }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v) { return Raw(v ? "true" : "false"); }
  JsonWriter& Value(int64_t v) { return Raw(StrFormat("%lld", static_cast<long long>(v))); }
  JsonWriter& Value(uint64_t v) {
    return Raw(StrFormat("%llu", static_cast<unsigned long long>(v)));
  }
  JsonWriter& Value(int32_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(uint32_t v) { return Value(static_cast<uint64_t>(v)); }
  /// Doubles render with up to three fractional digits (bench reports are
  /// milliseconds; finer digits are noise) unless that would collapse a
  /// small non-zero value to zero, then full %g. NaN/Inf have no JSON
  /// representation and render as null.
  JsonWriter& Value(double v) {
    if (!std::isfinite(v)) return Null();
    std::string s = StrFormat("%.3f", v);
    if ((s == "0.000" || s == "-0.000") && v != 0) s = StrFormat("%g", v);
    return Raw(s);
  }
  JsonWriter& Null() { return Raw("null"); }

  /// Emits an already-formatted numeric token verbatim (no quoting). The
  /// caller is responsible for it being a valid JSON number.
  JsonWriter& RawNumber(std::string_view token) { return Raw(token); }

  /// Key + value in one call.
  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

  const std::string& str() const { return out_; }

  static std::string Quote(std::string_view s) {
    std::string q = "\"";
    for (char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\r': q += "\\r"; break;
        case '\t': q += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            q += StrFormat("\\u%04x", c);
          } else {
            q += c;
          }
      }
    }
    q += '"';
    return q;
  }

 private:
  JsonWriter& Open(char c) {
    Separate();
    out_ += c;
    stack_.push_back(c);
    first_in_container_ = true;
    return *this;
  }

  JsonWriter& Close(char c) {
    stack_.pop_back();
    if (pretty_ && !first_in_container_) {
      out_ += '\n';
      Indent();
    }
    out_ += c;
    first_in_container_ = false;
    return *this;
  }

  JsonWriter& Raw(std::string_view text) {
    Separate();
    out_ += text;
    return *this;
  }

  /// Emits the comma/newline/indent that precedes a new element. A value
  /// directly after its Key continues the same line.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (!first_in_container_) out_ += ',';
    if (pretty_) {
      out_ += '\n';
      Indent();
    }
    first_in_container_ = false;
  }

  void Indent() { out_.append(stack_.size() * 2, ' '); }

  bool pretty_;
  bool pending_value_ = false;
  bool first_in_container_ = true;
  std::vector<char> stack_;
  std::string out_;
};

}  // namespace svx

#endif  // SVX_UTIL_JSON_WRITER_H_
