#include "src/util/strings.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace svx {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace svx
