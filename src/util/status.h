// Lightweight Status / Result<T> error propagation, in the style of
// arrow::Status / rocksdb::Status. Parsers and other fallible public entry
// points return these; no exceptions cross the public API.
#ifndef SVX_UTIL_STATUS_H_
#define SVX_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace svx {

/// Error codes used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kUnsupported,
  kResourceExhausted,
  kInternal,
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error result without a payload. [[nodiscard]] on the class
/// makes silently dropping any Status-returning call a compile error
/// (-Werror=unused-result): every swallowed error found this way was a
/// latent bug — persistence failures vanishing, maintenance passes
/// half-applied. Consume deliberately with SVX_RETURN_IF_ERROR (check.h) or
/// an explicit ok() test.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. The value is only accessible when ok().
/// [[nodiscard]] for the same reason as Status: an ignored Result is an
/// ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                  // NOLINT
    SVX_CHECK_MSG(!status_.ok(), "Result built from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SVX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    SVX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    SVX_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace svx

#endif  // SVX_UTIL_STATUS_H_
