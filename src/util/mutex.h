// Annotated mutex wrappers: std::mutex / std::shared_mutex with Clang
// capability attributes (thread_annotations.h), plus the RAII lock types the
// rest of the library uses. The wrappers are what makes the locking
// discipline checkable — a bare std::mutex is invisible to Clang's
// thread-safety analysis, so a SVX_GUARDED_BY(mu_) member or a
// SVX_REQUIRES(mu_) helper only becomes a compile-time contract when mu_ is
// one of these types. Zero overhead: every method is an inline forward to
// the standard primitive.
#ifndef SVX_UTIL_MUTEX_H_
#define SVX_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/util/thread_annotations.h"

namespace svx {

class CondVar;

/// std::mutex as a Clang capability. Prefer MutexLock over manual
/// Lock/Unlock pairs.
class SVX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SVX_ACQUIRE() { mu_.lock(); }
  void Unlock() SVX_RELEASE() { mu_.unlock(); }
  bool TryLock() SVX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Condition variable paired with Mutex (std::condition_variable behind the
/// annotated wrapper). Wait atomically releases the mutex and reacquires it
/// before returning, so the SVX_REQUIRES contract holds on both edges; the
/// transient release inside is invisible to (and sound for) the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) SVX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex as a Clang capability: exclusive (writer) side via
/// Lock/Unlock, shared (reader) side via ReaderLock/ReaderUnlock.
class SVX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SVX_ACQUIRE() { mu_.lock(); }
  void Unlock() SVX_RELEASE() { mu_.unlock(); }
  bool TryLock() SVX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() SVX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() SVX_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() SVX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (std::lock_guard analogue).
class SVX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SVX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SVX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive lock on the writer side of a SharedMutex.
class SVX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) SVX_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() SVX_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SVX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) SVX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  // Generic release: the scoped object holds shared ownership, and a plain
  // release_capability on the destructor would claim exclusive.
  ~ReaderMutexLock() SVX_RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped lock over two Mutexes (std::scoped_lock analogue), acquired in a
/// deadlock-free global order (by address) whichever order the arguments
/// arrive in. Both are held exclusively until destruction.
class SVX_SCOPED_CAPABILITY TwoMutexLock {
 public:
  TwoMutexLock(Mutex* a, Mutex* b) SVX_ACQUIRE(a, b) : a_(a), b_(b) {
    if (b_ < a_) {
      b_->Lock();
      a_->Lock();
    } else {
      a_->Lock();
      if (b_ != a_) b_->Lock();
    }
  }
  ~TwoMutexLock() SVX_RELEASE() {
    a_->Unlock();
    if (b_ != a_) b_->Unlock();
  }

  TwoMutexLock(const TwoMutexLock&) = delete;
  TwoMutexLock& operator=(const TwoMutexLock&) = delete;

 private:
  Mutex* const a_;
  Mutex* const b_;
};

}  // namespace svx

#endif  // SVX_UTIL_MUTEX_H_
