#include "src/util/rng.h"

#include "src/util/check.h"

namespace svx {

uint64_t Rng::Next() {
  // SplitMix64.
  uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  SVX_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace svx
