#include "src/util/fileio.h"

#include <fstream>

namespace svx {

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("short write: " + path);
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace svx
