// Wall-clock timing for the experiment harnesses.
#ifndef SVX_UTIL_TIMER_H_
#define SVX_UTIL_TIMER_H_

#include <chrono>

namespace svx {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or last Reset().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace svx

#endif  // SVX_UTIL_TIMER_H_
