// Wall-clock timing for the experiment harnesses.
#ifndef SVX_UTIL_TIMER_H_
#define SVX_UTIL_TIMER_H_

#include <chrono>

namespace svx {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or last Reset().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the scope's wall-clock duration into *out_ms on destruction.
/// Replaces the Reset()/ElapsedMillis() pairs the benches used to hand-roll
/// around every measured region:
///
///   { ScopedTimer t(&row.maintain_ms); catalog.ApplyUpdate(update); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* out_ms) : out_ms_(out_ms) {}
  ~ScopedTimer() { *out_ms_ += timer_.ElapsedMillis(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* const out_ms_;
  Timer timer_;
};

}  // namespace svx

#endif  // SVX_UTIL_TIMER_H_
