// Small string helpers shared across modules.
#ifndef SVX_UTIL_STRINGS_H_
#define SVX_UTIL_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace svx {

/// Splits `s` on the separator character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a signed 64-bit integer; nullopt if `s` is not exactly an integer.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Parses a double; nullopt unless `s` is exactly a finite number. The
/// checked replacement for atof in argument parsing (atof returns 0 on
/// garbage, silently turning a typo into a valid-looking configuration).
std::optional<double> ParseDouble(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Escapes XML special characters (& < > " ') for text content.
std::string XmlEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace svx

#endif  // SVX_UTIL_STRINGS_H_
