// Deterministic pseudo-random number generation for workload generators and
// property tests. A thin wrapper over SplitMix64 (fast, reproducible across
// platforms, unlike std::uniform_int_distribution).
#ifndef SVX_UTIL_RNG_H_
#define SVX_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace svx {

/// Reproducible RNG. Same seed => same sequence on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97f4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

 private:
  uint64_t state_;
};

}  // namespace svx

#endif  // SVX_UTIL_RNG_H_
