// Internal invariant checking and error-propagation macros.
//
// SVX_CHECK aborts with a message on violation; it is active in all build
// types (database-style defensive checks on cheap invariants, per the
// RocksDB/Arrow practice of never shipping silent corruption). SVX_DCHECK
// is the debug-only variant for checks on per-row/per-node hot paths —
// extent scans, delta evaluation, ORDPATH arithmetic — where the branch is
// measurable at scale; it compiles to nothing under NDEBUG while still
// type-checking its condition.
//
// SVX_RETURN_IF_ERROR / SVX_ASSIGN_OR_RETURN are the Status/Result
// propagation idiom (util/status.h): they replace the hand-written
//   Status s = Step(); if (!s.ok()) return s;
// boilerplate, and together with [[nodiscard]] Status they make "call it
// and forget it" impossible to write by accident.
#ifndef SVX_UTIL_CHECK_H_
#define SVX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SVX_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SVX_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SVX_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SVX_CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Debug-only checks: full SVX_CHECK behavior without NDEBUG, nothing in
// optimized builds. The dead `if (false)` keeps the condition (and message)
// compiled — so a DCHECK can never bit-rot into uncompilable code — while
// every optimizer (and -O0, for the branch) discards it.
#ifdef NDEBUG
#define SVX_DCHECK(cond)         \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (0)
#define SVX_DCHECK_MSG(cond, msg) \
  do {                            \
    if (false) {                  \
      (void)(cond);               \
      (void)(msg);                \
    }                             \
  } while (0)
#else
#define SVX_DCHECK(cond) SVX_CHECK(cond)
#define SVX_DCHECK_MSG(cond, msg) SVX_CHECK_MSG(cond, msg)
#endif

// Token pasting for unique local names inside multi-use macros.
#define SVX_MACRO_CONCAT_INNER_(a, b) a##b
#define SVX_MACRO_CONCAT_(a, b) SVX_MACRO_CONCAT_INNER_(a, b)

/// Evaluates a Status-returning expression; returns it from the enclosing
/// function if it is an error. Usable in any function returning Status (or
/// Result<T>, via its converting constructor).
#define SVX_RETURN_IF_ERROR(expr)                                   \
  do {                                                              \
    auto svx_status_ = (expr);                                      \
    if (!svx_status_.ok()) return svx_status_;                      \
  } while (0)

/// Evaluates a Result<T>-returning expression; on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs` (which
/// may declare a new variable or name an existing one):
///   SVX_ASSIGN_OR_RETURN(Pattern p, ParsePattern(text));
#define SVX_ASSIGN_OR_RETURN(lhs, rexpr) \
  SVX_ASSIGN_OR_RETURN_IMPL_(            \
      SVX_MACRO_CONCAT_(svx_result_, __COUNTER__), lhs, rexpr)

#define SVX_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // SVX_UTIL_CHECK_H_
