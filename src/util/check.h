// Internal invariant checking. SVX_CHECK aborts with a message on violation;
// it is active in all build types (database-style defensive checks on cheap
// invariants, per the RocksDB/Arrow practice of never shipping silent
// corruption).
#ifndef SVX_UTIL_CHECK_H_
#define SVX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SVX_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SVX_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SVX_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SVX_CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // SVX_UTIL_CHECK_H_
