// Clang thread-safety annotation macros (SVX_GUARDED_BY, SVX_REQUIRES, ...),
// in the style of abseil's thread_annotations.h. Under Clang with
// -Wthread-safety these turn the locking discipline documented in comments
// into compile-time checks: a member declared SVX_GUARDED_BY(mu_) cannot be
// touched without mu_ held, a helper declared SVX_REQUIRES(mu_) cannot be
// called without it, and violations are build errors (the build enables
// -Werror=thread-safety). On GCC — which has no thread-safety analysis —
// every macro expands to nothing, so annotated code stays warning-free and
// byte-identical there.
//
// Annotate with the wrappers in src/util/mutex.h (std::mutex itself carries
// no capability attributes, so the analysis cannot see through it).
#ifndef SVX_UTIL_THREAD_ANNOTATIONS_H_
#define SVX_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SVX_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SVX_THREAD_ANNOTATION__(x)  // no-op on GCC/MSVC
#endif

/// Declares a class to be a lockable capability ("mutex" names the kind in
/// diagnostics).
#define SVX_CAPABILITY(x) SVX_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SVX_SCOPED_CAPABILITY SVX_THREAD_ANNOTATION__(scoped_lockable)

/// Data member may only be accessed while holding the given capability
/// (exclusively for writes, at least shared for reads).
#define SVX_GUARDED_BY(x) SVX_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define SVX_PT_GUARDED_BY(x) SVX_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function may only be called with the listed capabilities held exclusively;
/// they are not acquired or released by the call.
#define SVX_REQUIRES(...) \
  SVX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Like SVX_REQUIRES, but shared (reader) ownership suffices.
#define SVX_REQUIRES_SHARED(...) \
  SVX_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (exclusively) and holds them
/// past the return.
#define SVX_ACQUIRE(...) \
  SVX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define SVX_ACQUIRE_SHARED(...) \
  SVX_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (or, with no argument on a
/// scoped-capability destructor, whatever the constructor acquired).
#define SVX_RELEASE(...) \
  SVX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define SVX_RELEASE_SHARED(...) \
  SVX_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Releases exclusive or shared ownership, whichever is held.
#define SVX_RELEASE_GENERIC(...) \
  SVX_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire and reports success via its return value; the
/// first argument is the value meaning "acquired".
#define SVX_TRY_ACQUIRE(...) \
  SVX_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define SVX_TRY_ACQUIRE_SHARED(...) \
  SVX_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy guard: the
/// function acquires them itself).
#define SVX_EXCLUDES(...) SVX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime boundaries the analysis cannot see across that the
/// capability is held.
#define SVX_ASSERT_CAPABILITY(x) \
  SVX_THREAD_ANNOTATION__(assert_capability(x))

#define SVX_ASSERT_SHARED_CAPABILITY(x) \
  SVX_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define SVX_RETURN_CAPABILITY(x) SVX_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function is deliberately outside the analysis (document
/// why at each use).
#define SVX_NO_THREAD_SAFETY_ANALYSIS \
  SVX_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SVX_UTIL_THREAD_ANNOTATIONS_H_
