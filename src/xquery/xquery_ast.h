// AST for the nested-FLWR XQuery subset the tree pattern language captures
// (paper §1). Grammar:
//
//   flwr     := 'for' Var 'in' source ('where' cond)? 'return' ret
//   source   := ('doc' '(' String ')' | Var) step+
//   step     := ('/' | '//') (Name | '*') ('[' rel ']')*
//   rel      := relpath (cmp Integer)?          — existence or value test
//   relpath  := step+ ('/' 'text()')?
//   ret      := '<' Name '>' '{' expr (',' expr)* '}' '</' Name '>'
//             | expr
//   expr     := Var relpath? ('/' 'text()')?    — content or value
//             | flwr                            — nested FLWR block
//   cond     := Var relpath ('/text()')? cmp Integer | Var relpath
//
#ifndef SVX_XQUERY_XQUERY_AST_H_
#define SVX_XQUERY_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/pattern/pattern.h"

namespace svx {

/// One path step: axis + label (+ optional nested predicates).
struct XqStep {
  Axis axis = Axis::kChild;
  std::string label;
  /// Existence / value predicates: each is a relative path with an optional
  /// comparison.
  struct Pred {
    std::vector<XqStep> path;
    bool has_text = false;  // path ends in /text()
    char cmp = 0;           // 0 = existence, otherwise '=', '<', '>'
    int64_t value = 0;
  };
  std::vector<Pred> preds;
};

struct XqFlwr;

/// A return-clause expression.
struct XqExpr {
  enum Kind { kPath, kNestedFlwr } kind = kPath;
  // kPath: $var (steps)? (/text())?
  std::string var;
  std::vector<XqStep> steps;
  bool text = false;  // trailing /text(): value rather than content
  // kNestedFlwr:
  std::unique_ptr<XqFlwr> flwr;
};

/// A where-clause condition on a variable.
struct XqCond {
  std::string var;
  std::vector<XqStep> steps;
  bool text = false;
  char cmp = 0;  // 0 = existence
  int64_t value = 0;
};

/// A FLWR block.
struct XqFlwr {
  std::string var;            // the for variable
  std::string source_var;     // outer variable ("" when doc(...))
  std::string document;       // doc() argument when source_var is empty
  std::vector<XqStep> steps;  // binding path
  std::vector<XqCond> where;
  std::string element;        // constructor tag ("" = bare expression)
  std::vector<XqExpr> returns;
};

}  // namespace svx

#endif  // SVX_XQUERY_XQUERY_AST_H_
