// Translation of the nested-FLWR subset into extended tree patterns
// (paper §1: the tree pattern language "captures structural identifiers and
// optional nodes, which allow us to translate nested XQueries into tree
// patterns"). Conventions:
//   * the document root is unknown to the query, so the pattern root is '*'
//     (or the given root label, if any);
//   * each for-variable node stores ID (grouping identity);
//   * $v/path/text() in a constructor stores V; a bare $v/path stores C;
//   * a nested FLWR in a constructor becomes an optional nested edge
//     (?n// ...), since the outer element is emitted even when the inner
//     sequence is empty;
//   * where-clause existence conditions become plain branches; value
//     comparisons become predicates;
//   * expressions other than the for variable itself hang off optional
//     edges ({ $x/name/text() } yields an empty sequence, not a failure).
#ifndef SVX_XQUERY_XQUERY_TRANSLATOR_H_
#define SVX_XQUERY_XQUERY_TRANSLATOR_H_

#include <string>
#include <string_view>

#include "src/pattern/pattern.h"
#include "src/util/status.h"
#include "src/xquery/xquery_ast.h"

namespace svx {

/// Translates a parsed FLWR block. `root_label` overrides the pattern root
/// ('*' by default — any document root).
[[nodiscard]] Result<Pattern> TranslateXQuery(const XqFlwr& flwr,
                                const std::string& root_label = "*");

/// Parses and translates in one step.
[[nodiscard]] Result<Pattern> XQueryToPattern(std::string_view query,
                                const std::string& root_label = "*");

}  // namespace svx

#endif  // SVX_XQUERY_XQUERY_TRANSLATOR_H_
