#include "src/util/check.h"
#include "src/xquery/xquery_translator.h"

#include <map>

#include "src/xquery/xquery_parser.h"

namespace svx {

namespace {

class Translator {
 public:
  explicit Translator(const std::string& root_label)
      : root_label_(root_label) {}

  Result<Pattern> Run(const XqFlwr& flwr) {
    if (!flwr.source_var.empty()) {
      return Status::InvalidArgument(
          "the outermost for must bind from doc(...)");
    }
    PatternNodeId root = pattern_.SetRoot(root_label_);
    SVX_RETURN_IF_ERROR(TranslateFlwr(flwr, root, /*nested=*/false));
    return std::move(pattern_);
  }

 private:
  /// Adds the chain of `steps` under `from`; returns the last node.
  PatternNodeId AddSteps(PatternNodeId from, const std::vector<XqStep>& steps,
                         bool first_optional, bool first_nested,
                         uint8_t last_attrs, Status* status) {
    PatternNodeId cur = from;
    for (size_t i = 0; i < steps.size(); ++i) {
      const XqStep& st = steps[i];
      bool last = i + 1 == steps.size();
      cur = pattern_.AddChild(cur, st.label, st.axis,
                              last ? last_attrs : 0, Predicate::True(),
                              i == 0 && first_optional,
                              i == 0 && first_nested);
      for (const XqStep::Pred& pred : st.preds) {
        Status s = AddPredicate(cur, pred);
        if (!s.ok()) {
          *status = s;
          return cur;
        }
      }
    }
    return cur;
  }

  Status AddPredicate(PatternNodeId node, const XqStep::Pred& pred) {
    if (pred.path.empty()) {
      // [text() cmp c]: predicate on the node itself.
      if (pred.cmp == 0) {
        return Status::InvalidArgument("empty existence predicate");
      }
      Pattern::Node& n = pattern_.mutable_node(node);
      n.pred = n.pred.And(MakePred(pred.cmp, pred.value));
      return Status::OK();
    }
    Status status = Status::OK();
    PatternNodeId leaf = AddSteps(node, pred.path, false, false, 0, &status);
    if (!status.ok()) return status;
    if (pred.cmp != 0) {
      Pattern::Node& n = pattern_.mutable_node(leaf);
      n.pred = n.pred.And(MakePred(pred.cmp, pred.value));
    }
    return Status::OK();
  }

  static Predicate MakePred(char cmp, int64_t v) {
    switch (cmp) {
      case '=':
        return Predicate::Eq(v);
      case '<':
        return Predicate::Lt(v);
      case '>':
        return Predicate::Gt(v);
    }
    return Predicate::True();
  }

  Status TranslateFlwr(const XqFlwr& flwr, PatternNodeId anchor,
                       bool nested) {
    // Binding path of the for variable.
    if (flwr.steps.empty()) {
      return Status::InvalidArgument("for binding without steps");
    }
    Status status = Status::OK();
    // A nested FLWR block is an optional nested edge: the outer element is
    // constructed even when the inner sequence is empty (paper §1).
    PatternNodeId var_node = AddSteps(anchor, flwr.steps,
                                      /*first_optional=*/nested,
                                      /*first_nested=*/nested, kAttrId,
                                      &status);
    if (!status.ok()) return status;
    vars_[flwr.var] = var_node;

    for (const XqCond& cond : flwr.where) {
      auto it = vars_.find(cond.var);
      if (it == vars_.end()) {
        return Status::InvalidArgument("unknown variable $" + cond.var);
      }
      if (cond.steps.empty()) {
        if (cond.cmp == 0) {
          return Status::InvalidArgument("vacuous where condition");
        }
        Pattern::Node& n = pattern_.mutable_node(it->second);
        n.pred = n.pred.And(MakePred(cond.cmp, cond.value));
        continue;
      }
      PatternNodeId leaf =
          AddSteps(it->second, cond.steps, false, false, 0, &status);
      if (!status.ok()) return status;
      if (cond.cmp != 0) {
        Pattern::Node& n = pattern_.mutable_node(leaf);
        n.pred = n.pred.And(MakePred(cond.cmp, cond.value));
      }
    }

    for (const XqExpr& expr : flwr.returns) {
      if (expr.kind == XqExpr::kNestedFlwr) {
        const XqFlwr& inner = *expr.flwr;
        auto it = vars_.find(inner.source_var);
        if (it == vars_.end()) {
          return Status::InvalidArgument(
              "nested for must bind from an outer variable");
        }
        SVX_RETURN_IF_ERROR(TranslateFlwr(inner, it->second, /*nested=*/true));
        continue;
      }
      auto it = vars_.find(expr.var);
      if (it == vars_.end()) {
        return Status::InvalidArgument("unknown variable $" + expr.var);
      }
      uint8_t attrs = expr.text ? kAttrValue : kAttrContent;
      if (expr.steps.empty()) {
        // Returning the variable itself.
        Pattern::Node& n = pattern_.mutable_node(it->second);
        n.attrs |= attrs;
        continue;
      }
      // Output expressions yield empty sequences when the path has no
      // match: optional first edge.
      AddSteps(it->second, expr.steps, /*first_optional=*/true, false, attrs,
               &status);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  std::string root_label_;
  Pattern pattern_;
  std::map<std::string, PatternNodeId> vars_;
};

}  // namespace

Result<Pattern> TranslateXQuery(const XqFlwr& flwr,
                                const std::string& root_label) {
  return Translator(root_label).Run(flwr);
}

Result<Pattern> XQueryToPattern(std::string_view query,
                                const std::string& root_label) {
  Result<std::unique_ptr<XqFlwr>> ast = ParseXQuery(query);
  if (!ast.ok()) return ast.status();
  return TranslateXQuery(**ast, root_label);
}

}  // namespace svx
