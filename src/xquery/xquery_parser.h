// Parser for the FLWR subset (see xquery_ast.h).
#ifndef SVX_XQUERY_XQUERY_PARSER_H_
#define SVX_XQUERY_XQUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "src/util/status.h"
#include "src/xquery/xquery_ast.h"

namespace svx {

/// Parses one (possibly nested) FLWR query.
[[nodiscard]] Result<std::unique_ptr<XqFlwr>> ParseXQuery(
    std::string_view text);

}  // namespace svx

#endif  // SVX_XQUERY_XQUERY_PARSER_H_
