#include "src/util/check.h"
#include "src/xquery/xquery_parser.h"

#include <cctype>

#include "src/util/strings.h"

namespace svx {

namespace {

class XQueryParser {
 public:
  explicit XQueryParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XqFlwr>> Parse() {
    Result<std::unique_ptr<XqFlwr>> flwr = ParseFlwr();
    if (!flwr.ok()) return flwr;
    Skip();
    if (pos_ != text_.size()) {
      return Err("trailing input after query");
    }
    return flwr;
  }

 private:
  Status ErrS(const std::string& what) {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }
  Result<std::unique_ptr<XqFlwr>> Err(const std::string& what) {
    return ErrS(what);
  }

  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(std::string_view token) {
    Skip();
    if (text_.size() - pos_ >= token.size() &&
        text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool EatKeyword(std::string_view kw) {
    Skip();
    size_t end = pos_ + kw.size();
    if (text_.size() < end || text_.substr(pos_, kw.size()) != kw) {
      return false;
    }
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  std::string ParseName() {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '@')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string ParseVar() {
    Skip();
    if (pos_ >= text_.size() || text_[pos_] != '$') return "";
    ++pos_;
    return ParseName();
  }

  /// steps := (('/' | '//') (name | '*') pred*)+ ; stops before '/text()'.
  Status ParseSteps(std::vector<XqStep>* steps, bool* text) {
    if (text != nullptr) *text = false;
    while (true) {
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != '/') break;
      size_t save = pos_;
      Axis axis = Axis::kChild;
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '/') {
        axis = Axis::kDescendant;
        ++pos_;
      }
      Skip();
      if (text != nullptr && Eat("text()")) {
        if (axis == Axis::kDescendant) return ErrS("//text() not supported");
        *text = true;
        break;
      }
      std::string label;
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        label = "*";
      } else {
        label = ParseName();
      }
      if (label.empty()) {
        pos_ = save;
        break;
      }
      XqStep step;
      step.axis = axis;
      step.label = label;
      // Step predicates.
      while (true) {
        Skip();
        if (pos_ >= text_.size() || text_[pos_] != '[') break;
        ++pos_;
        XqStep::Pred pred;
        Skip();
        // Allow a leading '.' for relative paths like [.//mail].
        if (pos_ < text_.size() && text_[pos_] == '.') ++pos_;
        Skip();
        // XPath allows a bare first step ([@id=0], [name]): synthesize the
        // child axis.
        if (pos_ < text_.size() && text_[pos_] != '/' && text_[pos_] != ']') {
          std::string bare = ParseName();
          if (bare.empty()) return ErrS("expected predicate path");
          XqStep first;
          first.axis = Axis::kChild;
          first.label = bare;
          pred.path.push_back(std::move(first));
        }
        SVX_RETURN_IF_ERROR(ParseSteps(&pred.path, &pred.has_text));
        if (pred.path.empty() && !pred.has_text) {
          return ErrS("empty step predicate");
        }
        Skip();
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || text_[pos_] == '<' || text_[pos_] == '>')) {
          pred.cmp = text_[pos_];
          ++pos_;
          Skip();
          size_t vstart = pos_;
          if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
          while (pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
          }
          auto v = ParseInt64(text_.substr(vstart, pos_ - vstart));
          if (!v.has_value()) return ErrS("expected integer constant");
          pred.value = *v;
        }
        Skip();
        if (!Eat("]")) return ErrS("missing ']'");
        step.preds.push_back(std::move(pred));
      }
      steps->push_back(std::move(step));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<XqFlwr>> ParseFlwr() {
    if (!EatKeyword("for")) return Err("expected 'for'");
    auto flwr = std::make_unique<XqFlwr>();
    flwr->var = ParseVar();
    if (flwr->var.empty()) return Err("expected variable after 'for'");
    if (!EatKeyword("in")) return Err("expected 'in'");
    Skip();
    if (EatKeyword("doc")) {
      if (!Eat("(")) return Err("expected '(' after doc");
      Skip();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Err("expected document name string");
      }
      char quote = text_[pos_++];
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return Err("unterminated string");
      flwr->document = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      if (!Eat(")")) return Err("expected ')'");
    } else {
      flwr->source_var = ParseVar();
      if (flwr->source_var.empty()) {
        return Err("expected doc(...) or a variable");
      }
    }
    SVX_RETURN_IF_ERROR(ParseSteps(&flwr->steps, nullptr));
    if (flwr->steps.empty()) return Err("binding path must have steps");

    if (EatKeyword("where")) {
      do {
        XqCond cond;
        cond.var = ParseVar();
        if (cond.var.empty()) return Err("expected variable in where");
        Status cs = ParseSteps(&cond.steps, &cond.text);
        if (!cs.ok()) return cs;
        Skip();
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || text_[pos_] == '<' || text_[pos_] == '>')) {
          cond.cmp = text_[pos_];
          ++pos_;
          Skip();
          size_t vstart = pos_;
          if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
          while (pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
          }
          auto v = ParseInt64(text_.substr(vstart, pos_ - vstart));
          if (!v.has_value()) return Err("expected integer constant");
          cond.value = *v;
        }
        flwr->where.push_back(std::move(cond));
      } while (EatKeyword("and"));
    }

    if (!EatKeyword("return")) return Err("expected 'return'");
    Skip();
    if (pos_ < text_.size() && text_[pos_] == '<') {
      ++pos_;
      flwr->element = ParseName();
      if (flwr->element.empty()) return Err("expected constructor tag");
      if (!Eat(">")) return Err("expected '>'");
      if (!Eat("{")) return Err("expected '{' in constructor");
      while (true) {
        Result<XqExpr> e = ParseExpr();
        if (!e.ok()) return e.status();
        flwr->returns.push_back(std::move(*e));
        if (!Eat(",")) break;
      }
      if (!Eat("}")) return Err("expected '}' in constructor");
      if (!Eat("</")) return Err("expected closing tag");
      std::string close = ParseName();
      if (close != flwr->element) return Err("mismatched constructor tags");
      if (!Eat(">")) return Err("expected '>'");
    } else {
      Result<XqExpr> e = ParseExpr();
      if (!e.ok()) return e.status();
      flwr->returns.push_back(std::move(*e));
    }
    return flwr;
  }

  Result<XqExpr> ParseExpr() {
    Skip();
    XqExpr expr;
    if (text_.substr(pos_).substr(0, 3) == "for") {
      Result<std::unique_ptr<XqFlwr>> nested = ParseFlwr();
      if (!nested.ok()) return nested.status();
      expr.kind = XqExpr::kNestedFlwr;
      expr.flwr = std::move(*nested);
      return expr;
    }
    expr.var = ParseVar();
    if (expr.var.empty()) return ErrS("expected variable or nested for");
    SVX_RETURN_IF_ERROR(ParseSteps(&expr.steps, &expr.text));
    return expr;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XqFlwr>> ParseXQuery(std::string_view text) {
  return XQueryParser(text).Parse();
}

}  // namespace svx
