// Pattern containment under summary constraints (paper §3.1 and §4):
//
//   p ⊆S q  iff for every canonical tree te in modS(p), the return tuple of
//   te is produced by q evaluated over te (Prop 3.1, condition 3), extended
//   with:
//     * attribute equality per return node (Prop 4.1, condition 1),
//     * nesting-sequence compatibility (Prop 4.2, conditions 2a/2b, with the
//       optional one-to-one relaxation of §4.5),
//     * decorated patterns: decorated embeddings for single containment; for
//       unions, the §4.2 two-part condition, whose value implication
//       phi_te => OR phi_t'e is decided exactly on a finite grid of
//       representative points (the paper's N^{|S|} bound, restricted to the
//       variables actually mentioned).
#ifndef SVX_CONTAINMENT_CONTAINMENT_H_
#define SVX_CONTAINMENT_CONTAINMENT_H_

#include <vector>

#include "src/pattern/canonical.h"
#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// Tuning knobs for containment decisions.
struct ContainmentOptions {
  CanonicalModelOptions model;
  /// Apply the §4.5 relaxation: nesting-sequence elements may differ when
  /// connected by one-to-one edges only.
  bool use_one_to_one_relaxation = true;
  /// Abort the §4.2 condition-2 grid beyond this many evaluation points.
  size_t max_grid_points = 4u << 20;
};

/// Measurements reported by the decision procedures (used by the §5
/// experiments).
struct ContainmentStats {
  size_t left_model_size = 0;   // |modS(p)|
  size_t trees_checked = 0;     // trees examined before the decision
  size_t grid_points = 0;       // §4.2 condition-2 evaluations
};

/// Decides p ⊆S q.
[[nodiscard]] Result<bool> IsContained(const Pattern& p, const Pattern& q,
                         const Summary& summary,
                         const ContainmentOptions& options = {},
                         ContainmentStats* stats = nullptr);

/// Decides p ⊆S q1 ∪ ... ∪ qm (Prop 3.2 / §4.2).
///
/// `p_model`, when given, must be modS(p) as built by BuildCanonicalModel
/// with the same summary and model options: the decision then iterates the
/// precomputed trees instead of re-enumerating them — the rewriter tests
/// one fixed query against many candidate unions and builds modS(q) once.
[[nodiscard]] Result<bool> IsContainedInUnion(const Pattern& p,
                                const std::vector<const Pattern*>& qs,
                                const Summary& summary,
                                const ContainmentOptions& options = {},
                                ContainmentStats* stats = nullptr,
                                const std::vector<CanonicalTree>* p_model =
                                    nullptr);

/// Two-way containment (S-equivalence).
[[nodiscard]] Result<bool> AreEquivalent(const Pattern& p, const Pattern& q,
                           const Summary& summary,
                           const ContainmentOptions& options = {},
                           ContainmentStats* stats = nullptr);

/// Decides (p1 ∪ ... ∪ pn) ⊆S (q1 ∪ ... ∪ qm): every pi must be contained
/// in the union.
[[nodiscard]] Result<bool> IsUnionContainedInUnion(const std::vector<const Pattern*>& ps,
                                     const std::vector<const Pattern*>& qs,
                                     const Summary& summary,
                                     const ContainmentOptions& options = {},
                                     ContainmentStats* stats = nullptr);

}  // namespace svx

#endif  // SVX_CONTAINMENT_CONTAINMENT_H_
