// Satisfiability utilities layered on the canonical model (paper §2.4:
// p is S-satisfiable iff modS(p) is non-empty). The rewriting algorithm
// (§3.3) discards intermediate join patterns as soon as they become
// S-unsatisfiable.
#ifndef SVX_CONTAINMENT_SATISFIABILITY_H_
#define SVX_CONTAINMENT_SATISFIABILITY_H_

#include <vector>

#include "src/pattern/canonical.h"
#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// Keeps only the S-satisfiable patterns of `patterns`; preserves order.
/// Patterns whose satisfiability cannot be decided within the option limits
/// are kept (conservative).
std::vector<Pattern> FilterSatisfiable(const std::vector<Pattern>& patterns,
                                       const Summary& summary,
                                       const CanonicalModelOptions& options = {});

/// True when the pattern trivially has no embedding in the summary (a
/// cheap O(|p| x |S|) necessary test: some node has no associated path).
/// IsSatisfiable (canonical.h) is the exact test.
bool TriviallyUnsatisfiable(const Pattern& p, const Summary& summary);

}  // namespace svx

#endif  // SVX_CONTAINMENT_SATISFIABILITY_H_
