// Memoized containment decisions.
//
// The rewriter tests structurally identical pattern pairs over and over:
// TryMatch rebuilds the same per-piece test patterns across assignments and
// candidates, and the union phase re-checks overlapping subsets. Containment
// is a pure function of (p, q-set, summary, options), so decisions are
// memoized under the key
//
//   direction tag · options fingerprint · canonical(p) · canonical(q1..qm)
//
// where canonical() is the round-trippable ParsePattern serialization (two
// patterns with equal text have equal semantics) and union members are
// sorted (union containment is order-independent).
//
// A memo is bound to ONE summary: the key deliberately omits it, so share a
// memo only across calls that use the same summary, and Clear() it whenever
// the underlying document (and hence the summary) changes. Each
// CatalogSnapshot pins a memo with exactly this lifecycle: shared across
// Rewrite() calls against that snapshot, replaced when a maintenance pass
// publishes a snapshot with a new document.
//
// Thread-safe: the table is guarded by an internal mutex so concurrent
// readers of one snapshot can share the memo. Lookups and inserts lock;
// containment itself is computed outside the lock (two threads may race to
// compute the same miss — both get the right answer, one insert wins).
//
// Only ok() results are memoized; resource-exhausted decisions are retried.
#ifndef SVX_CONTAINMENT_MEMO_H_
#define SVX_CONTAINMENT_MEMO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/containment/containment.h"
#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace svx {

class ContainmentMemo {
 public:
  /// Memoized IsContained(p, q, summary, options).
  [[nodiscard]] Result<bool> Contained(const Pattern& p, const Pattern& q,
                                       const Summary& summary,
                                       const ContainmentOptions& options)
      SVX_EXCLUDES(mu_);

  /// Memoized IsContainedInUnion(p, qs, summary, options). `p_model` is
  /// forwarded on a miss (see containment.h); it does not enter the key.
  [[nodiscard]] Result<bool> ContainedInUnion(
      const Pattern& p, const std::vector<const Pattern*>& qs,
      const Summary& summary, const ContainmentOptions& options,
      const std::vector<CanonicalTree>* p_model = nullptr) SVX_EXCLUDES(mu_);

  /// Drops every entry (call when the summary changes).
  void Clear() SVX_EXCLUDES(mu_);

  size_t hits() const SVX_EXCLUDES(mu_);
  size_t misses() const SVX_EXCLUDES(mu_);
  size_t size() const SVX_EXCLUDES(mu_);

  /// When the table is full a new insert drops it whole (constant-time
  /// eviction, like RewriteCache) — bounds memory for long-lived
  /// snapshot-pinned memos serving unbounded ad-hoc query streams. Set
  /// before the memo is shared across threads.
  size_t max_entries = 1u << 16;

 private:
  Result<bool> LookupOrCompute(std::string key,
                               const std::function<Result<bool>()>& compute)
      SVX_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, bool> table_ SVX_GUARDED_BY(mu_);
  size_t hits_ SVX_GUARDED_BY(mu_) = 0;
  size_t misses_ SVX_GUARDED_BY(mu_) = 0;
};

}  // namespace svx

#endif  // SVX_CONTAINMENT_MEMO_H_
