#include "src/containment/satisfiability.h"

#include "src/pattern/embedding.h"

namespace svx {

std::vector<Pattern> FilterSatisfiable(const std::vector<Pattern>& patterns,
                                       const Summary& summary,
                                       const CanonicalModelOptions& options) {
  std::vector<Pattern> out;
  for (const Pattern& p : patterns) {
    Result<bool> sat = IsSatisfiable(p, summary, options);
    if (!sat.ok() || *sat) out.push_back(p);
  }
  return out;
}

bool TriviallyUnsatisfiable(const Pattern& p, const Summary& summary) {
  // Only the non-optional skeleton must embed; optional subtrees may be
  // unmatchable without making the pattern unsatisfiable.
  std::vector<PatternNodeId> optional = p.OptionalEdges();
  Pattern skeleton = p.EraseSubtrees(optional);
  AssociatedPaths paths = ComputeAssociatedPaths(skeleton, summary);
  return !paths.AllNonEmpty();
}

}  // namespace svx
