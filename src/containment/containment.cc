#include "src/containment/containment.h"
#include "src/util/check.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

namespace svx {

namespace {

/// Prop 4.1 condition 1 + Prop 4.2 condition 2(a): same arity, same
/// attribute annotation and same nesting depth per return-node position.
bool StaticallyCompatible(const Pattern& p, const Pattern& q) {
  std::vector<PatternNodeId> rp = p.ReturnNodes();
  std::vector<PatternNodeId> rq = q.ReturnNodes();
  if (rp.size() != rq.size()) return false;
  for (size_t i = 0; i < rp.size(); ++i) {
    if (p.node(rp[i]).attrs != q.node(rq[i]).attrs) return false;
    if (p.NestingDepth(rp[i]) != q.NestingDepth(rq[i])) return false;
  }
  return true;
}

/// §4.5: true iff `a` and `b` are connected by one-to-one edges only (or
/// equal).
bool OneToOneConnected(const Summary& s, PathId a, PathId b) {
  if (a == b) return true;
  PathId top = a;
  PathId bottom = b;
  if (s.IsAncestor(b, a)) {
    top = b;
    bottom = a;
  } else if (!s.IsAncestor(a, b)) {
    return false;
  }
  for (PathId cur = bottom; cur != top; cur = s.parent(cur)) {
    if (!s.one_to_one(cur)) return false;
  }
  return true;
}

/// Prop 4.2 condition 2(b): element-wise nesting-sequence compatibility.
/// Anchors are canonical-tree nodes; equality is node identity, optionally
/// relaxed to distinct nodes whose paths are connected by one-to-one edges.
bool NestingSeqCompatible(const Summary& s, const CanonicalTree& te,
                          const std::vector<int32_t>& q_seq,
                          const std::vector<int32_t>& te_seq, bool relax) {
  if (q_seq.size() != te_seq.size()) return false;
  for (size_t i = 0; i < q_seq.size(); ++i) {
    if (q_seq[i] == te_seq[i]) continue;
    if (!relax) return false;
    PathId pa = te.paths[static_cast<size_t>(q_seq[i])];
    PathId pb = te.paths[static_cast<size_t>(te_seq[i])];
    if (pa == pb || !OneToOneConnected(s, pa, pb)) return false;
  }
  return true;
}

/// A conjunction of per-path formulas (the phi of §4.2, variables indexed by
/// summary node as in the paper).
struct FormulaConj {
  std::vector<std::pair<PathId, Predicate>> terms;  // sorted by path, unique

  void Add(PathId path, const Predicate& pred) {
    if (pred.IsTrue()) return;
    for (auto& [p, existing] : terms) {
      if (p == path) {
        existing = existing.And(pred);
        return;
      }
    }
    terms.emplace_back(path, pred);
  }

  void Sort() {
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  static FormulaConj Of(const CanonicalTree& t) {
    FormulaConj f;
    if (t.HasFormulas()) {
      for (int32_t n = 0; n < t.size(); ++n) {
        f.Add(t.paths[static_cast<size_t>(n)], t.FormulaFor(n));
      }
    }
    f.Sort();
    return f;
  }

  bool Eval(const std::unordered_map<PathId, int64_t>& assign) const {
    for (const auto& [path, pred] : terms) {
      auto it = assign.find(path);
      if (it == assign.end()) return false;
      if (!pred.Contains(it->second)) return false;
    }
    return true;
  }
};

/// §4.2 condition 2, decided exactly on a finite grid: every grid point
/// satisfying `lhs` must satisfy some member of `rhs`. The grid takes, per
/// variable, {c-1, c, c+1} for every constant c mentioned — enough to hit
/// every region of the interval arrangement.
Result<bool> ImpliesDisjunction(const FormulaConj& lhs,
                                const std::vector<FormulaConj>& rhs,
                                size_t max_points, size_t* points_used) {
  std::unordered_map<PathId, std::vector<int64_t>> candidates;
  auto add_formula = [&](const FormulaConj& f) {
    for (const auto& [path, pred] : f.terms) {
      std::vector<int64_t>& c = candidates[path];
      for (int64_t e : pred.Endpoints()) {
        if (e > std::numeric_limits<int64_t>::min()) c.push_back(e - 1);
        c.push_back(e);
        if (e < std::numeric_limits<int64_t>::max()) c.push_back(e + 1);
      }
    }
  };
  add_formula(lhs);
  for (const FormulaConj& f : rhs) add_formula(f);

  std::vector<PathId> vars;
  for (auto& [path, c] : candidates) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    if (c.empty()) c.push_back(0);
    vars.push_back(path);
  }
  std::sort(vars.begin(), vars.end());

  size_t total = 1;
  for (PathId v : vars) {
    size_t n = candidates[v].size();
    if (total > max_points / std::max<size_t>(n, 1)) {
      return Status::ResourceExhausted("condition-2 grid too large");
    }
    total *= n;
  }
  if (points_used != nullptr) *points_used += total;

  std::unordered_map<PathId, int64_t> assign;
  std::vector<size_t> idx(vars.size(), 0);
  while (true) {
    for (size_t i = 0; i < vars.size(); ++i) {
      assign[vars[i]] = candidates[vars[i]][idx[i]];
    }
    if (lhs.Eval(assign)) {
      bool covered = false;
      for (const FormulaConj& f : rhs) {
        if (f.Eval(assign)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    size_t i = 0;
    for (; i < vars.size(); ++i) {
      if (++idx[i] < candidates[vars[i]].size()) break;
      idx[i] = 0;
    }
    if (i == vars.size()) break;
  }
  return true;
}

/// Checks whether q structurally covers te's return tuple (with nesting),
/// and — when `disjuncts` is non-null — collects, per covering embedding e',
/// the formula phi_t'e = AND over q nodes of pred(q node) on the variable of
/// the bound path (the trees of g(te), §4.2, generated directly from the
/// embeddings).
bool CoversTarget(const Pattern& q, const CanonicalTree& te,
                  const Summary& summary, FormulaMode mode,
                  bool check_nesting, bool relax,
                  std::vector<FormulaConj>* disjuncts,
                  size_t max_disjuncts = 256) {
  CanonicalTreeView view(te, summary);
  std::vector<PatternNodeId> rets = q.ReturnNodes();
  std::vector<std::vector<PatternNodeId>> uppers(rets.size());
  bool q_nested = q.HasNestedEdges();
  if (q_nested) {
    for (size_t i = 0; i < rets.size(); ++i) {
      for (PatternNodeId m : q.NestingAncestors(rets[i])) {
        uppers[i].push_back(q.node(m).parent);
      }
    }
  }
  static const std::vector<int32_t> kEmptySeq;
  // Pin the return nodes to the target bindings — a pure search-space
  // filter; the explicit checks below remain the arbiter.
  std::vector<int32_t> pinned(static_cast<size_t>(q.size()),
                              kUnpinnedBinding);
  for (size_t i = 0; i < rets.size(); ++i) {
    pinned[static_cast<size_t>(rets[i])] = te.return_tuple[i];
  }
  bool covered = false;
  auto emit = [&](const TreeEmbedding& a) {
    // Return tuple must match by node identity.
    for (size_t i = 0; i < rets.size(); ++i) {
      if (a[static_cast<size_t>(rets[i])] != te.return_tuple[i]) return true;
    }
    if (check_nesting) {
      for (size_t i = 0; i < rets.size(); ++i) {
        if (te.return_tuple[i] == CanonicalTree::kBottom) continue;
        std::vector<int32_t> q_seq;
        for (PatternNodeId u : uppers[i]) {
          q_seq.push_back(a[static_cast<size_t>(u)]);
        }
        const std::vector<int32_t>& te_seq =
            te.nesting_seqs.empty() ? kEmptySeq : te.nesting_seqs[i];
        if (!NestingSeqCompatible(summary, te, q_seq, te_seq, relax)) {
          return true;
        }
      }
    }
    covered = true;
    if (disjuncts == nullptr) return false;  // existence is enough
    FormulaConj f;
    for (PatternNodeId n = 0; n < q.size(); ++n) {
      if (q.node(n).pred.IsTrue()) continue;
      int32_t binding = a[static_cast<size_t>(n)];
      if (binding == kBottomBinding) continue;
      f.Add(te.paths[static_cast<size_t>(binding)], q.node(n).pred);
    }
    f.Sort();
    disjuncts->push_back(std::move(f));
    return disjuncts->size() < max_disjuncts;
  };
  EnumerateTreeEmbeddings(q, view, mode, emit, &pinned);
  return covered;
}

}  // namespace

Result<bool> IsContained(const Pattern& p, const Pattern& q,
                         const Summary& summary,
                         const ContainmentOptions& options,
                         ContainmentStats* stats) {
  if (!StaticallyCompatible(p, q)) return false;
  bool check_nesting = p.HasNestedEdges() || q.HasNestedEdges();
  // Stream modS(p): a negative test exits at the first tree that
  // contradicts the condition (§5).
  bool contained = true;
  Status st = ForEachCanonicalTree(
      p, summary, options.model, [&](const CanonicalTree& te) {
        if (stats != nullptr) {
          ++stats->trees_checked;
          ++stats->left_model_size;
        }
        // §4.2: single containment uses decorated embeddings (implication).
        if (!CoversTarget(q, te, summary, FormulaMode::kImplication,
                          check_nesting, options.use_one_to_one_relaxation,
                          nullptr)) {
          contained = false;
          return false;
        }
        return true;
      });
  if (!st.ok()) return st;
  return contained;
}

Result<bool> IsContainedInUnion(const Pattern& p,
                                const std::vector<const Pattern*>& qs,
                                const Summary& summary,
                                const ContainmentOptions& options,
                                ContainmentStats* stats,
                                const std::vector<CanonicalTree>* p_model) {
  // Filter members by the static conditions; incompatible members can never
  // cover a tuple of p.
  std::vector<const Pattern*> usable;
  bool any_predicates = p.HasPredicates();
  for (const Pattern* q : qs) {
    if (StaticallyCompatible(p, *q)) {
      usable.push_back(q);
      any_predicates = any_predicates || q->HasPredicates();
    }
  }

  bool check_nesting = p.HasNestedEdges();
  for (const Pattern* q : usable) {
    check_nesting = check_nesting || q->HasNestedEdges();
  }

  bool contained = true;
  Status grid_status = Status::OK();
  auto check_tree = [&](const CanonicalTree& te) {
        if (stats != nullptr) {
          ++stats->trees_checked;
          ++stats->left_model_size;
        }
        if (usable.empty()) {
          contained = false;
          return false;
        }
        // Condition 1: some member covers te's tuple structurally; with
        // predicates, also collect the disjunct formulas of the covering
        // embeddings (the g(te) of §4.2).
        std::vector<FormulaConj> disjuncts;
        bool any_covered = false;
        for (const Pattern* q : usable) {
          FormulaMode mode = any_predicates ? FormulaMode::kSatisfiability
                                            : FormulaMode::kIgnore;
          bool covered = CoversTarget(*q, te, summary, mode, check_nesting,
                                      options.use_one_to_one_relaxation,
                                      any_predicates ? &disjuncts : nullptr);
          any_covered = any_covered || covered;
          if (covered && !any_predicates) break;
        }
        if (!any_covered) {
          contained = false;
          return false;
        }
        if (!any_predicates) return true;

        // Condition 2: phi_te => OR of the covering embeddings' formulas.
        if (disjuncts.empty()) {
          contained = false;
          return false;
        }
        size_t points = 0;
        Result<bool> implied =
            ImpliesDisjunction(FormulaConj::Of(te), disjuncts,
                               options.max_grid_points, &points);
        if (stats != nullptr) stats->grid_points += points;
        if (!implied.ok()) {
          grid_status = implied.status();
          return false;
        }
        if (!*implied) {
          contained = false;
          return false;
        }
        return true;
      };
  if (p_model != nullptr) {
    for (const CanonicalTree& te : *p_model) {
      if (!check_tree(te)) break;
    }
  } else {
    SVX_RETURN_IF_ERROR(ForEachCanonicalTree(p, summary, options.model, check_tree));
  }
  if (!grid_status.ok()) return grid_status;
  return contained;
}

Result<bool> AreEquivalent(const Pattern& p, const Pattern& q,
                           const Summary& summary,
                           const ContainmentOptions& options,
                           ContainmentStats* stats) {
  Result<bool> a = IsContained(p, q, summary, options, stats);
  if (!a.ok() || !*a) return a;
  return IsContained(q, p, summary, options, stats);
}

Result<bool> IsUnionContainedInUnion(const std::vector<const Pattern*>& ps,
                                     const std::vector<const Pattern*>& qs,
                                     const Summary& summary,
                                     const ContainmentOptions& options,
                                     ContainmentStats* stats) {
  for (const Pattern* p : ps) {
    Result<bool> r = IsContainedInUnion(*p, qs, summary, options, stats);
    if (!r.ok() || !*r) return r;
  }
  return true;
}

}  // namespace svx
