#include "src/containment/memo.h"

#include <algorithm>

#include "src/observability/metrics.h"
#include "src/pattern/pattern_printer.h"
#include "src/util/strings.h"

namespace svx {

namespace {

/// Every option that can change a containment decision.
std::string OptionsFingerprint(const ContainmentOptions& o) {
  return StrFormat("%d:%d:%zu:%zu:%zu:%d", o.use_one_to_one_relaxation ? 1 : 0,
                   o.model.use_strong_edges ? 1 : 0, o.model.max_embeddings,
                   o.model.max_trees, o.max_grid_points,
                   o.model.max_optional_edges);
}

}  // namespace

Result<bool> ContainmentMemo::LookupOrCompute(
    std::string key, const std::function<Result<bool>()>& compute) {
  {
    MutexLock lock(&mu_);
    auto it = table_.find(key);
    if (it != table_.end()) {
      ++hits_;
      metrics::ContainmentMemoHits()->Add(1);
      return it->second;
    }
    ++misses_;
  }
  metrics::ContainmentMemoMisses()->Add(1);
  // Compute outside the lock: containment tests are the expensive part, and
  // a duplicate computation by a racing thread is just a wasted lookup.
  Result<bool> r = compute();
  if (r.ok()) {
    MutexLock lock(&mu_);
    if (table_.size() >= max_entries) table_.clear();
    table_.emplace(std::move(key), *r);
  }
  return r;
}

Result<bool> ContainmentMemo::Contained(const Pattern& p, const Pattern& q,
                                        const Summary& summary,
                                        const ContainmentOptions& options) {
  std::string key = "C\x1f" + OptionsFingerprint(options) + "\x1f" +
                    PatternToString(p) + "\x1f" + PatternToString(q);
  return LookupOrCompute(std::move(key), [&]() {
    return IsContained(p, q, summary, options);
  });
}

Result<bool> ContainmentMemo::ContainedInUnion(
    const Pattern& p, const std::vector<const Pattern*>& qs,
    const Summary& summary, const ContainmentOptions& options,
    const std::vector<CanonicalTree>* p_model) {
  std::vector<std::string> members;
  members.reserve(qs.size());
  for (const Pattern* q : qs) members.push_back(PatternToString(*q));
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  std::string key = "U\x1f" + OptionsFingerprint(options) + "\x1f" +
                    PatternToString(p) + "\x1f" + Join(members, "\x1e");
  return LookupOrCompute(std::move(key), [&]() {
    return IsContainedInUnion(p, qs, summary, options, nullptr, p_model);
  });
}

void ContainmentMemo::Clear() {
  MutexLock lock(&mu_);
  table_.clear();
}

size_t ContainmentMemo::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

size_t ContainmentMemo::misses() const {
  MutexLock lock(&mu_);
  return misses_;
}

size_t ContainmentMemo::size() const {
  MutexLock lock(&mu_);
  return table_.size();
}

}  // namespace svx
