#include "src/summary/summary_io.h"

#include <cctype>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

namespace {

class SummaryParser {
 public:
  explicit SummaryParser(std::string_view text)
      : text_(text), summary_(new Summary()) {}

  Result<std::unique_ptr<Summary>> Parse() {
    SkipSpace();
    SVX_RETURN_IF_ERROR(ParseNode(kInvalidPath));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing input at offset %zu", pos_));
    }
    summary_->Seal();
    return std::move(summary_);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r' ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  static bool IsLabelStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '@' || c == '#';
  }
  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '@' || c == '#';
  }

  Status ParseNode(PathId parent) {
    if (pos_ >= text_.size() || !IsLabelStart(text_[pos_])) {
      return Status::ParseError(
          StrFormat("expected label at offset %zu", pos_));
    }
    size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
    std::string_view label = text_.substr(start, pos_ - start);

    bool strong = false;
    bool one_to_one = false;
    if (pos_ < text_.size() && text_[pos_] == '!') {
      strong = true;
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '!') {
        one_to_one = true;
        ++pos_;
      }
    }
    if (parent == kInvalidPath && strong) {
      return Status::ParseError("the root cannot hang under a strong edge");
    }

    Summary& s = *summary_;
    if (parent != kInvalidPath &&
        s.FindChild(parent, std::string(label)) != kInvalidPath) {
      return Status::ParseError(
          StrFormat("duplicate child label '%s' in summary",
                    std::string(label).c_str()));
    }
    PathId id = s.AppendNode(parent, label, strong, one_to_one);

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] != ')') {
        SVX_RETURN_IF_ERROR(ParseNode(id));
        SkipSpace();
      }
      if (pos_ >= text_.size()) return Status::ParseError("missing ')'");
      ++pos_;
      SkipSpace();
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::unique_ptr<Summary> summary_;
};

void NodeToString(const Summary& s, PathId n, std::string* out) {
  out->append(s.label(n));
  if (n != s.root() && s.one_to_one(n)) {
    out->append("!!");
  } else if (n != s.root() && s.strong_edge(n)) {
    out->append("!");
  }
  const auto& cs = s.children(n);
  if (!cs.empty()) {
    out->push_back('(');
    for (size_t i = 0; i < cs.size(); ++i) {
      if (i > 0) out->push_back(' ');
      NodeToString(s, cs[i], out);
    }
    out->push_back(')');
  }
}

}  // namespace

Result<std::unique_ptr<Summary>> ParseSummary(std::string_view text) {
  return SummaryParser(text).Parse();
}

std::string SummaryToString(const Summary& summary) {
  std::string out;
  if (summary.size() > 0) NodeToString(summary, summary.root(), &out);
  return out;
}

}  // namespace svx
