// Text serialization for summaries, so tests and benches can state a summary
// directly (as the paper's figures do) instead of deriving it from a
// document. Syntax: parenthesized tree of labels, where a label suffixed
// with '!' hangs under a strong edge and '!!' under a one-to-one edge
// (one-to-one implies strong):
//   "a(b!(c(d b!) e) f!)"
#ifndef SVX_SUMMARY_SUMMARY_IO_H_
#define SVX_SUMMARY_SUMMARY_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// Parses the summary notation above.
Result<std::unique_ptr<Summary>> ParseSummary(std::string_view text);

/// Serializes `summary` in the same notation.
std::string SummaryToString(const Summary& summary);

}  // namespace svx

#endif  // SVX_SUMMARY_SUMMARY_IO_H_
