#include "src/summary/summary.h"

#include <algorithm>

#include "src/util/strings.h"

namespace svx {

int32_t Summary::num_strong_edges() const {
  int32_t n = 0;
  for (PathId s = 1; s < size(); ++s) {
    if (strong_edge(s)) ++n;
  }
  return n;
}

int32_t Summary::num_one_to_one_edges() const {
  int32_t n = 0;
  for (PathId s = 1; s < size(); ++s) {
    if (one_to_one(s)) ++n;
  }
  return n;
}

PathId Summary::FindChild(PathId s, const std::string& label) const {
  int32_t lid = label_interner_.Find(label);
  if (lid == StringInterner::kNone) return kInvalidPath;
  for (PathId c : children(s)) {
    if (label_id(c) == lid) return c;
  }
  return kInvalidPath;
}

PathId Summary::Resolve(const std::string& slash_path) const {
  if (size() == 0) return kInvalidPath;
  std::vector<std::string> pieces = Split(slash_path, '/');
  // A rooted path "/a/b" splits into ["", "a", "b"].
  size_t i = 0;
  if (!pieces.empty() && pieces[0].empty()) i = 1;
  if (i >= pieces.size()) return kInvalidPath;
  if (pieces[i] != label(root())) return kInvalidPath;
  PathId cur = root();
  for (++i; i < pieces.size(); ++i) {
    if (pieces[i].empty()) continue;
    cur = FindChild(cur, pieces[i]);
    if (cur == kInvalidPath) return kInvalidPath;
  }
  return cur;
}

std::string Summary::PathString(PathId s) const {
  std::vector<const std::string*> parts;
  for (PathId cur = s; cur != kInvalidPath; cur = parent(cur)) {
    parts.push_back(&label(cur));
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

std::vector<PathId> Summary::Chain(PathId a, PathId b) const {
  SVX_CHECK(IsAncestorOrSelf(a, b));
  std::vector<PathId> rev;
  for (PathId cur = b; cur != a; cur = parent(cur)) {
    rev.push_back(cur);
  }
  rev.push_back(a);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::vector<PathId> Summary::Descendants(PathId s) const {
  std::vector<PathId> out;
  std::vector<PathId> stack(children(s).rbegin(), children(s).rend());
  while (!stack.empty()) {
    PathId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& cs = children(cur);
    stack.insert(stack.end(), cs.rbegin(), cs.rend());
  }
  return out;
}

std::vector<PathId> Summary::StrongClosure(std::vector<PathId> seed) const {
  std::vector<bool> in(static_cast<size_t>(size()), false);
  std::vector<PathId> stack;
  for (PathId s : seed) {
    if (!in[Check(s)]) {
      in[Check(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    PathId cur = stack.back();
    stack.pop_back();
    for (PathId c : children(cur)) {
      if (strong_edge(c) && !in[Check(c)]) {
        in[Check(c)] = true;
        stack.push_back(c);
      }
    }
  }
  std::vector<PathId> out;
  for (PathId s = 0; s < size(); ++s) {
    if (in[Check(s)]) out.push_back(s);
  }
  return out;
}

bool Summary::StructurallyEquals(const Summary& other) const {
  if (size() != other.size()) return false;
  for (PathId s = 0; s < size(); ++s) {
    if (label(s) != other.label(s)) return false;
    if (parent(s) != other.parent(s)) return false;
    if (strong_edge(s) != other.strong_edge(s)) return false;
    if (one_to_one(s) != other.one_to_one(s)) return false;
    if (children(s).size() != other.children(s).size()) return false;
  }
  return true;
}

PathId Summary::AppendNode(PathId parent, std::string_view label, bool strong,
                           bool one_to_one) {
  SVX_CHECK_MSG(parent != kInvalidPath || size() == 0,
                "summary already has a root");
  PathId id = size();
  labels_.push_back(label_interner_.Intern(label));
  parents_.push_back(parent);
  children_.emplace_back();
  strong_.push_back(strong);
  one_to_one_.push_back(one_to_one);
  if (parent == kInvalidPath) {
    depths_.push_back(1);
  } else {
    depths_.push_back(depths_[Check(parent)] + 1);
    children_[Check(parent)].push_back(id);
  }
  return id;
}

void Summary::SetEdgeFlags(PathId s, bool strong, bool one_to_one) {
  strong_[Check(s)] = strong;
  one_to_one_[Check(s)] = one_to_one;
}

void Summary::Seal() {
  preorder_.assign(static_cast<size_t>(size()), 0);
  subtree_end_.assign(static_cast<size_t>(size()), 0);
  if (size() == 0) return;
  int32_t counter = 0;
  // Iterative DFS computing preorder number and subtree end.
  struct Frame {
    PathId node;
    size_t child_pos;
  };
  std::vector<Frame> stack;
  stack.push_back({root(), 0});
  preorder_[0] = counter++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& cs = children(f.node);
    if (f.child_pos < cs.size()) {
      PathId c = cs[f.child_pos++];
      preorder_[Check(c)] = counter++;
      stack.push_back({c, 0});
    } else {
      subtree_end_[Check(f.node)] = counter;
      stack.pop_back();
    }
  }
}

}  // namespace svx
