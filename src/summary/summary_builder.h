// Linear-time strong-Dataguide construction (paper §2.3: "Strong Dataguides
// can be built and maintained in linear time out of tree-structured data").
// Building also annotates the document with per-node path ids and computes
// the enhanced-summary integrity constraints (strong / one-to-one edges) by
// counting children during the single pass (§4.1).
#ifndef SVX_SUMMARY_SUMMARY_BUILDER_H_
#define SVX_SUMMARY_SUMMARY_BUILDER_H_

#include <memory>

#include "src/summary/summary.h"
#include "src/xml/document.h"

namespace svx {

/// Builds the summary of `doc`, annotating `doc` with path ids and the
/// by-path node index (Document::nodes_on_path).
class SummaryBuilder {
 public:
  /// Single-document build + annotate.
  static std::unique_ptr<Summary> Build(Document* doc);

  /// Incremental build across several documents sharing one vocabulary
  /// (used to grow a summary the way the paper grows XMark11 -> XMark233).
  SummaryBuilder();
  void Add(Document* doc);
  std::unique_ptr<Summary> Finish();

 private:
  std::unique_ptr<Summary> summary_;
  // Per summary edge (indexed by child path id): statistics over all
  // document nodes seen on the parent path.
  std::vector<int64_t> parent_occurrences_;  // nodes on parent path
  std::vector<int64_t> min_children_;        // min #children on this path
  std::vector<int64_t> max_children_;        // max #children on this path
  std::vector<int64_t> path_occurrences_;    // nodes on this path
};

/// True iff S(doc) equals `summary` (paper: S1 |= d iff S(d) = S1),
/// including the integrity-constraint flags.
bool Conforms(const Document& doc, const Summary& summary);

/// Weak conformance: every rooted path of `doc` exists in `summary` and
/// strong edges of `summary` are respected by `doc`. This is the |= used
/// when evaluating patterns over canonical trees, which are sub-documents.
bool WeaklyConforms(const Document& doc, const Summary& summary);

}  // namespace svx

#endif  // SVX_SUMMARY_SUMMARY_BUILDER_H_
