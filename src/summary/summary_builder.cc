#include "src/summary/summary_builder.h"

#include <limits>
#include <unordered_map>

namespace svx {

namespace {
constexpr int64_t kNoObservation = std::numeric_limits<int64_t>::max();
}  // namespace

SummaryBuilder::SummaryBuilder() : summary_(new Summary()) {}

std::unique_ptr<Summary> SummaryBuilder::Build(Document* doc) {
  SummaryBuilder b;
  b.Add(doc);
  return b.Finish();
}

void SummaryBuilder::Add(Document* doc) {
  SVX_CHECK(doc != nullptr && doc->size() > 0);
  Summary& s = *summary_;

  auto new_path = [&](PathId parent, std::string_view label) -> PathId {
    PathId id = s.AppendNode(parent, label, false, false);
    // A path first observed after its parent path already had occurrences
    // cannot be strong unless those occurrences are revisited — but within a
    // single Add() pass statistics are computed afterwards, so only earlier
    // documents matter here.
    min_children_.push_back(parent != kInvalidPath &&
                                    parent_occurrences_.size() >
                                        static_cast<size_t>(parent) &&
                                    parent_occurrences_[static_cast<size_t>(
                                        parent)] > 0
                                ? 0
                                : kNoObservation);
    max_children_.push_back(0);
    path_occurrences_.push_back(0);
    if (parent_occurrences_.size() < static_cast<size_t>(s.size())) {
      parent_occurrences_.resize(static_cast<size_t>(s.size()), 0);
    }
    return id;
  };

  // Pass A: extend the summary and annotate the document with path ids.
  for (NodeIndex n = 0; n < doc->size(); ++n) {
    const std::string& label = doc->label(n);
    NodeIndex par = doc->parent(n);
    PathId path;
    if (par == kInvalidNode) {
      if (s.size() == 0) {
        path = new_path(kInvalidPath, label);
      } else {
        SVX_CHECK_MSG(s.label(s.root()) == label,
                      "documents added to one summary must share a root label");
        path = s.root();
      }
    } else {
      PathId ppath = doc->path_ids_[static_cast<size_t>(par)];
      path = s.FindChild(ppath, label);
      if (path == kInvalidPath) path = new_path(ppath, label);
    }
    doc->path_ids_[static_cast<size_t>(n)] = path;
  }

  // Build the per-document by-path index (document order is preorder).
  doc->nodes_by_path_.assign(static_cast<size_t>(s.size()), {});
  for (NodeIndex n = 0; n < doc->size(); ++n) {
    doc->nodes_by_path_[static_cast<size_t>(doc->path_ids_[
        static_cast<size_t>(n)])].push_back(n);
  }

  // Pass B: per-edge child-count statistics for strong / one-to-one edges.
  std::unordered_map<PathId, int64_t> counts;
  for (NodeIndex n = 0; n < doc->size(); ++n) {
    PathId p = doc->path_ids_[static_cast<size_t>(n)];
    parent_occurrences_[static_cast<size_t>(p)] += 1;
    path_occurrences_[static_cast<size_t>(p)] += 1;
    counts.clear();
    for (NodeIndex c = doc->first_child(n); c != kInvalidNode;
         c = doc->next_sibling(c)) {
      counts[doc->path_ids_[static_cast<size_t>(c)]] += 1;
    }
    for (PathId cpath : s.children(p)) {
      auto it = counts.find(cpath);
      int64_t cnt = it == counts.end() ? 0 : it->second;
      size_t ci = static_cast<size_t>(cpath);
      if (min_children_[ci] == kNoObservation || cnt < min_children_[ci]) {
        min_children_[ci] = cnt;
      }
      if (cnt > max_children_[ci]) max_children_[ci] = cnt;
    }
  }
}

std::unique_ptr<Summary> SummaryBuilder::Finish() {
  Summary& s = *summary_;
  for (PathId c = 1; c < s.size(); ++c) {
    size_t ci = static_cast<size_t>(c);
    bool observed = min_children_[ci] != kNoObservation;
    bool strong = observed && min_children_[ci] >= 1;
    bool one_to_one = observed && min_children_[ci] == 1 && max_children_[ci] == 1;
    s.SetEdgeFlags(c, strong, one_to_one);
  }
  s.Seal();
  return std::move(summary_);
}

namespace {

/// Parallel walk mapping each document node to its summary path; calls
/// `edge_stats` per (doc node, child path, count). Returns false if a path
/// is missing from the summary.
template <typename F>
bool WalkPaths(const Document& doc, const Summary& summary, F&& per_node) {
  std::vector<PathId> path(static_cast<size_t>(doc.size()), kInvalidPath);
  for (NodeIndex n = 0; n < doc.size(); ++n) {
    PathId p;
    if (doc.parent(n) == kInvalidNode) {
      if (summary.size() == 0 || summary.label(summary.root()) != doc.label(n)) {
        return false;
      }
      p = summary.root();
    } else {
      PathId pp = path[static_cast<size_t>(doc.parent(n))];
      p = summary.FindChild(pp, doc.label(n));
      if (p == kInvalidPath) return false;
    }
    path[static_cast<size_t>(n)] = p;
    if (!per_node(n, p)) return false;
  }
  return true;
}

}  // namespace

bool Conforms(const Document& doc, const Summary& summary) {
  std::vector<int64_t> occurrences(static_cast<size_t>(summary.size()), 0);
  std::vector<int64_t> min_cnt(static_cast<size_t>(summary.size()),
                               std::numeric_limits<int64_t>::max());
  std::vector<int64_t> max_cnt(static_cast<size_t>(summary.size()), 0);
  std::vector<PathId> node_path(static_cast<size_t>(doc.size()), kInvalidPath);

  bool ok = WalkPaths(doc, summary, [&](NodeIndex n, PathId p) {
    node_path[static_cast<size_t>(n)] = p;
    occurrences[static_cast<size_t>(p)] += 1;
    return true;
  });
  if (!ok) return false;

  // Per-node child counts for integrity constraints.
  std::unordered_map<PathId, int64_t> counts;
  for (NodeIndex n = 0; n < doc.size(); ++n) {
    PathId p = node_path[static_cast<size_t>(n)];
    counts.clear();
    for (NodeIndex c = doc.first_child(n); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      counts[node_path[static_cast<size_t>(c)]] += 1;
    }
    for (PathId cpath : summary.children(p)) {
      auto it = counts.find(cpath);
      int64_t cnt = it == counts.end() ? 0 : it->second;
      size_t ci = static_cast<size_t>(cpath);
      if (cnt < min_cnt[ci]) min_cnt[ci] = cnt;
      if (cnt > max_cnt[ci]) max_cnt[ci] = cnt;
    }
  }

  // Exact conformance: every summary path occurs, and the constraint flags
  // match the document's statistics.
  for (PathId p = 0; p < summary.size(); ++p) {
    if (occurrences[static_cast<size_t>(p)] == 0) return false;
  }
  for (PathId c = 1; c < summary.size(); ++c) {
    size_t ci = static_cast<size_t>(c);
    bool strong = min_cnt[ci] >= 1 &&
                  min_cnt[ci] != std::numeric_limits<int64_t>::max();
    bool o2o = min_cnt[ci] == 1 && max_cnt[ci] == 1;
    if (strong != summary.strong_edge(c)) return false;
    if (o2o != summary.one_to_one(c)) return false;
  }
  return true;
}

bool WeaklyConforms(const Document& doc, const Summary& summary) {
  std::vector<PathId> node_path(static_cast<size_t>(doc.size()), kInvalidPath);
  bool ok = WalkPaths(doc, summary, [&](NodeIndex n, PathId p) {
    node_path[static_cast<size_t>(n)] = p;
    return true;
  });
  if (!ok) return false;
  // Strong edges: every node on the parent path has >= 1 child on the child
  // path.
  std::unordered_map<PathId, int64_t> counts;
  for (NodeIndex n = 0; n < doc.size(); ++n) {
    PathId p = node_path[static_cast<size_t>(n)];
    counts.clear();
    for (NodeIndex c = doc.first_child(n); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      counts[node_path[static_cast<size_t>(c)]] += 1;
    }
    for (PathId cpath : summary.children(p)) {
      if (summary.strong_edge(cpath) && counts.find(cpath) == counts.end()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace svx
