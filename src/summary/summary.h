// Structural summaries (strong Dataguides, Goldman & Widom VLDB'97) —
// paper §2.3 and §4.1. A summary is a tree with one node per distinct
// rooted label path in the document. The enhanced form marks:
//   * strong edges: every document node on the parent path has >= 1 child
//     on the child path (parent-child integrity constraint), and
//   * one-to-one edges: every document node on the parent path has exactly
//     one child on the child path (used to relax nesting-sequence equality,
//     §4.5).
#ifndef SVX_SUMMARY_SUMMARY_H_
#define SVX_SUMMARY_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/interner.h"

namespace svx {

/// Index of a node (= rooted path) inside a Summary.
using PathId = int32_t;
inline constexpr PathId kInvalidPath = -1;

/// An immutable structural summary. Node 0 is the root path.
class Summary {
 public:
  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  PathId root() const { return size() == 0 ? kInvalidPath : 0; }

  int32_t label_id(PathId s) const { return labels_[Check(s)]; }
  const std::string& label(PathId s) const {
    return label_interner_.Get(label_id(s));
  }

  PathId parent(PathId s) const { return parents_[Check(s)]; }
  const std::vector<PathId>& children(PathId s) const {
    return children_[Check(s)];
  }

  /// Depth of the path; the root has depth 1.
  int32_t depth(PathId s) const { return depths_[Check(s)]; }

  /// True iff the edge parent(s) -> s is strong. The root edge is not.
  bool strong_edge(PathId s) const { return strong_[Check(s)]; }

  /// True iff the edge parent(s) -> s is one-to-one.
  bool one_to_one(PathId s) const { return one_to_one_[Check(s)]; }

  /// Number of strong (resp. one-to-one) edges — the nS / n1 of Table 1.
  int32_t num_strong_edges() const;
  int32_t num_one_to_one_edges() const;

  /// True iff `a` is a strict ancestor path of `b`.
  bool IsAncestor(PathId a, PathId b) const {
    return a != b && IsAncestorOrSelf(a, b);
  }
  bool IsAncestorOrSelf(PathId a, PathId b) const {
    size_t ai = Check(a);
    return preorder_[Check(b)] >= preorder_[ai] &&
           preorder_[static_cast<size_t>(b)] < subtree_end_[ai];
  }

  /// True iff `a` is the parent path of `b`.
  bool IsParent(PathId a, PathId b) const { return parent(b) == a; }

  /// Child of `s` with label `label`; kInvalidPath if none.
  PathId FindChild(PathId s, const std::string& label) const;

  /// Resolves a rooted slash path "/site/regions/asia"; kInvalidPath if it
  /// does not exist in this summary.
  PathId Resolve(const std::string& slash_path) const;

  /// "/site/regions/asia" for node `s`.
  std::string PathString(PathId s) const;

  /// Nodes on the chain from `a` down to `b`, inclusive on both ends.
  /// Requires IsAncestorOrSelf(a, b).
  std::vector<PathId> Chain(PathId a, PathId b) const;

  /// All descendants of `s` (strict), in preorder.
  std::vector<PathId> Descendants(PathId s) const;

  /// Downward closure of `seed` through strong edges only (enhanced
  /// canonical model, §4.1): repeatedly adds every strong-edge child of a
  /// member. Returns the closure including the seed, sorted.
  std::vector<PathId> StrongClosure(std::vector<PathId> seed) const;

  /// The label vocabulary.
  const StringInterner& labels() const { return label_interner_; }

  /// Structural equality (labels + shape + constraint flags).
  bool StructurallyEquals(const Summary& other) const;

  // ---- Construction API (SummaryBuilder / ParseSummary) ----

  /// Appends a node under `parent` (kInvalidPath for the root; allowed only
  /// once). Returns the new node's id. Duplicate child labels are the
  /// caller's responsibility to avoid.
  PathId AppendNode(PathId parent, std::string_view label, bool strong,
                    bool one_to_one);

  /// Overwrites the constraint flags of the edge entering `s`.
  void SetEdgeFlags(PathId s, bool strong, bool one_to_one);

  /// Recomputes the preorder/subtree indexes; must be called once after the
  /// last AppendNode and before any ancestor query.
  void Seal();

 private:
  size_t Check(PathId s) const {
    SVX_DCHECK(s >= 0 && s < size());
    return static_cast<size_t>(s);
  }

  StringInterner label_interner_;
  std::vector<int32_t> labels_;
  std::vector<PathId> parents_;
  std::vector<std::vector<PathId>> children_;
  std::vector<int32_t> depths_;
  std::vector<bool> strong_;
  std::vector<bool> one_to_one_;

  // Preorder numbering for O(1) ancestor tests.
  std::vector<int32_t> preorder_;
  std::vector<int32_t> subtree_end_;
};

}  // namespace svx

#endif  // SVX_SUMMARY_SUMMARY_H_
