// Shape-alike generators for the remaining Table 1 corpora: Shakespeare's
// plays, the NASA astronomical dataset, and SwissProt. Only the summary
// statistics matter for the experiment (see DESIGN.md substitutions).
#ifndef SVX_WORKLOAD_CORPORA_H_
#define SVX_WORKLOAD_CORPORA_H_

#include <memory>

#include "src/xml/document.h"

namespace svx {

/// PLAY/ACT/SCENE/SPEECH/LINE shaped document.
std::unique_ptr<Document> GenerateShakespeareLike(int acts = 5,
                                                  uint64_t seed = 1);

/// datasets/dataset/(title, altname, author, tableHead...) shaped document.
std::unique_ptr<Document> GenerateNasaLike(int datasets = 20,
                                           uint64_t seed = 2);

/// SwissProt entry/(protein, gene, organism, reference, feature...) shaped
/// document — the widest schema of Table 1 (|S| = 117).
std::unique_ptr<Document> GenerateSwissProtLike(int entries = 30,
                                                uint64_t seed = 3);

}  // namespace svx

#endif  // SVX_WORKLOAD_CORPORA_H_
