#include "src/workload/corpora.h"

#include "src/util/rng.h"
#include "src/xml/builder.h"

namespace svx {

namespace {

void Leaf(DocumentBuilder* b, const char* label, const std::string& value) {
  b->StartElement(label);
  b->AppendValue(value);
  b->EndElement();
}

}  // namespace

std::unique_ptr<Document> GenerateShakespeareLike(int acts, uint64_t seed) {
  Rng rng(seed);
  DocumentBuilder b;
  b.StartElement("PLAY");
  Leaf(&b, "TITLE", "The Tragedy of Structured Views");
  b.StartElement("FM");
  for (int i = 0; i < 3; ++i) Leaf(&b, "P", "front matter");
  b.EndElement();
  b.StartElement("PERSONAE");
  Leaf(&b, "TITLE", "Dramatis Personae");
  for (int i = 0; i < 4; ++i) Leaf(&b, "PERSONA", "Person " + std::to_string(i));
  b.StartElement("PGROUP");
  for (int i = 0; i < 2; ++i) Leaf(&b, "PERSONA", "Grouped");
  Leaf(&b, "GRPDESCR", "attendants");
  b.EndElement();
  b.EndElement();
  Leaf(&b, "SCNDESCR", "SCENE: a database lab");
  Leaf(&b, "PLAYSUBT", "VIEWS");
  b.StartElement("INDUCT");
  Leaf(&b, "TITLE", "Induction");
  b.StartElement("SPEECH");
  Leaf(&b, "SPEAKER", "Narrator");
  Leaf(&b, "LINE", "In fair Verona where we lay our scene");
  b.EndElement();
  b.EndElement();
  for (int a = 0; a < acts; ++a) {
    b.StartElement("ACT");
    Leaf(&b, "TITLE", "ACT " + std::to_string(a + 1));
    int scenes = static_cast<int>(rng.Uniform(2, 4));
    for (int s = 0; s < scenes; ++s) {
      b.StartElement("SCENE");
      Leaf(&b, "TITLE", "SCENE " + std::to_string(s + 1));
      if (rng.Bernoulli(0.5)) Leaf(&b, "STAGEDIR", "Enter the DBA");
      int speeches = static_cast<int>(rng.Uniform(2, 5));
      for (int sp = 0; sp < speeches; ++sp) {
        b.StartElement("SPEECH");
        Leaf(&b, "SPEAKER", "Speaker " + std::to_string(sp % 3));
        int lines = static_cast<int>(rng.Uniform(1, 4));
        for (int l = 0; l < lines; ++l) {
          b.StartElement("LINE");
          b.AppendValue("line of verse");
          if (rng.Bernoulli(0.2)) Leaf(&b, "STAGEDIR", "aside");
          b.EndElement();
        }
        b.EndElement();
      }
      b.EndElement();
    }
    b.EndElement();
  }
  b.StartElement("EPILOGUE");
  Leaf(&b, "TITLE", "Epilogue");
  b.StartElement("SPEECH");
  Leaf(&b, "SPEAKER", "Chorus");
  Leaf(&b, "LINE", "thus ends the play");
  b.EndElement();
  b.EndElement();
  b.EndElement();
  return b.Finish();
}

std::unique_ptr<Document> GenerateNasaLike(int datasets, uint64_t seed) {
  Rng rng(seed);
  DocumentBuilder b;
  b.StartElement("datasets");
  for (int i = 0; i < datasets; ++i) {
    b.StartElement("dataset");
    b.StartElement("@subject");
    b.AppendValue("astronomy");
    b.EndElement();
    Leaf(&b, "title", "catalog " + std::to_string(i));
    if (rng.Bernoulli(0.6)) Leaf(&b, "altname", "alt " + std::to_string(i));
    b.StartElement("author");
    Leaf(&b, "initial", "J");
    Leaf(&b, "lastname", "Kepler");
    b.EndElement();
    b.StartElement("reference");
    b.StartElement("source");
    b.StartElement("journal");
    Leaf(&b, "name", "ApJ");
    Leaf(&b, "volume", std::to_string(rng.Uniform(1, 400)));
    b.EndElement();
    b.EndElement();
    b.EndElement();
    if (rng.Bernoulli(0.5)) {
      b.StartElement("keywords");
      Leaf(&b, "keyword", "stars");
      b.EndElement();
    }
    Leaf(&b, "revision", std::to_string(rng.Uniform(1, 9)));
    b.EndElement();
  }
  b.EndElement();
  return b.Finish();
}

std::unique_ptr<Document> GenerateSwissProtLike(int entries, uint64_t seed) {
  Rng rng(seed);
  DocumentBuilder b;
  b.StartElement("root");
  for (int i = 0; i < entries; ++i) {
    b.StartElement("Entry");
    b.StartElement("@id");
    b.AppendValue("P" + std::to_string(10000 + i));
    b.EndElement();
    Leaf(&b, "AC", "Q" + std::to_string(rng.Uniform(10000, 99999)));
    b.StartElement("Mod");
    Leaf(&b, "date", "01-JAN-2005");
    Leaf(&b, "Rel", std::to_string(rng.Uniform(1, 50)));
    b.EndElement();
    Leaf(&b, "Descr", "Protein kinase");
    b.StartElement("Species");
    b.AppendValue("Homo sapiens");
    b.EndElement();
    b.StartElement("Org");
    b.AppendValue("Eukaryota");
    b.EndElement();
    b.StartElement("Ref");
    b.StartElement("@num");
    b.AppendValue(std::to_string(rng.Uniform(1, 9)));
    b.EndElement();
    b.StartElement("Author");
    b.AppendValue("Smith J.");
    b.EndElement();
    Leaf(&b, "Cite", "J. Biol. Chem.");
    b.StartElement("MedlineID");
    b.AppendValue(std::to_string(rng.Uniform(1000000, 9999999)));
    b.EndElement();
    b.EndElement();
    if (rng.Bernoulli(0.7)) {
      b.StartElement("Keyword");
      b.AppendValue("Kinase");
      b.EndElement();
    }
    b.StartElement("Features");
    int feats = static_cast<int>(rng.Uniform(1, 3));
    for (int f = 0; f < feats; ++f) {
      b.StartElement("DOMAIN");
      Leaf(&b, "from", std::to_string(rng.Uniform(1, 100)));
      Leaf(&b, "to", std::to_string(rng.Uniform(100, 300)));
      Leaf(&b, "Descr", "catalytic");
      b.EndElement();
    }
    if (rng.Bernoulli(0.5)) {
      b.StartElement("BINDING");
      Leaf(&b, "from", std::to_string(rng.Uniform(1, 50)));
      Leaf(&b, "to", std::to_string(rng.Uniform(50, 99)));
      b.EndElement();
    }
    if (rng.Bernoulli(0.4)) {
      b.StartElement("TRANSMEM");
      Leaf(&b, "from", std::to_string(rng.Uniform(1, 50)));
      Leaf(&b, "to", std::to_string(rng.Uniform(50, 99)));
      b.EndElement();
    }
    b.EndElement();
    b.StartElement("Sequence");
    Leaf(&b, "Length", std::to_string(rng.Uniform(100, 999)));
    Leaf(&b, "Weight", std::to_string(rng.Uniform(10000, 99999)));
    Leaf(&b, "CRC64", "ABCDEF0123456789");
    Leaf(&b, "Data", "MSTNPKPQRK");
    b.EndElement();
    b.EndElement();
  }
  b.EndElement();
  return b.Finish();
}

}  // namespace svx
