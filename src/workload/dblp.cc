#include "src/workload/dblp.h"

#include "src/util/rng.h"
#include "src/xml/builder.h"

namespace svx {

namespace {

const char* const kTypes[] = {"article",       "inproceedings", "proceedings",
                              "book",          "incollection",  "phdthesis",
                              "mastersthesis", "www"};

const char* const kNames[] = {"Codd",  "Gray",   "Ullman", "Widom",
                              "Abiteboul", "Suciu", "Halevy", "Naughton"};

class DblpBuilder {
 public:
  explicit DblpBuilder(const DblpOptions& options)
      : options_(options), rng_(options.seed) {}

  std::unique_ptr<Document> Build() {
    b_.StartElement("dblp");
    for (const char* type : kTypes) {
      for (int i = 0; i < options_.per_type; ++i) Publication(type);
    }
    b_.EndElement();
    return b_.Finish();
  }

 private:
  void Leaf(const char* label, const std::string& value) {
    b_.StartElement(label);
    b_.AppendValue(value);
    b_.EndElement();
  }

  std::string Name() { return kNames[rng_.Uniform(0, 7)]; }
  std::string Number(int lo, int hi) {
    return std::to_string(rng_.Uniform(lo, hi));
  }

  void Publication(const std::string& type) {
    b_.StartElement(type);
    b_.StartElement("@key");
    b_.AppendValue(type + "/" + Number(1, 9999));
    b_.EndElement();
    int authors = static_cast<int>(rng_.Uniform(1, 3));
    for (int a = 0; a < authors; ++a) Leaf("author", Name());
    Leaf("title", "On " + Name() + " structures");
    Leaf("year", Number(1980, options_.snapshot_2005 ? 2005 : 2002));
    if (type == "article") {
      Leaf("journal", "TODS");
      Leaf("volume", Number(1, 30));
      if (rng_.Bernoulli(0.7)) Leaf("number", Number(1, 12));
      Leaf("pages", Number(1, 100) + "-" + Number(101, 200));
    } else if (type == "inproceedings" || type == "incollection") {
      Leaf("booktitle", "SIGMOD");
      Leaf("pages", Number(1, 100) + "-" + Number(101, 200));
      if (rng_.Bernoulli(0.5)) Leaf("crossref", "conf/" + Number(1, 99));
    } else if (type == "proceedings" || type == "book") {
      Leaf("publisher", "ACM");
      if (rng_.Bernoulli(0.5)) Leaf("isbn", Number(1000000, 9999999));
      if (rng_.Bernoulli(0.5)) Leaf("editor", Name());
    } else if (type == "phdthesis" || type == "mastersthesis") {
      Leaf("school", "Stanford");
    }
    if (rng_.Bernoulli(0.6)) Leaf("url", "db/" + type + "/" + Number(1, 999));
    if (rng_.Bernoulli(0.3)) {
      int cites = static_cast<int>(rng_.Uniform(1, 3));
      for (int c = 0; c < cites; ++c) Leaf("cite", "ref" + Number(1, 999));
    }
    if (options_.snapshot_2005) {
      // Fields that appeared as DBLP grew (Table 1: |S| 145 -> 159).
      if (rng_.Bernoulli(0.7)) Leaf("ee", "http://doi.org/" + Number(1, 999));
      if (type == "www") Leaf("note", "home page");
      if (type == "article" && rng_.Bernoulli(0.2)) {
        Leaf("month", Number(1, 12));
      }
      if ((type == "book" || type == "proceedings") && rng_.Bernoulli(0.3)) {
        Leaf("series", "LNCS");
      }
      if (type == "inproceedings" && rng_.Bernoulli(0.2)) {
        Leaf("month", Number(1, 12));
      }
      if (type == "incollection" && rng_.Bernoulli(0.2)) {
        Leaf("chapter", Number(1, 20));
      }
    }
    b_.EndElement();
  }

  DblpOptions options_;
  Rng rng_;
  DocumentBuilder b_;
};

}  // namespace

std::unique_ptr<Document> GenerateDblp(const DblpOptions& options) {
  return DblpBuilder(options).Build();
}

}  // namespace svx
