#include "src/workload/pattern_generator.h"

#include <algorithm>

namespace svx {

namespace {

/// One generation attempt: grow a tree of paths along the summary, then
/// decorate. Returns an empty pattern on a dead end.
Pattern TryGenerate(const Summary& summary, const PatternGenOptions& options,
                    Rng* rng) {
  struct NodePlan {
    PathId path;
    int parent;      // index into plan
    bool descendant;
    int children = 0;
  };
  std::vector<NodePlan> plan;
  plan.push_back({summary.root(), -1, false});
  std::vector<int> returns;

  // Seed the return nodes first: pick a random path per requested label and
  // anchor it under a random ancestor already in the plan (the root always
  // qualifies), so the fixed return labels are always reachable.
  for (int i = 0; i < options.num_return && !options.return_labels.empty();
       ++i) {
    const std::string& label =
        options.return_labels[static_cast<size_t>(i) %
                              options.return_labels.size()];
    std::vector<PathId> candidates;
    for (PathId s = 0; s < summary.size(); ++s) {
      if (summary.label(s) == label) candidates.push_back(s);
    }
    if (candidates.empty()) return Pattern();
    PathId target = candidates[static_cast<size_t>(rng->Uniform(
        0, static_cast<int64_t>(candidates.size()) - 1))];
    if (target == summary.root()) {
      returns.push_back(0);
      continue;
    }
    std::vector<int> anchors;
    for (size_t k = 0; k < plan.size(); ++k) {
      if (plan[k].children < options.max_fanout &&
          summary.IsAncestor(plan[k].path, target)) {
        anchors.push_back(static_cast<int>(k));
      }
    }
    if (anchors.empty()) return Pattern();
    int parent = anchors[static_cast<size_t>(rng->Uniform(
        0, static_cast<int64_t>(anchors.size()) - 1))];
    bool child_step = summary.parent(target) == plan[static_cast<size_t>(
                          parent)].path &&
                      !rng->Bernoulli(options.p_descendant);
    plan[static_cast<size_t>(parent)].children += 1;
    plan.push_back({target, parent, !child_step});
    returns.push_back(static_cast<int>(plan.size()) - 1);
    if (static_cast<int>(plan.size()) > options.num_nodes) return Pattern();
  }

  // Grow the skeleton: attach each new node under a random existing node
  // with spare fanout, at a child path (/) or strict descendant path (//).
  for (int i = static_cast<int>(plan.size()); i < options.num_nodes; ++i) {
    std::vector<int> open;  // candidates with spare fanout
    for (size_t k = 0; k < plan.size(); ++k) {
      if (plan[k].children < options.max_fanout) {
        open.push_back(static_cast<int>(k));
      }
    }
    if (open.empty()) return Pattern();
    int parent = open[static_cast<size_t>(rng->Uniform(
        0, static_cast<int64_t>(open.size()) - 1))];
    bool descendant = rng->Bernoulli(options.p_descendant);
    PathId from = plan[static_cast<size_t>(parent)].path;
    PathId target;
    if (descendant) {
      std::vector<PathId> desc = summary.Descendants(from);
      if (desc.empty()) return Pattern();
      target = desc[static_cast<size_t>(rng->Uniform(
          0, static_cast<int64_t>(desc.size()) - 1))];
    } else {
      const std::vector<PathId>& kids = summary.children(from);
      if (kids.empty()) return Pattern();
      target = kids[static_cast<size_t>(rng->Uniform(
          0, static_cast<int64_t>(kids.size()) - 1))];
    }
    plan[static_cast<size_t>(parent)].children += 1;
    plan.push_back({target, parent, descendant});
  }

  // Without fixed labels, the last r nodes become the return nodes.
  if (options.return_labels.empty()) {
    for (int i = 0; i < options.num_return; ++i) {
      int idx = static_cast<int>(plan.size()) - 1 - i;
      if (idx < 0) return Pattern();
      returns.push_back(idx);
    }
  }

  // Materialize the pattern with the §5 decorations.
  Pattern p;
  std::vector<PatternNodeId> ids(plan.size(), -1);
  for (size_t k = 0; k < plan.size(); ++k) {
    bool is_return =
        std::find(returns.begin(), returns.end(), static_cast<int>(k)) !=
        returns.end();
    std::string label = summary.label(plan[k].path);
    // Return nodes keep their label ("we fixed the labels of the return
    // nodes"); internal nodes may become wildcards.
    if (!is_return && k != 0 && rng->Bernoulli(options.p_star)) label = "*";
    Predicate pred = Predicate::True();
    if (rng->Bernoulli(options.p_pred)) {
      pred = Predicate::Eq(rng->Uniform(0, options.num_values - 1));
    }
    uint8_t attrs = is_return ? kAttrId : 0;
    if (k == 0) {
      ids[k] = p.SetRoot(label, attrs, pred);
    } else {
      bool optional = rng->Bernoulli(options.p_optional);
      // Return nodes must not be erasable en masse: keep the edge into a
      // return node non-optional so return labels survive (the paper keeps
      // return nodes bound to fixed labels).
      if (is_return) optional = false;
      ids[k] = p.AddChild(
          ids[static_cast<size_t>(plan[k].parent)], label,
          plan[k].descendant ? Axis::kDescendant : Axis::kChild, attrs, pred,
          optional, /*nested=*/false);
    }
  }
  // Predicates make satisfiability value-dependent only; structure is
  // satisfiable by construction (the plan is an embedding).
  return p;
}

}  // namespace

Result<Pattern> GeneratePattern(const Summary& summary,
                                const PatternGenOptions& options, Rng* rng) {
  SVX_CHECK(options.num_nodes >= 1);
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    Pattern p = TryGenerate(summary, options, rng);
    if (p.size() == options.num_nodes &&
        p.Arity() == options.num_return) {
      return p;
    }
  }
  return Status::NotFound("could not generate a matching pattern");
}

}  // namespace svx
