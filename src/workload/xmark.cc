#include "src/workload/xmark.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/xml/builder.h"

namespace svx {

namespace {

const char* const kWords[] = {
    "gold",   "plated", "pen",      "fountain", "stainless", "steel",
    "italic", "deep",   "columbus", "invincia", "monteverdi", "quantity",
    "rare",   "fine",   "blue",     "ink",      "paper",      "silver"};

const char* const kRegions[] = {"africa",   "asia",   "australia",
                                "europe",   "namerica", "samerica"};

class XmarkBuilder {
 public:
  explicit XmarkBuilder(const XmarkOptions& options)
      : options_(options), rng_(options.seed) {}

  std::unique_ptr<Document> Build() {
    int items_per_region =
        std::max<int>(2, static_cast<int>(4 * options_.scale));
    int people = std::max<int>(2, static_cast<int>(6 * options_.scale));
    int open = std::max<int>(1, static_cast<int>(3 * options_.scale));
    int closed = std::max<int>(1, static_cast<int>(3 * options_.scale));
    int categories = std::max<int>(1, static_cast<int>(2 * options_.scale));

    b_.StartElement("site");
    b_.StartElement("regions");
    for (const char* region : kRegions) {
      b_.StartElement(region);
      for (int i = 0; i < items_per_region; ++i) Item();
      b_.EndElement();
    }
    b_.EndElement();  // regions

    b_.StartElement("categories");
    for (int i = 0; i < categories; ++i) {
      b_.StartElement("category");
      Attr("id", NextId());
      Leaf("name", Word());
      Description(1);
      b_.EndElement();
    }
    b_.EndElement();

    b_.StartElement("catgraph");
    for (int i = 0; i < categories; ++i) {
      b_.StartElement("edge");
      Attr("from", NextId());
      Attr("to", NextId());
      b_.EndElement();
    }
    b_.EndElement();

    b_.StartElement("people");
    for (int i = 0; i < people; ++i) Person();
    b_.EndElement();

    b_.StartElement("open_auctions");
    for (int i = 0; i < open; ++i) OpenAuction();
    b_.EndElement();

    b_.StartElement("closed_auctions");
    for (int i = 0; i < closed; ++i) ClosedAuction();
    b_.EndElement();

    b_.EndElement();  // site
    return b_.Finish();
  }

 private:
  std::string NextId() { return std::to_string(id_counter_++); }
  std::string Word() { return kWords[rng_.Uniform(0, 17)]; }
  std::string Number(int lo, int hi) {
    return std::to_string(rng_.Uniform(lo, hi));
  }

  void Leaf(const char* label, const std::string& value) {
    b_.StartElement(label);
    b_.AppendValue(value);
    b_.EndElement();
  }

  void Attr(const char* name, const std::string& value) {
    b_.StartElement(std::string("@") + name);
    b_.AppendValue(value);
    b_.EndElement();
  }

  /// Mixed text with bold/keyword/emph markup (the formatting tags that make
  /// the real XMark summary large — they nest into each other).
  void Text(int depth) {
    b_.StartElement("text");
    b_.AppendValue(Word() + " " + Word());
    if (depth > 0) {
      if (rng_.Bernoulli(0.8)) Markup("bold", depth - 1);
      if (rng_.Bernoulli(0.8)) Markup("keyword", depth - 1);
      if (rng_.Bernoulli(0.8)) Markup("emph", depth - 1);
    }
    b_.EndElement();
  }

  void Markup(const char* label, int depth) {
    b_.StartElement(label);
    b_.AppendValue(Word());
    if (depth > 0) {
      // Formatting tags nest into one another in XMark's DTD.
      if (rng_.Bernoulli(0.5)) Markup("bold", depth - 1);
      if (rng_.Bernoulli(0.5)) Markup("keyword", depth - 1);
      if (rng_.Bernoulli(0.5)) Markup("emph", depth - 1);
    }
    b_.EndElement();
  }

  void Parlist(int depth) {
    b_.StartElement("parlist");
    int n = static_cast<int>(rng_.Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      b_.StartElement("listitem");
      if (depth > 0 && rng_.Bernoulli(0.6)) {
        Parlist(depth - 1);  // the DTD recursion the paper discusses
      } else {
        Text(std::min(depth + 1, 2));
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Description(int depth) {
    b_.StartElement("description");
    if (rng_.Bernoulli(0.6)) {
      Parlist(std::min(options_.max_recursion, depth + 1));
    } else {
      Text(2);
    }
    b_.EndElement();
  }

  void Mailbox() {
    b_.StartElement("mailbox");
    int mails = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < mails; ++i) {
      b_.StartElement("mail");
      Leaf("from", Word() + "@example.com");
      Leaf("to", Word() + "@example.com");
      Leaf("date", Number(1, 28) + "/" + Number(1, 12) + "/2006");
      Text(1);
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Item() {
    b_.StartElement("item");
    Attr("id", NextId());
    Attr("featured", rng_.Bernoulli(0.3) ? "yes" : "no");
    Leaf("location", Word());
    Leaf("quantity", Number(1, 10));
    Leaf("name", Word() + " " + Word());
    b_.StartElement("payment");
    b_.AppendValue("Cash");
    b_.EndElement();
    Description(1);
    b_.StartElement("shipping");
    b_.AppendValue("Will ship internationally");
    b_.EndElement();
    int cats = static_cast<int>(rng_.Uniform(1, 2));
    for (int i = 0; i < cats; ++i) {
      b_.StartElement("incategory");
      Attr("category", NextId());
      b_.EndElement();
    }
    Mailbox();
    b_.EndElement();
  }

  void Person() {
    b_.StartElement("person");
    Attr("id", NextId());
    Leaf("name", Word() + " " + Word());
    Leaf("emailaddress", Word() + "@example.com");
    if (rng_.Bernoulli(0.7)) Leaf("phone", Number(1000000, 9999999));
    if (rng_.Bernoulli(0.6)) {
      b_.StartElement("address");
      Leaf("street", Number(1, 99) + " " + Word() + " St");
      Leaf("city", Word());
      Leaf("country", Word());
      Leaf("zipcode", Number(10000, 99999));
      b_.EndElement();
    }
    if (rng_.Bernoulli(0.4)) Leaf("homepage", "http://" + Word() + ".org");
    if (rng_.Bernoulli(0.4)) Leaf("creditcard", Number(1000, 9999));
    if (rng_.Bernoulli(0.8)) {
      b_.StartElement("profile");
      Attr("income", Number(10000, 99999));
      int interests = static_cast<int>(rng_.Uniform(0, 2));
      for (int i = 0; i < interests; ++i) {
        b_.StartElement("interest");
        Attr("category", NextId());
        b_.EndElement();
      }
      if (rng_.Bernoulli(0.5)) Leaf("education", "Graduate School");
      if (rng_.Bernoulli(0.7)) Leaf("gender", rng_.Bernoulli(0.5) ? "male" : "female");
      Leaf("business", rng_.Bernoulli(0.5) ? "Yes" : "No");
      if (rng_.Bernoulli(0.6)) Leaf("age", Number(18, 80));
      b_.EndElement();
    }
    if (rng_.Bernoulli(0.5)) {
      b_.StartElement("watches");
      int watches = static_cast<int>(rng_.Uniform(1, 2));
      for (int i = 0; i < watches; ++i) {
        b_.StartElement("watch");
        Attr("open_auction", NextId());
        b_.EndElement();
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void OpenAuction() {
    b_.StartElement("open_auction");
    Attr("id", NextId());
    Leaf("initial", Number(1, 100));
    if (rng_.Bernoulli(0.6)) Leaf("reserve", Number(50, 200));
    int bidders = static_cast<int>(rng_.Uniform(0, 3));
    for (int i = 0; i < bidders; ++i) {
      b_.StartElement("bidder");
      Leaf("date", Number(1, 28) + "/" + Number(1, 12) + "/2006");
      Leaf("time", Number(0, 23) + ":" + Number(0, 59));
      b_.StartElement("personref");
      Attr("person", NextId());
      b_.EndElement();
      Leaf("increase", Number(1, 50));
      b_.EndElement();
    }
    Leaf("current", Number(1, 300));
    if (rng_.Bernoulli(0.3)) Leaf("privacy", "Yes");
    b_.StartElement("itemref");
    Attr("item", NextId());
    b_.EndElement();
    b_.StartElement("seller");
    Attr("person", NextId());
    b_.EndElement();
    Annotation();
    Leaf("quantity", Number(1, 5));
    Leaf("type", "Regular");
    b_.StartElement("interval");
    Leaf("start", Number(1, 28) + "/01/2006");
    Leaf("end", Number(1, 28) + "/12/2006");
    b_.EndElement();
    b_.EndElement();
  }

  void Annotation() {
    b_.StartElement("annotation");
    b_.StartElement("author");
    Attr("person", NextId());
    b_.EndElement();
    Description(0);
    Leaf("happiness", Number(1, 10));
    b_.EndElement();
  }

  void ClosedAuction() {
    b_.StartElement("closed_auction");
    b_.StartElement("seller");
    Attr("person", NextId());
    b_.EndElement();
    b_.StartElement("buyer");
    Attr("person", NextId());
    b_.EndElement();
    b_.StartElement("itemref");
    Attr("item", NextId());
    b_.EndElement();
    Leaf("price", Number(1, 500));
    Leaf("date", Number(1, 28) + "/" + Number(1, 12) + "/2006");
    Leaf("quantity", Number(1, 5));
    Leaf("type", "Regular");
    Annotation();
    b_.EndElement();
  }

  XmarkOptions options_;
  Rng rng_;
  DocumentBuilder b_;
  int64_t id_counter_ = 0;
};

}  // namespace

std::unique_ptr<Document> GenerateXmark(const XmarkOptions& options) {
  return XmarkBuilder(options).Build();
}

}  // namespace svx
