// Synthetic XMark-like document generator (substitute for the xmlgen tool
// of the XMark benchmark [28], see DESIGN.md). Follows the XMark DTD shape:
// six regions of items with recursive description/parlist/listitem content,
// text markup (bold/keyword/emph), mailboxes, categories, people with
// profiles, and open/closed auctions. The scale factor controls entity
// counts the way XMark's -f factor does; summary size grows only marginally
// with scale (deeper recursion unfolds), matching Table 1.
#ifndef SVX_WORKLOAD_XMARK_H_
#define SVX_WORKLOAD_XMARK_H_

#include <memory>

#include "src/xml/document.h"

namespace svx {

struct XmarkOptions {
  /// Roughly proportional to document size; 1.0 yields a few thousand
  /// nodes. XMark11/111/233 of Table 1 correspond to 1.0 / 10 / 21.
  double scale = 1.0;
  uint64_t seed = 42;
  /// Maximum parlist/listitem recursion depth (grows slowly with scale).
  int max_recursion = 3;
};

/// Generates a document conforming to the XMark-like vocabulary.
std::unique_ptr<Document> GenerateXmark(const XmarkOptions& options);

}  // namespace svx

#endif  // SVX_WORKLOAD_XMARK_H_
