// The tree patterns of the 20 XMark benchmark queries (§5: "we first
// extracted the patterns of the 20 XMark queries"), expressed in the svx
// pattern syntax over the vocabulary of the XMark-like generator. As in the
// paper, 16 of the 20 patterns carry optional edges, several have nested
// edges (the nested-FLWR queries), and q7 consists of three structurally
// unrelated counting branches — the pattern whose canonical model dominates
// Figure 13.
#ifndef SVX_WORKLOAD_XMARK_QUERIES_H_
#define SVX_WORKLOAD_XMARK_QUERIES_H_

#include <string>
#include <vector>

#include "src/pattern/pattern.h"

namespace svx {

/// One benchmark query pattern.
struct XmarkQuery {
  int number;          // 1..20
  std::string text;    // pattern syntax
  std::string intent;  // one-line description
};

/// All 20 query patterns.
const std::vector<XmarkQuery>& XmarkQueryPatterns();

/// Parses query `number` (1-based).
Pattern GetXmarkQueryPattern(int number);

/// Query `number` in conjunctive value form — C attributes become V,
/// optional and nested edges become required — the shape answerable from
/// the {id, v} base tag views (bench/base_views.h). Used by bench_viewstore
/// and bench_rewriter so both measure exactly the same workload.
Pattern GetXmarkQueryPatternConjunctive(int number);

}  // namespace svx

#endif  // SVX_WORKLOAD_XMARK_QUERIES_H_
