// Random satisfiable pattern generation with the §5 parameters: n nodes,
// fanout up to 3, P(*) = 0.1, P(value predicate) = 0.2 over 10 constants,
// P(//) = 0.5, P(optional) = 0.5, and r return nodes with fixed labels
// ("to avoid patterns returning unrelated nodes"). Patterns are grown along
// a randomly sampled summary embedding, which guarantees satisfiability by
// construction.
#ifndef SVX_WORKLOAD_PATTERN_GENERATOR_H_
#define SVX_WORKLOAD_PATTERN_GENERATOR_H_

#include <string>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace svx {

struct PatternGenOptions {
  int num_nodes = 6;          // n (3..13 in Figure 13)
  int num_return = 1;         // r (1..3 in Figure 13)
  double p_star = 0.1;        // wildcard probability
  double p_pred = 0.2;        // value-predicate probability
  double p_descendant = 0.5;  // // probability
  double p_optional = 0.5;    // optional-edge probability
  int num_values = 10;        // distinct predicate constants
  int max_fanout = 3;         // f
  /// Return nodes carry these labels (cyclically); nodes on matching
  /// summary paths are marked {id}. Empty: the last r nodes are returns.
  std::vector<std::string> return_labels;
  int max_attempts = 200;
};

/// Generates one satisfiable pattern over `summary`; NotFound when no
/// pattern with the requested return labels could be built within
/// max_attempts.
[[nodiscard]] Result<Pattern> GeneratePattern(const Summary& summary,
                                const PatternGenOptions& options, Rng* rng);

}  // namespace svx

#endif  // SVX_WORKLOAD_PATTERN_GENERATOR_H_
