#include "src/workload/xmark_queries.h"

#include "src/pattern/pattern_parser.h"
#include "src/util/check.h"

namespace svx {

const std::vector<XmarkQuery>& XmarkQueryPatterns() {
  static const std::vector<XmarkQuery>* kQueries = new std::vector<XmarkQuery>{
      {1,
       "site(//people(//person{id}(/@id{v}[v=0] /name{v})))",
       "name of the person with a given id"},
      {2,
       "site(//open_auctions(/open_auction{id}(/bidder(/increase{v}))))",
       "initial increases of all bids"},
      {3,
       "site(//open_auctions(/open_auction{id}(/bidder(/increase{v}) "
       "?/reserve{v})))",
       "increases with optional reserve"},
      {4,
       "site(//open_auctions(/open_auction{id}(?/bidder(/personref{c}) "
       "/initial{v})))",
       "auctions with optional bidders"},
      {5,
       "site(//closed_auctions(/closed_auction{id}(/price{v})))",
       "closed auction prices"},
      {6, "site(//regions(//item{id}))", "all items of all regions"},
      {7,
       "site(?//description{c} ?//annotation{c} ?//mail{c})",
       "counting query over three unrelated branches"},
      {8,
       "site(//people(/person{id}(/name{v} ?n//watches(/watch{c}))))",
       "people with their watched auctions, nested"},
      {9,
       "site(//people(/person{id}(/name{v} ?/address(/city{v}))))",
       "people with optional address city"},
      {10,
       "site(//people(/person{id}(n/profile(/interest{c} ?/age{v}))))",
       "person profiles grouped per person"},
      {11,
       "site(//people(/person{id}(/name{v} ?//profile(/@income{v}))))",
       "names with optional income"},
      {12,
       "site(//open_auctions(/open_auction{id}(?/initial{v}[v>50] "
       "/current{v})))",
       "auctions with large initial offers"},
      {13,
       "site(//regions(/australia(/item{id}(/name{v} /description{c}))))",
       "australian item descriptions"},
      {14,
       "site(//item{id}(/name{v} //description(//text{c})))",
       "items whose description contains text"},
      {15,
       "site(//closed_auctions(/closed_auction{id}(/annotation(/description("
       "/parlist(/listitem{c}))))))",
       "deeply nested closed-auction annotations"},
      {16,
       "site(//closed_auctions(/closed_auction{id}(/annotation(/author{c}) "
       "?/itemref{c})))",
       "annotation authors with optional item reference"},
      {17,
       "site(//people(/person{id}(/name{v} ?/homepage{v})))",
       "people without (and with) homepages"},
      {18,
       "site(//open_auctions(/open_auction(/initial{v})))",
       "plain initial values, no ids"},
      {19,
       "site(//regions(//item{id}(/name{v} ?/location{v})))",
       "items sorted by location"},
      {20,
       "site(//people(/person{id}(?/profile(?/@income{v}[v>5000]))))",
       "income classification with optionality"},
  };
  return *kQueries;
}

Pattern GetXmarkQueryPatternConjunctive(int number) {
  Pattern qp = GetXmarkQueryPattern(number);
  for (PatternNodeId n = 0; n < qp.size(); ++n) {
    Pattern::Node& node = qp.mutable_node(n);
    if (node.attrs & kAttrContent) {
      node.attrs = (node.attrs & ~kAttrContent) | kAttrValue;
    }
    node.optional = false;
    node.nested = false;
  }
  return qp;
}

Pattern GetXmarkQueryPattern(int number) {
  for (const XmarkQuery& q : XmarkQueryPatterns()) {
    if (q.number == number) return MustParsePattern(q.text);
  }
  SVX_CHECK_MSG(false, "unknown XMark query number");
  return Pattern();
}

}  // namespace svx
