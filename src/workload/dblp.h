// Synthetic DBLP-like document generator (substitute for the 2002/2005 DBLP
// snapshots of Table 1; see DESIGN.md). Eight publication types, each with
// the usual bibliographic fields; the 2005-style option adds the few extra
// fields that grew the real summary from 145 to 159 nodes.
#ifndef SVX_WORKLOAD_DBLP_H_
#define SVX_WORKLOAD_DBLP_H_

#include <memory>

#include "src/xml/document.h"

namespace svx {

struct DblpOptions {
  /// Number of publications per type.
  int per_type = 10;
  uint64_t seed = 7;
  /// Adds the later-era fields (electronic editions, extra relations).
  bool snapshot_2005 = false;
};

std::unique_ptr<Document> GenerateDblp(const DblpOptions& options);

}  // namespace svx

#endif  // SVX_WORKLOAD_DBLP_H_
