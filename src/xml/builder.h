// Incremental construction of Documents (SAX-style) plus the paper's
// parenthesized tree notation, e.g. "a(b c(d))" or with values
// "a(b=1 c(d=2))" (§2.1: "We may denote trees in a simple parenthesized
// notation").
#ifndef SVX_XML_BUILDER_H_
#define SVX_XML_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// SAX-style document builder. Usage:
///   DocumentBuilder b;
///   b.StartElement("a"); b.StartElement("b"); b.SetValue("1");
///   b.EndElement(); b.EndElement();
///   std::unique_ptr<Document> doc = b.Finish();
class DocumentBuilder {
 public:
  DocumentBuilder();

  /// Opens a new element; returns its node index.
  NodeIndex StartElement(std::string_view label);

  /// Attaches (or appends to) the atomic value of the innermost open element.
  void AppendValue(std::string_view value);

  /// Closes the innermost open element.
  void EndElement();

  /// Finishes the document. All elements must be closed; the builder must
  /// have produced exactly one root.
  std::unique_ptr<Document> Finish();

  /// Depth of the currently open element stack.
  int32_t open_depth() const { return static_cast<int32_t>(stack_.size()); }

 private:
  std::unique_ptr<Document> doc_;
  struct Open {
    NodeIndex node;
    NodeIndex last_child = kInvalidNode;
    int32_t child_count = 0;
  };
  std::vector<Open> stack_;
  bool root_emitted_ = false;
};

/// Parses the parenthesized notation. Labels are
/// [A-Za-z_][A-Za-z0-9_-]*; a value is attached with '=' followed by either
/// a bare token or a single-quoted string. Children are whitespace- or
/// comma-separated inside parentheses.
///   "site(regions(asia(item=3 item=5)))"
Result<std::unique_ptr<Document>> ParseTreeNotation(std::string_view text);

}  // namespace svx

#endif  // SVX_XML_BUILDER_H_
