// Self-contained XML parser for the subset needed by the workloads:
// elements, attributes, character data, comments, processing instructions
// and the five predefined entities. Following the paper's data model (§2.1),
// attributes become child nodes labeled "@name" carrying the attribute value,
// and an element's direct character data becomes its atomic value.
#ifndef SVX_XML_PARSER_H_
#define SVX_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// Parses an XML document from `text`.
Result<std::unique_ptr<Document>> ParseXml(std::string_view text);

/// Parses an XML document from the file at `path`.
Result<std::unique_ptr<Document>> ParseXmlFile(const std::string& path);

}  // namespace svx

#endif  // SVX_XML_PARSER_H_
