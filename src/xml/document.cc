#include "src/xml/document.h"

#include <algorithm>

namespace svx {

NodeIndex Document::FindByOrdPath(const OrdPath& id) const {
  if (size() == 0 || !id.IsValid()) return kInvalidNode;
  // Preorder is document order is OrdPath order, so the id array is sorted:
  // binary search. (Ordinals are not positional — deletes leave gaps and
  // careted inserts extend component counts — so a per-level child walk
  // would have to decode keys; the order-based lookup is exact and O(log n)
  // regardless of id shape.)
  auto it = std::lower_bound(ord_paths_.begin(), ord_paths_.end(), id);
  if (it == ord_paths_.end() || *it != id) return kInvalidNode;
  return static_cast<NodeIndex>(it - ord_paths_.begin());
}

std::vector<NodeIndex> Document::children(NodeIndex n) const {
  std::vector<NodeIndex> out;
  for (NodeIndex c = first_child(n); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

const std::vector<NodeIndex>& Document::nodes_on_path(int32_t path) const {
  static const std::vector<NodeIndex> kEmpty;
  if (path < 0 || static_cast<size_t>(path) >= nodes_by_path_.size()) {
    return kEmpty;
  }
  return nodes_by_path_[static_cast<size_t>(path)];
}

std::vector<NodeIndex> Document::NodesOnPathWithin(int32_t path,
                                                   NodeIndex context) const {
  const std::vector<NodeIndex>& all = nodes_on_path(path);
  NodeIndex lo = context;
  NodeIndex hi = subtree_end(context);
  auto begin = std::lower_bound(all.begin(), all.end(), lo);
  auto end = std::lower_bound(all.begin(), all.end(), hi);
  return std::vector<NodeIndex>(begin, end);
}

}  // namespace svx
