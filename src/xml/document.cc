#include "src/xml/document.h"

#include <algorithm>

namespace svx {

NodeIndex Document::FindByOrdPath(const OrdPath& id) const {
  if (size() == 0 || !id.IsValid()) return kInvalidNode;
  // Walk down from the root comparing stored child ordinals. Ordinals are
  // not positional: after a subtree delete the siblings keep their original
  // ordinals (gaps are legal), and appends use max(ordinal) + 1.
  const auto& comps = id.components();
  if (comps.empty() || comps[0] != 1) return kInvalidNode;
  NodeIndex cur = root();
  for (size_t i = 1; i < comps.size(); ++i) {
    int32_t ordinal = comps[i];
    NodeIndex found = kInvalidNode;
    for (NodeIndex child = first_child(cur); child != kInvalidNode;
         child = next_sibling(child)) {
      const auto& child_comps = ord_paths_[static_cast<size_t>(child)]
                                    .components();
      if (child_comps.back() == ordinal) {
        found = child;
        break;
      }
      // Children are stored in ordinal order; stop early once past it.
      if (child_comps.back() > ordinal) break;
    }
    if (found == kInvalidNode) return kInvalidNode;
    cur = found;
  }
  return cur;
}

std::vector<NodeIndex> Document::children(NodeIndex n) const {
  std::vector<NodeIndex> out;
  for (NodeIndex c = first_child(n); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

const std::vector<NodeIndex>& Document::nodes_on_path(int32_t path) const {
  static const std::vector<NodeIndex> kEmpty;
  if (path < 0 || static_cast<size_t>(path) >= nodes_by_path_.size()) {
    return kEmpty;
  }
  return nodes_by_path_[static_cast<size_t>(path)];
}

std::vector<NodeIndex> Document::NodesOnPathWithin(int32_t path,
                                                   NodeIndex context) const {
  const std::vector<NodeIndex>& all = nodes_on_path(path);
  NodeIndex lo = context;
  NodeIndex hi = subtree_end(context);
  auto begin = std::lower_bound(all.begin(), all.end(), lo);
  auto end = std::lower_bound(all.begin(), all.end(), hi);
  return std::vector<NodeIndex>(begin, end);
}

}  // namespace svx
