#include "src/util/check.h"
#include "src/xml/parser.h"

#include <cctype>
#include <cstdio>
#include <string>

#include "src/util/strings.h"
#include "src/xml/builder.h"

namespace svx {

namespace {

class XmlParserImpl {
 public:
  explicit XmlParserImpl(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Document>> Parse() {
    SkipMisc();
    if (!AtChar('<')) return Err("expected root element");
    SVX_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) return Err("trailing content after root");
    return builder_.Finish();
  }

 private:
  Result<std::unique_ptr<Document>> Err(const std::string& what) {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }
  Status ErrS(const std::string& what) {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  bool AtChar(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool AtString(std::string_view s) const {
    return text_.size() - pos_ >= s.size() &&
           text_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, PIs and the XML declaration / doctype.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (AtString("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else if (AtString("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (AtString("<!DOCTYPE")) {
        size_t end = text_.find('>', pos_ + 9);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        break;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  std::string_view ParseName() {
    size_t start = pos_;
    if (pos_ < text_.size() && IsNameStart(text_[pos_])) {
      ++pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  // Decodes the predefined entities and numeric character references into
  // `out`.
  void AppendDecoded(std::string_view raw, std::string* out) {
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        size_t semi = raw.find(';', i + 1);
        if (semi != std::string_view::npos && semi - i <= 8) {
          std::string_view ent = raw.substr(i + 1, semi - i - 1);
          if (ent == "amp") {
            *out += '&';
            i = semi + 1;
            continue;
          } else if (ent == "lt") {
            *out += '<';
            i = semi + 1;
            continue;
          } else if (ent == "gt") {
            *out += '>';
            i = semi + 1;
            continue;
          } else if (ent == "quot") {
            *out += '"';
            i = semi + 1;
            continue;
          } else if (ent == "apos") {
            *out += '\'';
            i = semi + 1;
            continue;
          } else if (!ent.empty() && ent[0] == '#') {
            long code = 0;
            bool ok = false;
            if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
              code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
              ok = true;
            } else if (ent.size() > 1) {
              code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
              ok = true;
            }
            if (ok && code > 0 && code < 128) {
              *out += static_cast<char>(code);
              i = semi + 1;
              continue;
            }
          }
        }
      }
      *out += raw[i];
      ++i;
    }
  }

  Status ParseElement() {
    SVX_CHECK(AtChar('<'));
    ++pos_;
    std::string_view name = ParseName();
    if (name.empty()) return ErrS("expected element name");
    builder_.StartElement(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtString("/>")) {
        pos_ += 2;
        builder_.EndElement();
        return Status::OK();
      }
      if (AtChar('>')) {
        ++pos_;
        break;
      }
      std::string_view attr = ParseName();
      if (attr.empty()) return ErrS("expected attribute name");
      SkipWhitespace();
      if (!AtChar('=')) return ErrS("expected '=' after attribute name");
      ++pos_;
      SkipWhitespace();
      if (!AtChar('"') && !AtChar('\'')) {
        return ErrS("expected quoted attribute value");
      }
      char quote = text_[pos_];
      ++pos_;
      size_t vstart = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return ErrS("unterminated attribute value");
      std::string decoded;
      AppendDecoded(text_.substr(vstart, pos_ - vstart), &decoded);
      ++pos_;
      builder_.StartElement(std::string("@") + std::string(attr));
      builder_.AppendValue(decoded);
      builder_.EndElement();
    }

    // Content.
    std::string pending_text;
    auto flush_text = [&]() {
      std::string_view trimmed = Trim(pending_text);
      if (!trimmed.empty()) builder_.AppendValue(trimmed);
      pending_text.clear();
    };

    while (true) {
      if (pos_ >= text_.size()) return ErrS("unterminated element");
      if (AtString("</")) {
        flush_text();
        pos_ += 2;
        std::string_view close = ParseName();
        if (close != name) {
          return ErrS(StrFormat("mismatched close tag </%s> for <%s>",
                                std::string(close).c_str(),
                                std::string(name).c_str()));
        }
        SkipWhitespace();
        if (!AtChar('>')) return ErrS("expected '>' in close tag");
        ++pos_;
        builder_.EndElement();
        return Status::OK();
      }
      if (AtString("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return ErrS("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (AtString("<![CDATA[")) {
        size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return ErrS("unterminated CDATA");
        pending_text.append(text_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (AtString("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) return ErrS("unterminated PI");
        pos_ = end + 2;
        continue;
      }
      if (AtChar('<')) {
        flush_text();
        SVX_RETURN_IF_ERROR(ParseElement());
        continue;
      }
      // Character data until the next markup.
      size_t end = text_.find('<', pos_);
      if (end == std::string_view::npos) end = text_.size();
      AppendDecoded(text_.substr(pos_, end - pos_), &pending_text);
      pos_ = end;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  DocumentBuilder builder_;
};

}  // namespace

Result<std::unique_ptr<Document>> ParseXml(std::string_view text) {
  return XmlParserImpl(text).Parse();
}

Result<std::unique_ptr<Document>> ParseXmlFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseXml(data);
}

}  // namespace svx
