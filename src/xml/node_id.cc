#include "src/xml/node_id.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

OrdPath OrdPath::FromString(const std::string& s) {
  std::vector<int32_t> comps;
  for (const std::string& piece : Split(s, '.')) {
    auto v = ParseInt64(piece);
    if (!v.has_value() || *v <= 0) return OrdPath();
    comps.push_back(static_cast<int32_t>(*v));
  }
  return OrdPath(std::move(comps));
}

OrdPath OrdPath::Child(int32_t ordinal) const {
  SVX_CHECK(ordinal >= 1);
  std::vector<int32_t> comps = components_;
  comps.push_back(ordinal);
  return OrdPath(std::move(comps));
}

OrdPath OrdPath::Parent() const {
  if (components_.size() <= 1) return OrdPath();
  std::vector<int32_t> comps(components_.begin(), components_.end() - 1);
  return OrdPath(std::move(comps));
}

OrdPath OrdPath::Ancestor(int32_t steps) const {
  SVX_CHECK(steps >= 0);
  if (steps >= static_cast<int32_t>(components_.size())) return OrdPath();
  std::vector<int32_t> comps(components_.begin(),
                             components_.end() - steps);
  return OrdPath(std::move(comps));
}

bool OrdPath::IsParentOf(const OrdPath& other) const {
  if (!IsValid() || !other.IsValid()) return false;
  if (other.components_.size() != components_.size() + 1) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool OrdPath::IsAncestorOf(const OrdPath& other) const {
  if (!IsValid() || !other.IsValid()) return false;
  if (other.components_.size() <= components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool OrdPath::IsAncestorOrSelf(const OrdPath& other) const {
  return *this == other || IsAncestorOf(other);
}

int OrdPath::Compare(const OrdPath& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

std::string OrdPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

size_t OrdPath::Hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (int32_t c : components_) {
    h ^= static_cast<size_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace svx
