#include "src/xml/node_id.h"

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

OrdPath OrdPath::FromString(const std::string& s) {
  std::vector<int32_t> comps;
  for (const std::string& piece : Split(s, '.')) {
    if (piece == "^") {
      comps.push_back(kCaretHigh);
      continue;
    }
    auto v = ParseInt64(piece);
    if (!v.has_value() || *v < 0 || *v >= kCaretHigh) return OrdPath();
    comps.push_back(static_cast<int32_t>(*v));
  }
  // A valid id ends each caret run with a real ordinal.
  if (!comps.empty() && IsCaret(comps.back())) return OrdPath();
  return OrdPath(std::move(comps));
}

OrdPath OrdPath::Child(int32_t ordinal) const {
  SVX_CHECK(ordinal >= 1);
  std::vector<int32_t> comps = components_;
  comps.push_back(ordinal);
  return OrdPath(std::move(comps));
}

namespace {

/// True iff `prefix` is a (non-strict) component prefix of `comps`.
bool ComponentPrefix(const std::vector<int32_t>& prefix,
                     const std::vector<int32_t>& comps) {
  if (prefix.size() > comps.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] != comps[i]) return false;
  }
  return true;
}

/// Appends to `out` a key sorting just below the first key of
/// `tail[start..]` — the run of low carets plus its real ordinal m becomes
/// (0^z, m-1), or (0^(z+1), 1) when m == 1.
void AppendKeyBefore(const std::vector<int32_t>& tail, size_t start,
                     std::vector<int32_t>* out) {
  size_t z = start;
  while (z < tail.size() && tail[z] == OrdPath::kCaretLow) {
    out->push_back(OrdPath::kCaretLow);
    ++z;
  }
  SVX_CHECK_MSG(z < tail.size() && !OrdPath::IsCaret(tail[z]),
                "malformed ordpath key");
  if (tail[z] > 1) {
    out->push_back(tail[z] - 1);
  } else {
    out->push_back(OrdPath::kCaretLow);
    out->push_back(1);
  }
}

}  // namespace

OrdPath OrdPath::CaretBefore(const OrdPath& parent, const OrdPath& left,
                             const OrdPath& right) {
  SVX_CHECK(parent.IsValid() && right.IsValid());
  if (!left.IsValid()) {
    // New first child: descend from the parent just below `right`'s first
    // suffix key (which starts with a low caret or a real ordinal — a high
    // caret would make `right` a sibling of the parent, not a child).
    SVX_CHECK(ComponentPrefix(parent.components_, right.components_));
    std::vector<int32_t> comps = parent.components_;
    SVX_CHECK(right.components_[comps.size()] != kCaretHigh);
    AppendKeyBefore(right.components_, comps.size(), &comps);
    return OrdPath(std::move(comps));
  }
  SVX_CHECK(left.Compare(right) < 0);
  std::vector<int32_t> comps = left.components_;
  if (ComponentPrefix(left.components_, right.components_)) {
    // `right` is caret-anchored at `left`: squeeze below its anchor key,
    // which must start with a high caret (a sibling, not a descendant).
    SVX_CHECK(right.components_[comps.size()] == kCaretHigh);
    comps.push_back(kCaretHigh);
    AppendKeyBefore(right.components_, comps.size(), &comps);
  } else {
    // Anything extending `left` with a high-caret key sorts after `left`'s
    // subtree and (diverging from `right` inside `left`'s own components)
    // before `right`.
    comps.push_back(kCaretHigh);
    comps.push_back(1);
  }
  return OrdPath(std::move(comps));
}

int32_t OrdPath::Depth() const {
  int32_t depth = 0;
  size_t i = 0;
  size_t n = components_.size();
  while (i < n) {
    // One key: a (possibly empty) caret run, then its real ordinal. Keys
    // anchored by a high caret name later siblings and add no depth.
    if (components_[i] != kCaretHigh) ++depth;
    while (i < n && IsCaret(components_[i])) ++i;
    if (i < n) ++i;  // the key's real ordinal
  }
  return depth;
}

OrdPath OrdPath::Parent() const {
  // Drop trailing keys until exactly one depth-contributing key is gone.
  size_t end = components_.size();
  while (end > 0) {
    size_t key_start = end - 1;  // position of the key's real ordinal
    while (key_start > 0 && IsCaret(components_[key_start - 1])) --key_start;
    bool contributes = components_[key_start] != kCaretHigh;
    end = key_start;
    if (contributes) break;
  }
  if (end == 0) return OrdPath();
  return OrdPath(
      std::vector<int32_t>(components_.begin(), components_.begin() + end));
}

OrdPath OrdPath::Ancestor(int32_t steps) const {
  SVX_CHECK(steps >= 0);
  if (steps == 0) return *this;
  // Parent() generalized to N levels in one backward pass (this runs per
  // tuple in the executor's navfID derivation — one allocation, not one
  // per level).
  size_t end = components_.size();
  int32_t dropped = 0;
  while (end > 0 && dropped < steps) {
    size_t key_start = end - 1;
    while (key_start > 0 && IsCaret(components_[key_start - 1])) --key_start;
    if (components_[key_start] != kCaretHigh) ++dropped;
    end = key_start;
  }
  if (end == 0) return OrdPath();
  return OrdPath(
      std::vector<int32_t>(components_.begin(), components_.begin() + end));
}

bool OrdPath::IsParentOf(const OrdPath& other) const {
  if (!IsValid() || !other.IsValid()) return false;
  if (other.components_.size() <= components_.size()) return false;
  return other.Parent() == *this;
}

bool OrdPath::IsAncestorOf(const OrdPath& other) const {
  if (!IsValid() || !other.IsValid()) return false;
  if (other.components_.size() <= components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  // A proper component prefix. If the extension starts with a high caret it
  // names a later *sibling* of this node (or a node hanging under one), not
  // a descendant.
  return other.components_[components_.size()] != kCaretHigh;
}

bool OrdPath::IsAncestorOrSelf(const OrdPath& other) const {
  return *this == other || IsAncestorOf(other);
}

int OrdPath::Compare(const OrdPath& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

std::string OrdPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    if (components_[i] == kCaretHigh) {
      out += '^';
    } else {
      out += std::to_string(components_[i]);
    }
  }
  return out;
}

size_t OrdPath::Hash() const {
  size_t h = 0xcbf29ce484222325ULL;
  for (int32_t c : components_) {
    h ^= static_cast<size_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace svx
