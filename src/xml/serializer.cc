#include "src/xml/serializer.h"

#include "src/util/strings.h"

namespace svx {

namespace {

void SerializeNode(const Document& doc, NodeIndex n, int indent, int depth,
                   std::string* out) {
  auto pad = [&](int d) {
    if (indent >= 0) out->append(static_cast<size_t>(d * indent), ' ');
  };
  pad(depth);
  out->push_back('<');
  out->append(doc.label(n));

  // Emit "@" children as attributes.
  std::vector<NodeIndex> element_children;
  for (NodeIndex c = doc.first_child(n); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    const std::string& l = doc.label(c);
    if (!l.empty() && l[0] == '@' && doc.first_child(c) == kInvalidNode) {
      out->push_back(' ');
      out->append(l.substr(1));
      out->append("=\"");
      out->append(doc.has_value(c) ? XmlEscape(doc.value(c)) : "");
      out->push_back('"');
    } else {
      element_children.push_back(c);
    }
  }

  bool has_text = doc.has_value(n);
  if (element_children.empty() && !has_text) {
    out->append("/>");
    if (indent >= 0) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (has_text) {
    out->append(XmlEscape(doc.value(n)));
  }
  if (!element_children.empty()) {
    if (indent >= 0) out->push_back('\n');
    for (NodeIndex c : element_children) {
      SerializeNode(doc, c, indent, depth + 1, out);
    }
    pad(depth);
  }
  out->append("</");
  out->append(doc.label(n));
  out->push_back('>');
  if (indent >= 0) out->push_back('\n');
}

bool NeedsQuoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '(' || c == ')' || c == ',' || c == '\'' ||
        c == '\n') {
      return true;
    }
  }
  return false;
}

void TreeNotationNode(const Document& doc, NodeIndex n, std::string* out) {
  out->append(doc.label(n));
  if (doc.has_value(n)) {
    out->push_back('=');
    const std::string& v = doc.value(n);
    if (NeedsQuoting(v)) {
      out->push_back('\'');
      out->append(v);  // note: assumes no single quotes inside
      out->push_back('\'');
    } else {
      out->append(v);
    }
  }
  NodeIndex c = doc.first_child(n);
  if (c != kInvalidNode) {
    out->push_back('(');
    bool first = true;
    for (; c != kInvalidNode; c = doc.next_sibling(c)) {
      if (!first) out->push_back(' ');
      first = false;
      TreeNotationNode(doc, c, out);
    }
    out->push_back(')');
  }
}

}  // namespace

std::string SerializeXmlSubtree(const Document& doc, NodeIndex n, int indent) {
  std::string out;
  if (n != kInvalidNode) SerializeNode(doc, n, indent, 0, &out);
  return out;
}

std::string SerializeXml(const Document& doc, int indent) {
  return SerializeXmlSubtree(doc, doc.root(), indent);
}

std::string ToTreeNotation(const Document& doc, NodeIndex n) {
  std::string out;
  if (n != kInvalidNode) TreeNotationNode(doc, n, &out);
  return out;
}

std::string ToTreeNotation(const Document& doc) {
  return ToTreeNotation(doc, doc.root());
}

}  // namespace svx
