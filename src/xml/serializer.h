// Serialization of Documents (and document fragments) back to XML text,
// and to the compact parenthesized notation used in tests.
#ifndef SVX_XML_SERIALIZER_H_
#define SVX_XML_SERIALIZER_H_

#include <string>

#include "src/xml/document.h"

namespace svx {

/// Serializes the subtree rooted at `n` as XML. "@" children become
/// attributes again; node values become text content. `indent` < 0 disables
/// pretty-printing.
std::string SerializeXmlSubtree(const Document& doc, NodeIndex n,
                                int indent = -1);

/// Serializes the whole document.
std::string SerializeXml(const Document& doc, int indent = -1);

/// Serializes the subtree rooted at `n` in parenthesized notation
/// ("a(b=1 c(d))"), matching what ParseTreeNotation accepts.
std::string ToTreeNotation(const Document& doc, NodeIndex n);

/// Serializes the whole document in parenthesized notation.
std::string ToTreeNotation(const Document& doc);

}  // namespace svx

#endif  // SVX_XML_SERIALIZER_H_
