// Structural node identifiers (ORDPATH / Dewey order, O'Neil et al. SIGMOD'04
// and Tatarinov et al. SIGMOD'02). These ids make the paper's "Exploiting ID
// properties" reasoning possible:
//   * document order is id order,
//   * parent / ancestor relationships are decidable by comparing two ids,
//   * a node's parent id is derivable from the node's own id (navfID).
#ifndef SVX_XML_NODE_ID_H_
#define SVX_XML_NODE_ID_H_

#include <cstdint>
#include <string>
#include <vector>

namespace svx {

/// A Dewey-style structural identifier: the sequence of 1-based ordinals on
/// the path from the root ("1") to the node, e.g. "1.3.3.1" in the paper's
/// Figure 2. Total order = document order.
class OrdPath {
 public:
  OrdPath() = default;
  explicit OrdPath(std::vector<int32_t> components)
      : components_(std::move(components)) {}

  /// Parses "1.3.3.1"; returns an empty (invalid) id on malformed input.
  static OrdPath FromString(const std::string& s);

  /// The root identifier "1".
  static OrdPath Root() { return OrdPath({1}); }

  /// Id of this node's `i`-th child (1-based).
  OrdPath Child(int32_t ordinal) const;

  /// Id of the parent; invalid (empty) for the root. This is the paper's
  /// parent-ID derivation used by the navfID operator.
  OrdPath Parent() const;

  /// Id of the ancestor `steps` levels up (Parent applied `steps` times).
  OrdPath Ancestor(int32_t steps) const;

  /// True for default-constructed / root-parent results.
  bool IsValid() const { return !components_.empty(); }

  /// Depth of the node; the root has depth 1.
  int32_t Depth() const { return static_cast<int32_t>(components_.size()); }

  /// True iff this node is the parent of `other`.
  bool IsParentOf(const OrdPath& other) const;

  /// True iff this node is a strict ancestor of `other`.
  bool IsAncestorOf(const OrdPath& other) const;

  /// True iff this node is `other` or a strict ancestor of it.
  bool IsAncestorOrSelf(const OrdPath& other) const;

  /// Document order comparison: <0, 0, >0. An ancestor precedes its
  /// descendants (pre-order).
  int Compare(const OrdPath& other) const;

  bool operator==(const OrdPath& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const OrdPath& other) const { return !(*this == other); }
  bool operator<(const OrdPath& other) const { return Compare(other) < 0; }

  /// "1.3.3.1".
  std::string ToString() const;

  const std::vector<int32_t>& components() const { return components_; }

  /// Stable hash for hash-join on ids.
  size_t Hash() const;

 private:
  std::vector<int32_t> components_;
};

/// std::hash adapter for OrdPath.
struct OrdPathHash {
  size_t operator()(const OrdPath& p) const { return p.Hash(); }
};

}  // namespace svx

#endif  // SVX_XML_NODE_ID_H_
