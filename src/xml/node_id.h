// Structural node identifiers (ORDPATH / Dewey order, O'Neil et al. SIGMOD'04
// and Tatarinov et al. SIGMOD'02). These ids make the paper's "Exploiting ID
// properties" reasoning possible:
//   * document order is id order,
//   * parent / ancestor relationships are decidable by comparing two ids,
//   * a node's parent id is derivable from the node's own id (navfID).
#ifndef SVX_XML_NODE_ID_H_
#define SVX_XML_NODE_ID_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace svx {

/// A Dewey-style structural identifier: the sequence of 1-based ordinals on
/// the path from the root ("1") to the node, e.g. "1.3.3.1" in the paper's
/// Figure 2. Total order = document order.
///
/// Careting (ORDPATH §"insertion between siblings", adapted to consecutive
/// ordinals): besides real ordinals (≥ 1), a component may be a *caret* —
/// kCaretLow (0, printed "0") or kCaretHigh (INT32_MAX, printed "^").
/// Components decompose into *keys*, each a run of carets followed by one
/// real ordinal; a key starting with kCaretHigh anchors the node AFTER the
/// subtree of the id it extends (a later sibling), any other key descends
/// one level. Examples (children of "1"):
///
///   1.0.1      before the first child "1.1"        (depth 2, parent "1")
///   1.3.^.1    between "1.3"'s subtree and "1.4"   (depth 2, parent "1")
///   1.3.^.0.1  between "1.3"'s subtree and 1.3.^.1 (depth 2, parent "1")
///
/// Plain numeric lexicographic comparison remains document order, existing
/// ids never change, and Parent()/Depth()/ancestor tests are caret-aware —
/// which is what lets InsertSubtree place a subtree before an arbitrary
/// sibling without renumbering (src/xml/update.h).
class OrdPath {
 public:
  /// Caret component values (see class comment). Real ordinals are
  /// 1..kCaretHigh-1.
  static constexpr int32_t kCaretLow = 0;
  static constexpr int32_t kCaretHigh =
      std::numeric_limits<int32_t>::max();

  static constexpr bool IsCaret(int32_t c) {
    return c == kCaretLow || c == kCaretHigh;
  }

  OrdPath() = default;
  explicit OrdPath(std::vector<int32_t> components)
      : components_(std::move(components)) {}

  /// Parses "1.3.3.1" (carets: "0" and "^"); returns an empty (invalid) id
  /// on malformed input.
  static OrdPath FromString(const std::string& s);

  /// The root identifier "1".
  static OrdPath Root() { return OrdPath({1}); }

  /// Id of this node's `i`-th child (1-based).
  OrdPath Child(int32_t ordinal) const;

  /// Id for a fresh node placed immediately before sibling `right` in
  /// document order, leaving every existing id unchanged. `left` is
  /// `right`'s immediate preceding sibling, or invalid when `right` is its
  /// parent's first child (then `parent` anchors the caret). The result is
  /// a sibling of `right` (child of `parent`, same depth) that sorts after
  /// `left`'s entire subtree and before `right`. Requires that no existing
  /// node sorts strictly between `left`'s subtree (resp. `parent`) and
  /// `right` — i.e. that `left`/`parent` really is the immediate
  /// predecessor context.
  static OrdPath CaretBefore(const OrdPath& parent, const OrdPath& left,
                             const OrdPath& right);

  /// Id of the parent; invalid (empty) for the root. This is the paper's
  /// parent-ID derivation used by the navfID operator. Caret-aware: the
  /// parent of "1.3.^.1" is "1" (the id is a sibling of "1.3").
  OrdPath Parent() const;

  /// Id of the ancestor `steps` levels up (Parent applied `steps` times).
  OrdPath Ancestor(int32_t steps) const;

  /// True for default-constructed / root-parent results.
  bool IsValid() const { return !components_.empty(); }

  /// Depth of the node; the root has depth 1. Caret keys starting with
  /// kCaretHigh contribute no depth (they denote later siblings, not
  /// descendants).
  int32_t Depth() const;

  /// True iff this node is the parent of `other`.
  bool IsParentOf(const OrdPath& other) const;

  /// True iff this node is a strict ancestor of `other`.
  bool IsAncestorOf(const OrdPath& other) const;

  /// True iff this node is `other` or a strict ancestor of it.
  bool IsAncestorOrSelf(const OrdPath& other) const;

  /// Document order comparison: <0, 0, >0. An ancestor precedes its
  /// descendants (pre-order).
  int Compare(const OrdPath& other) const;

  bool operator==(const OrdPath& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const OrdPath& other) const { return !(*this == other); }
  bool operator<(const OrdPath& other) const { return Compare(other) < 0; }

  /// "1.3.3.1".
  std::string ToString() const;

  const std::vector<int32_t>& components() const { return components_; }

  /// Stable hash for hash-join on ids.
  size_t Hash() const;

 private:
  std::vector<int32_t> components_;
};

/// std::hash adapter for OrdPath.
struct OrdPathHash {
  size_t operator()(const OrdPath& p) const { return p.Hash(); }
};

}  // namespace svx

#endif  // SVX_XML_NODE_ID_H_
