#include "src/util/check.h"
#include "src/xml/builder.h"

#include <cctype>

#include "src/util/strings.h"

namespace svx {

DocumentBuilder::DocumentBuilder() : doc_(new Document()) {}

NodeIndex DocumentBuilder::StartElement(std::string_view label) {
  SVX_CHECK_MSG(!root_emitted_ || !stack_.empty(),
                "document must have a single root");
  Document& d = *doc_;
  NodeIndex n = d.size();
  d.labels_.push_back(d.label_interner_.Intern(label));
  d.value_ids_.push_back(-1);
  d.first_children_.push_back(kInvalidNode);
  d.next_siblings_.push_back(kInvalidNode);
  d.subtree_ends_.push_back(kInvalidNode);
  d.path_ids_.push_back(-1);

  if (stack_.empty()) {
    d.parents_.push_back(kInvalidNode);
    d.depths_.push_back(1);
    d.ord_paths_.push_back(OrdPath::Root());
    root_emitted_ = true;
  } else {
    Open& top = stack_.back();
    d.parents_.push_back(top.node);
    d.depths_.push_back(d.depths_[static_cast<size_t>(top.node)] + 1);
    ++top.child_count;
    d.ord_paths_.push_back(
        d.ord_paths_[static_cast<size_t>(top.node)].Child(top.child_count));
    if (top.last_child == kInvalidNode) {
      d.first_children_[static_cast<size_t>(top.node)] = n;
    } else {
      d.next_siblings_[static_cast<size_t>(top.last_child)] = n;
    }
    top.last_child = n;
  }
  stack_.push_back(Open{n, kInvalidNode, 0});
  return n;
}

void DocumentBuilder::AppendValue(std::string_view value) {
  SVX_CHECK_MSG(!stack_.empty(), "AppendValue outside any element");
  Document& d = *doc_;
  size_t n = static_cast<size_t>(stack_.back().node);
  if (d.value_ids_[n] < 0) {
    d.value_ids_[n] = static_cast<int32_t>(d.values_.size());
    d.values_.emplace_back(value);
  } else {
    d.values_[static_cast<size_t>(d.value_ids_[n])].append(value);
  }
}

void DocumentBuilder::EndElement() {
  SVX_CHECK_MSG(!stack_.empty(), "EndElement without StartElement");
  Document& d = *doc_;
  NodeIndex n = stack_.back().node;
  d.subtree_ends_[static_cast<size_t>(n)] = d.size();
  stack_.pop_back();
}

std::unique_ptr<Document> DocumentBuilder::Finish() {
  SVX_CHECK_MSG(stack_.empty(), "unclosed elements at Finish");
  SVX_CHECK_MSG(root_emitted_, "empty document");
  return std::move(doc_);
}

namespace {

/// Recursive-descent parser for the parenthesized notation.
class TreeNotationParser {
 public:
  explicit TreeNotationParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Document>> Parse() {
    SkipSpace();
    SVX_RETURN_IF_ERROR(ParseNode());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing input at offset %zu", pos_));
    }
    return builder_.Finish();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r' ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  static bool IsLabelStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '*' || c == '#';
  }
  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '#';
  }

  Status ParseNode() {
    if (pos_ >= text_.size() || !IsLabelStart(text_[pos_])) {
      return Status::ParseError(
          StrFormat("expected label at offset %zu", pos_));
    }
    size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
    builder_.StartElement(text_.substr(start, pos_ - start));

    if (pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '\'') {
        ++pos_;
        size_t vstart = pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated quoted value");
        }
        builder_.AppendValue(text_.substr(vstart, pos_ - vstart));
        ++pos_;
      } else {
        size_t vstart = pos_;
        while (pos_ < text_.size() && text_[pos_] != ' ' &&
               text_[pos_] != '(' && text_[pos_] != ')' &&
               text_[pos_] != ',' && text_[pos_] != '\n') {
          ++pos_;
        }
        if (vstart == pos_) return Status::ParseError("empty value after '='");
        builder_.AppendValue(text_.substr(vstart, pos_ - vstart));
      }
    }

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      SkipSpace();
      bool any = false;
      while (pos_ < text_.size() && text_[pos_] != ')') {
        SVX_RETURN_IF_ERROR(ParseNode());
        any = true;
        SkipSpace();
      }
      if (pos_ >= text_.size()) return Status::ParseError("missing ')'");
      if (!any) return Status::ParseError("empty child list");
      ++pos_;  // consume ')'
      SkipSpace();
    }
    builder_.EndElement();
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  DocumentBuilder builder_;
};

}  // namespace

Result<std::unique_ptr<Document>> ParseTreeNotation(std::string_view text) {
  return TreeNotationParser(text).Parse();
}

}  // namespace svx
