// In-memory XML document: an unranked labeled ordered tree (paper §2.1).
// Every node has a unique identity (its preorder index and an ORDPATH id),
// a label from L, and optionally an atomic value from A.
//
// Storage is a flat preorder vector; a node's descendants occupy the
// half-open preorder interval [n+1, subtree_end(n)), giving O(1) ancestor
// tests, while ORDPATH ids serve the view level (paper §1 "Exploiting ID
// properties").
#ifndef SVX_XML_DOCUMENT_H_
#define SVX_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/check.h"
#include "src/util/interner.h"
#include "src/xml/node_id.h"

namespace svx {

/// Index of a node inside a Document (preorder position).
using NodeIndex = int32_t;
inline constexpr NodeIndex kInvalidNode = -1;

/// An immutable XML tree. Build with DocumentBuilder or XmlParser.
class Document {
 public:
  /// Number of nodes.
  int32_t size() const { return static_cast<int32_t>(labels_.size()); }

  /// Root node index (0), or kInvalidNode for an empty document.
  NodeIndex root() const { return size() == 0 ? kInvalidNode : 0; }

  /// Interned label id of node `n`.
  int32_t label_id(NodeIndex n) const { return labels_[Check(n)]; }

  /// Label string of node `n`.
  const std::string& label(NodeIndex n) const {
    return label_interner_.Get(label_id(n));
  }

  /// True if node `n` carries an atomic value.
  bool has_value(NodeIndex n) const { return value_ids_[Check(n)] >= 0; }

  /// The node's atomic value; requires has_value(n).
  const std::string& value(NodeIndex n) const {
    int32_t v = value_ids_[Check(n)];
    SVX_DCHECK(v >= 0);
    return values_[static_cast<size_t>(v)];
  }

  /// Parent node, kInvalidNode for the root.
  NodeIndex parent(NodeIndex n) const { return parents_[Check(n)]; }

  /// First child in document order, kInvalidNode if leaf.
  NodeIndex first_child(NodeIndex n) const { return first_children_[Check(n)]; }

  /// Next sibling, kInvalidNode if last.
  NodeIndex next_sibling(NodeIndex n) const { return next_siblings_[Check(n)]; }

  /// One past the last descendant of `n` in preorder.
  NodeIndex subtree_end(NodeIndex n) const { return subtree_ends_[Check(n)]; }

  /// True iff `a` is a strict ancestor of `b` (a ≺≺ b reads "a ancestor").
  bool IsAncestor(NodeIndex a, NodeIndex b) const {
    return a < b && b < subtree_end(a);
  }

  /// True iff `a` is the parent of `b`.
  bool IsParent(NodeIndex a, NodeIndex b) const { return parent(b) == a; }

  /// Depth of `n`; the root has depth 1.
  int32_t depth(NodeIndex n) const { return depths_[Check(n)]; }

  /// Structural ORDPATH/Dewey id of `n`.
  const OrdPath& ord_path(NodeIndex n) const { return ord_paths_[Check(n)]; }

  /// Looks a node up by its ORDPATH id; kInvalidNode if absent.
  NodeIndex FindByOrdPath(const OrdPath& id) const;

  /// The label interner (shared vocabulary of this document).
  const StringInterner& labels() const { return label_interner_; }

  /// Children of `n` as a materialized vector (convenience for tests).
  std::vector<NodeIndex> children(NodeIndex n) const;

  // ---- Summary annotation (filled by SummaryBuilder) ----

  /// Summary path id of node `n`; -1 before annotation.
  int32_t path_id(NodeIndex n) const { return path_ids_[Check(n)]; }

  /// True once SummaryBuilder annotated this document.
  bool has_path_annotation() const { return !nodes_by_path_.empty(); }

  /// All nodes on summary path `path`, in document (preorder) order.
  const std::vector<NodeIndex>& nodes_on_path(int32_t path) const;

  /// Nodes on `path` inside the subtree of `context` (inclusive bounds via
  /// preorder interval), returned in document order.
  std::vector<NodeIndex> NodesOnPathWithin(int32_t path,
                                           NodeIndex context) const;

 private:
  friend class DocumentBuilder;
  friend class DocumentUpdater;
  friend class SummaryBuilder;

  size_t Check(NodeIndex n) const {
    SVX_DCHECK(n >= 0 && n < size());
    return static_cast<size_t>(n);
  }

  StringInterner label_interner_;
  std::vector<std::string> values_;  // value storage, indexed by value id

  // Per-node parallel arrays (preorder).
  std::vector<int32_t> labels_;
  std::vector<int32_t> value_ids_;  // -1 = no value
  std::vector<NodeIndex> parents_;
  std::vector<NodeIndex> first_children_;
  std::vector<NodeIndex> next_siblings_;
  std::vector<NodeIndex> subtree_ends_;
  std::vector<int32_t> depths_;
  std::vector<OrdPath> ord_paths_;

  // Summary annotation.
  std::vector<int32_t> path_ids_;
  std::vector<std::vector<NodeIndex>> nodes_by_path_;
};

}  // namespace svx

#endif  // SVX_XML_DOCUMENT_H_
