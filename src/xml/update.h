// Document updates with stable structural identifiers (the ID-based storage
// design of paper §1 "Exploiting ID properties"): a subtree insert or delete
// produces a brand-new Document plus a DocumentDelta naming the affected
// ORDPATH region. Surviving nodes keep their ORDPATH ids bit-for-bit:
//   * DeleteSubtree leaves sibling ordinals untouched (ordinal gaps are
//     legal Dewey ids, document order is preserved),
//   * InsertSubtree without an `insert_before` sibling appends the new
//     subtree as the last child of its parent with ordinal
//     max(existing child ordinals) + 1,
//   * InsertSubtree before a given sibling carets the new subtree's root id
//     between its neighbors (OrdPath::CaretBefore), so the insert lands in
//     document order without renumbering anything.
// Stability is what makes incremental view maintenance possible: extents
// key tuples by ORDPATH, so tuples of unaffected nodes never change.
// Ids are unique within each document version but not across history: a
// slot vacated by a delete (the max ordinal for appends, a caret position
// for insert-before) may be minted again by a later insert. Maintenance
// is per-delta — every delta is evaluated against one (old, new) version
// pair — so re-minted ids are indistinguishable from fresh ones there;
// consumers correlating ids across many versions (e.g. a future delta
// log) must pair them with a version number.
#ifndef SVX_XML_UPDATE_H_
#define SVX_XML_UPDATE_H_

#include <memory>

#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// Describes one applied subtree update. Both documents are borrowed: the
/// caller keeps them alive while the delta (or anything derived from it,
/// e.g. a maintenance pass over a ViewCatalog) is in use.
struct DocumentDelta {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  const Document* old_doc = nullptr;
  const Document* new_doc = nullptr;

  /// ORDPATH of the affected subtree root: the inserted subtree's root (an
  /// id of new_doc) for kInsert, the deleted subtree's root (an id of
  /// old_doc) for kDelete. Every added/removed node has `region` as an
  /// ORDPATH prefix; every other node survives with an unchanged id.
  OrdPath region;

  /// Number of nodes added (kInsert) or removed (kDelete).
  int32_t region_size = 0;
};

/// A freshly built document together with the delta leading to it.
struct UpdateResult {
  std::unique_ptr<Document> doc;
  /// delta.new_doc == doc.get(); delta.old_doc is the input document.
  DocumentDelta delta;
};

/// Inserts a copy of `subtree` (a standalone document; its root becomes the
/// new node) as a child of the node identified by `parent`: immediately
/// before the sibling identified by `*insert_before` when given (the new
/// root's id is careted between its neighbors), as the last child
/// otherwise. Fails if `parent` is not in `doc`, or if `insert_before` does
/// not name a child of `parent`. Summary path annotation is not carried
/// over — re-annotate with SummaryBuilder if needed.
[[nodiscard]] Result<UpdateResult> InsertSubtree(
    const Document& doc, const OrdPath& parent, const Document& subtree,
    const OrdPath* insert_before = nullptr);

/// Removes the subtree rooted at the node identified by `target`. Fails if
/// `target` is not in `doc` or is the document root.
[[nodiscard]] Result<UpdateResult> DeleteSubtree(const Document& doc,
                                                 const OrdPath& target);

}  // namespace svx

#endif  // SVX_XML_UPDATE_H_
