// Document updates with stable structural identifiers (the ID-based storage
// design of paper §1 "Exploiting ID properties"): a subtree insert or delete
// produces a brand-new Document plus a DocumentDelta naming the affected
// ORDPATH region. Surviving nodes keep their ORDPATH ids bit-for-bit:
//   * DeleteSubtree leaves sibling ordinals untouched (ordinal gaps are
//     legal Dewey ids, document order is preserved),
//   * InsertSubtree appends the new subtree as the last child of its parent
//     with ordinal max(existing child ordinals) + 1.
// Stability is what makes incremental view maintenance possible: extents
// key tuples by ORDPATH, so tuples of unaffected nodes never change.
#ifndef SVX_XML_UPDATE_H_
#define SVX_XML_UPDATE_H_

#include <memory>

#include "src/util/status.h"
#include "src/xml/document.h"

namespace svx {

/// Describes one applied subtree update. Both documents are borrowed: the
/// caller keeps them alive while the delta (or anything derived from it,
/// e.g. a maintenance pass over a ViewCatalog) is in use.
struct DocumentDelta {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  const Document* old_doc = nullptr;
  const Document* new_doc = nullptr;

  /// ORDPATH of the affected subtree root: the inserted subtree's root (an
  /// id of new_doc) for kInsert, the deleted subtree's root (an id of
  /// old_doc) for kDelete. Every added/removed node has `region` as an
  /// ORDPATH prefix; every other node survives with an unchanged id.
  OrdPath region;

  /// Number of nodes added (kInsert) or removed (kDelete).
  int32_t region_size = 0;
};

/// A freshly built document together with the delta leading to it.
struct UpdateResult {
  std::unique_ptr<Document> doc;
  /// delta.new_doc == doc.get(); delta.old_doc is the input document.
  DocumentDelta delta;
};

/// Inserts a copy of `subtree` (a standalone document; its root becomes the
/// new node) as the last child of the node identified by `parent`.
/// Fails if `parent` is not in `doc`. Summary path annotation is not
/// carried over — re-annotate with SummaryBuilder if needed.
Result<UpdateResult> InsertSubtree(const Document& doc, const OrdPath& parent,
                                   const Document& subtree);

/// Removes the subtree rooted at the node identified by `target`. Fails if
/// `target` is not in `doc` or is the document root.
Result<UpdateResult> DeleteSubtree(const Document& doc, const OrdPath& target);

}  // namespace svx

#endif  // SVX_XML_UPDATE_H_
