#include "src/xml/update.h"

#include <algorithm>
#include <vector>

namespace svx {

/// Rebuilds a Document from a preorder list of (label, value, ordpath)
/// descriptors. ORDPATHs are taken verbatim — this is what keeps surviving
/// ids stable across updates (DocumentBuilder would renumber ordinals).
class DocumentUpdater {
 public:
  struct NodeSpec {
    const std::string* label = nullptr;
    const std::string* value = nullptr;  // nullptr = no atomic value
    OrdPath ord_path;
  };

  static std::unique_ptr<Document> Build(const std::vector<NodeSpec>& nodes) {
    auto doc = std::make_unique<Document>();
    Document& d = *doc;
    size_t n = nodes.size();
    d.labels_.reserve(n);
    d.value_ids_.reserve(n);
    d.parents_.reserve(n);
    d.first_children_.reserve(n);
    d.next_siblings_.reserve(n);
    d.subtree_ends_.reserve(n);
    d.depths_.reserve(n);
    d.ord_paths_.reserve(n);
    d.path_ids_.assign(n, -1);

    // Stack of open ancestors: (node index, last child seen).
    struct Open {
      NodeIndex node;
      NodeIndex last_child = kInvalidNode;
    };
    std::vector<Open> stack;
    for (size_t i = 0; i < n; ++i) {
      const NodeSpec& spec = nodes[i];
      NodeIndex idx = static_cast<NodeIndex>(i);
      int32_t depth = spec.ord_path.Depth();
      SVX_CHECK_MSG(depth >= 1, "invalid ordpath in update");
      // Close finished subtrees: the preorder invariant says the parent of
      // node i is the nearest preceding node with depth(i) - 1.
      while (static_cast<int32_t>(stack.size()) >= depth) {
        d.subtree_ends_[static_cast<size_t>(stack.back().node)] = idx;
        stack.pop_back();
      }
      SVX_CHECK_MSG(static_cast<int32_t>(stack.size()) == depth - 1,
                    "non-preorder node list in update");

      d.labels_.push_back(d.label_interner_.Intern(*spec.label));
      if (spec.value != nullptr) {
        d.value_ids_.push_back(static_cast<int32_t>(d.values_.size()));
        d.values_.push_back(*spec.value);
      } else {
        d.value_ids_.push_back(-1);
      }
      d.first_children_.push_back(kInvalidNode);
      d.next_siblings_.push_back(kInvalidNode);
      d.subtree_ends_.push_back(kInvalidNode);
      d.depths_.push_back(depth);
      d.ord_paths_.push_back(spec.ord_path);
      if (stack.empty()) {
        d.parents_.push_back(kInvalidNode);
      } else {
        Open& top = stack.back();
        d.parents_.push_back(top.node);
        if (top.last_child == kInvalidNode) {
          d.first_children_[static_cast<size_t>(top.node)] = idx;
        } else {
          d.next_siblings_[static_cast<size_t>(top.last_child)] = idx;
        }
        top.last_child = idx;
      }
      stack.push_back(Open{idx, kInvalidNode});
    }
    while (!stack.empty()) {
      d.subtree_ends_[static_cast<size_t>(stack.back().node)] =
          static_cast<NodeIndex>(n);
      stack.pop_back();
    }
    return doc;
  }
};

namespace {

using NodeSpec = DocumentUpdater::NodeSpec;

NodeSpec SpecOf(const Document& doc, NodeIndex n, OrdPath id) {
  NodeSpec spec;
  spec.label = &doc.label(n);
  spec.value = doc.has_value(n) ? &doc.value(n) : nullptr;
  spec.ord_path = std::move(id);
  return spec;
}

}  // namespace

Result<UpdateResult> InsertSubtree(const Document& doc, const OrdPath& parent,
                                   const Document& subtree,
                                   const OrdPath* insert_before) {
  NodeIndex parent_idx = doc.FindByOrdPath(parent);
  if (parent_idx == kInvalidNode) {
    return Status::NotFound("insert parent " + parent.ToString() +
                            " not in document");
  }
  if (subtree.size() == 0) {
    return Status::InvalidArgument("cannot insert an empty subtree");
  }

  OrdPath region;
  NodeIndex splice_at = kInvalidNode;  // preorder position of the new root
  if (insert_before != nullptr) {
    NodeIndex before_idx = doc.FindByOrdPath(*insert_before);
    if (before_idx == kInvalidNode ||
        doc.parent(before_idx) != parent_idx) {
      return Status::NotFound("insert_before " + insert_before->ToString() +
                              " is not a child of " + parent.ToString());
    }
    // The caret id needs `before`'s immediate preceding sibling (invalid
    // when `before` is the first child).
    OrdPath left;
    for (NodeIndex c = doc.first_child(parent_idx); c != before_idx;
         c = doc.next_sibling(c)) {
      left = doc.ord_path(c);
    }
    region = OrdPath::CaretBefore(parent, left, doc.ord_path(before_idx));
    splice_at = before_idx;
  } else {
    // Append: one past the largest *surviving* child ordinal. A child id
    // extends the parent's components, so the child's ordering key at this
    // level is its first component past the parent prefix — carets
    // included, `back()` would misread careted children. Note ids are
    // unique per document version, not across history: if the
    // largest-ordinal child was deleted earlier, its ordinal (like a
    // caret slot vacated by a delete) can be minted again.
    int32_t max_ordinal = 0;
    size_t level = parent.components().size();
    for (NodeIndex c = doc.first_child(parent_idx); c != kInvalidNode;
         c = doc.next_sibling(c)) {
      max_ordinal = std::max(max_ordinal, doc.ord_path(c).components()[level]);
    }
    region = parent.Child(max_ordinal + 1);
    splice_at = doc.subtree_end(parent_idx);
  }

  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<size_t>(doc.size() + subtree.size()));
  for (NodeIndex n = 0; n < splice_at; ++n) {
    nodes.push_back(SpecOf(doc, n, doc.ord_path(n)));
  }
  // The inserted subtree in preorder; ordpaths are re-rooted under `region`
  // by replacing the subtree-root prefix.
  for (NodeIndex n = 0; n < subtree.size(); ++n) {
    const auto& comps = subtree.ord_path(n).components();
    std::vector<int32_t> rebased = region.components();
    rebased.insert(rebased.end(), comps.begin() + 1, comps.end());
    nodes.push_back(SpecOf(subtree, n, OrdPath(std::move(rebased))));
  }
  for (NodeIndex n = splice_at; n < doc.size(); ++n) {
    nodes.push_back(SpecOf(doc, n, doc.ord_path(n)));
  }

  UpdateResult out;
  out.doc = DocumentUpdater::Build(nodes);
  out.delta.kind = DocumentDelta::Kind::kInsert;
  out.delta.old_doc = &doc;
  out.delta.new_doc = out.doc.get();
  out.delta.region = std::move(region);
  out.delta.region_size = subtree.size();
  return out;
}

Result<UpdateResult> DeleteSubtree(const Document& doc,
                                   const OrdPath& target) {
  NodeIndex target_idx = doc.FindByOrdPath(target);
  if (target_idx == kInvalidNode) {
    return Status::NotFound("delete target " + target.ToString() +
                            " not in document");
  }
  if (target_idx == doc.root()) {
    return Status::InvalidArgument("cannot delete the document root");
  }

  NodeIndex skip_end = doc.subtree_end(target_idx);
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<size_t>(doc.size() - (skip_end - target_idx)));
  for (NodeIndex n = 0; n < doc.size(); ++n) {
    if (n == target_idx) {
      n = skip_end - 1;  // skip the removed subtree
      continue;
    }
    nodes.push_back(SpecOf(doc, n, doc.ord_path(n)));
  }

  UpdateResult out;
  out.doc = DocumentUpdater::Build(nodes);
  out.delta.kind = DocumentDelta::Kind::kDelete;
  out.delta.old_doc = &doc;
  out.delta.new_doc = out.doc.get();
  out.delta.region = target;
  out.delta.region_size = skip_end - target_idx;
  return out;
}

}  // namespace svx
