// The extended tree pattern language (paper §2.2 and §4):
//   * nodes labeled from L ∪ {*}, edges labeled / (child) or // (descendant),
//   * value predicates on nodes (§4.2),
//   * optional edges — dashed in the paper (§4.3),
//   * per-node attributes ID / L / V / C (§4.4); nodes with at least one
//     attribute are the pattern's return nodes,
//   * nested edges, n-labeled in the paper (§4.5).
//
// Patterns are absolutely rooted: the pattern root embeds into the document
// root (§2.2).
#ifndef SVX_PATTERN_PATTERN_H_
#define SVX_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/pattern/predicate.h"
#include "src/util/check.h"

namespace svx {

/// Edge axis between a pattern node and its parent.
enum class Axis : uint8_t {
  kChild,       // '/'
  kDescendant,  // '//'
};

/// Attribute bits (§4.4). A node with any bit set is a return node.
inline constexpr uint8_t kAttrId = 1;       // structural identifier
inline constexpr uint8_t kAttrLabel = 2;    // L: node label
inline constexpr uint8_t kAttrValue = 4;    // V: atomic value
inline constexpr uint8_t kAttrContent = 8;  // C: subtree content

/// Index of a node inside a Pattern.
using PatternNodeId = int32_t;

/// An extended tree pattern. Node 0 is the root; nodes are stored in
/// preorder, which also fixes the order of return nodes (and hence the
/// result tuple layout).
class Pattern {
 public:
  struct Node {
    std::string label;          // "*" = wildcard
    PatternNodeId parent = -1;  // -1 for the root
    Axis axis = Axis::kChild;   // edge from parent; meaningless for root
    bool optional = false;      // dashed edge from parent (§4.3)
    bool nested = false;        // n-edge from parent (§4.5)
    uint8_t attrs = 0;          // kAttr* bitmask (§4.4)
    Predicate pred = Predicate::True();  // value formula (§4.2)
    std::vector<PatternNodeId> children;

    bool IsWildcard() const { return label == "*"; }
    bool IsReturn() const { return attrs != 0; }
  };

  Pattern() = default;

  /// Creates the root node. Must be called exactly once, first.
  PatternNodeId SetRoot(std::string_view label, uint8_t attrs = 0,
                        Predicate pred = Predicate::True());

  /// Appends a child; `parent` must already exist. Children are attached
  /// in call order (preorder construction is the caller's responsibility if
  /// node-id order matters; use Canonicalize() otherwise).
  PatternNodeId AddChild(PatternNodeId parent, std::string_view label,
                         Axis axis, uint8_t attrs = 0,
                         Predicate pred = Predicate::True(),
                         bool optional = false, bool nested = false);

  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }
  PatternNodeId root() const { return 0; }

  const Node& node(PatternNodeId n) const {
    SVX_DCHECK(n >= 0 && n < size());
    return nodes_[static_cast<size_t>(n)];
  }
  Node& mutable_node(PatternNodeId n) {
    SVX_DCHECK(n >= 0 && n < size());
    return nodes_[static_cast<size_t>(n)];
  }

  /// Return nodes in preorder (= result-tuple column order).
  std::vector<PatternNodeId> ReturnNodes() const;

  /// Number of return nodes (the pattern's arity k).
  int32_t Arity() const {
    return static_cast<int32_t>(ReturnNodes().size());
  }

  /// Ids of nodes whose incoming edge is optional.
  std::vector<PatternNodeId> OptionalEdges() const;

  /// True if any edge is optional / nested / any node has a non-True
  /// predicate.
  bool HasOptionalEdges() const;
  bool HasNestedEdges() const;
  bool HasPredicates() const;

  /// Number of nested edges on the path from the root to `n` (the length of
  /// the §4.5 nesting sequence |ns(n)| — independent of the embedding).
  int32_t NestingDepth(PatternNodeId n) const;

  /// The nested-edge ancestors of `n` (nearest last), i.e. the pattern nodes
  /// u on the root path such that the edge entering u is nested.
  std::vector<PatternNodeId> NestingAncestors(PatternNodeId n) const;

  /// Deep copy.
  Pattern Clone() const { return *this; }

  /// Copy with every edge made non-optional (the paper's p0, §4.3).
  Pattern Strict() const;

  /// Copy with all attributes erased except on the given nodes, where they
  /// are replaced by kAttrId — used to "choose k return nodes" before a
  /// containment test (§3.3).
  Pattern WithReturnNodes(const std::vector<PatternNodeId>& keep) const;

  /// Copy where node ids are renumbered in preorder (stable child order).
  /// Guarantees node(0) == root and parents precede children.
  Pattern Canonicalize() const;

  /// Copy with the subtrees rooted at the given nodes removed (each id must
  /// not be the root). Node ids are renumbered; the returned mapping gives
  /// old-id -> new-id (-1 if erased).
  Pattern EraseSubtrees(const std::vector<PatternNodeId>& roots,
                        std::vector<PatternNodeId>* old_to_new = nullptr) const;

  /// Nodes of the subtree rooted at `n`, in preorder.
  std::vector<PatternNodeId> SubtreeNodes(PatternNodeId n) const;

  /// True iff `a` is `b` or an ancestor of `b`.
  bool IsAncestorOrSelf(PatternNodeId a, PatternNodeId b) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace svx

#endif  // SVX_PATTERN_PATTERN_H_
