// The summary-based canonical model modS(p) (paper §2.4), with the
// extensions of §4: enhanced-summary strong-edge closure (§4.1), decorated
// nodes carrying formulas (§4.2) and optional edges (§4.3).
//
// A canonical tree is a *tree* whose nodes are labeled by summary paths: per
// §2.4, the node for e(n) has exactly one child chain per pattern child, so
// two sibling pattern nodes mapping to the same path yield two distinct
// canonical nodes (likewise two decorated nodes with different formulas,
// §4.2). Trees that are structurally identical (same shape, paths, formulas
// and return/nesting marks) are deduplicated — the paper's observation that
// distinct embeddings may yield the same canonical tree.
#ifndef SVX_PATTERN_CANONICAL_H_
#define SVX_PATTERN_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "src/pattern/embedding.h"
#include "src/pattern/evaluator.h"
#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// One tree of modS(p). Node 0 is the root (mapped to the summary root).
struct CanonicalTree {
  /// ⊥ marker inside return tuples.
  static constexpr int32_t kBottom = -1;

  std::vector<PathId> paths;      // per node: its summary path
  std::vector<int32_t> parents;   // per node: parent index (-1 for root)
  std::vector<std::vector<int32_t>> children;  // per node
  /// Formula per node (§4.2); empty when the pattern has no predicates.
  std::vector<Predicate> formulas;
  /// Return bindings as node indexes, pattern preorder; kBottom = ⊥ (§4.3).
  std::vector<int32_t> return_tuple;
  /// Nesting sequence per return node as node indexes (§4.5); empty when the
  /// pattern has no nested edges.
  std::vector<std::vector<int32_t>> nesting_seqs;

  int32_t size() const { return static_cast<int32_t>(paths.size()); }
  bool HasFormulas() const { return !formulas.empty(); }
  const Predicate& FormulaFor(int32_t node) const;

  /// Paths of all nodes, sorted (with duplicates).
  std::vector<PathId> SortedPaths() const;
  /// Return tuple as paths (kInvalidPath for ⊥).
  std::vector<PathId> ReturnPaths() const;

  /// Canonical structural encoding: two trees are equal iff their encodings
  /// are (children are compared order-insensitively).
  const std::string& Encoding() const;
  size_t Hash() const;
  bool operator==(const CanonicalTree& other) const {
    return Encoding() == other.Encoding();
  }

  /// Recomputes children lists and the cached encoding; call after direct
  /// construction.
  void Seal();

 private:
  mutable std::string encoding_;
};

/// TreeLike adapter exposing a canonical tree to the evaluator. Node
/// handles are CanonicalTree node indexes.
class CanonicalTreeView : public TreeLike {
 public:
  CanonicalTreeView(const CanonicalTree& tree, const Summary& summary)
      : tree_(tree), summary_(summary) {}
  int32_t Root() const override { return tree_.size() == 0 ? -1 : 0; }
  std::vector<int32_t> Children(int32_t n) const override {
    return tree_.children[static_cast<size_t>(n)];
  }
  bool Matches(const Pattern::Node& pn, int32_t n,
               FormulaMode mode) const override;

  PathId path(int32_t n) const {
    return tree_.paths[static_cast<size_t>(n)];
  }

 private:
  const CanonicalTree& tree_;
  const Summary& summary_;
};

/// Options bounding the model construction (worst case |S|^|p|, §3.1).
struct CanonicalModelOptions {
  /// Apply the §4.1 strong-edge closure (enhanced summaries).
  bool use_strong_edges = true;
  /// Abort with ResourceExhausted beyond this many embeddings per
  /// optional-edge subset.
  size_t max_embeddings = 1 << 20;
  /// Abort beyond this many distinct canonical trees.
  size_t max_trees = 1 << 18;
  /// Abort beyond this many optional edges (2^|E| subsets are enumerated).
  int32_t max_optional_edges = 20;
};

/// Builds modS(p). Deduplicated; deterministic order.
Result<std::vector<CanonicalTree>> BuildCanonicalModel(
    const Pattern& p, const Summary& summary,
    const CanonicalModelOptions& options = {});

/// Streams modS(p) tree by tree (deduplicated): `sink` may return false to
/// stop early. This is what lets negative containment tests exit as soon as
/// one tree contradicts the condition (§5: "the latter are faster").
[[nodiscard]] Status ForEachCanonicalTree(const Pattern& p, const Summary& summary,
                            const CanonicalModelOptions& options,
                            const std::function<bool(const CanonicalTree&)>& sink);

/// Satisfiability: p is S-satisfiable iff modS(p) is non-empty (§2.4).
[[nodiscard]] Result<bool> IsSatisfiable(const Pattern& p, const Summary& summary,
                           const CanonicalModelOptions& options = {});

}  // namespace svx

#endif  // SVX_PATTERN_CANONICAL_H_
