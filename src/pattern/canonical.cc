#include "src/pattern/canonical.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

const Predicate& CanonicalTree::FormulaFor(int32_t node) const {
  static const Predicate kTrue = Predicate::True();
  if (formulas.empty()) return kTrue;
  SVX_DCHECK(node >= 0 && node < size());
  return formulas[static_cast<size_t>(node)];
}

std::vector<PathId> CanonicalTree::SortedPaths() const {
  std::vector<PathId> out = paths;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PathId> CanonicalTree::ReturnPaths() const {
  std::vector<PathId> out;
  out.reserve(return_tuple.size());
  for (int32_t n : return_tuple) {
    out.push_back(n == kBottom ? kInvalidPath
                               : paths[static_cast<size_t>(n)]);
  }
  return out;
}

namespace {

/// Canonical encoding of the subtree rooted at `n`: children compared
/// order-insensitively (sorted encodings).
std::string EncodeNode(const CanonicalTree& t, int32_t n) {
  std::string out = "(";
  out += std::to_string(t.paths[static_cast<size_t>(n)]);
  if (t.HasFormulas() && !t.formulas[static_cast<size_t>(n)].IsTrue()) {
    out += ';';
    out += t.formulas[static_cast<size_t>(n)].ToString();
  }
  for (size_t i = 0; i < t.return_tuple.size(); ++i) {
    if (t.return_tuple[i] == n) {
      out += '#';
      out += std::to_string(i);
    }
  }
  for (size_t i = 0; i < t.nesting_seqs.size(); ++i) {
    for (size_t j = 0; j < t.nesting_seqs[i].size(); ++j) {
      if (t.nesting_seqs[i][j] == n) {
        out += '@';
        out += std::to_string(i);
        out += ',';
        out += std::to_string(j);
      }
    }
  }
  std::vector<std::string> kids;
  for (int32_t c : t.children[static_cast<size_t>(n)]) {
    kids.push_back(EncodeNode(t, c));
  }
  std::sort(kids.begin(), kids.end());
  for (const std::string& k : kids) out += k;
  out += ')';
  return out;
}

}  // namespace

void CanonicalTree::Seal() {
  children.assign(paths.size(), {});
  for (int32_t n = 1; n < size(); ++n) {
    children[static_cast<size_t>(parents[static_cast<size_t>(n)])].push_back(
        n);
  }
  encoding_.clear();
  if (size() > 0) encoding_ = EncodeNode(*this, 0);
  // ⊥ positions are not attached to any node; append them explicitly.
  for (size_t i = 0; i < return_tuple.size(); ++i) {
    if (return_tuple[i] == kBottom) {
      encoding_ += '!';
      encoding_ += std::to_string(i);
    }
  }
}

const std::string& CanonicalTree::Encoding() const {
  SVX_CHECK_MSG(!encoding_.empty() || size() == 0,
                "CanonicalTree::Seal() not called");
  return encoding_;
}

size_t CanonicalTree::Hash() const {
  return std::hash<std::string>{}(Encoding());
}

bool CanonicalTreeView::Matches(const Pattern::Node& pn, int32_t n,
                                FormulaMode mode) const {
  if (!pn.IsWildcard() &&
      summary_.label(tree_.paths[static_cast<size_t>(n)]) != pn.label) {
    return false;
  }
  if (pn.pred.IsTrue() || mode == FormulaMode::kIgnore) return true;
  const Predicate& tree_formula = tree_.FormulaFor(n);
  if (mode == FormulaMode::kImplication) return tree_formula.Implies(pn.pred);
  return !tree_formula.And(pn.pred).IsFalse();
}

namespace {

struct TreeHasher {
  size_t operator()(const CanonicalTree& t) const { return t.Hash(); }
};

/// Builds modS(p); optionally stops after the first tree (satisfiability)
/// or streams trees to a sink instead of collecting them.
class ModelBuilder {
 public:
  using Sink = std::function<bool(const CanonicalTree&)>;

  ModelBuilder(const Pattern& p, const Summary& summary,
               const CanonicalModelOptions& options, bool stop_after_first,
               const Sink* sink = nullptr)
      : p_(p),
        summary_(summary),
        options_(options),
        stop_after_first_(stop_after_first),
        sink_(sink) {}

  Result<std::vector<CanonicalTree>> Build() {
    std::vector<PatternNodeId> optional_edges = p_.OptionalEdges();
    if (static_cast<int32_t>(optional_edges.size()) >
        options_.max_optional_edges) {
      return Status::ResourceExhausted("too many optional edges");
    }
    return_nodes_ = p_.ReturnNodes();
    has_nested_ = p_.HasNestedEdges();
    has_predicates_ = p_.HasPredicates();

    // Enumerate subsets F of optional edges (§4.3), deduplicating subsets
    // that erase the same node set (nested optional edges).
    std::unordered_set<size_t> erased_sets_seen;
    size_t num_subsets = static_cast<size_t>(1)
                         << static_cast<size_t>(optional_edges.size());
    for (size_t mask = 0; mask < num_subsets; ++mask) {
      std::vector<PatternNodeId> roots;
      for (size_t i = 0; i < optional_edges.size(); ++i) {
        if (mask & (static_cast<size_t>(1) << i)) {
          roots.push_back(optional_edges[i]);
        }
      }
      // Canonical key: the actually erased node set.
      std::vector<bool> erased(static_cast<size_t>(p_.size()), false);
      for (PatternNodeId r : roots) {
        for (PatternNodeId n : p_.SubtreeNodes(r)) {
          erased[static_cast<size_t>(n)] = true;
        }
      }
      size_t key = 0x12345;
      for (size_t i = 0; i < erased.size(); ++i) {
        if (erased[i]) key = key * 1000003 + i;
      }
      if (!erased_sets_seen.insert(key).second) continue;

      SVX_RETURN_IF_ERROR(ProcessSubset(roots, mask != 0));
      if (stop_after_first_ && num_trees_ > 0) break;
      if (sink_stopped_) break;
    }
    return std::move(trees_);
  }

 private:
  Status ProcessSubset(const std::vector<PatternNodeId>& erase_roots,
                       bool needs_verification) {
    std::vector<PatternNodeId> old_to_new;
    Pattern pf = p_.EraseSubtrees(erase_roots, &old_to_new).Strict();

    Status st = EnumerateEmbeddings(
        pf, summary_, options_.max_embeddings,
        [&](const SummaryEmbedding& e) {
          CanonicalTree tree = MakeTree(pf, old_to_new, e);
          // Deduplicate before the (expensive) §4.3 verification; rejected
          // trees are also remembered so they are not re-verified.
          if (!seen_.insert(tree).second) {
            return num_trees_ <= options_.max_trees;
          }
          if (needs_verification && !VerifyBottoms(tree)) return true;
          ++num_trees_;
          if (sink_ != nullptr) {
            if (!(*sink_)(tree)) {
              sink_stopped_ = true;
              return false;
            }
          } else {
            trees_.push_back(std::move(tree));
          }
          return !(stop_after_first_ && num_trees_ > 0) &&
                 num_trees_ <= options_.max_trees;
        });
    if (!st.ok()) return st;
    if (num_trees_ > options_.max_trees) {
      return Status::ResourceExhausted("canonical model too large");
    }
    return Status::OK();
  }

  /// Builds the canonical tree of one embedding: one node per pattern node
  /// plus one chain per pattern edge (§2.4 — sibling pattern nodes on equal
  /// paths stay distinct), then the §4.1 strong-edge closure.
  CanonicalTree MakeTree(const Pattern& pf,
                         const std::vector<PatternNodeId>& old_to_new,
                         const SummaryEmbedding& e) {
    CanonicalTree tree;
    std::vector<int32_t> node_of(static_cast<size_t>(pf.size()), -1);
    // Children lists maintained incrementally (the strong closure below
    // needs per-node child paths without rescanning).
    std::vector<std::vector<int32_t>> kids;

    auto add_node = [&](PathId path, int32_t parent) {
      tree.paths.push_back(path);
      tree.parents.push_back(parent);
      kids.emplace_back();
      if (parent >= 0) kids[static_cast<size_t>(parent)].push_back(
          tree.size() - 1);
      if (has_predicates_) tree.formulas.push_back(Predicate::True());
      return tree.size() - 1;
    };

    node_of[0] = add_node(e[0], -1);
    for (PatternNodeId n = 1; n < pf.size(); ++n) {
      PathId target = e[static_cast<size_t>(n)];
      PathId from = e[static_cast<size_t>(pf.node(n).parent)];
      int32_t attach = node_of[static_cast<size_t>(pf.node(n).parent)];
      std::vector<PathId> chain = summary_.Chain(from, target);
      for (size_t i = 1; i + 1 < chain.size(); ++i) {
        attach = add_node(chain[i], attach);
      }
      node_of[static_cast<size_t>(n)] = add_node(target, attach);
    }
    if (has_predicates_) {
      for (PatternNodeId n = 0; n < pf.size(); ++n) {
        const Predicate& pred = pf.node(n).pred;
        if (pred.IsTrue()) continue;
        size_t idx = static_cast<size_t>(node_of[static_cast<size_t>(n)]);
        tree.formulas[idx] = tree.formulas[idx].And(pred);
      }
    }

    // §4.1: strong-edge closure — every node gains a child for each strong
    // child path it does not already have, recursively (new nodes are
    // appended and visited in turn).
    if (options_.use_strong_edges) {
      for (int32_t n = 0; n < tree.size(); ++n) {
        std::vector<PathId> present;
        present.reserve(kids[static_cast<size_t>(n)].size());
        for (int32_t m : kids[static_cast<size_t>(n)]) {
          present.push_back(tree.paths[static_cast<size_t>(m)]);
        }
        for (PathId c :
             summary_.children(tree.paths[static_cast<size_t>(n)])) {
          if (!summary_.strong_edge(c)) continue;
          if (std::find(present.begin(), present.end(), c) !=
              present.end()) {
            continue;
          }
          add_node(c, n);
        }
      }
    }

    // Return tuple (and nesting sequences) in the original pattern's order.
    for (PatternNodeId r : return_nodes_) {
      PatternNodeId nf = old_to_new[static_cast<size_t>(r)];
      if (nf < 0) {
        tree.return_tuple.push_back(CanonicalTree::kBottom);
        if (has_nested_) tree.nesting_seqs.emplace_back();
        continue;
      }
      tree.return_tuple.push_back(node_of[static_cast<size_t>(nf)]);
      if (has_nested_) {
        std::vector<int32_t> seq;
        for (PatternNodeId m : p_.NestingAncestors(r)) {
          // ns records e(n') for the *upper* node n' of each nested edge.
          PatternNodeId upper = p_.node(m).parent;
          PatternNodeId uf = old_to_new[static_cast<size_t>(upper)];
          SVX_CHECK(uf >= 0);
          seq.push_back(node_of[static_cast<size_t>(uf)]);
        }
        tree.nesting_seqs.push_back(std::move(seq));
      }
    }
    tree.Seal();
    return tree;
  }

  /// §4.3: te,F enters modS(p) only if evaluating p over it yields the
  /// ⊥-padded tuple (we implement the exact-tuple check; the paper requires
  /// p(te,F) nonempty). Return nodes are pinned to the target bindings, so
  /// the search stops at the first witness embedding.
  bool VerifyBottoms(const CanonicalTree& tree) {
    CanonicalTreeView view(tree, summary_);
    std::vector<int32_t> pinned(static_cast<size_t>(p_.size()),
                                kUnpinnedBinding);
    for (size_t i = 0; i < return_nodes_.size(); ++i) {
      pinned[static_cast<size_t>(return_nodes_[i])] = tree.return_tuple[i];
    }
    bool found = false;
    EnumerateTreeEmbeddings(p_, view, FormulaMode::kSatisfiability,
                            [&](const TreeEmbedding& a) {
                              for (size_t i = 0; i < return_nodes_.size();
                                   ++i) {
                                if (a[static_cast<size_t>(
                                        return_nodes_[i])] !=
                                    tree.return_tuple[i]) {
                                  return true;
                                }
                              }
                              found = true;
                              return false;
                            },
                            &pinned);
    return found;
  }

  const Pattern& p_;
  const Summary& summary_;
  const CanonicalModelOptions& options_;
  bool stop_after_first_;
  const Sink* sink_;
  bool sink_stopped_ = false;
  size_t num_trees_ = 0;
  std::vector<PatternNodeId> return_nodes_;
  bool has_nested_ = false;
  bool has_predicates_ = false;
  std::vector<CanonicalTree> trees_;
  std::unordered_set<CanonicalTree, TreeHasher> seen_;
};

}  // namespace

Result<std::vector<CanonicalTree>> BuildCanonicalModel(
    const Pattern& p, const Summary& summary,
    const CanonicalModelOptions& options) {
  if (p.size() == 0) return Status::InvalidArgument("empty pattern");
  if (summary.size() == 0) return Status::InvalidArgument("empty summary");
  return ModelBuilder(p, summary, options, /*stop_after_first=*/false).Build();
}

Status ForEachCanonicalTree(
    const Pattern& p, const Summary& summary,
    const CanonicalModelOptions& options,
    const std::function<bool(const CanonicalTree&)>& sink) {
  if (p.size() == 0) return Status::InvalidArgument("empty pattern");
  if (summary.size() == 0) return Status::InvalidArgument("empty summary");
  ModelBuilder builder(p, summary, options, /*stop_after_first=*/false,
                       &sink);
  Result<std::vector<CanonicalTree>> r = builder.Build();
  return r.ok() ? Status::OK() : r.status();
}

Result<bool> IsSatisfiable(const Pattern& p, const Summary& summary,
                           const CanonicalModelOptions& options) {
  if (p.size() == 0) return Status::InvalidArgument("empty pattern");
  if (summary.size() == 0) return Status::InvalidArgument("empty summary");
  Result<std::vector<CanonicalTree>> model =
      ModelBuilder(p, summary, options, /*stop_after_first=*/true).Build();
  if (!model.ok()) return model.status();
  return !model->empty();
}

}  // namespace svx
