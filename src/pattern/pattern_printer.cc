#include "src/pattern/pattern_printer.h"

namespace svx {

namespace {

void PrintNode(const Pattern& p, PatternNodeId id, std::string* out) {
  const Pattern::Node& n = p.node(id);
  out->append(n.label);
  if (n.attrs != 0) {
    out->push_back('{');
    bool first = true;
    auto add = [&](const char* name) {
      if (!first) out->push_back(',');
      first = false;
      out->append(name);
    };
    if (n.attrs & kAttrId) add("id");
    if (n.attrs & kAttrLabel) add("l");
    if (n.attrs & kAttrValue) add("v");
    if (n.attrs & kAttrContent) add("c");
    out->push_back('}');
  }
  if (!n.pred.IsTrue()) {
    out->push_back('[');
    out->append(n.pred.ToString());
    out->push_back(']');
  }
  if (!n.children.empty()) {
    out->push_back('(');
    bool first = true;
    for (PatternNodeId c : n.children) {
      if (!first) out->push_back(' ');
      first = false;
      const Pattern::Node& cn = p.node(c);
      if (cn.optional) out->push_back('?');
      if (cn.nested) out->push_back('n');
      out->append(cn.axis == Axis::kChild ? "/" : "//");
      PrintNode(p, c, out);
    }
    out->push_back(')');
  }
}

}  // namespace

std::string PatternToString(const Pattern& p) {
  std::string out;
  if (p.size() > 0) PrintNode(p, p.root(), &out);
  return out;
}

}  // namespace svx
