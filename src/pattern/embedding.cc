#include "src/pattern/embedding.h"
#include "src/util/check.h"

#include <algorithm>

namespace svx {

namespace {

bool LabelMatches(const Pattern::Node& pn, const Summary& s, PathId path) {
  return pn.IsWildcard() || s.label(path) == pn.label;
}

bool EdgeOk(const Summary& s, PathId parent_path, PathId child_path,
            Axis axis) {
  if (axis == Axis::kChild) return s.parent(child_path) == parent_path;
  return s.IsAncestor(parent_path, child_path);
}

}  // namespace

AssociatedPaths ComputeAssociatedPaths(const Pattern& p,
                                       const Summary& summary) {
  AssociatedPaths out;
  out.feasible.assign(static_cast<size_t>(p.size()), {});
  if (p.size() == 0 || summary.size() == 0) return out;

  // Phase 1 (bottom-up): cand[n] = label-matching paths such that every
  // child subtree can embed below.
  std::vector<std::vector<PathId>> cand(static_cast<size_t>(p.size()));
  // Process nodes in reverse preorder, which visits children before parents
  // (node ids are in preorder by construction of Pattern).
  for (PatternNodeId n = p.size() - 1; n >= 0; --n) {
    const Pattern::Node& pn = p.node(n);
    std::vector<PathId>& cn = cand[static_cast<size_t>(n)];
    if (n == p.root()) {
      // Patterns are absolutely rooted (§2.2): the root maps to S's root.
      if (LabelMatches(pn, summary, summary.root())) {
        cn.push_back(summary.root());
      }
    } else {
      for (PathId s = 0; s < summary.size(); ++s) {
        if (LabelMatches(pn, summary, s)) cn.push_back(s);
      }
    }
    // Filter by children feasibility.
    std::vector<PathId> kept;
    for (PathId s : cn) {
      bool ok = true;
      for (PatternNodeId m : pn.children) {
        const Pattern::Node& pm = p.node(m);
        bool found = false;
        for (PathId t : cand[static_cast<size_t>(m)]) {
          if (EdgeOk(summary, s, t, pm.axis)) {
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) kept.push_back(s);
    }
    cn = std::move(kept);
  }

  // Phase 2 (top-down): keep candidates reachable from a feasible parent.
  out.feasible[0] = cand[0];
  for (PatternNodeId n = 1; n < p.size(); ++n) {
    const Pattern::Node& pn = p.node(n);
    const std::vector<PathId>& parent_ok =
        out.feasible[static_cast<size_t>(pn.parent)];
    std::vector<PathId>& fn = out.feasible[static_cast<size_t>(n)];
    for (PathId t : cand[static_cast<size_t>(n)]) {
      for (PathId s : parent_ok) {
        if (EdgeOk(summary, s, t, pn.axis)) {
          fn.push_back(t);
          break;
        }
      }
    }
  }
  return out;
}

namespace {

class EmbeddingEnumerator {
 public:
  EmbeddingEnumerator(const Pattern& p, const Summary& summary, size_t limit,
                      const std::function<bool(const SummaryEmbedding&)>& emit)
      : p_(p),
        summary_(summary),
        limit_(limit),
        emit_(emit),
        paths_(ComputeAssociatedPaths(p, summary)) {}

  Status Run() {
    if (!paths_.AllNonEmpty()) return Status::OK();  // no embeddings
    assignment_.assign(static_cast<size_t>(p_.size()), kInvalidPath);
    stopped_ = false;
    SVX_RETURN_IF_ERROR(Assign(0));
    return Status::OK();
  }

 private:
  // Assign pattern nodes in preorder id order (parents have smaller ids).
  Status Assign(PatternNodeId n) {
    if (stopped_) return Status::OK();
    if (n == p_.size()) {
      if (++count_ > limit_) {
        return Status::ResourceExhausted("embedding enumeration limit");
      }
      if (!emit_(assignment_)) stopped_ = true;
      return Status::OK();
    }
    const Pattern::Node& pn = p_.node(n);
    for (PathId s : paths_.feasible[static_cast<size_t>(n)]) {
      if (n != p_.root()) {
        PathId sp = assignment_[static_cast<size_t>(pn.parent)];
        if (!EdgeOkLocal(sp, s, pn.axis)) continue;
      }
      assignment_[static_cast<size_t>(n)] = s;
      SVX_RETURN_IF_ERROR(Assign(n + 1));
      if (stopped_) break;
    }
    assignment_[static_cast<size_t>(n)] = kInvalidPath;
    return Status::OK();
  }

  bool EdgeOkLocal(PathId parent_path, PathId child_path, Axis axis) const {
    if (axis == Axis::kChild) return summary_.parent(child_path) == parent_path;
    return summary_.IsAncestor(parent_path, child_path);
  }

  const Pattern& p_;
  const Summary& summary_;
  size_t limit_;
  const std::function<bool(const SummaryEmbedding&)>& emit_;
  AssociatedPaths paths_;
  SummaryEmbedding assignment_;
  size_t count_ = 0;
  bool stopped_ = false;
};

}  // namespace

Status EnumerateEmbeddings(
    const Pattern& p, const Summary& summary, size_t limit,
    const std::function<bool(const SummaryEmbedding&)>& emit) {
  if (p.size() == 0) return Status::InvalidArgument("empty pattern");
  return EmbeddingEnumerator(p, summary, limit, emit).Run();
}

Result<size_t> CountEmbeddings(const Pattern& p, const Summary& summary,
                               size_t limit) {
  size_t n = 0;
  Status s = EnumerateEmbeddings(p, summary, limit,
                                 [&](const SummaryEmbedding&) {
                                   ++n;
                                   return true;
                                 });
  if (!s.ok()) return s;
  return n;
}

}  // namespace svx
