#include "src/pattern/pattern.h"

#include <algorithm>

namespace svx {

PatternNodeId Pattern::SetRoot(std::string_view label, uint8_t attrs,
                               Predicate pred) {
  SVX_CHECK_MSG(nodes_.empty(), "SetRoot on non-empty pattern");
  Node n;
  n.label = std::string(label);
  n.attrs = attrs;
  n.pred = std::move(pred);
  nodes_.push_back(std::move(n));
  return 0;
}

PatternNodeId Pattern::AddChild(PatternNodeId parent, std::string_view label,
                                Axis axis, uint8_t attrs, Predicate pred,
                                bool optional, bool nested) {
  SVX_CHECK(parent >= 0 && parent < size());
  Node n;
  n.label = std::string(label);
  n.parent = parent;
  n.axis = axis;
  n.attrs = attrs;
  n.pred = std::move(pred);
  n.optional = optional;
  n.nested = nested;
  PatternNodeId id = size();
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

std::vector<PatternNodeId> Pattern::ReturnNodes() const {
  // Preorder traversal so that result-tuple columns follow document order of
  // the pattern, independent of construction order.
  std::vector<PatternNodeId> out;
  if (nodes_.empty()) return out;
  std::vector<PatternNodeId> stack{root()};
  while (!stack.empty()) {
    PatternNodeId cur = stack.back();
    stack.pop_back();
    if (node(cur).IsReturn()) out.push_back(cur);
    const auto& cs = node(cur).children;
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::vector<PatternNodeId> Pattern::OptionalEdges() const {
  std::vector<PatternNodeId> out;
  for (PatternNodeId n = 1; n < size(); ++n) {
    if (node(n).optional) out.push_back(n);
  }
  return out;
}

bool Pattern::HasOptionalEdges() const {
  for (PatternNodeId n = 1; n < size(); ++n) {
    if (node(n).optional) return true;
  }
  return false;
}

bool Pattern::HasNestedEdges() const {
  for (PatternNodeId n = 1; n < size(); ++n) {
    if (node(n).nested) return true;
  }
  return false;
}

bool Pattern::HasPredicates() const {
  for (PatternNodeId n = 0; n < size(); ++n) {
    if (!node(n).pred.IsTrue()) return true;
  }
  return false;
}

int32_t Pattern::NestingDepth(PatternNodeId n) const {
  int32_t d = 0;
  for (PatternNodeId cur = n; cur != root(); cur = node(cur).parent) {
    if (node(cur).nested) ++d;
  }
  return d;
}

std::vector<PatternNodeId> Pattern::NestingAncestors(PatternNodeId n) const {
  std::vector<PatternNodeId> rev;
  for (PatternNodeId cur = n; cur != root(); cur = node(cur).parent) {
    if (node(cur).nested) rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

Pattern Pattern::Strict() const {
  Pattern p = *this;
  for (PatternNodeId n = 0; n < p.size(); ++n) {
    p.mutable_node(n).optional = false;
  }
  return p;
}

Pattern Pattern::WithReturnNodes(
    const std::vector<PatternNodeId>& keep) const {
  Pattern p = *this;
  for (PatternNodeId n = 0; n < p.size(); ++n) {
    p.mutable_node(n).attrs = 0;
  }
  for (PatternNodeId n : keep) {
    p.mutable_node(n).attrs = kAttrId;
  }
  return p;
}

Pattern Pattern::Canonicalize() const {
  Pattern out;
  if (nodes_.empty()) return out;
  // Map old -> new while walking preorder.
  std::vector<PatternNodeId> old_to_new(nodes_.size(), -1);
  struct Item {
    PatternNodeId old_id;
    PatternNodeId new_parent;
  };
  std::vector<Item> stack{{root(), -1}};
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    const Node& n = node(it.old_id);
    PatternNodeId nid;
    if (it.new_parent < 0) {
      nid = out.SetRoot(n.label, n.attrs, n.pred);
    } else {
      nid = out.AddChild(it.new_parent, n.label, n.axis, n.attrs, n.pred,
                         n.optional, n.nested);
    }
    old_to_new[static_cast<size_t>(it.old_id)] = nid;
    for (auto c = n.children.rbegin(); c != n.children.rend(); ++c) {
      stack.push_back({*c, nid});
    }
  }
  // Reorder children vectors to match original child order (stack reversal
  // already preserved it because we pushed children reversed and the new ids
  // were assigned in preorder, but the children lists were appended in
  // traversal order — verify order is original).
  return out;
}

Pattern Pattern::EraseSubtrees(const std::vector<PatternNodeId>& roots,
                               std::vector<PatternNodeId>* old_to_new) const {
  std::vector<bool> erased(nodes_.size(), false);
  for (PatternNodeId r : roots) {
    SVX_CHECK_MSG(r != root(), "cannot erase the pattern root");
    for (PatternNodeId n : SubtreeNodes(r)) {
      erased[static_cast<size_t>(n)] = true;
    }
  }
  Pattern out;
  std::vector<PatternNodeId> map(nodes_.size(), -1);
  struct Item {
    PatternNodeId old_id;
    PatternNodeId new_parent;
  };
  std::vector<Item> stack{{root(), -1}};
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (erased[static_cast<size_t>(it.old_id)]) continue;
    const Node& n = node(it.old_id);
    PatternNodeId nid;
    if (it.new_parent < 0) {
      nid = out.SetRoot(n.label, n.attrs, n.pred);
    } else {
      nid = out.AddChild(it.new_parent, n.label, n.axis, n.attrs, n.pred,
                         n.optional, n.nested);
    }
    map[static_cast<size_t>(it.old_id)] = nid;
    for (auto c = n.children.rbegin(); c != n.children.rend(); ++c) {
      stack.push_back({*c, nid});
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return out;
}

std::vector<PatternNodeId> Pattern::SubtreeNodes(PatternNodeId n) const {
  std::vector<PatternNodeId> out;
  std::vector<PatternNodeId> stack{n};
  while (!stack.empty()) {
    PatternNodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& cs = node(cur).children;
    for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

bool Pattern::IsAncestorOrSelf(PatternNodeId a, PatternNodeId b) const {
  for (PatternNodeId cur = b; cur >= 0; cur = node(cur).parent) {
    if (cur == a) return true;
  }
  return false;
}

}  // namespace svx
