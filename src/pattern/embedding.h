// Embeddings of patterns into structural summaries (paper §2.3-§2.4).
// Provides:
//   * the "paths associated to a node" computation (Def. 2.1) in
//     O(|p| x |S|) by two-phase arc consistency on the pattern tree, and
//   * enumeration of all embeddings e : p -> S (the basis of modS(p)).
#ifndef SVX_PATTERN_EMBEDDING_H_
#define SVX_PATTERN_EMBEDDING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// One embedding: pattern node id -> summary path id.
using SummaryEmbedding = std::vector<PathId>;

/// Per-pattern-node feasible summary nodes. feasible[n] is the exact set of
/// paths associated to n (Def. 2.1): sn is in feasible[n] iff some embedding
/// maps n to sn. Sets are sorted.
struct AssociatedPaths {
  std::vector<std::vector<PathId>> feasible;

  /// True iff every pattern node has at least one associated path
  /// (equivalently, modS(p) != empty for strict conjunctive p).
  bool AllNonEmpty() const {
    for (const auto& f : feasible) {
      if (f.empty()) return false;
    }
    return true;
  }
};

/// Computes the associated paths of every node of (the strict version of)
/// `p` in `summary`. Optional and nested markers are ignored: the edge
/// constraints are the / and // axes only.
AssociatedPaths ComputeAssociatedPaths(const Pattern& p,
                                       const Summary& summary);

/// Enumerates all embeddings of `p` in `summary`, invoking `emit` per
/// embedding. Stops early (returning ResourceExhausted) after `limit`
/// embeddings to bound the worst case |S|^|p| (§3.1). `emit` may return
/// false to stop enumeration (returns OK).
[[nodiscard]] Status EnumerateEmbeddings(const Pattern& p, const Summary& summary,
                           size_t limit,
                           const std::function<bool(const SummaryEmbedding&)>& emit);

/// Counts embeddings up to `limit`.
[[nodiscard]] Result<size_t> CountEmbeddings(const Pattern& p, const Summary& summary,
                               size_t limit);

}  // namespace svx

#endif  // SVX_PATTERN_EMBEDDING_H_
