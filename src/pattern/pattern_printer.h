// Serialization of patterns back to the ParsePattern syntax.
#ifndef SVX_PATTERN_PATTERN_PRINTER_H_
#define SVX_PATTERN_PATTERN_PRINTER_H_

#include <string>

#include "src/pattern/pattern.h"

namespace svx {

/// Round-trippable pattern text, e.g. "site(//item{id}(?n//listitem{c}))".
std::string PatternToString(const Pattern& p);

}  // namespace svx

#endif  // SVX_PATTERN_PATTERN_PRINTER_H_
