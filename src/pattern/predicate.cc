#include "src/pattern/predicate.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

namespace {
constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
}  // namespace

Predicate Predicate::True() { return Predicate({{kMin, kMax}}); }
Predicate Predicate::False() { return Predicate({}); }
Predicate Predicate::Eq(int64_t c) { return Predicate({{c, c}}); }

Predicate Predicate::Lt(int64_t c) {
  if (c == kMin) return False();
  return Predicate({{kMin, c - 1}});
}

Predicate Predicate::Gt(int64_t c) {
  if (c == kMax) return False();
  return Predicate({{c + 1, kMax}});
}

Predicate Predicate::Le(int64_t c) { return Predicate({{kMin, c}}); }
Predicate Predicate::Ge(int64_t c) { return Predicate({{c, kMax}}); }

Predicate Predicate::Range(int64_t lo, int64_t hi) {
  if (lo > hi) return False();
  return Predicate({{lo, hi}});
}

std::vector<Predicate::Interval> Predicate::Normalize(
    std::vector<Interval> in) {
  std::vector<Interval> valid;
  for (const Interval& iv : in) {
    if (iv.lo <= iv.hi) valid.push_back(iv);
  }
  std::sort(valid.begin(), valid.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  std::vector<Interval> out;
  for (const Interval& iv : valid) {
    if (!out.empty()) {
      Interval& last = out.back();
      // Merge overlapping or integer-adjacent intervals ([1,2] + [3,4]).
      bool adjacent = last.hi != kMax && iv.lo <= last.hi + 1;
      bool overlap = iv.lo <= last.hi;
      if (overlap || adjacent) {
        last.hi = std::max(last.hi, iv.hi);
        continue;
      }
    }
    out.push_back(iv);
  }
  return out;
}

Predicate Predicate::And(const Predicate& other) const {
  std::vector<Interval> out;
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    int64_t lo = std::max(a.lo, b.lo);
    int64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return Predicate(std::move(out));
}

Predicate Predicate::Or(const Predicate& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return Predicate(Normalize(std::move(all)));
}

Predicate Predicate::Not() const {
  std::vector<Interval> out;
  int64_t cursor = kMin;
  bool cursor_valid = true;
  for (const Interval& iv : intervals_) {
    if (cursor_valid && cursor <= iv.lo - 1 && iv.lo != kMin) {
      out.push_back({cursor, iv.lo - 1});
    }
    if (iv.hi == kMax) {
      cursor_valid = false;
    } else {
      cursor = iv.hi + 1;
    }
  }
  if (cursor_valid) out.push_back({cursor, kMax});
  return Predicate(Normalize(std::move(out)));
}

bool Predicate::Implies(const Predicate& other) const {
  return And(other.Not()).IsFalse();
}

bool Predicate::IsTrue() const {
  return intervals_.size() == 1 && intervals_[0].lo == kMin &&
         intervals_[0].hi == kMax;
}

bool Predicate::Contains(int64_t v) const {
  for (const Interval& iv : intervals_) {
    if (v < iv.lo) return false;
    if (v <= iv.hi) return true;
  }
  return false;
}

bool Predicate::ContainsValue(std::string_view value) const {
  if (IsTrue()) return true;
  auto v = ParseInt64(Trim(value));
  if (!v.has_value()) return false;
  return Contains(*v);
}

std::vector<int64_t> Predicate::Endpoints() const {
  std::vector<int64_t> out;
  for (const Interval& iv : intervals_) {
    if (iv.lo != kMin) out.push_back(iv.lo);
    if (iv.hi != kMax) out.push_back(iv.hi);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Predicate::ToString() const {
  if (IsTrue()) return "";
  if (IsFalse()) return "false";
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += '|';
    const Interval& iv = intervals_[i];
    if (iv.lo == iv.hi) {
      out += StrFormat("v=%lld", static_cast<long long>(iv.lo));
    } else if (iv.lo == kMin) {
      out += StrFormat("v<%lld", static_cast<long long>(iv.hi) + 1);
    } else if (iv.hi == kMax) {
      out += StrFormat("v>%lld", static_cast<long long>(iv.lo) - 1);
    } else {
      out += StrFormat("v>%lld&v<%lld", static_cast<long long>(iv.lo) - 1,
                       static_cast<long long>(iv.hi) + 1);
    }
  }
  return out;
}

namespace {

/// Recursive-descent parser for the predicate syntax:
///   expr := term ('|' term)*      term := factor ('&' factor)*
///   factor := atom | '(' expr ')' atom := 'v' ('='|'<'|'>'|'<='|'>=') INT
class PredicateParser {
 public:
  explicit PredicateParser(std::string_view text) : text_(text) {}

  Result<Predicate> Parse() {
    SkipSpace();
    if (Peek("true") && text_.size() == 4) return Predicate::True();
    if (Peek("false") && text_.size() == 5) return Predicate::False();
    Result<Predicate> r = ParseExpr();
    if (!r.ok()) return r;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing predicate input at offset %zu", pos_));
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool Peek(std::string_view s) const {
    return text_.size() - pos_ >= s.size() && text_.substr(pos_, s.size()) == s;
  }

  Result<Predicate> ParseExpr() {
    Result<Predicate> lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    Predicate acc = *lhs;
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '|') {
      ++pos_;
      Result<Predicate> rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      acc = acc.Or(*rhs);
      SkipSpace();
    }
    return acc;
  }

  Result<Predicate> ParseTerm() {
    Result<Predicate> lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    Predicate acc = *lhs;
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '&') {
      ++pos_;
      Result<Predicate> rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      acc = acc.And(*rhs);
      SkipSpace();
    }
    return acc;
  }

  Result<Predicate> ParseFactor() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      Result<Predicate> inner = ParseExpr();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::ParseError("missing ')' in predicate");
      }
      ++pos_;
      return inner;
    }
    if (!Peek("v")) {
      return Status::ParseError(
          StrFormat("expected 'v' at offset %zu", pos_));
    }
    ++pos_;
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("truncated predicate");
    char op = text_[pos_];
    bool or_equal = false;
    if (op != '=' && op != '<' && op != '>') {
      return Status::ParseError(
          StrFormat("expected comparison operator at offset %zu", pos_));
    }
    ++pos_;
    if ((op == '<' || op == '>') && pos_ < text_.size() &&
        text_[pos_] == '=') {
      or_equal = true;
      ++pos_;
    }
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    auto c = ParseInt64(text_.substr(start, pos_ - start));
    if (!c.has_value()) {
      return Status::ParseError(
          StrFormat("expected integer constant at offset %zu", start));
    }
    switch (op) {
      case '=':
        return Predicate::Eq(*c);
      case '<':
        return or_equal ? Predicate::Le(*c) : Predicate::Lt(*c);
      default:
        return or_equal ? Predicate::Ge(*c) : Predicate::Gt(*c);
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Predicate> Predicate::Parse(std::string_view text) {
  return PredicateParser(text).Parse();
}

size_t Predicate::Hash() const {
  size_t h = 0x9E3779B97f4A7C15ULL;
  for (const Interval& iv : intervals_) {
    h ^= static_cast<size_t>(iv.lo) + 0x9E3779B9 + (h << 6) + (h >> 2);
    h ^= static_cast<size_t>(iv.hi) + 0x9E3779B9 + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace svx
