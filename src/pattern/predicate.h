// Value-predicate formulas on pattern nodes (paper §4.2). A formula phi(v)
// is built from atoms v=c, v<c, v>c with AND / OR (and, internally, NOT).
// Following the paper, the domain A of atomic values is totally ordered and
// enumerable, so every formula has a compact canonical representation as a
// union of disjoint integer intervals, on which conjunction, disjunction,
// negation and implication are cheap.
#ifndef SVX_PATTERN_PREDICATE_H_
#define SVX_PATTERN_PREDICATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace svx {

/// A canonical formula: a sorted union of disjoint, non-adjacent closed
/// integer intervals. True = (-inf, +inf); False = empty set.
class Predicate {
 public:
  /// One closed interval [lo, hi] (inclusive).
  struct Interval {
    int64_t lo;
    int64_t hi;
    bool operator==(const Interval&) const = default;
  };

  /// The always-true formula T.
  static Predicate True();
  /// The always-false formula F.
  static Predicate False();
  /// v = c.
  static Predicate Eq(int64_t c);
  /// v < c.
  static Predicate Lt(int64_t c);
  /// v > c.
  static Predicate Gt(int64_t c);
  /// v <= c.
  static Predicate Le(int64_t c);
  /// v >= c.
  static Predicate Ge(int64_t c);
  /// lo <= v <= hi.
  static Predicate Range(int64_t lo, int64_t hi);

  /// Conjunction (set intersection).
  Predicate And(const Predicate& other) const;
  /// Disjunction (set union).
  Predicate Or(const Predicate& other) const;
  /// Negation (set complement).
  Predicate Not() const;

  /// True iff this formula implies `other` (phi1(v) => phi2(v) for all v).
  bool Implies(const Predicate& other) const;

  bool IsTrue() const;
  bool IsFalse() const { return intervals_.empty(); }

  /// Membership test for a concrete value.
  bool Contains(int64_t v) const;

  /// Membership test for a document value string: parsed as an integer when
  /// possible; non-numeric values satisfy only the True formula.
  bool ContainsValue(std::string_view value) const;

  bool operator==(const Predicate& other) const {
    return intervals_ == other.intervals_;
  }
  bool operator!=(const Predicate& other) const { return !(*this == other); }

  /// All finite interval endpoints (the constants the formula mentions),
  /// used to build the finite evaluation grid of the §4.2 union test.
  std::vector<int64_t> Endpoints() const;

  /// Round-trippable concrete syntax: "v=3", "v>2&v<7", "v<0|v=5", "false";
  /// "" (empty) for True.
  std::string ToString() const;

  /// Parses the ToString syntax (also accepts "true").
  static Result<Predicate> Parse(std::string_view text);

  /// Stable hash of the canonical form.
  size_t Hash() const;

  const std::vector<Interval>& intervals() const { return intervals_; }

 private:
  explicit Predicate(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  /// Sorts, merges overlapping/adjacent intervals.
  static std::vector<Interval> Normalize(std::vector<Interval> in);

  std::vector<Interval> intervals_;
};

}  // namespace svx

#endif  // SVX_PATTERN_PREDICATE_H_
