#include "src/pattern/pattern_parser.h"

#include <cctype>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace svx {

namespace {

class PatternParserImpl {
 public:
  explicit PatternParserImpl(std::string_view text) : text_(text) {}

  Result<Pattern> Parse() {
    SkipSpace();
    SVX_RETURN_IF_ERROR(ParseNode(-1, Axis::kChild, false, false));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing pattern input at offset %zu", pos_));
    }
    return std::move(pattern_);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r' ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  static bool IsLabelStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '*' || c == '@' || c == '#';
  }
  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '@' || c == '#';
  }

  Status ParseNode(PatternNodeId parent, Axis axis, bool optional,
                   bool nested) {
    if (pos_ >= text_.size() || !IsLabelStart(text_[pos_])) {
      return Status::ParseError(
          StrFormat("expected pattern label at offset %zu", pos_));
    }
    size_t start = pos_;
    ++pos_;
    if (text_[start] != '*') {
      while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
    }
    std::string label(text_.substr(start, pos_ - start));

    uint8_t attrs = 0;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '{') {
      ++pos_;
      SkipSpace();  // note: SkipSpace also consumes commas
      bool any = false;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        size_t astart = pos_;
        while (pos_ < text_.size() &&
               std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        std::string_view a = text_.substr(astart, pos_ - astart);
        if (a == "id" || a == "ID") {
          attrs |= kAttrId;
        } else if (a == "l" || a == "L") {
          attrs |= kAttrLabel;
        } else if (a == "v" || a == "V") {
          attrs |= kAttrValue;
        } else if (a == "c" || a == "C") {
          attrs |= kAttrContent;
        } else {
          return Status::ParseError(
              StrFormat("unknown attribute '%s'", std::string(a).c_str()));
        }
        any = true;
        SkipSpace();
      }
      if (!any || pos_ >= text_.size() || text_[pos_] != '}') {
        return Status::ParseError("missing '}' in attribute list");
      }
      ++pos_;
      SkipSpace();
    }

    Predicate pred = Predicate::True();
    if (pos_ < text_.size() && text_[pos_] == '[') {
      size_t depth = 1;
      size_t pstart = ++pos_;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '[') ++depth;
        if (text_[pos_] == ']') --depth;
        if (depth > 0) ++pos_;
      }
      if (depth != 0) return Status::ParseError("missing ']' in predicate");
      Result<Predicate> r =
          Predicate::Parse(text_.substr(pstart, pos_ - pstart));
      if (!r.ok()) return r.status();
      pred = *r;
      ++pos_;
      SkipSpace();
    }

    PatternNodeId id;
    if (parent < 0) {
      if (optional || nested) {
        return Status::ParseError("the root has no incoming edge");
      }
      id = pattern_.SetRoot(label, attrs, pred);
    } else {
      id = pattern_.AddChild(parent, label, axis, attrs, pred, optional,
                             nested);
    }

    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      SkipSpace();
      bool any = false;
      while (pos_ < text_.size() && text_[pos_] != ')') {
        SVX_RETURN_IF_ERROR(ParseEdge(id));
        any = true;
        SkipSpace();
      }
      if (pos_ >= text_.size()) return Status::ParseError("missing ')'");
      if (!any) return Status::ParseError("empty child list in pattern");
      ++pos_;
      SkipSpace();
    }
    return Status::OK();
  }

  Status ParseEdge(PatternNodeId parent) {
    bool optional = false;
    bool nested = false;
    if (pos_ < text_.size() && text_[pos_] == '?') {
      optional = true;
      ++pos_;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == 'n' &&
        text_[pos_ + 1] == '/') {
      nested = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != '/') {
      return Status::ParseError(
          StrFormat("expected '/' or '//' at offset %zu", pos_));
    }
    ++pos_;
    Axis axis = Axis::kChild;
    if (pos_ < text_.size() && text_[pos_] == '/') {
      axis = Axis::kDescendant;
      ++pos_;
    }
    return ParseNode(parent, axis, optional, nested);
  }

  std::string_view text_;
  size_t pos_ = 0;
  Pattern pattern_;
};

}  // namespace

Result<Pattern> ParsePattern(std::string_view text) {
  return PatternParserImpl(text).Parse();
}

Pattern MustParsePattern(std::string_view text) {
  Result<Pattern> r = ParsePattern(text);
  SVX_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return std::move(r).value();
}

}  // namespace svx
