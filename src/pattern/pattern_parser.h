// Concrete text syntax for tree patterns, used throughout tests, benches and
// examples. Grammar:
//
//   pattern  := node
//   node     := label attrs? pred? children?
//   label    := NAME | '*'
//   attrs    := '{' a (',' a)* '}'        a := 'id' | 'l' | 'v' | 'c'
//   pred     := '[' predicate ']'         (see Predicate::Parse)
//   children := '(' edge+ ')'             whitespace/comma separated
//   edge     := ['?'] ['n'] ('//' | '/') node
//
// '?' marks the edge optional (dashed in the paper), 'n' marks it nested.
// Examples:
//   "site(//item{id}(/name{v}, ?n//listitem{c}))"
//   "a(//b{id}[v>2] /c(/d{id}))"
#ifndef SVX_PATTERN_PATTERN_PARSER_H_
#define SVX_PATTERN_PATTERN_PARSER_H_

#include <string_view>

#include "src/pattern/pattern.h"
#include "src/util/status.h"

namespace svx {

/// Parses the pattern syntax above.
[[nodiscard]] Result<Pattern> ParsePattern(std::string_view text);

/// Parses or aborts — convenience for tests and static tables.
Pattern MustParsePattern(std::string_view text);

}  // namespace svx

#endif  // SVX_PATTERN_PATTERN_PARSER_H_
