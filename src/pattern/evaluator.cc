#include "src/pattern/evaluator.h"

#include <unordered_map>
#include <unordered_set>

namespace svx {

bool DocumentTreeView::Matches(const Pattern::Node& pn, int32_t n,
                               FormulaMode mode) const {
  (void)mode;
  if (!pn.IsWildcard() && doc_.label(n) != pn.label) return false;
  if (pn.pred.IsTrue()) return true;
  // A document node carries the formula v = value; phi must accept it.
  return doc_.has_value(n) && pn.pred.ContainsValue(doc_.value(n));
}

size_t EvalRow::Hash() const {
  size_t h = 0x9E3779B97f4A7C15ULL;
  auto mix = [&h](size_t x) {
    h ^= x + 0x9E3779B9 + (h << 6) + (h >> 2);
  };
  for (int32_t n : nodes) mix(static_cast<size_t>(n) + 7);
  mix(0xABCD);
  for (const auto& seq : nesting) {
    mix(0x1111);
    for (int32_t n : seq) mix(static_cast<size_t>(n) + 13);
  }
  return h;
}

namespace {

/// Recursive enumerator implementing Def. 4.1 (optional embeddings),
/// producing full pattern-node assignments. Subtree matchability is
/// memoized per (pattern node, tree node); descendants lists per tree node.
class Enumerator {
 public:
  Enumerator(const Pattern& p, const TreeLike& tree, FormulaMode mode,
             const std::function<bool(const TreeEmbedding&)>& emit,
             const std::vector<int32_t>* pinned)
      : p_(p), tree_(tree), mode_(mode), emit_(emit), pinned_(pinned) {}

  void Run() {
    if (p_.size() == 0 || tree_.Root() < 0) return;
    assignment_.assign(static_cast<size_t>(p_.size()), kBottomBinding);
    if (!tree_.Matches(p_.node(p_.root()), tree_.Root(), mode_)) return;
    if (Pin(p_.root()) != kUnpinnedBinding && Pin(p_.root()) != tree_.Root()) {
      return;
    }
    assignment_[0] = tree_.Root();
    MatchChildren(p_.root(), tree_.Root(), 0);
  }

 private:
  int32_t Pin(PatternNodeId n) const {
    return pinned_ == nullptr ? kUnpinnedBinding
                              : (*pinned_)[static_cast<size_t>(n)];
  }

  const std::vector<int32_t>& Descendants(int32_t n) {
    auto it = descendants_.find(n);
    if (it != descendants_.end()) return it->second;
    std::vector<int32_t> out;
    std::vector<int32_t> stack = tree_.Children(n);
    while (!stack.empty()) {
      int32_t cur = stack.back();
      stack.pop_back();
      out.push_back(cur);
      for (int32_t c : tree_.Children(cur)) stack.push_back(c);
    }
    return descendants_.emplace(n, std::move(out)).first->second;
  }

  void BindBottom(PatternNodeId pn) {
    for (PatternNodeId m : p_.SubtreeNodes(pn)) {
      assignment_[static_cast<size_t>(m)] = kBottomBinding;
    }
  }

  /// True if the subtree rooted at `m`, anchored under tree node `tn` via
  /// its own axis, has at least one (strict) embedding. Pins are ignored —
  /// matchability is the Def 4.1 existence test.
  bool SubtreeMatchable(PatternNodeId m, int32_t tn) {
    uint64_t key = (static_cast<uint64_t>(m) << 32) |
                   static_cast<uint32_t>(tn);
    auto it = matchable_.find(key);
    if (it != matchable_.end()) return it->second;
    const Pattern::Node& child = p_.node(m);
    bool ok = false;
    const std::vector<int32_t>& cands = child.axis == Axis::kChild
                                            ? ChildrenOf(tn)
                                            : Descendants(tn);
    for (int32_t cand : cands) {
      if (AnyEmbedding(m, cand)) {
        ok = true;
        break;
      }
    }
    matchable_.emplace(key, ok);
    return ok;
  }

  const std::vector<int32_t>& ChildrenOf(int32_t n) {
    auto it = children_.find(n);
    if (it != children_.end()) return it->second;
    return children_.emplace(n, tree_.Children(n)).first->second;
  }

  /// True if the pattern subtree rooted at `pn` embeds at `tn` (existence
  /// only; optional edges always fall back to ⊥).
  bool AnyEmbedding(PatternNodeId pn, int32_t tn) {
    uint64_t key = (static_cast<uint64_t>(pn) << 32) |
                   static_cast<uint32_t>(tn);
    key ^= 0x8000000000000000ULL;
    auto it = matchable_.find(key);
    if (it != matchable_.end()) return it->second;
    bool ok = tree_.Matches(p_.node(pn), tn, mode_);
    if (ok) {
      for (PatternNodeId m : p_.node(pn).children) {
        if (p_.node(m).optional) continue;
        if (!SubtreeMatchable(m, tn)) {
          ok = false;
          break;
        }
      }
    }
    matchable_.emplace(key, ok);
    return ok;
  }

  /// Enumerates assignments of the children of `pn` (bound to `tn`),
  /// starting at child index `ci`. Returns false to abort enumeration.
  bool MatchChildren(PatternNodeId pn, int32_t tn, size_t ci) {
    const auto& children = p_.node(pn).children;
    if (ci == children.size()) {
      return EmitOrDescend();
    }
    PatternNodeId m = children[ci];
    const Pattern::Node& child = p_.node(m);
    int32_t pin = Pin(m);

    if (pin == kBottomBinding) {
      // The caller requires ⊥ here; Def 4.1 allows it only if nothing
      // matches under tn.
      if (!child.optional || SubtreeMatchable(m, tn)) return true;
      BindBottom(m);
      return MatchChildren(pn, tn, ci + 1);
    }

    const std::vector<int32_t>& cands = child.axis == Axis::kChild
                                            ? ChildrenOf(tn)
                                            : Descendants(tn);
    bool matched_any = false;
    for (int32_t cand : cands) {
      if (pin != kUnpinnedBinding && cand != pin) continue;
      if (!AnyEmbedding(m, cand)) continue;
      matched_any = true;
      assignment_[static_cast<size_t>(m)] = cand;
      pending_.push_back({pn, tn, ci + 1});
      bool keep_going = MatchChildren(m, cand, 0);
      pending_.pop_back();
      if (!keep_going) return false;
    }
    if (!matched_any && pin == kUnpinnedBinding) {
      if (!child.optional) return true;  // required branch failed
      if (SubtreeMatchable(m, tn)) return true;  // pinned elsewhere? no: a
      // match exists, so ⊥ is not allowed (Def 4.1) — but matched_any was
      // false only because pins filtered nothing here; with no pin this
      // means no candidate embeds, so this line is unreachable; kept for
      // clarity.
      BindBottom(m);
      return MatchChildren(pn, tn, ci + 1);
    }
    if (!matched_any && pin != kUnpinnedBinding) {
      // Pinned candidate did not embed: also consider the ⊥ fallback only
      // when the pin allows it (it does not — pin is a concrete node).
      return true;
    }
    return true;
  }

  bool EmitOrDescend() {
    if (pending_.empty()) {
      return emit_(assignment_);
    }
    Frame f = pending_.back();
    pending_.pop_back();
    bool keep_going = MatchChildren(f.node, f.tree_node, f.child_index);
    pending_.push_back(f);
    return keep_going;
  }

  struct Frame {
    PatternNodeId node;
    int32_t tree_node;
    size_t child_index;
  };

  const Pattern& p_;
  const TreeLike& tree_;
  FormulaMode mode_;
  const std::function<bool(const TreeEmbedding&)>& emit_;
  const std::vector<int32_t>* pinned_;
  TreeEmbedding assignment_;
  std::vector<Frame> pending_;
  std::unordered_map<int32_t, std::vector<int32_t>> descendants_;
  std::unordered_map<int32_t, std::vector<int32_t>> children_;
  std::unordered_map<uint64_t, bool> matchable_;
};

struct RowHasher {
  size_t operator()(const EvalRow& r) const { return r.Hash(); }
};

}  // namespace

void EnumerateTreeEmbeddings(
    const Pattern& p, const TreeLike& tree, FormulaMode mode,
    const std::function<bool(const TreeEmbedding&)>& emit,
    const std::vector<int32_t>* pinned) {
  Enumerator(p, tree, mode, emit, pinned).Run();
}

std::vector<EvalRow> EvaluateReturnRows(const Pattern& p, const TreeLike& tree,
                                        FormulaMode mode) {
  std::vector<EvalRow> out;
  if (p.size() == 0) return out;
  std::vector<PatternNodeId> rets = p.ReturnNodes();
  bool has_nested = p.HasNestedEdges();
  // Upper nodes of the nested edges above each return node (§4.5).
  std::vector<std::vector<PatternNodeId>> uppers(rets.size());
  if (has_nested) {
    for (size_t i = 0; i < rets.size(); ++i) {
      for (PatternNodeId m : p.NestingAncestors(rets[i])) {
        uppers[i].push_back(p.node(m).parent);
      }
    }
  }
  std::unordered_set<EvalRow, RowHasher> seen;
  EnumerateTreeEmbeddings(p, tree, mode, [&](const TreeEmbedding& a) {
    EvalRow row;
    row.nodes.reserve(rets.size());
    row.nesting.assign(rets.size(), {});
    for (size_t i = 0; i < rets.size(); ++i) {
      int32_t binding = a[static_cast<size_t>(rets[i])];
      row.nodes.push_back(binding);
      if (has_nested && binding != EvalRow::kBottom) {
        for (PatternNodeId u : uppers[i]) {
          row.nesting[i].push_back(a[static_cast<size_t>(u)]);
        }
      }
    }
    if (seen.insert(row).second) out.push_back(std::move(row));
    return true;
  });
  return out;
}

std::vector<EvalRow> EvaluateOnDocument(const Pattern& p,
                                        const Document& doc) {
  DocumentTreeView view(doc);
  return EvaluateReturnRows(p, view, FormulaMode::kImplication);
}

bool ContainsNodeTuple(const std::vector<EvalRow>& rows,
                       const std::vector<int32_t>& nodes) {
  for (const EvalRow& r : rows) {
    if (r.nodes == nodes) return true;
  }
  return false;
}

}  // namespace svx
