// Pattern semantics: evaluation of (extended) tree patterns over trees,
// producing the set of return-node binding tuples (paper §2.2), with
// optional-embedding semantics for dashed edges (Def. 4.1: a node under an
// optional edge binds to ⊥ only when no match exists under its parent's
// binding) and per-return-node nesting sequences (§4.5).
//
// Evaluation runs over an abstract TreeLike so the same code serves
//   * Documents (formula check = does the node's value satisfy the
//     predicate), and
//   * canonical trees (decorated trees whose nodes carry formulas; the
//     check is formula implication or satisfiability, §4.2).
#ifndef SVX_PATTERN_EVALUATOR_H_
#define SVX_PATTERN_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/pattern/pattern.h"
#include "src/xml/document.h"

namespace svx {

/// How a pattern node's formula is tested against a tree node's
/// formula/value (paper §4.2).
enum class FormulaMode {
  kIgnore,         // structural matching only
  kImplication,    // decorated embedding: phi_tree(v) => phi_pattern(v)
  kSatisfiability  // phi_tree(v) ∧ phi_pattern(v) != F
};

/// Abstract rooted tree with label/formula matching.
class TreeLike {
 public:
  virtual ~TreeLike() = default;
  virtual int32_t Root() const = 0;
  virtual std::vector<int32_t> Children(int32_t n) const = 0;
  /// Label + formula test of pattern node `pn` against tree node `n`.
  virtual bool Matches(const Pattern::Node& pn, int32_t n,
                       FormulaMode mode) const = 0;
};

/// Adapter over a Document. The formula check ignores `mode`: a document
/// node carries a concrete value val, i.e. the formula v = val, for which
/// implication and satisfiability coincide with phi(val).
class DocumentTreeView : public TreeLike {
 public:
  explicit DocumentTreeView(const Document& doc) : doc_(doc) {}
  int32_t Root() const override { return doc_.root(); }
  std::vector<int32_t> Children(int32_t n) const override {
    return doc_.children(n);
  }
  bool Matches(const Pattern::Node& pn, int32_t n,
               FormulaMode mode) const override;

 private:
  const Document& doc_;
};

/// A full optional embedding: pattern node id -> tree node, or kBottom (⊥)
/// for nodes under unmatched optional edges.
using TreeEmbedding = std::vector<int32_t>;
inline constexpr int32_t kBottomBinding = -1;
/// Pin marker: no constraint on a pattern node's binding.
inline constexpr int32_t kUnpinnedBinding = -2;

/// Enumerates every optional embedding (Def. 4.1) of `p` into `tree`.
/// `emit` may return false to stop enumeration early. `pinned` (optional,
/// size p.size()) constrains bindings: kUnpinnedBinding = free, a tree node
/// = must bind exactly there, kBottomBinding = must be ⊥ (which per Def 4.1
/// additionally requires that no match exists).
void EnumerateTreeEmbeddings(
    const Pattern& p, const TreeLike& tree, FormulaMode mode,
    const std::function<bool(const TreeEmbedding&)>& emit,
    const std::vector<int32_t>* pinned = nullptr);

/// Binding of a pattern's return nodes. nodes[i] is the tree node bound to
/// the i-th return node (pattern preorder), or kBottom for ⊥. nesting[i]
/// lists the bindings of the i-th return node's nested-edge upper nodes
/// (outermost first) — the §4.5 nesting sequence ns(n_i, e).
struct EvalRow {
  static constexpr int32_t kBottom = -1;
  std::vector<int32_t> nodes;
  std::vector<std::vector<int32_t>> nesting;

  bool operator==(const EvalRow& other) const = default;
  size_t Hash() const;
};

/// Evaluates `p` over `tree` and returns the deduplicated rows.
std::vector<EvalRow> EvaluateReturnRows(const Pattern& p, const TreeLike& tree,
                                        FormulaMode mode);

/// Convenience: evaluation over a document (tuples of NodeIndex).
std::vector<EvalRow> EvaluateOnDocument(const Pattern& p, const Document& doc);

/// True iff `rows` contains a row with the given node bindings (nesting
/// sequences ignored).
bool ContainsNodeTuple(const std::vector<EvalRow>& rows,
                       const std::vector<int32_t>& nodes);

}  // namespace svx

#endif  // SVX_PATTERN_EVALUATOR_H_
