#include "src/rewriting/view_index.h"

#include <algorithm>

#include "src/pattern/embedding.h"

namespace svx {

ViewIndex::ViewIndex(const Summary& summary, const ExpansionOptions& expansion)
    : summary_(summary), expansion_(expansion) {}

void ViewIndex::AddView(const ViewDef& def) {
  ViewSignature sig;
  sig.related = MakePathBitset(summary_.size());
  for (PathBitset& b : sig.attr_paths) b = MakePathBitset(summary_.size());
  sig.content_desc = MakePathBitset(summary_.size());

  const Pattern& p = def.pattern;
  if (p.size() <= 1) {
    // Prop 3.4 discards single-node views outright; an all-empty signature
    // reproduces that.
    signatures_.push_back(std::move(sig));
    return;
  }

  // Prop 3.4 relevance, matching ViewRelated() exactly: associated paths of
  // the strict pattern (ComputeAssociatedPaths treats every edge as
  // required).
  AssociatedPaths ap = ComputeAssociatedPaths(p, summary_);
  for (PatternNodeId n = 1; n < p.size(); ++n) {
    for (PathId s : ap.feasible[static_cast<size_t>(n)]) {
      PathBitsetSet(&sig.related, s);
    }
  }

  // Serviceability sets must over-approximate every expansion variant, and
  // variants ERASE optional subtrees before enumerating skeleton
  // embeddings — so a node can pin to paths the strict associated-path
  // computation excludes (a required sibling subtree no variant keeps
  // would wrongly narrow it). Chain-only reachability — the root-to-node
  // label/axis chain with all sibling and descendant constraints dropped —
  // is an upper bound for every variant.
  std::vector<PathBitset> reach(static_cast<size_t>(p.size()));
  {
    const Pattern::Node& root = p.node(0);
    reach[0] = MakePathBitset(summary_.size());
    if (root.IsWildcard() || root.label == summary_.label(summary_.root())) {
      PathBitsetSet(&reach[0], summary_.root());
    }
  }
  // Pattern node ids are parent-before-child by construction.
  for (PatternNodeId n = 1; n < p.size(); ++n) {
    const Pattern::Node& node = p.node(n);
    reach[static_cast<size_t>(n)] = MakePathBitset(summary_.size());
    for (PathId s = 0; s < summary_.size(); ++s) {
      if (!PathBitsetTest(reach[static_cast<size_t>(node.parent)], s)) {
        continue;
      }
      if (node.axis == Axis::kChild) {
        for (PathId c : summary_.children(s)) {
          if (node.IsWildcard() || node.label == summary_.label(c)) {
            PathBitsetSet(&reach[static_cast<size_t>(n)], c);
          }
        }
      } else {
        for (PathId d : summary_.Descendants(s)) {
          if (node.IsWildcard() || node.label == summary_.label(d)) {
            PathBitsetSet(&reach[static_cast<size_t>(n)], d);
          }
        }
      }
    }
  }

  // Nodes under an optional or nested edge surface as fragment bindings in
  // the base expansion variant: their columns bypass the Prop 3.7 path
  // check entirely.
  std::vector<bool> under_opt(static_cast<size_t>(p.size()), false);
  for (PatternNodeId n = 1; n < p.size(); ++n) {
    const Pattern::Node& node = p.node(n);
    under_opt[static_cast<size_t>(n)] =
        node.optional || node.nested ||
        under_opt[static_cast<size_t>(node.parent)];
  }

  for (PatternNodeId n = 0; n < p.size(); ++n) {
    const Pattern::Node& node = p.node(n);
    if (node.attrs == 0) continue;
    if (under_opt[static_cast<size_t>(n)]) sig.anypath_attrs |= node.attrs;
    const PathBitset& feasible = reach[static_cast<size_t>(n)];
    auto for_each_feasible = [&](auto&& fn) {
      for (PathId s = 0; s < summary_.size(); ++s) {
        if (PathBitsetTest(feasible, s)) fn(s);
      }
    };
    for (int bit = 0; bit < 4; ++bit) {
      if ((node.attrs & (1 << bit)) == 0) continue;
      for (size_t w = 0; w < sig.attr_paths[bit].size(); ++w) {
        sig.attr_paths[bit][w] |= feasible[w];
      }
    }
    if ((node.attrs & kAttrId) && expansion_.add_virtual_ids) {
      for_each_feasible([&](PathId s) {
        PathId a = summary_.parent(s);
        for (int32_t step = 1;
             step <= expansion_.max_virtual_depth && a != kInvalidPath;
             ++step, a = summary_.parent(a)) {
          PathBitsetSet(&sig.attr_paths[0], a);
        }
      });
    }
    if ((node.attrs & kAttrContent) && expansion_.unfold_content) {
      sig.has_content = true;
      for_each_feasible([&](PathId s) {
        for (PathId d : summary_.Descendants(s)) {
          PathBitsetSet(&sig.content_desc, d);
          sig.content_label_ids.push_back(summary_.label_id(d));
        }
      });
    }
  }
  std::sort(sig.content_label_ids.begin(), sig.content_label_ids.end());
  sig.content_label_ids.erase(
      std::unique(sig.content_label_ids.begin(), sig.content_label_ids.end()),
      sig.content_label_ids.end());
  signatures_.push_back(std::move(sig));
}

bool ViewIndex::CanServe(size_t i, uint8_t need_attrs,
                         const PathBitset& col_paths,
                         const Pattern::Node& qnode) const {
  const ViewSignature& sig = signatures_[i];
  // Fragment bindings (nodes under optional/nested edges) carry no pinned
  // path and pass the assignment path check unconditionally.
  if ((need_attrs & ~sig.anypath_attrs) == 0) return true;
  // §4.6 content unfolding appends non-pinned V and C columns for any query
  // label occurring below a stored C node.
  if (sig.has_content &&
      (need_attrs & ~(kAttrValue | kAttrContent)) == 0) {
    if (qnode.IsWildcard()) {
      if (!PathBitsetEmpty(sig.content_desc)) return true;
    } else {
      int32_t lid = summary_.labels().Find(qnode.label);
      if (lid != StringInterner::kNone &&
          std::binary_search(sig.content_label_ids.begin(),
                             sig.content_label_ids.end(), lid)) {
        return true;
      }
    }
  }
  // Skeleton columns: every needed attribute must be exposable on some
  // feasible path of the column (Prop 3.7 compatibility).
  for (int bit = 0; bit < 4; ++bit) {
    if ((need_attrs & (1 << bit)) == 0) continue;
    if (!PathBitsetsIntersect(sig.attr_paths[bit], col_paths)) return false;
  }
  return true;
}

}  // namespace svx
