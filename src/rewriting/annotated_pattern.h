// Plan-pattern bookkeeping for the rewriting algorithm (§3.2-§3.3).
//
// Algorithm 1 manipulates (plan, pattern) pairs that are S-equivalent by
// construction. Because a join result need not be a single pattern
// (Prop 3.3: it is a union of conjunctive patterns — the Figure 5
// ambiguity), every plan carries a *set of pieces*:
//
//   * a Candidate is a logical plan plus pieces such that
//       plan  ≡S  union of the pieces' patterns;
//   * a Piece is a regular Pattern in which every skeleton node is pinned to
//     one summary path — obtained by materializing one summary embedding of
//     the view's non-optional skeleton as an explicit /-labeled chain from
//     the root — with the view's optional subtrees re-attached verbatim, and
//     a mapping from (pattern node, attribute) to plan columns.
//
// Pinning makes join-pattern computation deterministic: joining two pieces
// on nodes with concrete paths reduces to point-wise unification of their
// root chains (the ancestors of a fixed document node on fixed paths are
// unique), and the union over embedding choices yields exactly the
// Prop 3.3 union form.
#ifndef SVX_REWRITING_ANNOTATED_PATTERN_H_
#define SVX_REWRITING_ANNOTATED_PATTERN_H_

#include <string>
#include <vector>

#include "src/algebra/plan.h"
#include "src/pattern/pattern.h"
#include "src/rewriting/view.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

/// Maps one attribute of one piece node to a plan column. `prefix` is the
/// cross-piece role identifier ("V1.n2", "V1.n2.up1" for virtual IDs,
/// "V1.n2@keyword" for content unfolds), made unique per candidate instance
/// by the rewriter's retagging; `col` indexes the candidate plan's output
/// schema (join concatenation shifts right-side indexes).
struct ColumnBinding {
  PatternNodeId node = -1;
  uint8_t attr = 0;          // single kAttr* bit
  std::string prefix;
  std::string column;        // column name (diagnostic)
  int32_t col = -1;          // index into the candidate plan's output schema
  bool skeleton = false;     // node is pinned to a single path
  PathId path = kInvalidPath;  // the pinned path (skeleton only)
};

/// One piece: a pinned pattern plus its column bindings.
struct Piece {
  Pattern pattern;
  std::vector<ColumnBinding> bindings;
  /// Pinned path per pattern node (kInvalidPath for fragment nodes).
  std::vector<PathId> node_paths;

  /// Binding for `prefix` carrying `attr`; nullptr if absent.
  const ColumnBinding* Find(const std::string& prefix, uint8_t attr) const;

  /// All bindings of `prefix` (any attr).
  std::vector<const ColumnBinding*> FindPrefix(const std::string& prefix) const;

  /// Canonical string (pattern + sorted binding roles), used for the
  /// Prop 3.5 "patterns coincide" pruning.
  std::string CanonicalString() const;
};

/// A plan with its piece set (plan ≡S union of piece patterns).
struct Candidate {
  PlanPtr plan;
  std::vector<Piece> pieces;
  std::vector<std::string> used_views;  // view names, with repetition

  /// Column prefixes that expose an `attr` column in every piece, mapped to
  /// skeleton nodes (usable as join endpoints).
  std::vector<std::string> JoinablePrefixes() const;

  /// Sorted multiset string of piece canonical strings (Prop 3.5).
  /// Computed on first use and cached: the rewriter consults it several
  /// times per join attempt, and pieces are immutable once the candidate
  /// has entered the search.
  const std::string& CanonicalString() const;

  Candidate CloneShallowPlan() const;

 private:
  mutable std::string canonical_;  // empty = not yet computed
};

/// Knobs for view expansion.
struct ExpansionOptions {
  size_t max_embeddings = 512;       // skeleton embeddings per variant
  size_t max_pieces = 128;           // pieces per candidate
  int32_t max_strengthen_edges = 4;  // optional edges considered for σ≠⊥
  bool unfold_content = true;        // §4.6 C unfolding
  bool add_virtual_ids = true;       // §4.6 parent-ID derivation
  int32_t max_virtual_depth = 3;     // navfID steps added per ID column
};

/// Expands one view into candidates under `summary`:
///   * the base variant (optional edges kept optional, nested edges
///     flattened by outer unnest),
///   * strengthened variants (subsets of optional edges made required via
///     σ non-null),
/// each with per-embedding pieces, §4.6 content unfolding toward the labels
/// in `relevant_labels`, and §4.6 virtual parent IDs.
Result<std::vector<Candidate>> ExpandView(
    const ViewDef& view, const Summary& summary,
    const std::vector<std::string>& relevant_labels,
    const ExpansionOptions& options);

/// Removes optional/nested subtrees that carry no attribute anywhere (they
/// do not change pattern semantics for any result tuple); used both in view
/// normalization and to shrink containment test patterns.
Pattern PruneAttrlessSubtrees(const Pattern& p,
                              std::vector<PatternNodeId>* old_to_new = nullptr);

}  // namespace svx

#endif  // SVX_REWRITING_ANNOTATED_PATTERN_H_
