// Dynamic-programming plan enumeration for view-based rewriting, plus the
// candidate-join machinery it shares with the legacy exhaustive search.
//
// The paper's Algorithm 1 enumerates left-deep piece-merge joins
// exhaustively; the enumerator here reorganizes the same search space the
// way rdf3x's PlanGen does (SNIPPETS.md, `PlanGen::addPlan`):
//
//   * a *problem* is the multiset of base candidates a partial plan joins
//     (keyed by sorted base ids; repetition allowed — self-joins of one
//     view instance are legal);
//   * every partial plan carries estimated cost, estimated cardinality,
//     its produced order (the base candidate at the head of its left
//     spine — hash joins emit in left-child order), and the
//     over-approximate query-column serve mask of its views;
//   * AddPlan keeps only Pareto-optimal plans per problem: a plan is
//     dominated when the problem already holds a plan with the same
//     produced order, a serve-mask superset, and no worse cost AND
//     cardinality. Canonically equal piece sets (the exact case) keep the
//     cheapest plan — that check is lossless, since equal piece sets are
//     interchangeable both as join operands and in equivalence testing.
//   * piece sets are materialized *lazily*: a join is generated as a plan
//     skeleton with a cost estimate, and its merged pieces (the expensive
//     part of the legacy search) are only computed when the plan is
//     actually selected for extension or equivalence testing. Dominated
//     and coverage-hopeless plans never pay the merge.
//
// Dominance across distinct piece sets is a heuristic (two plans over the
// same bases can compute different pattern sets), so covering plans that
// lose the Pareto check are retained on a fallback list and equivalence-
// tested whenever they could still beat the best found rewriting — which
// keeps the enumerator's best-cost result no worse than the exhaustive
// search's on budgets where the exhaustive search completes (see
// tests/plan_enum_test.cc for the differential check).
#ifndef SVX_REWRITING_PLAN_ENUM_H_
#define SVX_REWRITING_PLAN_ENUM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rewriting/annotated_pattern.h"
#include "src/rewriting/view_index.h"
#include "src/summary/summary.h"

namespace svx {

class CostModel;  // src/viewstore/cost_model.h

// ---------------------------------------------------------------------------
// Piece-merge primitives (shared by the DP and the legacy enumeration)
// ---------------------------------------------------------------------------

enum class JoinType { kEq, kParent, kAncestor };

/// True iff a piece pinned to `pa` can absorb a piece pinned to `pb` under
/// `type` — the path-relation precondition of MergePieces, shared with the
/// join enumeration's pre-passes so they cannot drift apart.
bool PiecePathsJoin(const Summary& summary, PathId pa, PathId pb,
                    JoinType type);

/// Root-to-node chain of pattern node ids (inclusive).
std::vector<PatternNodeId> AncestorChain(const Pattern& p, PatternNodeId n);

/// Merges piece `b` into piece `a` joined on (prefix_a, prefix_b) with `a`
/// on the ancestor (or equal) side. Returns false when this piece pair is
/// incompatible (contributes nothing to the join). `b_col_shift` relocates
/// b's column indexes in the concatenated schema.
bool MergePieces(const Summary& summary, const Piece& a,
                 const std::string& prefix_a, const Piece& b,
                 const std::string& prefix_b, JoinType type,
                 int32_t b_col_shift, Piece* out);

/// Hash consistent with Piece::CanonicalString() equality: equal canonical
/// strings imply equal hashes.
uint64_t PieceCanonicalHash(const Piece& p);

/// Hash consistent with Candidate::CanonicalString() equality (commutative
/// over the sorted piece multiset).
uint64_t CandidateCanonicalHash(const Candidate& c);

/// Candidate::CanonicalString() equality without building any string.
bool CandidatesCanonicalEqual(const Candidate& a, const Candidate& b);

/// Pinned paths of one joinable prefix, in three bitset views so a whole
/// (prefix, prefix, join type) combination is testable with a few word
/// ANDs: anc ⋈= desc needs paths∩paths, ⋈≺ needs paths∩parents, ⋈≺≺ needs
/// paths∩ancestors.
struct PrefixPathSets {
  PathBitset paths;
  PathBitset parents;
  PathBitset ancestors;  // strict-ancestor closure of paths
};

/// Per-candidate state cached for the join enumeration: the join-relevant
/// joinable prefixes with their per-piece pinned paths (so a join attempt
/// can be rejected with integer comparisons before any piece is merged),
/// and the over-approximate column-serve mask of the candidate's views.
struct CandInfo {
  uint32_t serve_mask = 0;
  /// True when any piece node carries a non-trivial value predicate. When
  /// both join sides are predicate-free, every path-compatible piece pair
  /// merges successfully, so the merged piece count is predictable.
  bool has_preds = false;
  uint64_t canon_hash = 0;
  std::vector<std::string> rel_prefixes;
  /// Aligned with rel_prefixes; the plan column of the prefix's ID binding.
  std::vector<int32_t> prefix_id_cols;
  /// Aligned with rel_prefixes; one pinned path per piece.
  std::vector<std::vector<PathId>> prefix_paths;
  /// Aligned with rel_prefixes.
  std::vector<PrefixPathSets> prefix_sets;
};

bool PrefixSetsJoin(const PrefixPathSets& anc, const PrefixPathSets& desc,
                    JoinType type);

/// `join_relevant` marks summary paths that are associated paths of query
/// nodes or their ancestors (joining elsewhere cannot tighten structural
/// relationships between query nodes, §3.2).
CandInfo BuildCandInfo(const Candidate& c,
                       const std::vector<bool>& join_relevant,
                       const Summary& summary, uint32_t serve_mask,
                       uint64_t canon_hash);

// ---------------------------------------------------------------------------
// Query-column coverage (ViewIndex-driven pruning)
// ---------------------------------------------------------------------------

/// Which query columns each kept view can serve (over-approximate, from the
/// ViewIndex signatures — the caller computes the masks), plus the minimal
/// number of views needed to cover any remaining column set. Lets both
/// enumerations skip single-view candidates and join combinations that
/// provably cannot reach full coverage — and bail out of the whole query
/// when no ≤ max_plan_views combination can.
class CoverageAnalysis {
 public:
  static constexpr int32_t kMaxCols = 16;  // DP is 2^cols

  /// `view_masks[k]` = serve mask of the k-th kept view over the query's
  /// `num_cols` return columns. Disabled (all checks pass vacuously) when
  /// num_cols is 0 or exceeds kMaxCols.
  CoverageAnalysis(int32_t num_cols, std::vector<uint32_t> view_masks);

  bool enabled() const { return enabled_; }

  /// Serve mask of the kept view at position `kept_pos`.
  uint32_t ViewMask(size_t kept_pos) const { return view_masks_[kept_pos]; }

  /// True when `mask` serves every query column.
  bool Covers(uint32_t mask) const { return (full_ & ~mask) == 0; }

  /// True when a candidate already using `used` views with coverage `mask`
  /// can still reach full coverage within `max_views` views total.
  bool Extendable(uint32_t mask, size_t used, int32_t max_views) const;

 private:
  bool enabled_ = false;
  uint32_t full_ = 0;
  std::vector<uint32_t> view_masks_;
  std::vector<int32_t> mincover_;
};

// ---------------------------------------------------------------------------
// DP plan enumerator
// ---------------------------------------------------------------------------

class PlanEnumerator {
 public:
  struct Options {
    int32_t max_plan_views = 3;
    /// Global bound on retained plans (RewriterOptions::max_candidates).
    /// Hitting it stops generation, like the legacy search's candidate cap.
    size_t max_table = 2000;
    /// Per-level extension beam: at most this many cheapest extendable
    /// plans are joined further (RewriterOptions::max_pieces, repurposed
    /// from the legacy per-join piece-product cutoff into the DP
    /// table/frontier bound).
    size_t max_frontier = 128;
    /// Per-plan merged-piece bound (ExpansionOptions::max_pieces). A join
    /// whose piece set would exceed it is discarded — and reported as a
    /// truncation, because a discarded piece set can hide a valid
    /// rewriting. The beam and table caps above are *not* truncations:
    /// they bound how much of the space is searched (like the legacy
    /// max_candidates cap), not whether generated plans are dropped.
    size_t max_merged_pieces = 128;
    bool prune_same_pattern = true;  // Prop 3.5 at materialization
  };

  struct Stats {
    size_t generated = 0;   // plans built (bases + join skeletons)
    size_t joins = 0;       // join skeletons among `generated`
    size_t dominated = 0;   // discarded or demoted by AddPlan dominance
    size_t retained = 0;    // alive plans when Run() returns
    size_t coverage_pruned = 0;  // mask-certified fruitless combinations
    size_t cost_pruned = 0;      // branch-and-bound frontier skips
    size_t beam_skipped = 0;     // extendable plans beyond max_frontier
    /// True when a join's merged piece set exceeded max_merged_pieces and
    /// was discarded: a discarded piece set can hide a valid rewriting, so
    /// the search result may be incomplete and CachedRewrite refuses to
    /// cache it. Beam/table cuts do not set this (bounded search, like the
    /// legacy max_candidates cap).
    bool truncated = false;
  };

  /// Outcome of an equivalence-test callback: `stop` ends the search
  /// (result budget reached); `best_cost` is the cheapest estimated cost
  /// over the rewritings found so far (+inf when none) — the enumerator's
  /// branch-and-bound bound, and the threshold above which Pareto-dominated
  /// covering plans are provably unable to improve the result set.
  struct MatchOutcome {
    bool stop = false;
    double best_cost = 0;
  };
  using MatchFn = std::function<MatchOutcome(const Candidate&, double)>;
  using DeadlineFn = std::function<bool()>;

  /// `cost_model` ranks partial plans (callers without one pass a default-
  /// constructed model: deterministic, every view at default_rows).
  /// All references are borrowed for the enumerator's lifetime.
  PlanEnumerator(const Summary& summary, const CostModel& cost_model,
                 const std::vector<bool>& join_relevant,
                 const CoverageAnalysis& cover, const Options& options);

  /// Registers a level-1 candidate (pieces materialized, in the caller's
  /// search order). `serve_mask` from CoverageAnalysis::ViewMask.
  void AddBase(Candidate cand, uint32_t serve_mask);

  /// Runs the level-by-level enumeration: each level's covering plans are
  /// equivalence-tested cheapest-first via `match`, then the surviving
  /// extendable plans (cheapest `max_frontier`) are joined with the base
  /// candidates to form the next level. `deadline()` true aborts.
  void Run(const MatchFn& match, const DeadlineFn& deadline);

  const Stats& stats() const { return stats_; }

 private:
  struct EnumPlan {
    Candidate cand;  // plan + used_views always set; pieces lazy for joins
    std::vector<int32_t> bases;  // sorted base plan ids, with multiplicity
    // Construction route, for lazy piece materialization (bases: anc < 0).
    int32_t anc = -1;
    int32_t desc = -1;
    std::string anc_prefix;
    std::string desc_prefix;
    JoinType type = JoinType::kEq;
    std::vector<PathId> anc_paths;   // pinned join paths per anc piece
    std::vector<PathId> desc_paths;  // pinned join paths per desc piece
    uint32_t serve_mask = 0;
    int32_t order_key = 0;  // head of the left spine (a base id)
    double cost = 0;
    double rows = 0;
    uint64_t canon_hash = 0;  // valid once materialized
    CandInfo info;            // valid once info_built
    bool materialized = false;
    bool info_built = false;
    bool alive = true;
    bool extendable = true;
    /// Covering but Pareto-dominated: equivalence-tested only while it
    /// could still beat the best found rewriting (cost < best bound).
    bool match_fallback = false;
  };

  /// Merges the plan's piece set from its construction route (no-op for
  /// bases). Returns false — and kills the plan — when the merge
  /// overflows max_merged_pieces (truncation), produces nothing, repeats a
  /// child's pattern set (Prop 3.5), or duplicates an already-materialized
  /// plan of the same problem (then the cheaper of the two survives).
  bool Materialize(int32_t id);
  bool EnsureInfo(int32_t id);

  /// Dominance bookkeeping for a fully-constructed plan skeleton; returns
  /// the plan's id or -1 when it was discarded.
  int32_t AddPlan(EnumPlan plan);

  /// True when some base's serve mask can extend `mask` at `used` views
  /// toward full coverage within the view budget.
  bool ExtendableWithAnyBase(uint32_t mask, size_t used) const;

  void MatchLevel(size_t level_begin, size_t level_end, const MatchFn& match,
                  const DeadlineFn& deadline);

  const Summary& summary_;
  const CostModel& cost_model_;
  const std::vector<bool>& join_relevant_;
  const CoverageAnalysis& cover_;
  Options options_;
  Stats stats_;

  std::vector<EnumPlan> plans_;
  std::vector<int32_t> base_ids_;
  std::vector<uint32_t> distinct_base_masks_;
  /// Problem table: sorted base-id multiset → plan ids.
  std::unordered_map<uint64_t, std::vector<int32_t>> problems_;
  size_t alive_count_ = 0;
  double best_cost_ = 0;  // set to +inf in Run()
  bool stopped_ = false;
};

}  // namespace svx

#endif  // SVX_REWRITING_PLAN_ENUM_H_
