#include "src/rewriting/plan_enum.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"
#include "src/viewstore/cost_model.h"

namespace svx {

// ---------------------------------------------------------------------------
// Piece-merge primitives
// ---------------------------------------------------------------------------

bool PiecePathsJoin(const Summary& summary, PathId pa, PathId pb,
                    JoinType type) {
  switch (type) {
    case JoinType::kEq:
      return pa == pb;
    case JoinType::kParent:
      return summary.parent(pb) == pa;
    case JoinType::kAncestor:
      return summary.IsAncestor(pa, pb);
  }
  return false;
}

std::vector<PatternNodeId> AncestorChain(const Pattern& p, PatternNodeId n) {
  std::vector<PatternNodeId> rev;
  for (PatternNodeId cur = n; cur >= 0; cur = p.node(cur).parent) {
    rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

bool MergePieces(const Summary& summary, const Piece& a,
                 const std::string& prefix_a, const Piece& b,
                 const std::string& prefix_b, JoinType type,
                 int32_t b_col_shift, Piece* out) {
  const ColumnBinding* ba = a.Find(prefix_a, kAttrId);
  const ColumnBinding* bb = b.Find(prefix_b, kAttrId);
  if (ba == nullptr || bb == nullptr || !ba->skeleton || !bb->skeleton) {
    return false;
  }
  PathId pa = ba->path;
  PathId pb = bb->path;
  if (!PiecePathsJoin(summary, pa, pb, type)) return false;

  std::vector<PatternNodeId> a_chain = AncestorChain(a.pattern, ba->node);
  std::vector<PatternNodeId> b_chain = AncestorChain(b.pattern, bb->node);
  size_t unify_len = static_cast<size_t>(summary.depth(pa));
  SVX_CHECK(a_chain.size() == unify_len);
  SVX_CHECK(b_chain.size() >= unify_len);

  *out = a;
  std::vector<PatternNodeId> map_b(static_cast<size_t>(b.pattern.size()), -1);
  for (size_t k = 0; k < unify_len; ++k) {
    PatternNodeId an = a_chain[k];
    PatternNodeId bn = b_chain[k];
    // Both chains instantiate the same summary chain.
    SVX_CHECK(out->node_paths[static_cast<size_t>(an)] ==
              b.node_paths[static_cast<size_t>(bn)]);
    map_b[static_cast<size_t>(bn)] = an;
    Pattern::Node& merged = out->pattern.mutable_node(an);
    merged.attrs |= b.pattern.node(bn).attrs;
    merged.pred = merged.pred.And(b.pattern.node(bn).pred);
    if (merged.pred.IsFalse()) return false;
  }
  // Copy the remaining b nodes (branches and the below-join part), parents
  // first (ids are parent-before-child by construction).
  for (PatternNodeId n = 0; n < b.pattern.size(); ++n) {
    if (map_b[static_cast<size_t>(n)] >= 0) continue;
    const Pattern::Node& node = b.pattern.node(n);
    SVX_CHECK(node.parent >= 0);
    PatternNodeId parent = map_b[static_cast<size_t>(node.parent)];
    SVX_CHECK(parent >= 0);
    PatternNodeId nid =
        out->pattern.AddChild(parent, node.label, node.axis, node.attrs,
                              node.pred, node.optional, node.nested);
    map_b[static_cast<size_t>(n)] = nid;
    out->node_paths.push_back(b.node_paths[static_cast<size_t>(n)]);
  }
  for (const ColumnBinding& binding : b.bindings) {
    ColumnBinding nb = binding;
    nb.node = map_b[static_cast<size_t>(binding.node)];
    nb.col += b_col_shift;
    out->bindings.push_back(std::move(nb));
  }
  return true;
}

namespace {

inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Structural equivalents of canonical-string equality, so duplicate joins
/// are confirmed without building any string. PatternToString is
/// round-trippable, hence injective in exactly these components.
bool PatternsCanonicalEqual(const Pattern& a, const Pattern& b) {
  if (a.size() != b.size()) return false;
  for (PatternNodeId n = 0; n < a.size(); ++n) {
    const Pattern::Node& x = a.node(n);
    const Pattern::Node& y = b.node(n);
    if (x.label != y.label || x.parent != y.parent || x.axis != y.axis ||
        x.optional != y.optional || x.nested != y.nested ||
        x.attrs != y.attrs || !(x.pred == y.pred)) {
      return false;
    }
  }
  return true;
}

bool PiecesCanonicalEqual(const Piece& a, const Piece& b) {
  if (a.bindings.size() != b.bindings.size()) return false;
  if (!PatternsCanonicalEqual(a.pattern, b.pattern)) return false;
  // The canonical string compares the role multiset (node, attr, prefix).
  auto key_less = [](const ColumnBinding* x, const ColumnBinding* y) {
    if (x->node != y->node) return x->node < y->node;
    if (x->attr != y->attr) return x->attr < y->attr;
    return x->prefix < y->prefix;
  };
  std::vector<const ColumnBinding*> ra, rb;
  ra.reserve(a.bindings.size());
  rb.reserve(b.bindings.size());
  for (const ColumnBinding& c : a.bindings) ra.push_back(&c);
  for (const ColumnBinding& c : b.bindings) rb.push_back(&c);
  std::sort(ra.begin(), ra.end(), key_less);
  std::sort(rb.begin(), rb.end(), key_less);
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i]->node != rb[i]->node || ra[i]->attr != rb[i]->attr ||
        ra[i]->prefix != rb[i]->prefix) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t PieceCanonicalHash(const Piece& p) {
  std::hash<std::string> hs;
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (PatternNodeId n = 0; n < p.pattern.size(); ++n) {
    const Pattern::Node& node = p.pattern.node(n);
    h = HashCombine(h, hs(node.label));
    h = HashCombine(h, (static_cast<uint64_t>(node.parent) << 8) |
                           (static_cast<uint64_t>(node.axis) << 6) |
                           (static_cast<uint64_t>(node.optional) << 5) |
                           (static_cast<uint64_t>(node.nested) << 4) |
                           node.attrs);
    if (!node.pred.IsTrue()) h = HashCombine(h, hs(node.pred.ToString()));
  }
  uint64_t roles = 0;
  for (const ColumnBinding& b : p.bindings) {
    roles += HashCombine(hs(b.prefix),
                         static_cast<uint64_t>(b.node) * 131 + b.attr);
  }
  return HashCombine(h, roles);
}

uint64_t CandidateCanonicalHash(const Candidate& c) {
  uint64_t sum = 0;
  for (const Piece& p : c.pieces) sum += PieceCanonicalHash(p);
  return sum;
}

bool CandidatesCanonicalEqual(const Candidate& a, const Candidate& b) {
  size_t n = a.pieces.size();
  if (n != b.pieces.size()) return false;
  std::vector<std::pair<uint64_t, size_t>> ha, hb;
  ha.reserve(n);
  hb.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ha.emplace_back(PieceCanonicalHash(a.pieces[i]), i);
    hb.emplace_back(PieceCanonicalHash(b.pieces[i]), i);
  }
  std::sort(ha.begin(), ha.end());
  std::sort(hb.begin(), hb.end());
  for (size_t i = 0; i < n; ++i) {
    if (ha[i].first != hb[i].first) return false;
  }
  std::vector<bool> used(n, false);
  for (size_t i = 0; i < n; ++i) {
    bool matched = false;
    // Candidates in b share a's hash at the same sorted positions; scan the
    // equal-hash run (equality is an equivalence, so greedy matching is
    // complete).
    for (size_t j = 0; j < n && hb[j].first <= ha[i].first; ++j) {
      if (used[j] || hb[j].first != ha[i].first) continue;
      if (PiecesCanonicalEqual(a.pieces[ha[i].second],
                               b.pieces[hb[j].second])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

bool PrefixSetsJoin(const PrefixPathSets& anc, const PrefixPathSets& desc,
                    JoinType type) {
  switch (type) {
    case JoinType::kEq:
      return PathBitsetsIntersect(anc.paths, desc.paths);
    case JoinType::kParent:
      return PathBitsetsIntersect(anc.paths, desc.parents);
    case JoinType::kAncestor:
      return PathBitsetsIntersect(anc.paths, desc.ancestors);
  }
  return false;
}

CandInfo BuildCandInfo(const Candidate& c,
                       const std::vector<bool>& join_relevant,
                       const Summary& summary, uint32_t serve_mask,
                       uint64_t canon_hash) {
  CandInfo info;
  info.serve_mask = serve_mask;
  info.canon_hash = canon_hash;
  for (const Piece& piece : c.pieces) {
    for (PatternNodeId n = 0; n < piece.pattern.size() && !info.has_preds;
         ++n) {
      info.has_preds = !piece.pattern.node(n).pred.IsTrue();
    }
    if (info.has_preds) break;
  }
  for (const std::string& prefix : c.JoinablePrefixes()) {
    bool relevant = false;
    std::vector<PathId> paths;
    paths.reserve(c.pieces.size());
    for (const Piece& piece : c.pieces) {
      const ColumnBinding* b = piece.Find(prefix, kAttrId);
      // JoinablePrefixes guarantees a skeleton ID binding in every piece.
      paths.push_back(b->path);
      relevant =
          relevant || join_relevant[static_cast<size_t>(b->path)];
    }
    if (!relevant) continue;
    PrefixPathSets sets;
    sets.paths = MakePathBitset(summary.size());
    sets.parents = MakePathBitset(summary.size());
    sets.ancestors = MakePathBitset(summary.size());
    for (PathId s : paths) {
      PathBitsetSet(&sets.paths, s);
      PathId p = summary.parent(s);
      if (p != kInvalidPath) PathBitsetSet(&sets.parents, p);
      for (PathId a = p; a != kInvalidPath; a = summary.parent(a)) {
        PathBitsetSet(&sets.ancestors, a);
      }
    }
    info.rel_prefixes.push_back(prefix);
    info.prefix_id_cols.push_back(c.pieces[0].Find(prefix, kAttrId)->col);
    info.prefix_paths.push_back(std::move(paths));
    info.prefix_sets.push_back(std::move(sets));
  }
  return info;
}

// ---------------------------------------------------------------------------
// CoverageAnalysis
// ---------------------------------------------------------------------------

CoverageAnalysis::CoverageAnalysis(int32_t num_cols,
                                   std::vector<uint32_t> view_masks)
    : view_masks_(std::move(view_masks)) {
  enabled_ = num_cols > 0 && num_cols <= kMaxCols;
  if (!enabled_) return;
  full_ = (uint32_t{1} << num_cols) - 1;

  std::vector<uint32_t> distinct;
  for (uint32_t mask : view_masks_) {
    if (mask != 0) distinct.push_back(mask);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  // mincover_[m] = fewest views whose serve masks cover m (INT32_MAX when
  // impossible). Some view must serve m's lowest set column.
  mincover_.assign(size_t{1} << num_cols, std::numeric_limits<int32_t>::max());
  mincover_[0] = 0;
  for (uint32_t m = 1; m <= full_; ++m) {
    uint32_t low = m & ~(m - 1);
    for (uint32_t vm : distinct) {
      if ((vm & low) == 0) continue;
      int32_t sub = mincover_[m & ~vm];
      if (sub != std::numeric_limits<int32_t>::max() &&
          sub + 1 < mincover_[m]) {
        mincover_[m] = sub + 1;
      }
    }
  }
}

bool CoverageAnalysis::Extendable(uint32_t mask, size_t used,
                                  int32_t max_views) const {
  uint32_t rem = full_ & ~mask;
  int32_t need = mincover_[rem];
  if (need == std::numeric_limits<int32_t>::max()) return false;
  return static_cast<int32_t>(used) + need <= max_views;
}

// ---------------------------------------------------------------------------
// PlanEnumerator
// ---------------------------------------------------------------------------

namespace {

uint64_t BasesKey(const std::vector<int32_t>& bases) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int32_t b : bases) {
    h = HashCombine(h, static_cast<uint64_t>(b));
  }
  return h;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

PlanEnumerator::PlanEnumerator(const Summary& summary,
                               const CostModel& cost_model,
                               const std::vector<bool>& join_relevant,
                               const CoverageAnalysis& cover,
                               const Options& options)
    : summary_(summary),
      cost_model_(cost_model),
      join_relevant_(join_relevant),
      cover_(cover),
      options_(options) {}

void PlanEnumerator::AddBase(Candidate cand, uint32_t serve_mask) {
  if (stopped_ || plans_.size() >= options_.max_table) return;
  EnumPlan plan;
  plan.serve_mask = serve_mask;
  CostEstimate est = cost_model_.Estimate(*cand.plan);
  plan.cost = est.cost;
  plan.rows = est.rows;
  plan.canon_hash = CandidateCanonicalHash(cand);
  plan.cand = std::move(cand);
  plan.materialized = true;

  // Canonically equal piece sets are interchangeable everywhere (joins,
  // assignments, containment tests), so the cheaper plan replaces the
  // other outright. Masks of equal piece sets over-approximate the same
  // serveable columns, so their union is still an over-approximation.
  for (int32_t id : base_ids_) {
    EnumPlan& other = plans_[static_cast<size_t>(id)];
    if (other.canon_hash != plan.canon_hash ||
        !CandidatesCanonicalEqual(other.cand, plan.cand)) {
      continue;
    }
    ++stats_.dominated;
    other.serve_mask |= plan.serve_mask;
    if (plan.cost < other.cost) {
      other.cand = std::move(plan.cand);
      other.cost = plan.cost;
      other.rows = est.rows;
      other.info_built = false;  // columns unchanged, but rebuild to be safe
    }
    return;
  }

  int32_t id = static_cast<int32_t>(plans_.size());
  plan.bases = {id};
  plan.order_key = id;
  plan.extendable = true;
  ++stats_.generated;
  ++alive_count_;
  base_ids_.push_back(id);
  problems_[BasesKey(plan.bases)].push_back(id);
  plans_.push_back(std::move(plan));
}

bool PlanEnumerator::ExtendableWithAnyBase(uint32_t mask, size_t used) const {
  for (uint32_t sm : distinct_base_masks_) {
    if (cover_.Extendable(mask | sm, used + 1, options_.max_plan_views)) {
      return true;
    }
  }
  return false;
}

int32_t PlanEnumerator::AddPlan(EnumPlan plan) {
  bool covering = cover_.Covers(plan.serve_mask);
  std::vector<int32_t>& bucket = problems_[BasesKey(plan.bases)];
  bool demoted = false;
  for (int32_t oid : bucket) {
    EnumPlan& other = plans_[static_cast<size_t>(oid)];
    if (!other.alive || other.bases != plan.bases) continue;
    if (other.order_key != plan.order_key) continue;
    // Existing plan dominates the new one: same produced order, at least
    // the same columns, and no worse on either cost axis.
    if (!other.match_fallback &&
        (other.serve_mask & plan.serve_mask) == plan.serve_mask &&
        other.cost <= plan.cost && other.rows <= plan.rows) {
      ++stats_.dominated;
      if (!covering) return -1;
      // A dominated covering plan can still carry a piece set the
      // dominator lacks; keep it for the fallback matching pass but never
      // grow the search from it.
      demoted = true;
      break;
    }
    // New plan dominates the existing one.
    if ((plan.serve_mask & other.serve_mask) == other.serve_mask &&
        plan.cost <= other.cost && plan.rows <= other.rows) {
      ++stats_.dominated;
      if (other.match_fallback) {
        // Already demoted; nothing further to take from it.
        continue;
      }
      if (cover_.Covers(other.serve_mask)) {
        other.extendable = false;
        other.match_fallback = true;
      } else {
        other.alive = false;
        --alive_count_;
      }
    }
  }
  if (demoted) {
    plan.extendable = false;
    plan.match_fallback = true;
  } else {
    size_t used = plan.bases.size();
    plan.extendable =
        static_cast<int32_t>(used) < options_.max_plan_views &&
        ExtendableWithAnyBase(plan.serve_mask, used);
    if (!covering && !plan.extendable) {
      ++stats_.coverage_pruned;
      return -1;
    }
  }
  int32_t id = static_cast<int32_t>(plans_.size());
  ++stats_.generated;
  ++alive_count_;
  bucket.push_back(id);
  plans_.push_back(std::move(plan));
  return id;
}

bool PlanEnumerator::Materialize(int32_t id) {
  EnumPlan& plan = plans_[static_cast<size_t>(id)];
  if (plan.materialized) return plan.alive;
  if (!plan.alive) return false;
  const EnumPlan& anc = plans_[static_cast<size_t>(plan.anc)];
  const EnumPlan& desc = plans_[static_cast<size_t>(plan.desc)];
  SVX_CHECK(anc.materialized && desc.materialized);

  auto kill = [&]() {
    plan.alive = false;
    plan.materialized = true;  // don't retry
    --alive_count_;
    return false;
  };

  int32_t shift = anc.cand.plan->schema.size();
  std::vector<Piece> merged;
  for (size_t x = 0; x < anc.cand.pieces.size(); ++x) {
    for (size_t y = 0; y < desc.cand.pieces.size(); ++y) {
      Piece out;
      if (PiecePathsJoin(summary_, plan.anc_paths[x], plan.desc_paths[y],
                         plan.type) &&
          MergePieces(summary_, anc.cand.pieces[x], plan.anc_prefix,
                      desc.cand.pieces[y], plan.desc_prefix, plan.type,
                      shift, &out)) {
        merged.push_back(std::move(out));
      }
      if (merged.size() > options_.max_merged_pieces) {
        // The discarded piece set could have carried a valid rewriting —
        // report the cut instead of silently narrowing the search.
        stats_.truncated = true;
        return kill();
      }
    }
  }
  if (merged.empty()) return kill();
  plan.cand.pieces = std::move(merged);
  plan.canon_hash = CandidateCanonicalHash(plan.cand);

  // Prop 3.5: a join whose pattern set coincides with a child's adds
  // nothing (the child is cheaper by cost monotonicity).
  if (options_.prune_same_pattern &&
      ((plan.canon_hash == anc.canon_hash &&
        CandidatesCanonicalEqual(plan.cand, anc.cand)) ||
       (plan.canon_hash == desc.canon_hash &&
        CandidatesCanonicalEqual(plan.cand, desc.cand)))) {
    ++stats_.dominated;
    return kill();
  }

  // Same-problem duplicate piece sets: keep the cheaper plan (equal piece
  // sets always involve the same view instances, so the check never needs
  // to look outside this problem).
  for (int32_t oid : problems_[BasesKey(plan.bases)]) {
    if (oid == id) continue;
    EnumPlan& other = plans_[static_cast<size_t>(oid)];
    if (!other.alive || !other.materialized || other.bases != plan.bases ||
        other.canon_hash != plan.canon_hash ||
        !CandidatesCanonicalEqual(other.cand, plan.cand)) {
      continue;
    }
    ++stats_.dominated;
    if (other.cost <= plan.cost) return kill();
    other.alive = false;
    --alive_count_;
    break;
  }
  plan.materialized = true;
  return true;
}

bool PlanEnumerator::EnsureInfo(int32_t id) {
  EnumPlan& plan = plans_[static_cast<size_t>(id)];
  if (plan.info_built) return plan.alive;
  if (!Materialize(id)) return false;
  plan.info = BuildCandInfo(plan.cand, join_relevant_, summary_,
                            plan.serve_mask, plan.canon_hash);
  plan.info_built = true;
  return true;
}

void PlanEnumerator::MatchLevel(size_t level_begin, size_t level_end,
                                const MatchFn& match,
                                const DeadlineFn& deadline) {
  std::vector<int32_t> primary;
  std::vector<int32_t> fallback;
  for (size_t i = level_begin; i < level_end; ++i) {
    const EnumPlan& p = plans_[i];
    if (!p.alive) continue;
    if (p.match_fallback) {
      fallback.push_back(static_cast<int32_t>(i));
    } else if (cover_.Covers(p.serve_mask)) {
      primary.push_back(static_cast<int32_t>(i));
    }
  }
  auto by_cost = [&](int32_t a, int32_t b) {
    const EnumPlan& x = plans_[static_cast<size_t>(a)];
    const EnumPlan& y = plans_[static_cast<size_t>(b)];
    if (x.cost != y.cost) return x.cost < y.cost;
    return a < b;
  };
  std::sort(primary.begin(), primary.end(), by_cost);
  std::sort(fallback.begin(), fallback.end(), by_cost);

  for (int32_t id : primary) {
    if (stopped_ || deadline()) return;
    if (!Materialize(id)) continue;
    EnumPlan& p = plans_[static_cast<size_t>(id)];
    MatchOutcome out = match(p.cand, p.cost);
    best_cost_ = std::min(best_cost_, out.best_cost);
    if (out.stop) {
      stopped_ = true;
      return;
    }
  }
  // Pareto-dominated covering plans: their distinct piece sets can still
  // yield a rewriting the dominator cannot, but only a rewriting cheaper
  // than the best found one matters — a final plan's cost is at least its
  // candidate's cost (operators only add), and a union's cost is at least
  // each partial's. While no rewriting exists yet, every fallback is
  // tested (unions of partial covers have no cost bound to beat).
  for (int32_t id : fallback) {
    if (stopped_ || deadline()) return;
    const EnumPlan& peek = plans_[static_cast<size_t>(id)];
    if (best_cost_ < kInf && peek.cost >= best_cost_) {
      ++stats_.cost_pruned;
      continue;
    }
    if (!Materialize(id)) continue;
    EnumPlan& p = plans_[static_cast<size_t>(id)];
    MatchOutcome out = match(p.cand, p.cost);
    best_cost_ = std::min(best_cost_, out.best_cost);
    if (out.stop) {
      stopped_ = true;
      return;
    }
  }
}

void PlanEnumerator::Run(const MatchFn& match, const DeadlineFn& deadline) {
  best_cost_ = kInf;
  distinct_base_masks_.clear();
  for (int32_t id : base_ids_) {
    distinct_base_masks_.push_back(
        plans_[static_cast<size_t>(id)].serve_mask);
  }
  std::sort(distinct_base_masks_.begin(), distinct_base_masks_.end());
  distinct_base_masks_.erase(
      std::unique(distinct_base_masks_.begin(), distinct_base_masks_.end()),
      distinct_base_masks_.end());

  // Bases that cannot reach full coverage are dead weight both as plans
  // and as join operands.
  for (int32_t id : base_ids_) {
    EnumPlan& p = plans_[static_cast<size_t>(id)];
    if (!cover_.Extendable(p.serve_mask, 1, options_.max_plan_views)) {
      p.alive = false;
      p.extendable = false;
      --alive_count_;
      ++stats_.coverage_pruned;
    } else {
      p.extendable = options_.max_plan_views > 1 &&
                     (cover_.Covers(p.serve_mask) ||
                      ExtendableWithAnyBase(p.serve_mask, 1));
    }
  }

  size_t level_begin = 0;
  size_t level_end = plans_.size();
  bool table_full = false;
  for (int32_t level = 1;
       level <= options_.max_plan_views && !stopped_ && !deadline();
       ++level) {
    MatchLevel(level_begin, level_end, match, deadline);
    if (stopped_ || deadline() || level == options_.max_plan_views ||
        table_full) {
      break;
    }

    // Extension frontier: the cheapest extendable plans of this level.
    std::vector<int32_t> frontier;
    for (size_t i = level_begin; i < level_end; ++i) {
      const EnumPlan& p = plans_[i];
      if (p.alive && p.extendable &&
          static_cast<int32_t>(p.bases.size()) == level) {
        frontier.push_back(static_cast<int32_t>(i));
      }
    }
    std::sort(frontier.begin(), frontier.end(), [&](int32_t a, int32_t b) {
      const EnumPlan& x = plans_[static_cast<size_t>(a)];
      const EnumPlan& y = plans_[static_cast<size_t>(b)];
      if (x.cost != y.cost) return x.cost < y.cost;
      return a < b;
    });
    if (frontier.size() > options_.max_frontier) {
      stats_.beam_skipped += frontier.size() - options_.max_frontier;
      frontier.resize(options_.max_frontier);
    }

    level_begin = plans_.size();
    for (int32_t fid : frontier) {
      if (stopped_ || table_full || deadline()) break;
      {
        const EnumPlan& f = plans_[static_cast<size_t>(fid)];
        // Branch-and-bound: every extension costs at least as much as the
        // frontier plan, and every rewriting from an extension costs at
        // least as much as the extension.
        if (best_cost_ < kInf && f.cost >= best_cost_) {
          ++stats_.cost_pruned;
          continue;
        }
      }
      if (!EnsureInfo(fid)) continue;
      for (int32_t bid : base_ids_) {
        if (stopped_ || table_full || deadline()) break;
        if (!plans_[static_cast<size_t>(bid)].alive) continue;
        if (!EnsureInfo(bid)) continue;
        uint32_t joined_mask = plans_[static_cast<size_t>(fid)].serve_mask |
                               plans_[static_cast<size_t>(bid)].serve_mask;
        if (!cover_.Extendable(joined_mask, static_cast<size_t>(level) + 1,
                               options_.max_plan_views)) {
          ++stats_.coverage_pruned;
          continue;
        }
        size_t num_pf = plans_[static_cast<size_t>(fid)].info
                            .rel_prefixes.size();
        size_t num_pb = plans_[static_cast<size_t>(bid)].info
                            .rel_prefixes.size();
        for (size_t ai = 0; ai < num_pf; ++ai) {
          for (size_t bj = 0; bj < num_pb; ++bj) {
            for (JoinType type :
                 {JoinType::kEq, JoinType::kParent, JoinType::kAncestor}) {
              for (bool f_is_ancestor : {true, false}) {
                if (type == JoinType::kEq && !f_is_ancestor) continue;
                if (table_full) break;
                // plans_ grows inside AddPlan, so references are
                // re-resolved per iteration.
                const EnumPlan& f = plans_[static_cast<size_t>(fid)];
                const EnumPlan& b = plans_[static_cast<size_t>(bid)];
                const EnumPlan& anc = f_is_ancestor ? f : b;
                const EnumPlan& desc = f_is_ancestor ? b : f;
                size_t anc_pidx = f_is_ancestor ? ai : bj;
                size_t desc_pidx = f_is_ancestor ? bj : ai;
                // Bitset pre-pass: a few word ANDs decide whether ANY
                // piece pair is path-compatible under this join type.
                if (!PrefixSetsJoin(anc.info.prefix_sets[anc_pidx],
                                    desc.info.prefix_sets[desc_pidx],
                                    type)) {
                  continue;
                }
                const std::vector<PathId>& anc_paths =
                    anc.info.prefix_paths[anc_pidx];
                const std::vector<PathId>& desc_paths =
                    desc.info.prefix_paths[desc_pidx];
                // Integer pre-pass: when neither side has predicates,
                // every path-compatible piece pair merges successfully,
                // so the merged piece count is exactly `compatible`.
                size_t compatible = 0;
                for (size_t x = 0; x < anc_paths.size(); ++x) {
                  for (size_t y = 0; y < desc_paths.size(); ++y) {
                    compatible += PiecePathsJoin(summary_, anc_paths[x],
                                                 desc_paths[y], type)
                                      ? 1
                                      : 0;
                  }
                }
                if (compatible == 0) continue;
                if (compatible > options_.max_merged_pieces &&
                    !anc.info.has_preds && !desc.info.has_preds) {
                  // Certain piece overflow: the discard may hide a valid
                  // rewriting (see Options::max_merged_pieces).
                  stats_.truncated = true;
                  continue;
                }
                if (plans_.size() >= options_.max_table) {
                  table_full = true;
                  break;
                }

                EnumPlan jp;
                jp.anc = f_is_ancestor ? fid : bid;
                jp.desc = f_is_ancestor ? bid : fid;
                jp.anc_prefix = anc.info.rel_prefixes[anc_pidx];
                jp.desc_prefix = desc.info.rel_prefixes[desc_pidx];
                jp.type = type;
                jp.anc_paths = anc_paths;
                jp.desc_paths = desc_paths;
                jp.serve_mask = joined_mask;
                jp.order_key = anc.order_key;
                jp.bases = f.bases;
                jp.bases.push_back(bid);
                std::sort(jp.bases.begin(), jp.bases.end());

                int32_t anc_col = anc.info.prefix_id_cols[anc_pidx];
                int32_t desc_col = desc.info.prefix_id_cols[desc_pidx];
                PlanPtr left = anc.cand.plan->Clone();
                PlanPtr right = desc.cand.plan->Clone();
                switch (type) {
                  case JoinType::kEq:
                    jp.cand.plan = MakeIdEqJoin(
                        std::move(left), std::move(right), anc_col, desc_col);
                    break;
                  case JoinType::kParent:
                    jp.cand.plan = MakeStructJoin(
                        std::move(left), std::move(right), anc_col, desc_col,
                        StructAxis::kParent);
                    break;
                  case JoinType::kAncestor:
                    jp.cand.plan = MakeStructJoin(
                        std::move(left), std::move(right), anc_col, desc_col,
                        StructAxis::kAncestor);
                    break;
                }
                jp.cand.used_views = anc.cand.used_views;
                jp.cand.used_views.insert(jp.cand.used_views.end(),
                                          desc.cand.used_views.begin(),
                                          desc.cand.used_views.end());
                CostEstimate est = cost_model_.Estimate(*jp.cand.plan);
                jp.cost = est.cost;
                jp.rows = est.rows;
                ++stats_.joins;
                AddPlan(std::move(jp));
              }
            }
          }
        }
      }
    }
    level_end = plans_.size();
    if (level_begin == level_end) break;  // nothing new to match or extend
  }
  stats_.retained = alive_count_;
}

}  // namespace svx
