// View-based rewriting under summary constraints — Algorithm 1 of §3.3 with
// the §4.6 extensions:
//   * plan-pattern pairs, where the pattern side is a union of pinned
//     pieces (Prop 3.3), kept S-equivalent to the plan by construction;
//   * left-deep join enumeration over ⋈=, ⋈≺, ⋈≺≺ on stored (or §4.6
//     derived) structural IDs;
//   * pruning: Prop 3.4 (unrelated views), Prop 3.5 (join result pattern
//     coincides with a child's), Prop 3.7 (return-node path compatibility),
//     S-unsatisfiable join pieces discarded (line 6 context of Algorithm 1);
//   * §4.6 adaptations: label selections on L columns, value selections on
//     V columns, content unfolding (navC), virtual parent IDs (navfID),
//     group-by re-nesting for the query's nested edges;
//   * the union phase (Algorithm 1 lines 13-14) over partial covers.
#ifndef SVX_REWRITING_REWRITER_H_
#define SVX_REWRITING_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/plan.h"
#include "src/containment/containment.h"
#include "src/containment/memo.h"
#include "src/rewriting/annotated_pattern.h"
#include "src/rewriting/view.h"
#include "src/rewriting/view_index.h"
#include "src/summary/summary.h"
#include "src/util/status.h"

namespace svx {

class CostModel;   // src/viewstore/cost_model.h
class TraceSpan;   // src/observability/trace.h

/// Rewriter tuning. The Prop 3.6 bound (n(Q)-1)*|S| is astronomically loose
/// in practice; `max_plan_views` is the practical cap.
struct RewriterOptions {
  ContainmentOptions containment;
  ExpansionOptions expansion;
  int32_t max_plan_views = 3;
  size_t max_candidates = 2000;
  /// DP plan-table cap (the DP analogue of `max_candidates`, which bounds
  /// the legacy exhaustive search). The DP table also holds non-covering
  /// partial plans, but dominance pruning keeps it far denser than the
  /// legacy candidate list, so a smaller budget explores the same useful
  /// space; the main effect of a larger table is a longer futile search on
  /// queries with no rewriting. Overflow stops enumeration silently (the
  /// cheapest plans were generated first); it is not a truncation signal.
  size_t max_plan_table = 1000;
  /// DP extension beam: how many of the cheapest extendable partial plans
  /// per level the enumerator joins further. (Historically this was a
  /// per-join piece-product cutoff; the per-candidate merged-piece bound is
  /// ExpansionOptions::max_pieces now, and overruns of that bound are
  /// reported via RewriteStats::search_truncated.)
  size_t max_pieces = 128;
  size_t max_assignments = 64;  // return-node choices tested per candidate
  size_t max_results = 8;
  size_t max_union_size = 3;
  size_t max_union_partials = 24;
  bool prune_views = true;       // Prop 3.4
  bool prune_same_pattern = true;  // Prop 3.5
  bool stop_at_first = false;
  double time_budget_ms = 60000;
  /// Use the precomputed ViewIndex signatures: Prop 3.4 by bitset
  /// intersection, a whole-query early-out when no ≤ max_plan_views view
  /// combination can serve every required column, and skipping of
  /// join combinations (and equivalence tests) that provably cannot cover
  /// the query. All skips are certified by over-approximate signatures, so
  /// the found rewritings are unchanged; only dead search space is cut.
  bool use_view_index = true;
  /// Enumerate join plans with the DP enumerator (src/rewriting/plan_enum.h):
  /// problems keyed by view-instance multisets, Pareto dominance between
  /// partial plans, lazy piece materialization, cheapest-first matching, and
  /// branch-and-bound against the best found rewriting. Requires the
  /// ViewIndex coverage signatures (use_view_index with ≤ 16 return
  /// columns); falls back to the exhaustive left-deep search otherwise.
  /// The flag exists so tests can differentially compare the two paths.
  bool use_dp_enumeration = true;
  /// Memoize containment decisions within (and, via `memo`, across)
  /// Rewrite() calls.
  bool memoize_containment = true;
  /// Optional cross-call memo (e.g. CatalogSnapshot::containment_memo()),
  /// pinned by the caller. Borrowed; must outlive the rewriter and must be
  /// cleared when the summary changes. When null and memoize_containment is
  /// set, a per-call memo is used instead.
  ContainmentMemo* memo = nullptr;
  /// Optional prebuilt snapshot-owned view index
  /// (CatalogSnapshot::ViewIndexFor), shared by concurrent readers so each
  /// per-query Rewriter skips the per-view signature computation.
  /// Borrowed; must outlive the rewriter, and must have been built over
  /// the same summary and expansion options with exactly this rewriter's
  /// AddView sequence (signatures are addressed by registration order —
  /// on a view-count mismatch the rewriter falls back to its own index).
  const ViewIndex* shared_view_index = nullptr;
  /// When set, found rewritings are ranked by estimated cost (cheapest
  /// first, ties broken by compact form) instead of discovery order.
  /// Borrowed; must outlive the rewriter.
  const CostModel* cost_model = nullptr;
  /// Opt-in query tracing (src/observability/trace.h): when non-null,
  /// Rewrite() attaches per-phase child spans (analysis, pruning, view
  /// expansion, single-view matching, join enumeration, union phase, cost
  /// ranking) under this span, and CachedRewrite adds its cache-lookup
  /// span. Borrowed for the duration of the call; never affects results,
  /// so it is deliberately NOT part of the rewrite-cache key. A trace
  /// belongs to one query on one thread.
  TraceSpan* trace = nullptr;
};

/// One equivalent rewriting: a plan whose output columns are exactly the
/// query's return-node attribute columns, in query preorder.
struct Rewriting {
  PlanPtr plan;
  std::string compact;  // e.g. "(V1 ⋈= V2) ∪ V3"
  /// Estimated execution cost (scan-cost units); -1 when no cost model was
  /// configured.
  double est_cost = -1;
};

/// Measurements for the §5 experiments (Figure 15).
struct RewriteStats {
  size_t views_total = 0;
  size_t views_kept = 0;  // after Prop 3.4 pruning
  size_t candidates_built = 0;
  size_t join_candidates = 0;
  size_t equivalence_tests = 0;
  /// Search steps skipped by the ViewIndex: single-view candidates and join
  /// combinations whose signatures cannot cover the query's required
  /// columns (on a whole-query early-out, the kept views whose expansion
  /// was skipped).
  size_t candidates_pruned = 0;
  size_t containment_memo_hits = 0;
  size_t containment_memo_misses = 0;
  /// Set by CachedRewrite (src/viewstore/rewrite_cache.h): 1 when the
  /// ranked rewriting list was served from the catalog's rewrite cache.
  size_t rewrite_cache_hits = 0;
  /// True when the search stopped on time_budget_ms: the (partial) result
  /// depends on machine load, so CachedRewrite refuses to cache it.
  bool time_budget_hit = false;
  /// True when a join's merged piece set exceeded the per-candidate bound
  /// (ExpansionOptions::max_pieces) and was discarded: the search may have
  /// missed rewritings, so CachedRewrite refuses to cache the result.
  /// (Before the DP enumerator these discards were silent.)
  bool search_truncated = false;
  /// Plan-enumeration accounting. The legacy exhaustive path reports
  /// generated = candidates_built + join_candidates and dominated = its
  /// canonical-duplicate discards, so the counters are comparable across
  /// both paths.
  size_t plans_generated = 0;
  size_t plans_dominated = 0;
  size_t plans_retained = 0;
  size_t results = 0;
  /// Cost spread over the found rewritings (-1 without a cost model): a
  /// large ratio means cost-based selection matters for this query.
  double cheapest_cost = -1;
  double costliest_cost = -1;
  double setup_ms = 0;   // expansion + pruning
  double first_ms = -1;  // time to first rewriting (includes setup)
  double total_ms = 0;
};

/// Rewrites queries over a fixed summary and view set.
class Rewriter {
 public:
  Rewriter(const Summary& summary, RewriterOptions options = {});

  /// Registers a view definition (extents bind at execution time via the
  /// Catalog).
  void AddView(ViewDef def);

  int32_t num_views() const { return static_cast<int32_t>(views_.size()); }

  const RewriterOptions& options() const { return options_; }

  /// Finds equivalent rewritings of `q` (up to options.max_results).
  /// Returns an empty vector when none exists within the budgets.
  [[nodiscard]] Result<std::vector<Rewriting>> Rewrite(
      const Pattern& q, RewriteStats* stats = nullptr);

 private:
  const Summary& summary_;
  RewriterOptions options_;
  std::vector<ViewDef> views_;
  /// Signatures for views_[0..index_views_), grown lazily on Rewrite().
  std::unique_ptr<ViewIndex> index_;
};

}  // namespace svx

#endif  // SVX_REWRITING_REWRITER_H_
